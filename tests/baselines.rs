//! Baseline behaviour pinning: the §2 cast acts the way the paper's
//! comparison needs them to.

use fault_tolerant_switching::core::lowerbound::{short_terminal_paths, zone_audit_with};
use fault_tolerant_switching::failure::contraction::terminals_shorted;
use fault_tolerant_switching::failure::{FailureInstance, FailureModel};
use fault_tolerant_switching::graph::distance::nearest_other_terminal;
use fault_tolerant_switching::graph::gen::{random_permutation, rng};
use fault_tolerant_switching::networks::verify::{
    churn_finds_blocking, verify_rearrangeable_exhaustive,
};
use fault_tolerant_switching::networks::{Benes, Butterfly, CircuitRouter, Clos};

#[test]
fn benes_is_rearrangeable() {
    // exhaustively for n = 4; looping algorithm for larger samples
    let b = Benes::new(2);
    assert!(verify_rearrangeable_exhaustive(&b.net).is_ok());
    let b = Benes::new(4);
    let mut r = rng(1);
    for _ in 0..20 {
        let perm = random_permutation(&mut r, 16);
        let paths = b.route_permutation(&perm);
        assert_eq!(paths.len(), 16);
        // vertex-disjointness
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            for &v in p {
                assert!(seen.insert(v), "looping paths overlap at {v:?}");
            }
        }
    }
}

#[test]
fn benes_is_not_strictly_nonblocking() {
    // greedy + churn adversary must find a blocking state
    let b = Benes::new(2);
    let mut r = rng(0x1234);
    assert!(
        churn_finds_blocking(&b.net, 50, 100, &mut r),
        "Benes should block greedy churn"
    );
}

#[test]
fn strict_clos_never_blocks() {
    let c = Clos::strictly_nonblocking(3, 3);
    let mut r = rng(0x4321);
    assert!(
        !churn_finds_blocking(&c.net, 20, 200, &mut r),
        "strict Clos must not block"
    );
}

#[test]
fn butterfly_unique_paths_are_paths() {
    let bf = Butterfly::new(4);
    for x in 0..16u32 {
        for y in [0u32, 5, 15] {
            let p = bf.unique_path(x, y);
            assert_eq!(p.len(), 5, "k+1 link stages input→output");
            for w in p.windows(2) {
                assert!(
                    bf.net.graph().has_edge(w[0], w[1]),
                    "unique path skips an edge"
                );
            }
        }
    }
}

#[test]
fn baseline_inputs_are_close_together() {
    // Lemma 2's premise: O(n log n) networks have inputs at O(1)
    // distance
    for k in [3u32, 4, 5] {
        let b = Benes::new(k);
        let d = nearest_other_terminal(&b.net, b.net.inputs());
        assert!(d.iter().all(|&x| x <= 2), "Benes inputs not close: {d:?}");
        let bf = Butterfly::new(k);
        let d = nearest_other_terminal(&bf.net, bf.net.inputs());
        assert!(d.iter().all(|&x| x <= 2));
    }
}

#[test]
fn baselines_have_no_good_inputs_at_threshold_4() {
    for k in [4u32, 5] {
        let b = Benes::new(k);
        let audit = zone_audit_with(&b.net, b.net.inputs(), 4, 2);
        assert_eq!(audit.good_terminals, 0);
    }
}

#[test]
fn lemma2_pipeline_extracts_disjoint_short_paths_on_benes() {
    let b = Benes::new(4); // n = 16
    let r = short_terminal_paths(&b.net, b.net.inputs(), 4);
    assert!(
        r.paths.len() >= 16usize.div_ceil(84),
        "expected ≥ ⌈n/84⌉ paths, got {}",
        r.paths.len()
    );
    assert!(r.max_len <= 12, "paths too long: {}", r.max_len);
    let mut used = std::collections::HashSet::new();
    for p in &r.paths {
        assert_ne!(p.ends.0, p.ends.1);
        for &e in &p.host_edges {
            assert!(used.insert(e), "paths share a host edge");
        }
    }
}

#[test]
fn benes_shorts_with_high_probability_at_quarter() {
    // Lemma 2's conclusion, empirically: ε₂ = ¼ shorts two inputs of a
    // Beneš with probability ≥ ½ for n ≥ 32
    let b = Benes::new(5);
    let model = FailureModel::new(0.0, 0.25);
    let mut r = rng(9);
    let m = b.net.graph().num_edges();
    let mut shorted = 0;
    for _ in 0..200 {
        let inst = FailureInstance::sample(&model, &mut r, m);
        if terminals_shorted(&b.net, &inst, b.net.inputs()) {
            shorted += 1;
        }
    }
    assert!(shorted >= 100, "only {shorted}/200 trials shorted");
}

#[test]
fn greedy_on_butterfly_blocks_even_fault_free() {
    // unique-path networks cannot carry arbitrary permutations as
    // circuits: greedy must fail on some random permutation
    let bf = Butterfly::new(4);
    let mut r = rng(11);
    let mut blocked = false;
    for _ in 0..20 {
        let mut router = CircuitRouter::new(&bf.net);
        let perm = random_permutation(&mut r, 16);
        for (x, &y) in perm.iter().enumerate() {
            if router
                .connect(bf.net.inputs()[x], bf.net.outputs()[y as usize])
                .is_err()
            {
                blocked = true;
            }
        }
    }
    assert!(blocked, "butterfly routed everything — suspicious");
}
