//! End-to-end integration: build → fail → repair → certify → route,
//! across profiles, failure rates and seeds — the Theorem 2 pipeline.

use fault_tolerant_switching::core::certify::certify_with_budget;
use fault_tolerant_switching::core::network::FtNetwork;
use fault_tolerant_switching::core::params::Params;
use fault_tolerant_switching::core::repair::Survivor;
use fault_tolerant_switching::core::routing;
use fault_tolerant_switching::failure::{FailureInstance, FailureModel};
use fault_tolerant_switching::graph::gen::rng;
use fault_tolerant_switching::graph::menger::max_disjoint_paths;
use fault_tolerant_switching::graph::Digraph;
use fault_tolerant_switching::networks::CircuitRouter;

fn profiles() -> Vec<Params> {
    vec![
        Params::reduced(1, 8, 8, 1.0),
        Params::reduced(2, 8, 8, 1.0),
        Params::reduced(1, 16, 10, 4.0),
    ]
}

#[test]
fn certified_survivors_route_every_permutation_request() {
    for p in profiles() {
        let ftn = FtNetwork::build(p);
        let model = FailureModel::symmetric(1e-3);
        let mut r = rng(0x5151);
        for trial in 0..15 {
            let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
            let cert = certify_with_budget(&ftn, &inst, 0.10);
            let survivor = Survivor::new(&ftn, &inst);
            assert!(survivor.invariant_holds(&inst));
            let mut router = routing::survivor_router(&survivor);
            let perm = routing::random_perm(&mut r, ftn.n());
            let (stats, sessions) = routing::route_permutation(&mut router, &ftn, &perm);
            if cert.implies_nonblocking() {
                assert!(
                    stats.all_connected(),
                    "certified survivor blocked (profile {p:?}, trial {trial}): {stats:?}"
                );
                assert!(routing::sessions_disjoint(&router, &sessions));
            }
        }
    }
}

#[test]
fn certified_survivors_never_block_under_churn() {
    let ftn = FtNetwork::build(Params::reduced(2, 8, 8, 1.0));
    let model = FailureModel::symmetric(5e-4);
    let mut r = rng(0xC4C4);
    for _ in 0..10 {
        let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
        if !certify_with_budget(&ftn, &inst, 0.10).implies_nonblocking() {
            continue;
        }
        let survivor = Survivor::new(&ftn, &inst);
        let mut router = routing::survivor_router(&survivor);
        let stats = routing::churn(&mut router, &ftn, 400, 0.6, &mut r);
        assert_eq!(stats.blocked, 0, "churn blocked on certified survivor");
    }
}

#[test]
fn survivor_remains_a_superconcentrator() {
    // an (ε, δ)-nonblocking network is an (ε, δ)-superconcentrator:
    // max vertex-disjoint input→output flow on the survivor stays n
    let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
    let model = FailureModel::symmetric(1e-3);
    let mut r = rng(0xABCD);
    let mut full_flow_count = 0;
    for _ in 0..10 {
        let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
        let survivor = Survivor::new(&ftn, &inst);
        let alive = survivor.routable_alive();
        // materialise the survivor graph
        let g = ftn.net().graph();
        let mut sg = fault_tolerant_switching::graph::DiGraph::with_capacity(
            g.num_vertices(),
            g.num_edges(),
        );
        sg.add_vertices(g.num_vertices());
        for (_, t, h) in g.edges() {
            if alive[t.index()] && alive[h.index()] {
                sg.add_edge(t, h);
            }
        }
        let flow = max_disjoint_paths(&sg, ftn.net().inputs(), ftn.net().outputs());
        if flow as usize == ftn.n() {
            full_flow_count += 1;
        }
    }
    assert!(
        full_flow_count >= 8,
        "superconcentrator property lost too often: {full_flow_count}/10"
    );
}

#[test]
fn fault_free_network_is_nonblocking_under_adversarial_churn() {
    // no failures: greedy routing must never block, whatever the
    // connect/disconnect sequence
    let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
    let mut r = rng(0xFEED);
    for round in 0..5 {
        let mut router = CircuitRouter::new(ftn.net());
        let stats = routing::churn(&mut router, &ftn, 1000, 0.7, &mut r);
        assert_eq!(stats.blocked, 0, "fault-free N blocked in round {round}");
    }
}

#[test]
fn wipeout_is_detected_not_masked() {
    let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
    let inst = FailureInstance::from_states(vec![
        fault_tolerant_switching::failure::SwitchState::Open;
        ftn.net().num_edges()
    ]);
    let cert = certify_with_budget(&ftn, &inst, 0.5);
    assert!(!cert.implies_nonblocking());
    let survivor = Survivor::new(&ftn, &inst);
    let mut router = routing::survivor_router(&survivor);
    let (stats, _) = routing::route_permutation(&mut router, &ftn, &[0, 1, 2, 3]);
    assert_eq!(stats.connected, 0);
}

#[test]
fn epsilon_monotonicity_of_routing_success() {
    // routing success must not increase with ε (statistically; wide
    // margins keep this deterministic at these sample sizes)
    let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
    let mut successes = Vec::new();
    for &eps in &[1e-4, 2e-2, 2e-1] {
        let model = FailureModel::symmetric(eps);
        let mut r = rng(0x1111);
        let mut ok = 0;
        for _ in 0..30 {
            let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
            let survivor = Survivor::new(&ftn, &inst);
            let mut router = routing::survivor_router(&survivor);
            let perm = routing::random_perm(&mut r, ftn.n());
            let (stats, _) = routing::route_permutation(&mut router, &ftn, &perm);
            if stats.all_connected() {
                ok += 1;
            }
        }
        successes.push(ok);
    }
    assert!(
        successes[0] >= successes[1] && successes[1] >= successes[2],
        "success not monotone in eps: {successes:?}"
    );
    assert_eq!(successes[0], 30, "eps=1e-4 should always route");
}

#[test]
fn deterministic_pipeline_for_fixed_seeds() {
    let p = Params::reduced(1, 8, 8, 1.0);
    let run = || {
        let ftn = FtNetwork::build(p);
        let model = FailureModel::symmetric(1e-3);
        let mut r = rng(7);
        let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
        let survivor = Survivor::new(&ftn, &inst);
        let mut router = routing::survivor_router(&survivor);
        let perm = routing::random_perm(&mut r, ftn.n());
        let (stats, _) = routing::route_permutation(&mut router, &ftn, &perm);
        (survivor.discarded, stats.connected, stats.total_path_len)
    };
    assert_eq!(run(), run());
}
