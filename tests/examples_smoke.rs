//! Smoke test: every documented example entry point must build and run
//! to completion. Keeps `examples/` (the README's quickstart surface)
//! from rotting; runs in CI as part of plain `cargo test`.

use std::process::Command;

/// Enumerate `examples/*.rs` so a newly added example is covered
/// automatically — a hardcoded list would let new entry points rot.
fn examples() -> Vec<String> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples");
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ directory missing")
        .filter_map(|e| {
            let p = e.ok()?.path();
            if p.extension()? == "rs" {
                Some(p.file_stem()?.to_str()?.to_string())
            } else {
                None
            }
        })
        .collect();
    names.sort();
    names
}

#[test]
fn all_examples_run_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let examples = examples();
    assert!(
        examples.len() >= 7,
        "expected the six seed examples plus exchange_day, found {examples:?}"
    );
    for example in &examples {
        let out = Command::new(&cargo)
            .args(["run", "--quiet", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for {example}: {e}"));
        assert!(
            out.status.success(),
            "example {example} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        assert!(
            !out.stdout.is_empty(),
            "example {example} produced no output"
        );
    }
}
