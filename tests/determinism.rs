//! Determinism regression: the seeded-RNG contract the Monte Carlo layer
//! depends on. `ft_graph::gen::rng(seed)` must produce a byte-identical
//! stream across runs (and across machines), and `FailureInstance::sample`
//! driven by it must reproduce the exact same failure pattern.
//!
//! The golden constants below pin the current generator: the vendored
//! xoshiro256++ shim (upstream `rand 0.9`'s `SmallRng` algorithm, but
//! with its own seed expansion — streams are NOT bit-identical to
//! registry `rand`). If any of these assertions fail, the RNG stream has
//! changed and every recorded experiment/baseline seed is invalidated —
//! treat that as a breaking change, not a test to update casually.

use fault_tolerant_switching::failure::{FailureInstance, FailureMask, FailureModel};
use fault_tolerant_switching::graph::gen::rng;
use fault_tolerant_switching::graph::EdgeId;
use rand::Rng;

#[test]
fn raw_u64_stream_is_pinned() {
    let mut r = rng(0xDEAD_BEEF);
    let words: Vec<u64> = (0..8).map(|_| r.random::<u64>()).collect();
    assert_eq!(
        words,
        [
            9246088561534189997,
            18157228972781845203,
            9638398704527162881,
            8137535868154169423,
            4942760288235217420,
            18397014035429101862,
            1856516097349913093,
            1928640595564019879,
        ]
    );
}

#[test]
fn range_stream_is_pinned() {
    let mut r = rng(7);
    let vals: Vec<usize> = (0..6).map(|_| r.random_range(0..1000usize)).collect();
    assert_eq!(vals, [505, 901, 861, 581, 214, 476]);
}

/// FNV-1a over the sampled switch states.
fn fingerprint(inst: &FailureInstance) -> u64 {
    let mut fp: u64 = 0xCBF2_9CE4_8422_2325;
    for e in 0..inst.len() {
        fp ^= inst.state(EdgeId::from(e)) as u8 as u64;
        fp = fp.wrapping_mul(0x100_0000_01B3);
    }
    fp
}

#[test]
fn failure_sampling_is_pinned() {
    let model = FailureModel::new(1e-2, 1e-2);
    let mut r = rng(42);
    let inst = FailureInstance::sample(&model, &mut r, 10_000);
    let (open, closed, normal) = inst.counts();
    assert_eq!((open, closed, normal), (98, 92, 9810));
    assert_eq!(fingerprint(&inst), 0x8d90346320db69e1);
}

#[test]
fn same_seed_same_stream_independent_instances() {
    let model = FailureModel::new(3e-3, 1e-3);
    for seed in [0u64, 1, 0x5EED_CAFE, u64::MAX] {
        let mut a = rng(seed);
        let mut b = rng(seed);
        for _ in 0..256 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let ia = FailureInstance::sample(&model, &mut a, 4096);
        let ib = FailureInstance::sample(&model, &mut b, 4096);
        assert_eq!(fingerprint(&ia), fingerprint(&ib));
        assert_eq!(ia.counts(), ib.counts());
    }
}

#[test]
fn resample_matches_fresh_sample() {
    let model = FailureModel::new(1e-2, 2e-2);
    let mut a = rng(11);
    let mut b = rng(11);
    let fresh = FailureInstance::sample(&model, &mut a, 2048);
    let mut reused = FailureInstance::perfect(2048);
    reused.resample(&model, &mut b, 2048);
    assert_eq!(fingerprint(&fresh), fingerprint(&reused));
}

/// The packed [`FailureMask`] sampler must reproduce the exact golden
/// stream the unpacked `Vec<SwitchState>` reference sampler is pinned to
/// (above, `failure_sampling_is_pinned`): in the sparse regime both
/// consume the RNG identically, so the byte-for-byte states — and hence
/// the recorded fingerprints — carry over to the bitset representation.
#[test]
fn mask_sampling_matches_reference_golden_fingerprint() {
    let model = FailureModel::new(1e-2, 1e-2);
    // the mask-backed FailureInstance reproduces the pinned fingerprint
    let inst = FailureInstance::sample(&model, &mut rng(42), 10_000);
    assert_eq!(fingerprint(&inst), 0x8d90346320db69e1);
    // and matches the unpacked reference sampler state by state
    let states = model.sample_states(&mut rng(42), 10_000);
    let mask = model.sample_mask(&mut rng(42), 10_000);
    assert_eq!(mask.to_states(), states);
    assert_eq!(FailureMask::from_states(&states), mask);
}

/// Sparse equivalence across asymmetric models: every total failure
/// probability below `DENSE_CUTOFF` must give bit-identical states
/// between the packed and reference samplers.
#[test]
fn mask_matches_reference_across_sparse_models() {
    for (e1, e2) in [(3e-3, 1e-3), (1e-2, 2e-2), (0.0, 0.05), (0.06, 0.0)] {
        let model = FailureModel::new(e1, e2);
        assert!(model.total() < FailureModel::DENSE_CUTOFF);
        for seed in [0u64, 7, 0x5EED_CAFE] {
            let states = model.sample_states(&mut rng(seed), 4096);
            let inst = FailureInstance::sample(&model, &mut rng(seed), 4096);
            assert_eq!(inst.mask().to_states(), states, "({e1}, {e2}) seed {seed}");
        }
    }
}

/// The dense word-fill path is deterministic per seed and keeps the
/// model's marginals (its RNG stream legitimately differs from the
/// per-switch reference — two switches per `u64` draw).
#[test]
fn mask_dense_word_fill_is_deterministic_and_calibrated() {
    let model = FailureModel::symmetric(0.1); // total 0.2 ≥ DENSE_CUTOFF
    assert!(model.total() >= FailureModel::DENSE_CUTOFF);
    let a = FailureInstance::sample(&model, &mut rng(5), 100_000);
    let b = FailureInstance::sample(&model, &mut rng(5), 100_000);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    let (open, closed, _) = a.counts();
    assert!((open as f64 / 100_000.0 - 0.1).abs() < 0.01, "open {open}");
    assert!(
        (closed as f64 / 100_000.0 - 0.1).abs() < 0.01,
        "closed {closed}"
    );
}

/// FNV-1a over a sliced block's open/closed word planes, switch-major,
/// little-endian bytes — the bit-sliced analogue of [`fingerprint`].
fn plane_fingerprint(s: &fault_tolerant_switching::failure::SlicedFailureMask) -> u64 {
    let mut fp: u64 = 0xCBF2_9CE4_8422_2325;
    for i in 0..s.len() {
        for w in [s.open_word(i), s.closed_word(i)] {
            for b in w.to_le_bytes() {
                fp ^= b as u64;
                fp = fp.wrapping_mul(0x100_0000_01B3);
            }
        }
    }
    fp
}

/// The bit-sliced sampler's streams are pinned like the scalar ones
/// above. Sparse regime: lane *i* replicates the *i*-th consecutive
/// scalar sample from the same RNG, so lane 0 of the seed-42 block must
/// reproduce the scalar golden fingerprint verbatim. Dense regime: the
/// MSB-first comparator owns its stream; its plane fingerprint is pinned
/// directly. A change to either constant invalidates every recorded
/// sliced baseline — breaking change, not a casual update.
#[test]
fn sliced_sampler_streams_are_pinned() {
    use fault_tolerant_switching::failure::SlicedFailureMask;

    let mut sliced = SlicedFailureMask::new();

    // sparse: same model/seed as `failure_sampling_is_pinned`
    let sparse = FailureModel::new(1e-2, 1e-2);
    sparse.sample_sliced_into(&mut rng(42), 10_000, &mut sliced);
    assert_eq!(plane_fingerprint(&sliced), 0x0b4f63400f9bd3b9);
    let mut lane0 = FailureInstance::perfect(10_000);
    sliced.extract_lane_into(0, lane0.mask_mut());
    assert_eq!(fingerprint(&lane0), 0x8d90346320db69e1);
    let (open, closed, _) = lane0.counts();
    assert_eq!((open, closed), (98, 92));

    // dense: comparator stream, same model/seed as the dense scalar pin
    let dense = FailureModel::symmetric(0.1);
    dense.sample_sliced_into(&mut rng(5), 10_000, &mut sliced);
    assert_eq!(plane_fingerprint(&sliced), 0xe2d9cc9e206bd667);
    let (mut open, mut closed) = (0u64, 0u64);
    for i in 0..sliced.len() {
        assert_eq!(sliced.open_word(i) & sliced.closed_word(i), 0);
        open += sliced.open_word(i).count_ones() as u64;
        closed += sliced.closed_word(i).count_ones() as u64;
    }
    // marginals over 640_000 lane-trials stay calibrated
    assert_eq!((open, closed), (64_240, 64_099));
}

/// The simulation engine's event stream is part of the same contract:
/// a fixed `(scenario, seed)` pair must reproduce the identical stream
/// (pinned by its FNV fingerprint) and a byte-identical JSON report,
/// across runs, thread counts and build profiles. As with the RNG
/// constants above, a change here invalidates every recorded scenario —
/// treat it as a breaking change.
#[test]
fn sim_event_stream_and_report_are_pinned() {
    use fault_tolerant_switching::sim;

    const SCENARIO: &str = "\
network = clos-strict 2 3
arrival_rate = 4
holding = exp 0.8
fault_rate = 0.003
mttr = 10
duration = 60
seeds = 2
seed_base = 5
buckets = 4
threads = 2
";
    let report = sim::run_scenario_text(SCENARIO).expect("scenario parses");
    assert_eq!(report.outcomes.len(), 2);
    // golden event-stream fingerprints (recorded 2026-07; see header)
    assert_eq!(report.outcomes[0].seed, 5);
    assert_eq!(report.outcomes[0].events, 387);
    assert_eq!(report.outcomes[0].fingerprint, 0x42539ac153522201);
    assert_eq!(report.outcomes[1].seed, 6);
    assert_eq!(report.outcomes[1].events, 422);
    assert_eq!(report.outcomes[1].fingerprint, 0x273cb6c362afa936);

    // byte-identical report across repeated runs and thread counts
    let json = report.to_json();
    let again = sim::run_scenario_text(SCENARIO).unwrap().to_json();
    assert_eq!(json, again);
    let serial = {
        let mut s = sim::Scenario::parse(SCENARIO).unwrap();
        s.threads = 1;
        let fabric = s.fabric.build();
        let outcomes = sim::run_sweep(&fabric, &s.config, &s.seed_list(), 1);
        sim::Report::new(s, &fabric, outcomes).to_json()
    };
    // the only difference between the two texts is the echoed thread
    // count — which the report deliberately does NOT echo, because it
    // must not affect results
    assert_eq!(json, serial);

    // pin a few rendered bytes so the JSON writer itself cannot drift
    assert!(json.contains("\"fingerprint\": \"0x42539ac153522201\""));
    assert!(json.contains("\"network\": \"clos-strict 2 3\""));
}

/// The PR-7 correlated injectors extend the event-stream contract: one
/// storm seed and one targeted-adversary seed are pinned alongside the
/// i.i.d. goldens above. As ever, a change here means every recorded
/// storm scenario is invalidated — breaking change, not a casual update.
#[test]
fn correlated_injector_streams_are_pinned() {
    use fault_tolerant_switching::sim;

    const STORM: &str = "\
network = clos-strict 2 3
arrival_rate = 4
holding = exp 0.8
faults = storm 0.08 2.0
retry = budget 3 backoff 0.5 shed 8
mttr = 10
duration = 60
seeds = 1
seed_base = 5
buckets = 4
";
    let report = sim::run_scenario_text(STORM).expect("storm scenario parses");
    let out = &report.outcomes[0];
    assert_eq!(out.seed, 5);
    assert_eq!(out.events, 532, "storm events");
    assert_eq!(out.fingerprint, 0x754fee9c85468a68, "storm fingerprint");
    assert!(out.metrics.storms > 0);
    assert!(out.metrics.faults > out.metrics.storms);
    // byte-identical report on a rerun
    assert_eq!(
        report.to_json(),
        sim::run_scenario_text(STORM).unwrap().to_json()
    );

    const TARGETED: &str = "\
network = clos-strict 2 3
arrival_rate = 4
holding = exp 0.8
faults = targeted 0.05
mttr = 10
duration = 60
seeds = 1
seed_base = 9
buckets = 4
";
    let report = sim::run_scenario_text(TARGETED).expect("targeted scenario parses");
    let out = &report.outcomes[0];
    assert_eq!(out.seed, 9);
    assert_eq!(out.events, 345, "targeted events");
    assert_eq!(out.fingerprint, 0x4ef793e9fcb2f216, "targeted fingerprint");
    assert!(out.metrics.faults > 0);
    assert_eq!(
        report.to_json(),
        sim::run_scenario_text(TARGETED).unwrap().to_json()
    );
}

/// The PR-9 reroute planners extend the event-stream contract in two
/// directions. First, `reroute = greedy` (and omitting the directive)
/// must reproduce the storm golden pinned above **verbatim** — the
/// min-cost machinery must be invisible until asked for. Second, the
/// `reroute = mincost` stream gets its own pinned fingerprint; it
/// legitimately differs from greedy (different placements change the
/// downstream dynamics), but must never drift across runs.
#[test]
fn reroute_planner_streams_are_pinned() {
    use fault_tolerant_switching::sim;

    const STORM_GREEDY: &str = "\
network = clos-strict 2 3
arrival_rate = 4
holding = exp 0.8
faults = storm 0.08 2.0
retry = budget 3 backoff 0.5 shed 8
reroute = greedy
mttr = 10
duration = 60
seeds = 1
seed_base = 5
buckets = 4
";
    let report = sim::run_scenario_text(STORM_GREEDY).expect("greedy scenario parses");
    let out = &report.outcomes[0];
    // the PR-7 storm golden, unchanged: spelling out the greedy default
    // is a no-op, and the greedy stream is byte-identical to pre-PR-9
    assert_eq!(out.events, 532, "greedy events");
    assert_eq!(out.fingerprint, 0x754fee9c85468a68, "greedy fingerprint");
    assert!(report.to_json().contains("\"reroute\": \"greedy\""));

    // A denser Beneš storm where the two planners genuinely diverge:
    // on light scenarios (e.g. the clos-strict golden above) both
    // planners admit the same circuits and the queue-pop fingerprints
    // coincide, which would pin nothing about the mincost path.
    const STORM_BENES: &str = "\
network = benes 3
arrival_rate = 10
holding = exp 1.2
faults = storm 0.12 2.0
retry = budget 3 backoff 0.5 shed 8
reroute = mincost
mttr = 8
duration = 80
seeds = 1
seed_base = 5
buckets = 4
";
    let report = sim::run_scenario_text(STORM_BENES).expect("mincost scenario parses");
    let out = &report.outcomes[0];
    assert_eq!(out.events, 1232, "mincost events");
    assert_eq!(out.fingerprint, 0x6598698df7f4c840, "mincost fingerprint");
    assert!(out.metrics.storms > 0);
    assert_eq!(
        (out.metrics.rerouted, out.metrics.moved),
        (3, 17),
        "mincost kill waves book success-only moves"
    );
    let json = report.to_json();
    assert!(json.contains("\"reroute\": \"mincost\""));
    assert!(json.contains("\"moved\""));
    // byte-identical report on a rerun
    assert_eq!(json, sim::run_scenario_text(STORM_BENES).unwrap().to_json());

    // Same scenario under the greedy planner: a different event stream
    // (the planners place different circuits) and strictly more
    // executed moves — min-cost rerouting is minimal-disruption.
    let greedy = sim::run_scenario_text(&STORM_BENES.replace("mincost", "greedy"))
        .expect("greedy scenario parses");
    let gout = &greedy.outcomes[0];
    assert_eq!(gout.events, 1247, "greedy events");
    assert_eq!(gout.fingerprint, 0xbe21450a60d7392e, "greedy fingerprint");
    assert_ne!(gout.fingerprint, out.fingerprint, "planners must diverge");
    assert_eq!(
        (gout.metrics.rerouted, gout.metrics.moved),
        (4, 27),
        "greedy counts every attempted move"
    );
    assert!(
        out.metrics.moved < gout.metrics.moved,
        "mincost must disrupt fewer circuits than greedy"
    );
}

/// The `ftexp` grid runner extends the same contract to whole studies:
/// the aggregate JSON and CSV tables must be byte-identical across
/// worker counts AND across a cache-cold vs cache-warm run, and the
/// warm run must compute zero cells (100% cell-cache hits). A change
/// that breaks any of these invalidates every recorded study table.
#[test]
fn ftexp_tables_are_byte_identical_across_threads_and_cache_state() {
    use fault_tolerant_switching::exp::{run_grid, to_csv, to_json, GridSpec, RunOptions};

    const GRID: &str = "\
arrival_rate  = 5.0
mttr          = 10
duration      = 40
seeds         = 2
buckets       = 2
static_trials = 500
sweep network    = clos-strict 2 2 | benes 2
sweep fault_rate = 0.002, 0.01
";
    let spec = GridSpec::parse(GRID).unwrap();
    let no_cache = |threads| RunOptions {
        threads,
        cache_dir: None,
        recompute: false,
    };

    // thread-count independence (cache disabled: all cells computed)
    let serial = run_grid(&spec, &no_cache(1)).unwrap();
    assert_eq!((serial.computed, serial.cached, serial.skipped), (4, 0, 0));
    let reference_json = to_json(&spec, &serial);
    let reference_csv = to_csv(&spec, &serial);
    for threads in [3, 0] {
        let other = run_grid(&spec, &no_cache(threads)).unwrap();
        assert_eq!(to_json(&spec, &other), reference_json, "threads {threads}");
        assert_eq!(to_csv(&spec, &other), reference_csv, "threads {threads}");
    }

    // cache-cold vs cache-warm byte identity, plus full warm hits
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("ftexp-determinism");
    let _ = std::fs::remove_dir_all(&dir);
    let with_cache = |threads| RunOptions {
        threads,
        cache_dir: Some(dir.clone()),
        recompute: false,
    };
    let cold = run_grid(&spec, &with_cache(2)).unwrap();
    assert_eq!((cold.computed, cold.cached), (4, 0));
    let warm = run_grid(&spec, &with_cache(1)).unwrap();
    assert_eq!(
        (warm.computed, warm.cached),
        (0, 4),
        "warm run must hit the cell cache for every cell"
    );
    assert_eq!(to_json(&spec, &cold), reference_json);
    assert_eq!(to_json(&spec, &warm), reference_json);
    assert_eq!(to_csv(&spec, &warm), reference_csv);

    // structural pins: per-seed fingerprints present, accounting absent
    assert!(reference_json.contains("\"fingerprint\": \"0x"));
    assert!(
        !reference_json.contains("cached"),
        "run accounting must never leak into the study bytes"
    );
}

/// The PR-8 observability layer extends the contract to the NDJSON
/// event trace: tracing a sweep must not perturb the event stream or
/// the report (the golden fingerprints above stay pinned with the
/// no-op observer because tracing is write-only), and the trace itself
/// is byte-identical across reruns and thread counts. Different seeds
/// diverge at the very first event — the seed header — which is what
/// makes `trace_diff` useful as a bisection tool.
#[test]
fn ndjson_trace_is_byte_identical_across_runs_and_threads() {
    use fault_tolerant_switching::obs::{first_divergence, TraceDiff};
    use fault_tolerant_switching::sim;

    const SCENARIO: &str = "\
network = clos-strict 2 3
arrival_rate = 4
holding = exp 0.8
fault_rate = 0.003
mttr = 10
duration = 60
seeds = 2
seed_base = 5
buckets = 4
";
    let s = sim::Scenario::parse(SCENARIO).unwrap();
    let fabric = s.fabric.build();
    let seeds = s.seed_list();

    // tracing is write-only: outcomes match the untraced sweep exactly,
    // so the golden fingerprints pinned above cover the traced path too
    let untraced = sim::run_sweep(&fabric, &s.config, &seeds, 1);
    let (traced, trace) = sim::run_sweep_traced(&fabric, &s.config, &seeds, 1);
    assert_eq!(untraced, traced);
    assert_eq!(traced[0].fingerprint, 0x42539ac153522201);
    assert_eq!(traced[1].fingerprint, 0x273cb6c362afa936);

    // byte-identical across a rerun and across worker counts
    let (_, rerun) = sim::run_sweep_traced(&fabric, &s.config, &seeds, 1);
    let (_, parallel) = sim::run_sweep_traced(&fabric, &s.config, &seeds, 4);
    assert!(matches!(
        first_divergence(&trace, &rerun),
        TraceDiff::Identical { .. }
    ));
    assert_eq!(trace, parallel, "trace must not depend on thread count");

    // structure: one seed header per seed, every line is one JSON object
    assert_eq!(trace.matches("{\"ev\":\"seed\",\"seed\":").count(), 2);
    for line in trace.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }

    // a perturbed seed diverges at the first event (the seed header)
    let (_, other) = sim::run_sweep_traced(&fabric, &s.config, &[7, 8], 1);
    match first_divergence(&trace, &other) {
        TraceDiff::Divergence { index, .. } => assert_eq!(index, 0),
        TraceDiff::Identical { .. } => panic!("different seeds must diverge"),
    }
}
