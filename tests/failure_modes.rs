//! Failure-mode integration tests: the nonblocking game invariant,
//! asymmetric failure models (open-only / closed-only), and graceful
//! behaviour at extreme failure rates.

use fault_tolerant_switching::core::certify::certify_with_budget;
use fault_tolerant_switching::core::network::FtNetwork;
use fault_tolerant_switching::core::params::Params;
use fault_tolerant_switching::core::repair::Survivor;
use fault_tolerant_switching::core::routing;
use fault_tolerant_switching::failure::contraction::find_shorted_pair;
use fault_tolerant_switching::failure::{FailureInstance, FailureModel};
use fault_tolerant_switching::graph::gen::rng;
use fault_tolerant_switching::graph::Digraph;
use fault_tolerant_switching::networks::{CircuitRouter, SessionId};
use rand::Rng;

/// Plays a random connect/disconnect game; after EVERY step asserts
/// the strict-nonblocking invariant: every idle (input, output) pair
/// admits an idle path (tested by an uncommitted probe connect).
fn nonblocking_game(ftn: &FtNetwork, mut router: CircuitRouter<'_>, steps: usize, seed: u64) {
    let n = ftn.n();
    let mut r = rng(seed);
    let mut live: Vec<SessionId> = Vec::new();
    for step in 0..steps {
        if live.is_empty() || r.random_bool(0.6) {
            let idle_in: Vec<usize> = (0..n).filter(|&j| router.is_idle(ftn.input(j))).collect();
            let idle_out: Vec<usize> = (0..n).filter(|&j| router.is_idle(ftn.output(j))).collect();
            if !idle_in.is_empty() && !idle_out.is_empty() {
                let i = idle_in[r.random_range(0..idle_in.len())];
                let o = idle_out[r.random_range(0..idle_out.len())];
                let id = router
                    .connect(ftn.input(i), ftn.output(o))
                    .unwrap_or_else(|e| panic!("blocked at step {step}: {e}"));
                live.push(id);
            }
        } else {
            let k = r.random_range(0..live.len());
            router.disconnect(live.swap_remove(k));
        }
        // the invariant: every idle pair connectable right now
        for i in 0..n {
            if !router.is_idle(ftn.input(i)) {
                continue;
            }
            for o in 0..n {
                if !router.is_idle(ftn.output(o)) {
                    continue;
                }
                let id = router
                    .connect(ftn.input(i), ftn.output(o))
                    .unwrap_or_else(|e| {
                        panic!("idle pair ({i},{o}) not connectable at step {step}: {e}")
                    });
                router.disconnect(id); // probe only
            }
        }
    }
}

#[test]
fn nonblocking_game_fault_free() {
    let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
    let router = CircuitRouter::new(ftn.net());
    nonblocking_game(&ftn, router, 120, 0xAA);
}

#[test]
fn nonblocking_game_on_certified_survivor() {
    let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
    let model = FailureModel::symmetric(1e-3);
    let mut r = rng(0xBB);
    let mut played = 0;
    for _ in 0..12 {
        let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
        if !certify_with_budget(&ftn, &inst, 0.1).implies_nonblocking() {
            continue;
        }
        let survivor = Survivor::new(&ftn, &inst);
        let router = routing::survivor_router(&survivor);
        nonblocking_game(&ftn, router, 60, 0xCC);
        played += 1;
    }
    assert!(played >= 8, "too few certified instances: {played}/12");
}

#[test]
fn open_only_failures_never_short() {
    let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
    let model = FailureModel::new(0.3, 0.0); // open failures only
    let mut r = rng(0xDD);
    let mut terminals = ftn.net().inputs().to_vec();
    terminals.extend_from_slice(ftn.net().outputs());
    for _ in 0..50 {
        let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
        assert!(find_shorted_pair(ftn.net(), &inst, &terminals).is_none());
        let cert = certify_with_budget(&ftn, &inst, 1.0);
        assert!(cert.terminals_distinct);
    }
}

#[test]
fn closed_only_failures_short_at_high_rate_and_are_detected() {
    let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
    let model = FailureModel::new(0.0, 0.45);
    let mut r = rng(0xEE);
    let mut terminals = ftn.net().inputs().to_vec();
    terminals.extend_from_slice(ftn.net().outputs());
    let mut shorted = 0;
    for _ in 0..30 {
        let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
        let pair = find_shorted_pair(ftn.net(), &inst, &terminals);
        let cert = certify_with_budget(&ftn, &inst, 1.0);
        assert_eq!(pair.is_none(), cert.terminals_distinct);
        if pair.is_some() {
            shorted += 1;
        }
    }
    assert!(shorted >= 25, "only {shorted}/30 shorted at eps2 = 0.45");
}

#[test]
fn open_failures_dominate_routing_loss_closed_dominate_shorts() {
    // same total failure mass, split differently: open-only vs
    // closed-only; both kill routing similarly (repair discards both)
    // but only closed-only produces shorts
    let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
    let mut r = rng(0xFF);
    let mut terminals = ftn.net().inputs().to_vec();
    terminals.extend_from_slice(ftn.net().outputs());
    let mut shorts = [0usize; 2];
    for (k, model) in [FailureModel::new(0.2, 0.0), FailureModel::new(0.0, 0.2)]
        .into_iter()
        .enumerate()
    {
        for _ in 0..30 {
            let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
            if find_shorted_pair(ftn.net(), &inst, &terminals).is_some() {
                shorts[k] += 1;
            }
        }
    }
    assert_eq!(shorts[0], 0, "open failures shorted terminals");
    assert!(shorts[1] > 0, "closed failures never shorted at 0.2");
}

#[test]
fn extreme_rates_degrade_gracefully() {
    // ε near the model boundary: nothing panics, certificates fail,
    // stats stay consistent
    let ftn = FtNetwork::build(Params::reduced(1, 8, 4, 1.0));
    let model = FailureModel::symmetric(0.49);
    let mut r = rng(0x99);
    let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
    let cert = certify_with_budget(&ftn, &inst, 0.5);
    assert!(!cert.implies_nonblocking());
    let survivor = Survivor::new(&ftn, &inst);
    assert!(survivor.invariant_holds(&inst));
    let mut router = routing::survivor_router(&survivor);
    let (stats, _) = routing::route_permutation(&mut router, &ftn, &[0, 1, 2, 3]);
    assert_eq!(stats.attempts, 4);
    assert_eq!(stats.connected + stats.blocked + stats.unavailable, 4);
}

#[test]
fn zero_rate_is_identity() {
    let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
    let model = FailureModel::perfect();
    let mut r = rng(0x11);
    let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
    let (open, closed, normal) = inst.counts();
    assert_eq!((open, closed), (0, 0));
    assert_eq!(normal, ftn.net().num_edges());
    let cert = certify_with_budget(&ftn, &inst, 0.0);
    assert!(cert.implies_nonblocking());
    assert_eq!(cert.discard_fraction, 0.0);
}
