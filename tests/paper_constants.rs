//! Paper-constant pinning: every number the paper states that our
//! construction can check mechanically, checked mechanically.

use fault_tolerant_switching::core::network::FtNetwork;
use fault_tolerant_switching::core::params::{gamma_for, Params};
use fault_tolerant_switching::core::theory;
use fault_tolerant_switching::expander::paper::{expansion_factor, ExpanderSpec};
use fault_tolerant_switching::failure::onenet::construct_onenet;

#[test]
fn gamma_sandwich_34_136() {
    // §6: 136ν ≥ 4^γ ≥ 34ν for γ = ⌈log₄ 34ν⌉
    for nu in 1..=10u32 {
        let g = gamma_for(34.0, nu);
        let fg = (1usize << (2 * g)) as f64;
        assert!(fg >= 34.0 * nu as f64);
        assert!(fg <= 136.0 * nu as f64);
    }
}

#[test]
fn stage_count_and_depth() {
    // §6: 𝒩 has 2(ν+γ)+1 − 2γ + 2(ν−1) + 2 = 4ν+1 stages; depth 4ν
    for nu in 1..=3u32 {
        let p = Params::reduced(nu, 8, 8, 1.0);
        assert_eq!(p.num_stages(), 4 * nu as usize + 1);
        if nu <= 2 {
            let ftn = FtNetwork::build(p);
            assert_eq!(ftn.net().depth(), 4 * nu);
        }
    }
}

#[test]
fn middle_census_1280() {
    // §6: "there are 1280ν4^{ν+γ} edges in 𝓜" at F = 64, d = 10
    for nu in 1..=4u32 {
        let p = Params::paper_exact(nu);
        assert_eq!(
            p.middle_edges(),
            1280 * nu as usize * p.n() * p.four_gamma()
        );
    }
}

#[test]
fn terminal_census_128() {
    // §6: "128·4^{ν+γ} edges adjacent to inputs and outputs"
    for nu in 1..=4u32 {
        let p = Params::paper_exact(nu);
        assert_eq!(p.terminal_edges(), 128 * p.n() * p.four_gamma());
    }
}

#[test]
fn built_network_matches_census_nu1() {
    let p = Params::paper_exact(1);
    let ftn = FtNetwork::build(p);
    // at ν = 1 there are no grid gaps, so our census equals the
    // paper's 1408ν4^{ν+γ} exactly
    assert_eq!(ftn.net().size(), 1408 * p.n() * p.four_gamma());
    assert_eq!(ftn.net().size(), p.paper_census());
}

#[test]
fn grid_diagonal_census_delta_nu2() {
    // for ν ≥ 2 our grids carry (2l−1) switches per gap where the
    // paper counts l: measured − paper = 2n(l−1)(ν−1)
    let p = Params::paper_exact(2);
    let delta = p.predicted_size() as i64 - p.paper_census() as i64;
    let expected = 2 * p.n() as i64 * (p.grid_rows() as i64 - 1) * (p.nu as i64 - 1);
    assert_eq!(delta, expected);
}

#[test]
fn expansion_constant_33_07() {
    // §6: 32(1 + (2−√3)/8) ≈ 33.07
    let c = 32.0 * expansion_factor();
    assert!((c - 33.07).abs() < 0.01, "constant {c}");
    let spec = ExpanderSpec::at_scale(1);
    assert_eq!((spec.c, spec.t), (32, 64));
}

#[test]
fn theorem2_failure_bound_vanishes_at_paper_eps() {
    // Theorem 2: arbitrarily small δ at ε = 10⁻⁶ for n large
    let b2 = theory::theorem2_failure_bound(&Params::paper_exact(2), 1e-6);
    assert!(b2 < 1e-2, "bound {b2}");
    // and the lemma components are individually small
    assert!(theory::lemma3_grid_failure_bound(&Params::paper_exact(2), 1e-6) < 1e-100);
    assert!(theory::lemma7_shorting_bound(&Params::paper_exact(2), 1e-6) < 1e-3);
}

#[test]
fn lemma4_paper_envelope() {
    // Lemma 4 at ε = 10⁻⁶: P ≤ e^{−0.06·4^μ} (2560εe < 0.01)
    for mu in 0..6u32 {
        let tail = theory::lemma4_paper_tail(mu, 1e-6);
        let envelope = (-0.06 * 4f64.powi(mu as i32)).exp();
        assert!(
            tail <= envelope * 1.01,
            "mu={mu}: tail {tail} > envelope {envelope}"
        );
    }
}

#[test]
fn theorem1_constants() {
    assert!((theory::theorem1_size_lower_bound(4096) - 4096.0 * 144.0 / 2688.0).abs() < 1e-9);
    assert_eq!(theory::theorem1_depth_lower_bound(1 << 16), 1.0);
}

#[test]
fn proposition1_constants_bounded_over_sweep() {
    // Proposition 1: size/(log₂ 1/ε′)² and depth/(log₂ 1/ε′) stay
    // bounded as ε′ sweeps five orders of magnitude
    let mut max_c = 0.0f64;
    let mut max_d = 0.0f64;
    for &ep in &[1e-2, 1e-3, 1e-4, 1e-5, 1e-6] {
        let net = construct_onenet(0.1, ep);
        assert!(net.certified.p_open < ep);
        assert!(net.certified.p_short < ep);
        let (c, d) = theory::prop1_constants(net.size(), net.depth(), ep);
        max_c = max_c.max(c);
        max_d = max_d.max(d);
    }
    assert!(max_c < 30.0, "size constant blew up: {max_c}");
    assert!(max_d < 5.0, "depth constant blew up: {max_d}");
}

#[test]
fn depth_bound_5log4n() {
    for nu in 1..=8u32 {
        let p = Params::paper_exact(nu);
        assert!((p.depth() as f64) < theory::theorem2_depth_bound(p.n()));
    }
}
