//! Offline vendored shim for the subset of `criterion` this workspace
//! uses. The build container has no crates.io access, so this path crate
//! stands in for the registry crate.
//!
//! It is a real (if simple) harness: `Bencher::iter` warms up, runs an
//! adaptive number of iterations against a wall-clock target, and prints
//! `name ... time: <mean> ns/iter (n iters)`. There is no statistical
//! analysis, outlier rejection, or HTML report — upgrade the workspace
//! dependency to registry criterion when network access exists.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results accumulated across all groups of one bench executable, so
/// [`criterion_main!`] can dump a machine-readable baseline at exit.
static RESULTS: Mutex<Vec<(String, u128, u64)>> = Mutex::new(Vec::new());

/// Write `BENCH_<name>.json` into `$BENCH_JSON` (a directory) if that
/// env var is set; called by the `criterion_main!` expansion.
#[doc(hidden)]
pub fn write_json_baseline(bench_name: &str) {
    let Ok(dir) = std::env::var("BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let mut body = String::from("[\n");
    for (i, (id, ns, iters)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        body.push_str(&format!(
            "  {{\"bench\": \"{id}\", \"ns_per_iter\": {ns}, \"iters\": {iters}}}{sep}\n"
        ));
    }
    body.push_str("]\n");
    let path = std::path::Path::new(&dir).join(format!("BENCH_{bench_name}.json"));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: failed to write {}: {e}", path.display());
    } else {
        println!("baseline written: {}", path.display());
    }
}

/// Minimum measured wall-clock time per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Maximum iterations between clock reads, so timer overhead (~25 ns
/// per `Instant::elapsed`) is amortized and doesn't bias fast routines.
/// The batch starts at 1 and doubles while the routine proves fast, so
/// slow benches (tens of ms per iteration — the heavy-traffic
/// simulation runs) stop near `TARGET` instead of being forced through
/// a full fixed-size batch.
const BATCH: u64 = 64;
/// Hard cap on measured iterations per benchmark (backstop only; the
/// wall-clock target is the real bound).
const MAX_ITERS: u64 = 100_000_000;

/// Mirror of `criterion::Criterion` (the measurement facade).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into_benchmark_id()));
        self
    }

    pub fn bench_with_input<I, F, T>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.into_benchmark_id()));
        self
    }

    pub fn finish(self) {}
}

/// Mirror of `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Benchmark identifiers: a `BenchmarkId` or a plain string.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Mirror of `criterion::Bencher`: times a closure.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up (also primes caches the routine touches).
        std::hint::black_box(routine());
        let mut iters = 0u64;
        let mut batch = 1u64;
        let start = Instant::now();
        let mut elapsed = Duration::ZERO;
        while elapsed < TARGET && iters < MAX_ITERS {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            iters += batch;
            elapsed = start.elapsed();
            // Grow the batch only while the clock reads stay a small
            // fraction of the budget: fast routines reach BATCH within
            // a few microseconds, slow ones keep batch = 1.
            if batch < BATCH && elapsed < TARGET / 8 {
                batch = (batch * 2).min(BATCH);
            }
        }
        self.iters = iters.max(1);
        self.elapsed = elapsed;
    }

    fn report(&self, id: &str) {
        let ns = self.elapsed.as_nanos() / u128::from(self.iters.max(1));
        println!("{id:<48} time: {ns:>12} ns/iter ({} iters)", self.iters);
        RESULTS
            .lock()
            .unwrap()
            .push((id.to_string(), ns, self.iters));
    }
}

/// Mirror of `criterion::criterion_group!` (plain-list form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            // Bench executables are named `<bench>-<hash>`; strip the hash.
            let exe = std::env::args().next().unwrap_or_default();
            let stem = std::path::Path::new(&exe)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("bench")
                .rsplit_once('-')
                .map(|(name, _)| name.to_string())
                .unwrap_or_else(|| "bench".to_string());
            $crate::write_json_baseline(&stem);
        }
    };
}
