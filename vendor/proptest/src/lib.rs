//! Offline vendored shim for the subset of `proptest` this workspace
//! uses. The build container has no crates.io access, so this path crate
//! stands in for the registry crate.
//!
//! Differences from upstream, by design:
//! * generation is deterministic (seeded per test name) — every run
//!   explores the same cases, which suits a reproduction repo;
//! * no shrinking — a failing case panics with the bound values visible
//!   in the assertion message instead of a minimised counterexample;
//! * `prop_assert*` panic immediately rather than returning `Err`.
//!
//! The supported surface: `proptest! { #![proptest_config(..)] #[test]
//! fn name(x in strategy, ..) { .. } }`, range/tuple/`Just` strategies,
//! `prop_map`/`prop_flat_map`, `collection::vec`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare a block of property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(
                    let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                #[allow(clippy::redundant_closure_call)]
                (move || $body)();
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Assert a boolean property; panics with the condition on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Assert inequality of two expressions.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}
