//! Value-generation strategies: ranges, tuples, `Just`, and the
//! `prop_map`/`prop_flat_map` combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this shim generates values directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
