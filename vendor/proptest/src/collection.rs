//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Length specification for [`vec()`]: a fixed size or a size range.
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
