//! Test-runner configuration and the deterministic generation RNG.

use rand::{RngCore, SeedableRng, SmallRng};

/// Mirror of `proptest::test_runner::Config` for the fields this
/// workspace touches.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Generation RNG: a seeded [`SmallRng`], keyed on the test name so
/// distinct properties explore distinct (but reproducible) case streams.
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name; any stable 64-bit hash would do.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}
