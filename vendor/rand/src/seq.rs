//! Sequence utilities: the `SliceRandom` shuffle used by permutation
//! generators and workload samplers.

use crate::{Rng, RngCore};

pub trait SliceRandom {
    /// Uniform Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    type Item;

    /// Partially shuffle so the first `amount` elements are a uniform
    /// sample without replacement; returns `(sampled, rest)`.
    ///
    /// Note: upstream `rand` places the sample at the *end* of the slice;
    /// this workspace's callers read the sample from the front
    /// (`pool[..amount]`), so the shim puts it there.
    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let amount = amount.min(self.len());
        for i in 0..amount {
            let j = rng.random_range(i..self.len());
            self.swap(i, j);
        }
        self.split_at_mut(amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, SmallRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
