//! Offline vendored shim for the subset of `rand` 0.9 used by this
//! workspace. The build container has no crates.io access, so the
//! workspace pins these path shims instead of registry crates.
//!
//! The generator is a faithful xoshiro256++ (the algorithm behind
//! `rand 0.9`'s `SmallRng` on 64-bit targets), seeded via SplitMix64.
//! **The streams are NOT bit-identical to upstream `rand`**: upstream's
//! `seed_from_u64` uses a different state-expansion (PCG-based in
//! `rand_core 0.9`), and the derived conveniences (`random_range`,
//! `random_bool`, `shuffle`) use simpler constructions than upstream's.
//! What the shim guarantees — and `tests/determinism.rs` pins — is that
//! streams are deterministic per seed and stable across runs, machines,
//! and rebuilds, which is the contract the workspace's Monte Carlo layer
//! relies on. Swapping in registry `rand` would change every stream and
//! invalidate recorded experiment seeds and golden fingerprints.

pub mod rngs;
pub mod seq;

/// Core random-number generation, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Mirror of `rand_core::SeedableRng`. Only the `seed_from_u64` path is
/// used by the workspace; its expansion scheme is SplitMix64-based and
/// deliberately simple — it does NOT match upstream `rand_core`'s
/// (PCG-based) expansion, so streams differ from registry `rand`.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 rounds (one per
    /// 4-byte chunk, truncated to 32 bits).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm64 = state;
        for chunk in seed.as_mut().chunks_mut(4) {
            sm64 = sm64.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm64;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            chunk.copy_from_slice(&(z as u32).to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that `Rng::random` can produce (mirror of `StandardUniform`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128)
                    & (u64::MAX as u128);
                // Multiply-shift: bias < 2^-64, negligible for Monte Carlo.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128) - (start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Mirror of `rand::Rng`, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub use rngs::SmallRng;
