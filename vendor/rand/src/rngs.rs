//! Non-cryptographic generators. `SmallRng` is xoshiro256++, the same
//! algorithm upstream `rand 0.9` selects on 64-bit targets.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ by Blackman & Vigna — fast, 256-bit state, passes BigCrush.
/// Not cryptographically secure (by design, same caveat as upstream).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        // Upstream derives u32 draws from the high bits of a u64 draw.
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        // An all-zero state would be a fixed point; upstream escapes it too.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn seeded_stream_is_stable() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.random_range(0..=5u32);
            assert!(y <= 5);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
