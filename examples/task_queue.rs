//! Task queue on a faulty superconcentrator.
//!
//! §2 notes that "superconcentrators provide support for the task
//! queue scheme [Co] in parallel computing": any r idle workers must
//! be connectable to any r pending task slots by vertex-disjoint
//! circuits — exactly the n-superconcentrator property, which 𝒩
//! retains under switch failures (an (ε, δ)-nonblocking network is an
//! (ε, δ)-superconcentrator).
//!
//! This example verifies the superconcentrator property of the
//! repaired survivor by max-flow (Menger), for every r and for random
//! subsets, then runs a task-queue simulation: tasks arrive, idle
//! workers claim them through the fabric, circuits tear down on
//! completion.
//!
//! Run with: `cargo run --release --example task_queue`

use fault_tolerant_switching::core::network::FtNetwork;
use fault_tolerant_switching::core::params::Params;
use fault_tolerant_switching::core::repair::Survivor;
use fault_tolerant_switching::core::routing;
use fault_tolerant_switching::failure::{FailureInstance, FailureModel};
use fault_tolerant_switching::graph::gen::rng;
use fault_tolerant_switching::graph::menger::max_disjoint_paths;
use fault_tolerant_switching::graph::VertexId;
use rand::seq::SliceRandom;
use rand::Rng;

/// The survivor as a standalone graph (dead links dropped) for the
/// max-flow verification.
fn survivor_graph(ftn: &FtNetwork, alive: &[bool]) -> fault_tolerant_switching::graph::DiGraph {
    let g = ftn.net().graph();
    let mut out =
        fault_tolerant_switching::graph::DiGraph::with_capacity(g.num_vertices(), g.num_edges());
    out.add_vertices(g.num_vertices());
    for (_, t, h) in g.edges() {
        if alive[t.index()] && alive[h.index()] {
            out.add_edge(t, h);
        }
    }
    out
}

fn main() {
    let ftn = FtNetwork::build(Params::reduced(2, 16, 10, 4.0));
    let n = ftn.n();
    let eps = 1e-3;
    let model = FailureModel::symmetric(eps);
    let mut r = rng(2024);
    let inst = FailureInstance::sample(&model, &mut r, ftn.net().size());
    let survivor = Survivor::new(&ftn, &inst);
    let alive = survivor.routable_alive();
    println!(
        "fabric: {} workers x {} task slots, {} switches, eps = {eps}, {} links discarded",
        n,
        n,
        ftn.net().size(),
        survivor.discarded
    );

    // 1. Superconcentrator verification on the survivor: every set of
    //    r workers can reach every set of r slots disjointly. Exact
    //    max-flow for the full terminal sets, sampled subsets for each r.
    let sg = survivor_graph(&ftn, &alive);
    let inputs: Vec<VertexId> = ftn.net().inputs().to_vec();
    let outputs: Vec<VertexId> = ftn.net().outputs().to_vec();
    let full = max_disjoint_paths(&sg, &inputs, &outputs);
    println!("\nmax vertex-disjoint worker->slot paths on survivor: {full}/{n}");
    let mut all_ok = true;
    for r_size in 1..=n {
        for _ in 0..10 {
            let mut ins = inputs.clone();
            let mut outs = outputs.clone();
            ins.shuffle(&mut r);
            outs.shuffle(&mut r);
            let flow = max_disjoint_paths(&sg, &ins[..r_size], &outs[..r_size]);
            if flow as usize != r_size {
                all_ok = false;
                println!("  r = {r_size}: only {flow} disjoint paths!");
            }
        }
    }
    println!(
        "superconcentrator property over sampled subsets (10 per r): {}",
        if all_ok { "HOLDS" } else { "VIOLATED" }
    );

    // 2. Task-queue simulation: Poisson-ish arrivals, workers claim
    //    tasks through the fabric, circuits complete after a few steps.
    let mut router = routing::survivor_router(&survivor);
    let mut queue: Vec<usize> = Vec::new(); // pending task slots
    let mut running: Vec<(fault_tolerant_switching::networks::SessionId, usize)> = Vec::new();
    let mut next_slot = 0usize;
    let mut claimed = 0usize;
    let mut stalled = 0usize;
    for _step in 0..2000 {
        // arrivals
        if r.random_bool(0.5) {
            queue.push(next_slot % n);
            next_slot += 1;
        }
        // completions
        if !running.is_empty() && r.random_bool(0.4) {
            let k = r.random_range(0..running.len());
            let (id, _) = running.swap_remove(k);
            router.disconnect(id);
        }
        // idle workers claim pending tasks
        while let Some(&slot) = queue.first() {
            let out = ftn.output(slot);
            if !router.is_idle(out) {
                break; // slot busy — task waits
            }
            let worker = (0..n).find(|&w| router.is_idle(ftn.input(w)));
            let Some(w) = worker else { break };
            match router.connect(ftn.input(w), out) {
                Ok(id) => {
                    queue.remove(0);
                    running.push((id, slot));
                    claimed += 1;
                }
                Err(_) => {
                    stalled += 1;
                    break;
                }
            }
        }
    }
    println!(
        "\ntask-queue simulation: {claimed} tasks claimed, {stalled} fabric stalls, {} still running, {} queued",
        running.len(),
        queue.len()
    );
    println!(
        "\na fabric stall (idle worker + pending slot but no idle path)\n\
         would contradict the nonblocking containment of Theorem 2;\n\
         the superconcentrator check above is the [AHU]/[Co] property\n\
         the paper's Section 2 defines, verified by Menger max-flow."
    );
}
