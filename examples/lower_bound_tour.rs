//! A tour of the §5 lower-bound machinery: why Θ(n log n) networks
//! cannot be fault-tolerant.
//!
//! Theorem 1's proof is constructive, and this library implements each
//! step as a runnable algorithm. The tour executes them on a Beneš
//! network (the optimal fault-free rearrangeable network) and on 𝒩,
//! showing the structural dichotomy the theorem formalizes:
//!
//! 1. Lemma 1 — extract edge-disjoint short leaf paths from a tree;
//! 2. Lemma 2 — build the proximity forest over a network's inputs and
//!    pull out short input-to-input paths (shorting targets);
//! 3. Theorem 1 — audit good inputs and their distance zones `B_h(v)`.
//!
//! Run with: `cargo run --release --example lower_bound_tour`

use fault_tolerant_switching::core::lowerbound::{
    lemma1_short_paths, short_terminal_paths, zone_audit_with,
};
use fault_tolerant_switching::core::network::FtNetwork;
use fault_tolerant_switching::core::params::Params;
use fault_tolerant_switching::core::theory;
use fault_tolerant_switching::failure::contraction::terminals_shorted;
use fault_tolerant_switching::failure::{FailureInstance, FailureModel};
use fault_tolerant_switching::graph::gen::{random_lemma1_tree, rng};
use fault_tolerant_switching::networks::Benes;

fn main() {
    // ── Step 1: Lemma 1 on a random tree ─────────────────────────────
    println!("Step 1 — Lemma 1: short edge-disjoint leaf paths\n");
    let mut r = rng(0x70);
    let tree = random_lemma1_tree(&mut r, 200);
    let l1 = lemma1_short_paths(&tree);
    println!(
        "  random tree: {} leaves, {} good, {} paths (ratio {:.3}; paper guarantees {:.4})",
        l1.num_leaves,
        l1.good_leaves,
        l1.paths.len(),
        l1.ratio(),
        1.0 / 42.0
    );
    assert!(l1.meets_l_over_42());

    // ── Step 2: Lemma 2 on a Beneš ───────────────────────────────────
    println!("\nStep 2 — Lemma 2: the Benes' inputs are dangerously close\n");
    let benes = Benes::new(5); // 32 terminals
    let n = benes.terminals();
    let l2 = short_terminal_paths(&benes.net, benes.net.inputs(), 4);
    println!(
        "  benes({n}): {} edge-disjoint input-to-input paths, longest {} switches",
        l2.paths.len(),
        l2.max_len
    );
    println!("  if any path closes entirely, two inputs short; at eps2 = 1/4:");
    let bound = theory::lemma2_no_short_probability(l2.paths.len(), l2.max_len.max(1), 0.25);
    println!("    P[no short via these paths] <= {bound:.4}");
    // measure it
    let model = FailureModel::new(0.0, 0.25);
    let m = benes.net.graph().num_edges();
    let mut shorted = 0;
    for _ in 0..400 {
        let inst = FailureInstance::sample(&model, &mut r, m);
        if terminals_shorted(&benes.net, &inst, benes.net.inputs()) {
            shorted += 1;
        }
    }
    println!(
        "    measured P[short] = {:.3} over 400 trials (Lemma 2 needs >= 1/2)",
        shorted as f64 / 400.0
    );

    // ── Step 3: Theorem 1 zone audit ─────────────────────────────────
    println!("\nStep 3 — Theorem 1: the zone audit\n");
    let ftn = FtNetwork::build(Params::reduced(2, 8, 8, 1.0));
    for (name, net) in [("benes(32)", &benes.net), ("N (nu=2 reduced)", ftn.net())] {
        let audit = zone_audit_with(net, net.inputs(), 4, 2);
        println!(
            "  {name}: {} switches, {} of {} inputs good, min zone {:?}, disjoint balls {} switches",
            net.size(),
            audit.good_terminals,
            audit.n,
            audit.min_zone_edges,
            audit.ball_edges_total
        );
    }
    println!(
        "\n  the Benes has NO good inputs -- no input is more than 2 switches\n\
         from another -- so Theorem 1's zone argument shows it cannot be a\n\
         (1/4, 1/2)-superconcentrator. N pays Theta(log n) switches per zone\n\
         around every input (its grids) and Theta(log n) zones deep: the\n\
         n log^2 n switches Theorem 1 proves are NECESSARY, and Theorem 2's\n\
         construction shows are SUFFICIENT."
    );
    println!(
        "\n  theorem 1 lower bounds at n = 1024: size >= {:.0}, depth >= {:.1}",
        theory::theorem1_size_lower_bound(1024),
        theory::theorem1_depth_lower_bound(1024)
    );
}
