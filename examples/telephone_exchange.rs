//! Telephone exchange: the paper's motivating application (§2 cites
//! Clos 1953, "to epitomize the activity of telephone communication").
//!
//! A day of call traffic hits two switch fabrics built from the same
//! unreliable switches (metallic contacts fail open or closed at rate
//! ε): a classical strictly nonblocking Clos and the fault-tolerant
//! network 𝒩. We count dropped calls. The Clos is cheaper, but every
//! switch failure eats into its nonblocking guarantee; 𝒩 spends a
//! log-factor more switches and keeps dropping nothing until ε is
//! orders of magnitude higher.
//!
//! Run with: `cargo run --release --example telephone_exchange`

use fault_tolerant_switching::core::network::FtNetwork;
use fault_tolerant_switching::core::params::Params;
use fault_tolerant_switching::core::repair::Survivor;
use fault_tolerant_switching::core::routing;
use fault_tolerant_switching::failure::{FailureInstance, FailureModel};
use fault_tolerant_switching::graph::gen::rng;
use fault_tolerant_switching::networks::{CircuitRouter, Clos, RouteError};
use rand::Rng;

/// A day of churn on any staged network: returns (calls, drops).
fn run_day(
    net: &fault_tolerant_switching::graph::StagedNetwork,
    alive: Vec<bool>,
    steps: usize,
    seed: u64,
) -> (usize, usize) {
    let n = net.inputs().len();
    let mut router = CircuitRouter::with_alive_mask(net, alive);
    let mut r = rng(seed);
    let mut live = Vec::new();
    let mut calls = 0;
    let mut drops = 0;
    for _ in 0..steps {
        if live.is_empty() || r.random_bool(0.6) {
            let ins: Vec<usize> = (0..n)
                .filter(|&i| router.is_idle(net.inputs()[i]))
                .collect();
            let outs: Vec<usize> = (0..n)
                .filter(|&o| router.is_idle(net.outputs()[o]))
                .collect();
            if ins.is_empty() || outs.is_empty() {
                continue;
            }
            let i = ins[r.random_range(0..ins.len())];
            let o = outs[r.random_range(0..outs.len())];
            calls += 1;
            match router.connect(net.inputs()[i], net.outputs()[o]) {
                Ok(id) => live.push(id),
                Err(RouteError::Blocked(_, _)) => drops += 1,
                Err(_) => drops += 1,
            }
        } else {
            let k = r.random_range(0..live.len());
            router.disconnect(live.swap_remove(k));
        }
    }
    (calls, drops)
}

fn main() {
    let params = Params::reduced(2, 16, 10, 4.0); // n = 16
    let ftn = FtNetwork::build(params);
    let n = ftn.n();
    let clos = Clos::strictly_nonblocking(4, 4); // 16 terminals
    println!(
        "exchange fabrics for {n} subscribers: N = {} switches, Clos = {} switches\n",
        ftn.net().size(),
        clos.net.size()
    );
    println!(
        "{:>10}  {:>18}  {:>18}",
        "eps", "N dropped/calls", "Clos dropped/calls"
    );

    for eps in [0.0, 1e-4, 1e-3, 5e-3, 2e-2] {
        let model = FailureModel::symmetric(eps);
        let mut r = rng(7);
        // strike both fabrics with the same failure rate
        let inst_n = FailureInstance::sample(&model, &mut r, ftn.net().size());
        let survivor = Survivor::new(&ftn, &inst_n);
        let (calls_n, drops_n) = {
            let alive = survivor.routable_alive();
            run_day(ftn.net(), alive, 3000, 1000)
        };

        let inst_c = FailureInstance::sample(&model, &mut r, clos.net.size());
        // same repair discipline for the Clos
        let alive_c = {
            let g = clos.net.graph();
            let faulty = inst_c.faulty_vertices(g);
            let mut alive: Vec<bool> = faulty.into_iter().map(|f| !f).collect();
            for &t in clos.net.inputs().iter().chain(clos.net.outputs()) {
                alive[t.index()] = true;
            }
            alive
        };
        let (calls_c, drops_c) = run_day(&clos.net, alive_c, 3000, 1000);

        println!(
            "{:>10}  {:>18}  {:>18}",
            format!("{eps:.0e}"),
            format!("{drops_n}/{calls_n}"),
            format!("{drops_c}/{calls_c}"),
        );
        // keep the borrow checker happy about `survivor`'s lifetime
        drop(survivor);
    }

    println!(
        "\nthe Clos fabric loses calls as soon as switches start failing;\n\
         N absorbs the same failure rates with zero drops until eps\n\
         reaches the percent range -- the (eps, delta)-nonblocking\n\
         guarantee of Theorem 2, bought with the Theta(n log^2 n) size\n\
         the Section 5 lower bound proves necessary."
    );

    // demonstrate the nonblocking property directly: adversarial
    // connect/disconnect cannot block a certified survivor
    let model = FailureModel::symmetric(1e-3);
    let mut r = rng(99);
    let inst = FailureInstance::sample(&model, &mut r, ftn.net().size());
    let survivor = Survivor::new(&ftn, &inst);
    let mut router = routing::survivor_router(&survivor);
    let stats = routing::churn(&mut router, &ftn, 10_000, 0.55, &mut r);
    println!(
        "\n10k-step adversarial churn at eps = 1e-3: {} calls, {} blocked",
        stats.attempts, stats.blocked
    );
}
