//! Sizing a video switch from unreliable relays (§1's motivation:
//! "open and closed failures represent the two dominant failure modes
//! … for metallic-contact switches (still frequently used, especially
//! for video switching)").
//!
//! Given the per-relay failure probability ε of the contacts on hand
//! and a target end-to-end unreliability ε′ per crosspoint, Moore &
//! Shannon's Proposition 1 says a composite "switch" of
//! `O((log 1/ε′)²)` relays suffices. This example sizes the composite
//! crosspoint for several contact qualities and target reliabilities,
//! verifies each design exactly (series-parallel calculus) and by
//! Monte Carlo, and prices the resulting n×n video matrix.
//!
//! Run with: `cargo run --release --example video_switch_reliability`

use fault_tolerant_switching::failure::onenet::construct_onenet;
use fault_tolerant_switching::failure::reliability::Connectivity;
use fault_tolerant_switching::failure::FailureModel;

fn main() {
    println!("composite crosspoint sizing (Moore-Shannon Proposition 1)\n");
    println!(
        "{:>8} {:>10} {:>8} {:>7} {:>12} {:>12} {:>14}",
        "eps", "target", "relays", "depth", "P[open]", "P[short]", "MC check"
    );

    for &eps in &[0.25, 0.1, 0.02] {
        for &target in &[1e-2, 1e-4, 1e-6] {
            if target >= eps {
                continue;
            }
            let net = construct_onenet(eps, target);
            assert!(net.certified.p_open < target && net.certified.p_short < target);
            // spot-check the certificate by simulation
            let model = FailureModel::symmetric(eps);
            let (mc_open, mc_short) =
                net.net
                    .mc_failure_probs(&model, Connectivity::Undirected, 20_000, 7);
            let mc = format!("{:.1e}/{:.1e}", mc_open.p(), mc_short.p());
            println!(
                "{:>8} {:>10.0e} {:>8} {:>7} {:>12.2e} {:>12.2e} {:>14}",
                eps,
                target,
                net.size(),
                net.depth(),
                net.certified.p_open,
                net.certified.p_short,
                mc
            );
        }
    }

    // price a 64x64 video matrix at broadcast-grade reliability
    println!("\npricing a 64x64 video matrix from 2% relays:");
    let eps = 0.02;
    for &target in &[1e-4, 1e-6] {
        let net = construct_onenet(eps, target);
        let crosspoints = 64 * 64;
        println!(
            "  target eps' = {:0e}: {} relays per crosspoint => {} relays total (vs {} bare)",
            target,
            net.size(),
            net.size() * crosspoints,
            crosspoints
        );
    }

    println!(
        "\nProposition 1's quadratic-log scaling means each 100x\n\
         reliability improvement costs only a constant factor more\n\
         relays -- the economics behind both Moore-Shannon relay\n\
         synthesis and the epsilon-invariance argument of Section 3\n\
         (substitute a 1-network for every switch and any (eps2, delta)\n\
         network becomes an (eps1, delta) one at constant blow-up)."
    );
}
