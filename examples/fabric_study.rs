//! A miniature `ftexp` study driven through the library API: sweep a
//! strict Clos and a Beneš fabric over two fault rates, then print the
//! CSV table and the cells' blocking against the static snapshot
//! cross-check. (The committed full-size studies live under
//! `studies/`; this one is sized to run in a debug-profile smoke test.)
//!
//! ```text
//! cargo run --example fabric_study
//! ```

use fault_tolerant_switching::exp::{run_grid, to_csv, GridSpec, RunOptions};

const GRID: &str = "\
arrival_rate  = 4.0
mttr          = 10
duration      = 20
seeds         = 2
buckets       = 1
static_trials = 200
sweep network    = clos-strict 2 2 | benes 2
sweep fault_rate = 0.002, 0.02
";

fn main() {
    let spec = GridSpec::parse(GRID).expect("grid parses");
    let result = run_grid(&spec, &RunOptions::default()).expect("grid runs");
    println!("{}", to_csv(&spec, &result).trim_end());
    println!();
    println!("{}", result.summary_line());
    for report in &result.cells {
        let (data, _) = report.data.as_ref().expect("no skipped cells here");
        let agg = data.aggregate();
        let static_p = data
            .static_est
            .map_or("n/a".to_string(), |e| format!("{:.4}", e.p()));
        println!(
            "cell {} [{}]: blocking {:.4} ± {:.4}, static snapshot {}",
            report.cell.index,
            report
                .cell
                .assignments
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(", "),
            agg.blocking.mean,
            agg.blocking.ci95,
            static_p,
        );
    }
}
