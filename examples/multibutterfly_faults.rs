//! Routing around faults on a multibutterfly (Leighton–Maggs [LM]).
//!
//! The paper descends from the multibutterfly tradition — "expanders
//! might be practical: fast algorithms for routing around faults on
//! multibutterflies". A butterfly has a *unique* path per
//! input/output pair: one dead link on it kills the circuit. A
//! d-multibutterfly replaces each exchange with a degree-d splitter,
//! so a circuit heading for output y has d choices at every stage and
//! simply routes around dead links.
//!
//! This example kills a growing fraction of links and compares
//! delivered circuits: butterfly (unique path) vs multibutterflies of
//! increasing splitter degree, greedy-routed.
//!
//! Run with: `cargo run --release --example multibutterfly_faults`

use fault_tolerant_switching::graph::gen::{random_permutation, rng};
use fault_tolerant_switching::networks::{Butterfly, CircuitRouter, Multibutterfly};
use rand::Rng;

fn main() {
    let k = 5; // 32 terminals
    let n = 1usize << k;
    let mut r = rng(0xFAB);
    let bf = Butterfly::new(k);
    let mbs: Vec<Multibutterfly> = [2usize, 3, 4]
        .iter()
        .map(|&d| Multibutterfly::new(k, d, &mut r))
        .collect();

    println!("routing a random permutation on {n} terminals, killing links at random\n");
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>14}",
        "dead frac", "butterfly", "multi d=2", "multi d=3", "multi d=4"
    );

    for &dead_frac in &[0.0, 0.02, 0.05, 0.1, 0.2] {
        // butterfly: greedy circuit routing too (its unique paths make
        // greedy exact) -- both columns pay for vertex-disjointness
        let mut bf_delivered = 0usize;
        let trials = 40;
        for _ in 0..trials {
            let alive: Vec<bool> = (0..bf.net.graph().num_vertices())
                .map(|i| {
                    let v = fault_tolerant_switching::graph::VertexId(i as u32);
                    let is_term = bf.net.inputs().contains(&v) || bf.net.outputs().contains(&v);
                    is_term || !r.random_bool(dead_frac)
                })
                .collect();
            let mut router = CircuitRouter::with_alive_mask(&bf.net, alive);
            let perm = random_permutation(&mut r, n);
            bf_delivered += perm
                .iter()
                .enumerate()
                .filter(|&(x, &y)| {
                    router
                        .connect(bf.net.inputs()[x], bf.net.outputs()[y as usize])
                        .is_ok()
                })
                .count();
        }

        // multibutterflies: greedy circuit routing on the survivors
        let mut mb_delivered = [0usize; 3];
        for (mi, mb) in mbs.iter().enumerate() {
            for _ in 0..trials {
                let alive: Vec<bool> = (0..mb.net.graph().num_vertices())
                    .map(|i| {
                        let v = fault_tolerant_switching::graph::VertexId(i as u32);
                        let is_term = mb.net.inputs().contains(&v) || mb.net.outputs().contains(&v);
                        is_term || !r.random_bool(dead_frac)
                    })
                    .collect();
                let mut router = CircuitRouter::with_alive_mask(&mb.net, alive);
                let perm = random_permutation(&mut r, n);
                mb_delivered[mi] += perm
                    .iter()
                    .enumerate()
                    .filter(|&(x, &y)| {
                        router
                            .connect(mb.net.inputs()[x], mb.net.outputs()[y as usize])
                            .is_ok()
                    })
                    .count();
            }
        }

        let pct = |d: usize| 100.0 * d as f64 / (trials * n) as f64;
        println!(
            "{:>12.2} {:>11.1}% {:>13.1}% {:>13.1}% {:>13.1}%",
            dead_frac,
            pct(bf_delivered),
            pct(mb_delivered[0]),
            pct(mb_delivered[1]),
            pct(mb_delivered[2]),
        );
    }

    println!(
        "\nunder greedy circuit switching the butterfly pays twice: its\n\
         unique paths contend with each other AND die with their weakest\n\
         link, while splitter degree buys the multibutterfly d choices\n\
         per stage -- delivery rises with d and degrades gracefully with\n\
         the dead fraction (Leighton-Maggs). N (this paper) pushes the\n\
         same expander idea to STRICT nonblocking guarantees with\n\
         failure-aware analysis instead of best-effort delivery: see\n\
         examples/quickstart.rs."
    );
}
