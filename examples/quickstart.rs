//! Quickstart: the full Pippenger–Lin pipeline in one file.
//!
//! Build the fault-tolerant nonblocking network 𝒩, strike it with
//! random switch failures, repair it by discarding faulty links,
//! certify the Lemma 3–7 structural events, and route calls greedily
//! on the survivor.
//!
//! Run with: `cargo run --release --example quickstart`

use fault_tolerant_switching::core::certify;
use fault_tolerant_switching::core::network::FtNetwork;
use fault_tolerant_switching::core::params::Params;
use fault_tolerant_switching::core::repair::Survivor;
use fault_tolerant_switching::core::routing;
use fault_tolerant_switching::failure::{FailureInstance, FailureModel};
use fault_tolerant_switching::graph::gen::rng;
use fault_tolerant_switching::graph::Digraph;

fn main() {
    // 1. Build 𝒩 for n = 16 terminals (a laptop-scale profile: the
    //    paper's constants are F = 64, d = 10, 4^γ ≥ 34ν — here
    //    F = 16, d = 10, 4^γ ≥ 4ν keeps the same structure at 1/400
    //    the size).
    let params = Params::reduced(2, 16, 10, 4.0);
    let ftn = FtNetwork::build(params);
    println!(
        "built N: n = {}, {} stages, {} links, {} switches",
        ftn.n(),
        ftn.num_stages(),
        ftn.net().num_vertices(),
        ftn.net().size()
    );
    println!(
        "  census: {} terminal + {} grid + {} middle switches",
        ftn.census().terminal,
        ftn.census().grid,
        ftn.census().middle
    );

    // 2. Strike it: every switch independently open-fails or
    //    closed-fails with probability ε.
    let eps = 1e-3;
    let model = FailureModel::symmetric(eps);
    let mut r = rng(42);
    let inst = FailureInstance::sample(&model, &mut r, ftn.net().size());
    let (open, closed, normal) = inst.counts();
    println!(
        "\nstruck with eps = {eps}: {normal} normal, {open} open-failed, {closed} closed-failed"
    );

    // 3. Repair: discard faulty links (the §4 observation — no clever
    //    computation, just throw away everything a failed switch
    //    touches).
    let survivor = Survivor::new(&ftn, &inst);
    println!(
        "repair discarded {} of {} internal links ({:.3}%)",
        survivor.discarded,
        ftn.net().num_vertices() - 2 * ftn.n(),
        100.0 * survivor.discard_fraction()
    );

    // 4. Certify the structural events behind Theorem 2.
    let cert = certify::certify_with_budget(&ftn, &inst, 0.10);
    println!("\ncertificate:");
    println!(
        "  terminals distinct (Lemma 7): {}",
        cert.terminals_distinct
    );
    println!(
        "  all grids majority-access (Lemma 3): {} (min fraction {:.3})",
        cert.grids_majority, cert.min_grid_access
    );
    println!(
        "  expander fault budgets (Lemmas 4-5): {} (max group fraction {:.4})",
        cert.expander_budget_ok, cert.max_group_faulty
    );
    println!(
        "  => contains a nonblocking network: {}",
        cert.implies_nonblocking()
    );

    // 5. Route: a full random permutation, greedily, one call at a time.
    let mut router = routing::survivor_router(&survivor);
    let perm = routing::random_perm(&mut r, ftn.n());
    let (stats, sessions) = routing::route_permutation(&mut router, &ftn, &perm);
    println!(
        "\nrouted random permutation: {}/{} connected, mean path {:.1} switches, max {}",
        stats.connected,
        stats.attempts,
        stats.mean_path_len(),
        stats.max_path_len
    );
    assert!(
        !cert.implies_nonblocking() || stats.all_connected(),
        "a certified survivor must route everything"
    );

    // 6. Tear the permutation down and run churn traffic.
    for id in sessions {
        router.disconnect(id);
    }
    let churn = routing::churn(&mut router, &ftn, 500, 0.6, &mut r);
    println!(
        "churn: {} attempts, {} connected, {} blocked",
        churn.attempts, churn.connected, churn.blocked
    );
}
