//! A day at the telephone exchange, replayed through the ft-sim
//! discrete-event engine.
//!
//! `examples/telephone_exchange.rs` strikes each fabric with a *static*
//! failure snapshot and then runs churn. This example tells the same
//! story on the time axis, the way the paper's (ε, δ)-nonblocking claim
//! is actually operational: switches fail *while* the exchange serves
//! calls (per-switch exponential lifetimes), live circuits crossing a
//! dying switch are cut mid-call and re-routed if the fabric still has
//! an idle path, and repair crews restore switches with MTTR 2 h.
//! Traffic is a bursty day profile: quiet hours at the base rate with
//! busy-hour bursts at 3× the load.
//!
//! The same per-switch failure rate hits both fabrics. The
//! fault-tolerant network 𝒩 pays ~60× the switches of the strict Clos
//! — so it absorbs ~60× the *absolute* fault count — and still
//! re-establishes essentially every cut call, which is exactly the
//! repair-and-keep-serving guarantee of Theorem 2.
//!
//! Run with: `cargo run --release --example exchange_day`

use fault_tolerant_switching::sim::{run_seed, Fabric, HoldingTime, SimConfig, TrafficPattern};

fn day_config(fault_rate_per_hour: f64) -> SimConfig {
    SimConfig {
        arrival_rate: 30.0, // base calls per hour, network-wide
        holding: HoldingTime::Exponential { mean: 0.1 }, // 6-minute calls
        pattern: TrafficPattern::Bursty {
            mean_on: 4.0,  // busy phases average 4 h
            mean_off: 8.0, // quiet phases average 8 h
            boost: 3.0,
        },
        fault_rate: fault_rate_per_hour,
        fault_open_share: 0.5,
        mttr: 2.0, // repair crew: 2 h mean
        duration: 24.0,
        warmup: 0.0,
        buckets: 24, // one per hour
        ..SimConfig::default()
    }
}

fn main() {
    let ftn = Fabric::ftn_reduced(2, 8, 8, 1.0); // n = 16 subscribers
    let clos = Fabric::clos_strict(4, 4); // 16 terminals
    println!(
        "exchange fabrics for {} subscribers: N = {} switches, Clos = {} switches\n",
        ftn.terminals(),
        ftn.net().size(),
        clos.net().size()
    );
    println!(
        "{:>10}  {:>26}  {:>26}",
        "eps/hour", "N cut/lost/blocked/calls", "Clos cut/lost/blocked/calls"
    );

    for eps in [0.0, 1e-5, 1e-4, 1e-3] {
        let cfg = day_config(eps);
        let row = |fabric: &Fabric| {
            let out = run_seed(fabric, &cfg, 1992);
            let m = out.metrics;
            (
                format!("{}/{}/{}/{}", m.dropped, m.abandoned, m.blocked, m.offered),
                m.faults,
            )
        };
        let (n_row, n_faults) = row(&ftn);
        let (c_row, c_faults) = row(&clos);
        println!(
            "{:>10}  {:>26}  {:>26}   ({} vs {} switch faults)",
            format!("{eps:.0e}"),
            n_row,
            c_row,
            n_faults,
            c_faults,
        );
    }

    // One closer look at the stressed day on N: the engine's full
    // metrics pipeline for the highest failure rate.
    let out = run_seed(&ftn, &day_config(1e-3), 1992);
    let m = &out.metrics;
    println!(
        "\nstressed day on N (eps = 1e-3/h): {} faults, {} repairs, \
         {} circuits cut mid-call,\n  {} re-routed (mean wait {:.2} \
         fault/repair events), {} lost for good, {} calls blocked",
        m.faults,
        m.repairs,
        m.dropped,
        m.rerouted,
        m.mean_reroute_latency_events(),
        m.abandoned,
        m.blocked,
    );
    let busiest = m
        .buckets
        .iter()
        .enumerate()
        .max_by_key(|(_, b)| b.offered)
        .map(|(h, b)| (h, b.offered))
        .unwrap_or((0, 0));
    println!(
        "  busiest hour: {:02}:00 with {} arrivals; carried load {:.2} erlangs",
        busiest.0,
        busiest.1,
        m.carried_erlangs()
    );
    println!(
        "\nthe same per-switch failure rate hits both fabrics; N absorbs\n\
         two orders of magnitude more absolute faults than the Clos and\n\
         keeps re-establishing cut calls -- the operational face of the\n\
         (eps, delta)-nonblocking guarantee the static snapshot\n\
         experiments certify."
    );
}
