#!/usr/bin/env bash
# End-to-end robustness smoke for ftserve (run in CI):
#
#   1. storm replay at 8x wall speed against a live server, with a
#      pipelined flood (forces admission shedding), a mid-run graceful
#      topology reload, and fault/repair injection from the stream —
#      the report must show nonzero shed AND nonzero recovery episodes;
#   2. graceful shutdown must exit 0 on both sides;
#   3. two --deterministic lockstep runs must produce byte-identical
#      final reports;
#   4. kill -9 mid-run, then restart on the same --snapshot file: the
#      revived server must report restored=true with counters at least
#      as large as the snapshot it inherited.
#
#   usage: scripts/server_smoke.sh [scenario]

set -euo pipefail
cd "$(dirname "$0")/.."

SCENARIO="${1:-scenarios/storm_smoke.ftsim}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

FTSERVE=target/release/ftserve
REPLAY=target/release/ftserve-replay
cargo build --release -p ft-serve --quiet

wait_for_port_file() {
    for _ in $(seq 1 100); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "server_smoke: server never wrote $1" >&2
    return 1
}

counter() { # counter FILE NAME -> value
    sed -n "s/^ *\"$2\": \([0-9][0-9]*\),*$/\1/p" "$1"
}

echo "== 1/4: storm replay at 8x with flood + mid-run reload =="
"$FTSERVE" "$SCENARIO" --port-file "$WORK/port" --queue-depth 8 \
    --snapshot "$WORK/storm.snap" --report "$WORK/storm.json" \
    >"$WORK/storm.stdout" 2>"$WORK/storm.stderr" &
SERVER_PID=$!
wait_for_port_file "$WORK/port"
"$REPLAY" "$(cat "$WORK/port")" "$SCENARIO" --speed 8 --flood 400 \
    --reload-at 60 --reload-spec "clos-strict 4 4" \
    --snapshot-at-end --shutdown 2>&1 | sed 's/^/  /'
wait "$SERVER_PID"
SERVER_PID=""
SHED="$(counter "$WORK/storm.json" shed)"
RECOVERED="$(counter "$WORK/storm.json" recovery_episodes)"
RELOADS="$(counter "$WORK/storm.json" reloads)"
echo "  shed=$SHED recovery_episodes=$RECOVERED reloads=$RELOADS"
[ "${SHED:-0}" -gt 0 ] || { echo "server_smoke: expected nonzero shed" >&2; exit 1; }
[ "${RECOVERED:-0}" -gt 0 ] || { echo "server_smoke: expected nonzero recovery episodes" >&2; exit 1; }
[ "${RELOADS:-0}" -gt 0 ] || { echo "server_smoke: expected a reload" >&2; exit 1; }

echo "== 2/4: graceful shutdown exit codes were 0 (set -e saw them) =="

echo "== 3/4: deterministic-mode byte identity =="
for run in a b; do
    "$FTSERVE" "$SCENARIO" --deterministic --port-file "$WORK/port_$run" \
        >"$WORK/det_$run.json" 2>/dev/null &
    SERVER_PID=$!
    wait_for_port_file "$WORK/port_$run"
    "$REPLAY" "$(cat "$WORK/port_$run")" "$SCENARIO" --deterministic --shutdown 2>/dev/null
    wait "$SERVER_PID"
    SERVER_PID=""
done
cmp "$WORK/det_a.json" "$WORK/det_b.json" || {
    echo "server_smoke: deterministic reports differ" >&2
    diff "$WORK/det_a.json" "$WORK/det_b.json" >&2 || true
    exit 1
}
echo "  byte-identical across two runs"

echo "== 4/4: kill -9, snapshot restart =="
"$FTSERVE" "$SCENARIO" --port-file "$WORK/port9" --snapshot "$WORK/kill.snap" \
    --snapshot-every 8 >/dev/null 2>&1 &
SERVER_PID=$!
wait_for_port_file "$WORK/port9"
# Feed it some traffic (no shutdown), then murder it mid-service.
"$REPLAY" "$(cat "$WORK/port9")" "$SCENARIO" --speed 50 2>/dev/null
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
[ -s "$WORK/kill.snap" ] || { echo "server_smoke: no snapshot survived kill -9" >&2; exit 1; }
SNAP_OFFERED="$(sed -n 's/^offered \([0-9]*\)$/\1/p' "$WORK/kill.snap")"
# Restart on the same snapshot; it must restore and keep counting.
"$FTSERVE" "$SCENARIO" --port-file "$WORK/port10" --snapshot "$WORK/kill.snap" \
    --report "$WORK/revived.json" >/dev/null 2>"$WORK/revived.stderr" &
SERVER_PID=$!
wait_for_port_file "$WORK/port10"
"$REPLAY" "$(cat "$WORK/port10")" "$SCENARIO" --speed 50 --shutdown 2>/dev/null
wait "$SERVER_PID"
SERVER_PID=""
grep -F "restored counters from snapshot" "$WORK/revived.stderr" >/dev/null || {
    echo "server_smoke: revived server did not restore the snapshot" >&2
    cat "$WORK/revived.stderr" >&2
    exit 1
}
grep -F '"restored": true' "$WORK/revived.json" >/dev/null || {
    echo "server_smoke: revived report lacks restored=true" >&2
    exit 1
}
REVIVED_OFFERED="$(counter "$WORK/revived.json" offered)"
echo "  snapshot offered=$SNAP_OFFERED, revived offered=$REVIVED_OFFERED"
[ "${REVIVED_OFFERED:-0}" -gt "${SNAP_OFFERED:-0}" ] || {
    echo "server_smoke: revived counters did not continue past the snapshot" >&2
    exit 1
}

echo "server_smoke: all checks passed"
