#!/usr/bin/env bash
# Bench regression gate: runs the Criterion suite with BENCH_JSON output
# and fails if any benchmark is more than MAX_RATIO times slower than the
# committed baseline in bench-results/.
#
#   usage: scripts/bench_check.sh [max_ratio]
#
# The committed BENCH_*.json files are flat arrays of
#   {"bench": "<id>", "ns_per_iter": <int>, "iters": <int>}
# (one file per bench executable, written by the vendored criterion
# shim). Benchmarks present only on one side are reported but do not
# fail the gate — new benches need a baseline refresh, which is exactly
# the signal we want in CI output.
#
# Regenerate baselines (same machine you compare on!) with:
#   BENCH_JSON=$PWD/bench-results cargo bench

set -euo pipefail
cd "$(dirname "$0")/.."

MAX_RATIO="${1:-1.5}"
BASELINE_DIR="bench-results"
RUN_DIR="$(mktemp -d)"
trap 'rm -rf "$RUN_DIR"' EXIT

if [ ! -d "$BASELINE_DIR" ] || ! ls "$BASELINE_DIR"/BENCH_*.json >/dev/null 2>&1; then
    echo "bench_check: no committed baselines in $BASELINE_DIR/ — nothing to gate" >&2
    exit 1
fi

echo "bench_check: running suite (baselines -> $RUN_DIR)"
BENCH_JSON="$RUN_DIR" cargo bench --quiet

# Flatten "bench<TAB>ns" pairs out of the shim's one-entry-per-line JSON.
extract() {
    sed -n 's/.*"bench": "\([^"]*\)", "ns_per_iter": \([0-9]*\).*/\1\t\2/p' "$@"
}

extract "$BASELINE_DIR"/BENCH_*.json | sort >"$RUN_DIR/baseline.tsv"
extract "$RUN_DIR"/BENCH_*.json | sort >"$RUN_DIR/current.tsv"

# Hot-path benches the suite must always carry: losing one (renamed
# bench, dropped group registration) silently removes its regression
# coverage, so their absence from the current run is a hard failure.
REQUIRED_BENCHES="
sim_churn_1k_calls
sim_churn_1k_calls_traced
sim_churn_1k_calls_faulty
sim_churn_100k_calls
sim_churn_100k_calls_faulty
reroute_storm
reroute_storm_mincost
router_connect_pair_ftn_nu2
bfs_forward_ftn_nu2_reused
dinic_repair_nu2
push_relabel_repair_nu2
mc_bridge_10k_sliced
sample_sliced_1M_edges/eps0.2
serve_connects_per_sec
"
for b in $REQUIRED_BENCHES; do
    if ! cut -f1 "$RUN_DIR/current.tsv" | grep -qx "$b"; then
        echo "bench_check: required bench '$b' missing from the run" >&2
        exit 1
    fi
done

# Surface (but do not fail on) benches missing from either side — print
# this BEFORE the gate so the diagnostic survives a failing exit below.
comm -23 <(cut -f1 "$RUN_DIR/baseline.tsv") <(cut -f1 "$RUN_DIR/current.tsv") |
    sed 's/^/  baseline-only: /'
comm -13 <(cut -f1 "$RUN_DIR/baseline.tsv") <(cut -f1 "$RUN_DIR/current.tsv") |
    sed 's/^/  new (no baseline): /'

join -t "$(printf '\t')" "$RUN_DIR/baseline.tsv" "$RUN_DIR/current.tsv" |
    awk -F '\t' -v max="$MAX_RATIO" '
    {
        ratio = ($2 > 0) ? $3 / $2 : 1
        status = (ratio > max) ? "REGRESSION" : "ok"
        printf "  %-45s %12d -> %12d ns/iter  (%.2fx) %s\n", $1, $2, $3, ratio, status
        if (ratio > max) bad++
    }
    END {
        if (bad > 0) {
            printf "bench_check: %d benchmark(s) regressed beyond %.2fx\n", bad, max
            exit 1
        }
        print "bench_check: all benchmarks within " max "x of baseline"
    }'
