//! # fault-tolerant-switching — facade crate
//!
//! Reproduction of Pippenger & Lin, *Fault-Tolerant Circuit-Switching
//! Networks* (SPAA 1992 / SIAM J. Discrete Math. 1994). This crate
//! re-exports the workspace's public API under one roof:
//!
//! * [`graph`] — directed-graph kernel (staged networks, flows, matchings).
//! * [`failure`] — the random switch failure model, Moore–Shannon
//!   reliability theory, repair and Monte Carlo estimators.
//! * [`expander`] — expanding graphs (random and explicit Margulis).
//! * [`networks`] — classical switching networks (crossbar, Clos, Beneš,
//!   butterfly, multibutterfly, directed grids) and routing.
//! * [`core`] — the paper's contribution: the fault-tolerant nonblocking
//!   network 𝒩, its repair/certification pipeline, and the §5
//!   lower-bound machinery.
//! * [`sim`] — the discrete-event traffic & fault-lifetime simulation
//!   engine behind the `ftsim` scenario CLI.
//! * [`exp`] — the declarative parameter-grid experiment runner behind
//!   the `ftexp` study CLI (sweeps, cell cache, JSON/CSV tables).
//! * [`serve`] — `ftserve`: the crash-tolerant online circuit-switching
//!   TCP service (deadlines, backpressure shedding, graceful topology
//!   reload, crash-consistent snapshots) and its replay client.
//! * [`obs`] — observability: the zero-cost [`obs::Observer`] trace
//!   hook, deterministic NDJSON traces with the `trace_diff` first
//!   divergence locator, streaming log-bucketed histograms, and the
//!   stderr profiling/accounting formatters.
//!
//! See `examples/quickstart.rs` for an end-to-end tour, and
//! `docs/ARCHITECTURE.md` for the paper-section → module map.

pub use ft_core as core;
pub use ft_exp as exp;
pub use ft_expander as expander;
pub use ft_failure as failure;
pub use ft_graph as graph;
pub use ft_networks as networks;
pub use ft_obs as obs;
pub use ft_serve as serve;
pub use ft_sim as sim;
