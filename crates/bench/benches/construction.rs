//! Construction throughput: building 𝒩 (reduced profiles), the
//! recursive network, and the classical baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_core::network::FtNetwork;
use ft_core::params::Params;
use ft_core::recursive::{RecursiveNet, RecursiveParams};
use ft_networks::{Benes, Clos};
use std::hint::black_box;

fn bench_build_ftn(c: &mut Criterion) {
    let mut g = c.benchmark_group("build_ftn");
    for nu in [1u32, 2, 3] {
        let p = Params::reduced(nu, 8, 8, 1.0);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("nu{nu}")),
            &p,
            |b, p| b.iter(|| black_box(FtNetwork::build(*p))),
        );
    }
    g.finish();
}

fn bench_build_recursive(c: &mut Criterion) {
    let mut g = c.benchmark_group("build_recursive");
    for h in [2u32, 3] {
        let p = RecursiveParams::reduced(h, 4, 8);
        g.bench_with_input(BenchmarkId::from_parameter(format!("h{h}")), &p, |b, p| {
            b.iter(|| black_box(RecursiveNet::build(*p)))
        });
    }
    g.finish();
}

fn bench_build_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("build_baselines");
    g.bench_function("benes_k6", |b| b.iter(|| black_box(Benes::new(6))));
    g.bench_function("clos_8x8", |b| {
        b.iter(|| black_box(Clos::strictly_nonblocking(8, 8)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_build_ftn,
    bench_build_recursive,
    bench_build_baselines
);
criterion_main!(benches);
