//! Expander kernels: sampling union-of-permutation graphs, probing
//! expansion, and the Margulis explicit construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_expander::paper::{sample, sample_probed, ExpanderSpec};
use ft_expander::{margulis, spectral};
use ft_graph::gen::rng;
use std::hint::black_box;

fn bench_sample(c: &mut Criterion) {
    let mut g = c.benchmark_group("sample_expander");
    for s in [1usize, 4, 16] {
        let spec = ExpanderSpec::at_scale(s);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("t{}", spec.t)),
            &spec,
            |b, spec| {
                let mut r = rng(1);
                b.iter(|| black_box(sample(*spec, &mut r)))
            },
        );
    }
    g.finish();
}

fn bench_probed(c: &mut Criterion) {
    let spec = ExpanderSpec::at_scale(2);
    c.bench_function("sample_probed_t128", |b| {
        let mut r = rng(2);
        b.iter(|| black_box(sample_probed(spec, &mut r, 10).unwrap()))
    });
}

fn bench_margulis(c: &mut Criterion) {
    c.bench_function("gabber_galil_m20", |b| {
        b.iter(|| black_box(margulis::gabber_galil(20)))
    });
}

fn bench_spectral(c: &mut Criterion) {
    let e = sample(ExpanderSpec::at_scale(4), &mut rng(3));
    c.bench_function("spectral_certificate_t256", |b| {
        let mut r = rng(4);
        b.iter(|| black_box(spectral::second_singular_value(&e.graph, 60, &mut r)))
    });
}

criterion_group!(
    benches,
    bench_sample,
    bench_probed,
    bench_margulis,
    bench_spectral
);
criterion_main!(benches);
