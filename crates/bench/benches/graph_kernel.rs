//! Graph-kernel microbenchmarks: BFS, Dinic max-flow (vertex-disjoint
//! paths), Hopcroft–Karp matching — the engines behind verification.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_core::network::FtNetwork;
use ft_core::params::Params;
use ft_graph::gen::{random_bipartite_adjacency, random_dag, rng};
use ft_graph::matching::hopcroft_karp;
use ft_graph::maxflow::{vertex_disjoint_paths_into, DisjointOptions, FlowKernel, FlowWorkspace};
use ft_graph::menger::max_disjoint_paths;
use ft_graph::traversal::{bfs_into, Direction};
use ft_graph::TraversalWorkspace;
use rand::Rng;
use std::hint::black_box;

/// The zero-allocation BFS over the cached CSR snapshot with a reused
/// workspace. (Its allocating predecessor `bfs_forward_ftn_nu2` was
/// retired in PR 5: the `Vec<Vec>` builder-graph path it measured left
/// every hot caller in PR 2 and the bench had started drifting on pure
/// codegen/layout noise.)
fn bench_bfs_reused(c: &mut Criterion) {
    let ftn = FtNetwork::build(Params::reduced(2, 8, 8, 1.0));
    let csr = ftn.csr();
    let src = ftn.input(0);
    let mut ws = TraversalWorkspace::new();
    c.bench_function("bfs_forward_ftn_nu2_reused", |b| {
        b.iter(|| {
            bfs_into(csr, &[src], Direction::Forward, |_| true, |_| true, &mut ws);
            black_box(ws.num_reached())
        })
    });
}

fn bench_disjoint_paths(c: &mut Criterion) {
    let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
    let inputs = ftn.net().inputs().to_vec();
    let outputs = ftn.net().outputs().to_vec();
    c.bench_function("menger_ftn_nu1_full", |b| {
        b.iter(|| black_box(max_disjoint_paths(ftn.net(), &inputs, &outputs)))
    });
}

fn bench_dinic_random_dag(c: &mut Criterion) {
    let mut r = rng(7);
    let g = random_dag(&mut r, 2000, 10_000);
    let sources: Vec<_> = g.vertices().take(20).collect();
    let nv = ft_graph::Digraph::num_vertices(&g);
    let sinks: Vec<_> = g.vertices().skip(nv - 20).collect();
    c.bench_function("menger_random_dag_2k_10k", |b| {
        b.iter(|| black_box(max_disjoint_paths(&g, &sources, &sinks)))
    });
}

/// The §4 repair-check workload — a full input→output vertex-disjoint
/// path count on the ν = 2 fault-tolerant network under a deterministic
/// ~10% switch outage — once per flow kernel. `dinic_repair_nu2` pins Dinic,
/// `push_relabel_repair_nu2` pins FIFO push-relabel; together they keep
/// the `FlowKernel::Auto` cost model honest: whichever the selector
/// picks for this topology must be the one these numbers say is faster.
fn bench_repair_kernels(c: &mut Criterion) {
    let ftn = FtNetwork::build(Params::reduced(2, 8, 8, 1.0));
    let net = ftn.net();
    let inputs = net.inputs().to_vec();
    let outputs = net.outputs().to_vec();
    let mut r = rng(11);
    let alive: Vec<bool> = (0..net.graph().num_vertices())
        .map(|_| r.random_bool(0.9))
        .collect();
    let mut fw = FlowWorkspace::new();
    for (name, kernel) in [
        ("dinic_repair_nu2", FlowKernel::Dinic),
        ("push_relabel_repair_nu2", FlowKernel::PushRelabel),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    vertex_disjoint_paths_into(
                        net.graph(),
                        &inputs,
                        &outputs,
                        |_| true,
                        |v| alive[v.index()],
                        DisjointOptions {
                            count_only: true,
                            kernel,
                            ..DisjointOptions::default()
                        },
                        &mut fw,
                    )
                    .count,
                )
            })
        });
    }
}

fn bench_matching(c: &mut Criterion) {
    let mut r = rng(8);
    let adj = random_bipartite_adjacency(&mut r, 1000, 1000, 8);
    c.bench_function("hopcroft_karp_1000x1000_d8", |b| {
        b.iter(|| black_box(hopcroft_karp(&adj, 1000)))
    });
}

criterion_group!(
    benches,
    bench_bfs_reused,
    bench_disjoint_paths,
    bench_dinic_random_dag,
    bench_repair_kernels,
    bench_matching
);
criterion_main!(benches);
