//! Reliability kernels: exact series-parallel failure calculus vs
//! Monte Carlo, 1-network construction, hammock bounds.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_failure::onenet::construct_onenet;
use ft_failure::reliability::{bridge, Connectivity};
use ft_failure::sp::SpNetwork;
use ft_failure::{FailureModel, Hammock};
use std::hint::black_box;

fn bench_sp_exact(c: &mut Criterion) {
    let model = FailureModel::symmetric(0.05);
    let net = SpNetwork::ladder(8, 32);
    c.bench_function("sp_exact_ladder_8x32", |b| {
        b.iter(|| black_box(net.failure_probs(&model)))
    });
}

fn bench_exact_enumeration(c: &mut Criterion) {
    let model = FailureModel::symmetric(0.1);
    let net = bridge();
    c.bench_function("exact_enum_bridge", |b| {
        b.iter(|| black_box(net.exact_failure_probs(&model, Connectivity::Undirected)))
    });
}

fn bench_mc_reliability(c: &mut Criterion) {
    let model = FailureModel::symmetric(0.1);
    let net = bridge();
    // scalar reference path: per-trial sampling + BFS/UnionFind, the
    // pre-bit-slicing pipeline kept as the equivalence baseline
    c.bench_function("mc_bridge_10k", |b| {
        b.iter(|| {
            black_box(net.mc_failure_probs_scalar(&model, Connectivity::Undirected, 10_000, 5))
        })
    });
    // bit-sliced successor at the identical trial count and seed: 64
    // trials per word through the lane-parallel reachability kernel
    c.bench_function("mc_bridge_10k_sliced", |b| {
        b.iter(|| black_box(net.mc_failure_probs(&model, Connectivity::Undirected, 10_000, 5)))
    });
}

fn bench_onenet_construction(c: &mut Criterion) {
    c.bench_function("construct_onenet_0.1_1e-4", |b| {
        b.iter(|| black_box(construct_onenet(0.1, 1e-4)))
    });
}

fn bench_hammock_bounds(c: &mut Criterion) {
    let model = FailureModel::symmetric(0.01);
    let h = Hammock::new(64, 16);
    c.bench_function("hammock_bounds_64x16", |b| {
        b.iter(|| black_box(h.bounds(&model)))
    });
}

criterion_group!(
    benches,
    bench_sp_exact,
    bench_exact_enumeration,
    bench_mc_reliability,
    bench_onenet_construction,
    bench_hammock_bounds
);
criterion_main!(benches);
