//! Service-layer throughput: full request round-trips over loopback
//! TCP through the ftserve frontend → bounded queue → engine path.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_serve::{Client, EngineConfig, Server, ServerConfig, Status};
use ft_sim::FabricSpec;
use std::hint::black_box;

/// One lockstep connect + disconnect round-trip per iteration: two
/// frames each way through a real socket, one engine admission, one
/// routed path, one release. The pair always routes — the fabric is
/// idle between iterations — so this pins the *service overhead* per
/// circuit (framing, thread hand-offs, queue, router), not blocking
/// behaviour.
fn bench_serve_connects(c: &mut Criterion) {
    let fabric = FabricSpec::parse("clos-strict 4 4").unwrap().build();
    let server = Server::start(
        fabric,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_depth: 64,
            engine: EngineConfig {
                deterministic: true,
                snapshot_path: None,
                snapshot_every: 0,
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut id = 0u64;
    c.bench_function("serve_connects_per_sec", |b| {
        b.iter(|| {
            id += 1;
            let up = client.connect_circuit(id, 0, 1, 0).expect("io");
            assert_eq!(up.status, Status::Ok);
            let down = client.disconnect_circuit(id).expect("io");
            assert_eq!(down.status, Status::Ok);
            black_box((up.tag, down.tag))
        })
    });
    let _ = client.shutdown(0);
    let _ = server.wait();
}

criterion_group!(benches, bench_serve_connects);
criterion_main!(benches);
