//! Simulation-engine kernels: event-loop throughput with and without
//! the temporal fault process.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_sim::{
    run_seed_obs, run_seed_with, Fabric, FaultSpec, HoldingTime, RerouteMode, RetryPolicy,
    SimConfig, SimWorkspace, TrafficPattern,
};
use std::hint::black_box;

fn cfg_1k_calls() -> SimConfig {
    SimConfig {
        arrival_rate: 10.0,
        holding: HoldingTime::Exponential { mean: 1.0 },
        pattern: TrafficPattern::Uniform,
        fault_rate: 0.0,
        fault_open_share: 0.5,
        mttr: 0.0,
        duration: 100.0, // ≈ 1000 arrivals
        warmup: 0.0,
        buckets: 10,
        ..SimConfig::default()
    }
}

/// Pure event-loop churn: ~1000 arrivals plus their hangups on a
/// strict Clos, no faults — the engine overhead per call. This (and
/// every other `run_seed_with` bench here) exercises the no-op
/// [`ft_obs::Observer`] path: emission sites are monomorphized away,
/// so these numbers ARE the disabled-observer cost the gate pins.
fn bench_sim_churn(c: &mut Criterion) {
    let fabric = Fabric::clos_strict(4, 4);
    let cfg = cfg_1k_calls();
    let mut ws = SimWorkspace::default();
    let mut seed = 0u64;
    c.bench_function("sim_churn_1k_calls", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run_seed_with(&fabric, &cfg, seed, &mut ws))
        })
    });
}

/// The 1k-call churn with a live NDJSON trace observer: what `ftsim
/// --trace` pays over the no-op path (JSON formatting per event into a
/// reused string buffer).
fn bench_sim_churn_traced(c: &mut Criterion) {
    let fabric = Fabric::clos_strict(4, 4);
    let cfg = cfg_1k_calls();
    let mut ws = SimWorkspace::default();
    let mut seed = 0u64;
    c.bench_function("sim_churn_1k_calls_traced", |b| {
        b.iter(|| {
            seed += 1;
            let mut buf = ft_obs::TraceBuf::new();
            buf.begin_seed(seed);
            let out = run_seed_obs(&fabric, &cfg, seed, &mut ws, &mut buf);
            black_box((out, buf.lines()))
        })
    });
}

/// The same workload with the temporal fault process on: every fault
/// and repair recomputes the §4 alive mask and reapplies it.
fn bench_sim_churn_faulty(c: &mut Criterion) {
    let fabric = Fabric::clos_strict(4, 4);
    let mut cfg = cfg_1k_calls();
    cfg.fault_rate = 0.002;
    cfg.mttr = 10.0;
    let mut ws = SimWorkspace::default();
    let mut seed = 0u64;
    c.bench_function("sim_churn_1k_calls_faulty", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run_seed_with(&fabric, &cfg, seed, &mut ws))
        })
    });
}

/// Heavy-traffic configuration: ~100 000 arrivals under a hotspot
/// pattern on the ν = 2 fault-tolerant network 𝒩 (19 424 switches) —
/// the regime where per-event O(V + E) recomputation used to dominate
/// and the incremental fault path plus the budgeted bidirectional
/// search pay off.
fn cfg_100k_calls() -> SimConfig {
    SimConfig {
        arrival_rate: 100.0,
        holding: HoldingTime::Exponential { mean: 0.08 },
        pattern: TrafficPattern::Hotspot {
            hot_fraction: 0.25,
            p_hot: 0.5,
        },
        fault_rate: 0.0,
        fault_open_share: 0.5,
        mttr: 0.0,
        duration: 1000.0, // ≈ 100 000 arrivals
        warmup: 0.0,
        buckets: 10,
        ..SimConfig::default()
    }
}

fn ftn_nu2() -> Fabric {
    Fabric::ftn_reduced(2, 8, 8, 1.0)
}

/// 100k-arrival hotspot run on 𝒩 (ν = 2), fault-free: routing and
/// event-loop throughput at scale.
fn bench_sim_churn_100k(c: &mut Criterion) {
    let fabric = ftn_nu2();
    let cfg = cfg_100k_calls();
    let mut ws = SimWorkspace::default();
    let mut seed = 0u64;
    c.bench_function("sim_churn_100k_calls", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run_seed_with(&fabric, &cfg, seed, &mut ws))
        })
    });
}

/// The same heavy run with a hot temporal fault process (~2 faults per
/// time unit, quick repairs): every fault/repair event exercises the
/// incremental repair-mask/kill/occupancy path on a 19 424-switch
/// fabric, where the old from-scratch recompute was O(V + E) per event.
fn bench_sim_churn_100k_faulty(c: &mut Criterion) {
    let fabric = ftn_nu2();
    let mut cfg = cfg_100k_calls();
    cfg.fault_rate = 1e-4; // aggregate ≈ 1.9 faults per time unit
    cfg.mttr = 1.0;
    let mut ws = SimWorkspace::default();
    let mut seed = 0u64;
    c.bench_function("sim_churn_100k_calls_faulty", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run_seed_with(&fabric, &cfg, seed, &mut ws))
        })
    });
}

/// Group-storm recovery: storms repeatedly take out the middle switch
/// stage of a strict Clos mid-run while calls churn, with backoff
/// retries and admission shedding reacting — the mass-kill /
/// mass-reroute path (stage sweep, victim collection, retry events,
/// repair-driven revival) end to end.
fn storm_cfg() -> SimConfig {
    let mut cfg = cfg_1k_calls();
    cfg.faults = FaultSpec::Storm {
        rate: 0.05,
        window: 2.0,
        stage: Some(2),
    };
    cfg.retry = RetryPolicy::Backoff {
        budget: 4,
        base: 0.25,
        shed_depth: 64,
    };
    cfg.mttr = 5.0;
    cfg
}

fn bench_reroute_storm(c: &mut Criterion) {
    let fabric = Fabric::clos_strict(4, 4);
    let cfg = storm_cfg();
    let mut ws = SimWorkspace::default();
    let mut seed = 0u64;
    c.bench_function("reroute_storm", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run_seed_with(&fabric, &cfg, seed, &mut ws))
        })
    });
}

/// The identical storm workload with the min-cost reroute planner: each
/// kill wave builds the vertex-split cost network over the idle fabric
/// and reroutes victims by successive-shortest-path augmentation, so
/// this measures the full mincost batch (snapshot + Dijkstra + freeze)
/// against greedy `reroute_storm` above.
fn bench_reroute_storm_mincost(c: &mut Criterion) {
    let fabric = Fabric::clos_strict(4, 4);
    let mut cfg = storm_cfg();
    cfg.reroute = RerouteMode::Mincost;
    let mut ws = SimWorkspace::default();
    let mut seed = 0u64;
    c.bench_function("reroute_storm_mincost", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run_seed_with(&fabric, &cfg, seed, &mut ws))
        })
    });
}

criterion_group!(
    benches,
    bench_sim_churn,
    bench_sim_churn_traced,
    bench_sim_churn_faulty,
    bench_sim_churn_100k,
    bench_sim_churn_100k_faulty,
    bench_reroute_storm,
    bench_reroute_storm_mincost
);
criterion_main!(benches);
