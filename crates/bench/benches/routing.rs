//! Routing kernels (E11's Criterion counterpart): greedy permutation
//! routing on 𝒩, the looping algorithm on Beneš, and churn steps.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_core::network::FtNetwork;
use ft_core::params::Params;
use ft_core::repair::Survivor;
use ft_core::routing;
use ft_failure::{FailureInstance, FailureModel};
use ft_graph::gen::{random_permutation, rng};
use ft_graph::Digraph;
use ft_networks::{Benes, CircuitRouter};
use std::hint::black_box;

fn bench_greedy_perm(c: &mut Criterion) {
    let ftn = FtNetwork::build(Params::reduced(2, 8, 8, 1.0));
    let mut r = rng(1);
    c.bench_function("greedy_perm_ftn_nu2", |b| {
        b.iter(|| {
            let perm = random_permutation(&mut r, ftn.n());
            let mut router = CircuitRouter::new(ftn.net());
            black_box(routing::route_permutation(&mut router, &ftn, &perm))
        })
    });
}

fn bench_greedy_perm_on_survivor(c: &mut Criterion) {
    let ftn = FtNetwork::build(Params::reduced(2, 8, 8, 1.0));
    let model = FailureModel::symmetric(1e-3);
    let mut r = rng(2);
    let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
    let survivor = Survivor::new(&ftn, &inst);
    c.bench_function("greedy_perm_survivor_nu2_eps1e-3", |b| {
        b.iter(|| {
            let perm = random_permutation(&mut r, ftn.n());
            let mut router = routing::survivor_router(&survivor);
            black_box(routing::route_permutation(&mut router, &ftn, &perm))
        })
    });
}

fn bench_looping(c: &mut Criterion) {
    let benes = Benes::new(6); // 64 terminals
    let mut r = rng(3);
    c.bench_function("benes_looping_n64", |b| {
        b.iter(|| {
            let perm = random_permutation(&mut r, 64);
            black_box(benes.route_permutation(&perm))
        })
    });
}

/// Pure `connect`/`disconnect` cost on the big ν = 2 network: one
/// router reused, alternating terminal pairs — isolates the budgeted
/// bidirectional path search (plus path claim/release) from the
/// simulation engine around it.
fn bench_connect_only(c: &mut Criterion) {
    let ftn = FtNetwork::build(Params::reduced(2, 8, 8, 1.0));
    let mut router = CircuitRouter::new(ftn.net());
    let n = ftn.n();
    let mut k = 0usize;
    c.bench_function("router_connect_pair_ftn_nu2", |b| {
        b.iter(|| {
            k = (k + 1) % n;
            let id = router
                .connect(ftn.input(k), ftn.output((k + 1) % n))
                .expect("idle fabric cannot block");
            black_box(&id);
            router.disconnect(id)
        })
    });
}

fn bench_churn(c: &mut Criterion) {
    let ftn = FtNetwork::build(Params::reduced(1, 8, 8, 1.0));
    let mut r = rng(4);
    c.bench_function("churn_100_steps_nu1", |b| {
        b.iter(|| {
            let mut router = CircuitRouter::new(ftn.net());
            black_box(routing::churn(&mut router, &ftn, 100, 0.6, &mut r))
        })
    });
}

criterion_group!(
    benches,
    bench_greedy_perm,
    bench_greedy_perm_on_survivor,
    bench_looping,
    bench_connect_only,
    bench_churn
);
criterion_main!(benches);
