//! Failure-model kernels: instance sampling (sparse geometric-gap vs
//! dense), repair, contraction, and certification throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_core::certify::certify_with_budget;
use ft_core::network::FtNetwork;
use ft_core::params::Params;
use ft_core::repair::Survivor;
use ft_failure::contraction::contract;
use ft_failure::{FailureInstance, FailureModel, SlicedFailureMask};
use ft_graph::gen::rng;
use ft_graph::Digraph;
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sample_instance_1M_edges");
    let mut r = rng(1);
    for &eps in &[1e-6, 1e-3, 0.2] {
        let model = FailureModel::symmetric(eps);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("eps{eps}")),
            &model,
            |b, m| {
                let mut inst = FailureInstance::perfect(1_000_000);
                b.iter(|| {
                    inst.resample(m, &mut r, 1_000_000);
                    black_box(inst.len())
                })
            },
        );
    }
    g.finish();
}

fn bench_sliced_sampling(c: &mut Criterion) {
    // one 64-lane block over 1M switches per iteration — divide by 64
    // to compare per-trial against sample_instance_1M_edges
    let mut g = c.benchmark_group("sample_sliced_1M_edges");
    let mut r = rng(1);
    for &eps in &[1e-6, 1e-3, 0.2] {
        let model = FailureModel::symmetric(eps);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("eps{eps}")),
            &model,
            |b, m| {
                let mut sliced = SlicedFailureMask::new();
                b.iter(|| {
                    m.sample_sliced_into(&mut r, 1_000_000, &mut sliced);
                    black_box(sliced.len())
                })
            },
        );
    }
    g.finish();
}

fn bench_repair(c: &mut Criterion) {
    let ftn = FtNetwork::build(Params::reduced(2, 8, 8, 1.0));
    let model = FailureModel::symmetric(1e-3);
    let mut r = rng(2);
    let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
    c.bench_function("repair_nu2", |b| {
        b.iter(|| black_box(Survivor::new(&ftn, &inst).discarded))
    });
}

fn bench_certify(c: &mut Criterion) {
    let ftn = FtNetwork::build(Params::reduced(2, 8, 8, 1.0));
    let model = FailureModel::symmetric(1e-3);
    let mut r = rng(3);
    let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
    c.bench_function("certify_nu2", |b| {
        b.iter(|| black_box(certify_with_budget(&ftn, &inst, 0.1)))
    });
}

fn bench_contraction(c: &mut Criterion) {
    let ftn = FtNetwork::build(Params::reduced(2, 8, 8, 1.0));
    let model = FailureModel::symmetric(0.05);
    let mut r = rng(4);
    let inst = FailureInstance::sample(&model, &mut r, ftn.net().num_edges());
    c.bench_function("contract_nu2_eps5e-2", |b| {
        b.iter(|| black_box(contract(ftn.net(), &inst).graph.num_edges()))
    });
}

criterion_group!(
    benches,
    bench_sampling,
    bench_sliced_sampling,
    bench_repair,
    bench_certify,
    bench_contraction
);
criterion_main!(benches);
