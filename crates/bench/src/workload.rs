//! Shared experiment plumbing: standard profiles, baseline networks,
//! repair + routing glue, Monte-Carlo wrappers.

use ft_core::network::FtNetwork;
use ft_core::params::Params;
use ft_failure::{Estimate, FailureInstance};
use ft_graph::ids::VertexId;
use ft_graph::StagedNetwork;
use ft_networks::{Benes, Butterfly, CircuitRouter, Clos, RouteError};

/// The standard reduced profile used by the Monte-Carlo experiments:
/// width 8, degree 8, `4^γ ≥ ν` (γ as small as possible). Documented
/// in DESIGN.md as a laptop-scale substitution; every binary prints
/// the profile it ran.
///
/// Degree 8, not 4: the Lemma 6 access recurrence
/// `r′ = 1 − e^{−d·r/4}` has its branching threshold at `d = 4` —
/// below it the accessed fraction decays to zero with ν and majority
/// access fails. The paper's degree 10 is comfortably supercritical;
/// reduced profiles must stay above the threshold too (E8 sweeps the
/// degree to exhibit exactly this).
pub fn reduced_params(nu: u32) -> Params {
    Params::reduced(nu, 8, 8, 1.0)
}

/// A sturdier reduced profile (wider, higher degree, γ one notch up)
/// for experiments that need more fault margin.
pub fn sturdy_params(nu: u32) -> Params {
    Params::reduced(nu, 16, 10, 4.0)
}

/// Renders a profile for table headers.
pub fn profile_label(p: &Params) -> String {
    format!(
        "nu={} gamma={} F={} d={} (n={})",
        p.nu,
        p.gamma,
        p.width,
        p.degree,
        p.n()
    )
}

/// Classical baseline networks of the §2 cast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Baseline {
    /// Beneš rearrangeable network (`n = 2^k` terminals).
    Benes,
    /// Butterfly (unique-path) network.
    Butterfly,
    /// Strictly nonblocking Clos `C(2n−1, n, r)`.
    ClosStrict,
    /// The `n²` crossbar.
    Crossbar,
}

impl Baseline {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::Benes => "benes",
            Baseline::Butterfly => "butterfly",
            Baseline::ClosStrict => "clos-strict",
            Baseline::Crossbar => "crossbar",
        }
    }

    /// Builds the baseline with (at least) `n` terminals; `n` must be a
    /// power of two ≥ 4.
    pub fn build(&self, n: usize) -> StagedNetwork {
        assert!(n.is_power_of_two() && n >= 4, "baseline needs 2^k ≥ 4");
        let k = n.trailing_zeros();
        match self {
            Baseline::Benes => Benes::new(k).net,
            Baseline::Butterfly => Butterfly::new(k).net,
            Baseline::ClosStrict => {
                // r groups of size g: pick g ≈ √n
                let g = 1usize << (k / 2);
                let r = n / g;
                Clos::strictly_nonblocking(g, r).net
            }
            Baseline::Crossbar => ft_networks::crossbar(n),
        }
    }

    /// All four baselines.
    pub fn all() -> [Baseline; 4] {
        [
            Baseline::Benes,
            Baseline::Butterfly,
            Baseline::ClosStrict,
            Baseline::Crossbar,
        ]
    }
}

/// §4-style repair for an arbitrary staged network: a vertex is faulty
/// if any incident switch failed; terminals are exempt (they are wires
/// to the outside world, not electrical links). Additionally kills the
/// internal endpoint of failed terminal-incident switches so that
/// vertex-masked routing never crosses a failed switch.
pub fn repair_staged(net: &StagedNetwork, inst: &FailureInstance) -> Vec<bool> {
    let g = net.graph();
    let faulty = inst.faulty_vertices(g);
    let mut alive: Vec<bool> = faulty.into_iter().map(|f| !f).collect();
    let mut is_terminal = vec![false; g.num_vertices()];
    for &t in net.inputs().iter().chain(net.outputs()) {
        is_terminal[t.index()] = true;
        alive[t.index()] = true;
    }
    for e in 0..g.num_edges() {
        let e = ft_graph::ids::EdgeId::from(e);
        if inst.is_normal(e) {
            continue;
        }
        let (t, h) = g.endpoints(e);
        if is_terminal[t.index()] && !is_terminal[h.index()] {
            alive[h.index()] = false;
        }
        if is_terminal[h.index()] && !is_terminal[t.index()] {
            alive[t.index()] = false;
        }
    }
    alive
}

/// Greedily routes the permutation on a staged network under an alive
/// mask; returns `(connected, blocked_or_unavailable)`.
pub fn route_perm_staged(net: &StagedNetwork, alive: Vec<bool>, perm: &[u32]) -> (usize, usize) {
    let mut router = CircuitRouter::with_alive_mask(net, alive);
    let mut ok = 0;
    let mut bad = 0;
    for (i, &o) in perm.iter().enumerate() {
        match router.connect(net.inputs()[i], net.outputs()[o as usize]) {
            Ok(_) => ok += 1,
            Err(RouteError::Blocked(_, _))
            | Err(RouteError::InputUnavailable(_))
            | Err(RouteError::OutputUnavailable(_)) => bad += 1,
        }
    }
    (ok, bad)
}

/// Number of worker threads for parallel Monte Carlo.
pub fn mc_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Formats an [`Estimate`] tersely (`successes/trials`).
pub fn frac_label(e: &Estimate) -> String {
    format!("{}/{}", e.successes, e.trials)
}

/// All input and output terminals of an [`FtNetwork`], for shorting
/// checks.
pub fn all_terminals(ftn: &FtNetwork) -> Vec<VertexId> {
    let mut v = ftn.net().inputs().to_vec();
    v.extend_from_slice(ftn.net().outputs());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_failure::{FailureModel, SwitchState};
    use ft_graph::gen::rng;

    #[test]
    fn baselines_build_at_16() {
        for b in Baseline::all() {
            let net = b.build(16);
            assert!(net.inputs().len() >= 16, "{}", b.name());
            assert!(net.validate().is_ok(), "{}", b.name());
        }
    }

    #[test]
    fn fault_free_baselines_route_identity() {
        for b in Baseline::all() {
            let net = b.build(8);
            let alive = vec![true; net.graph().num_vertices()];
            let perm: Vec<u32> = (0..8).collect();
            let (ok, bad) = route_perm_staged(&net, alive, &perm);
            assert_eq!(ok, 8, "{}", b.name());
            assert_eq!(bad, 0);
        }
    }

    #[test]
    fn repair_exempts_terminals() {
        let net = Baseline::Crossbar.build(4);
        let inst = FailureInstance::from_states(vec![SwitchState::Open; net.graph().num_edges()]);
        let alive = repair_staged(&net, &inst);
        for &t in net.inputs().iter().chain(net.outputs()) {
            assert!(alive[t.index()]);
        }
    }

    #[test]
    fn repaired_routing_degrades_gracefully() {
        let net = Baseline::Benes.build(8);
        let model = FailureModel::symmetric(0.02);
        let mut r = rng(3);
        let inst = FailureInstance::sample(&model, &mut r, net.graph().num_edges());
        let alive = repair_staged(&net, &inst);
        let perm: Vec<u32> = (0..8).collect();
        let (ok, bad) = route_perm_staged(&net, alive, &perm);
        assert_eq!(ok + bad, 8);
    }

    #[test]
    fn profiles_are_modest() {
        let p = reduced_params(2);
        assert!(p.predicted_size() < 50_000);
        let s = sturdy_params(1);
        assert!(s.gamma >= 1);
    }
}
