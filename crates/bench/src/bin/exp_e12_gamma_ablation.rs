//! E12 — ablation of the `4^γ ≥ 34ν` scale-up (the paper's key design
//! choice): γ controls the grid rows `l = F·4^γ` and the boundary
//! group sizes of 𝓜. The Lemma 3/6 failure terms decay like
//! `e^{−c(ε)·l}`, so at a fixed ε near the hammock threshold, each γ
//! step (4× more redundancy) crushes the failure probability — below
//! the paper's scaling the network stops being reliably
//! fault-tolerant.
//!
//! Regenerates: for fixed ν, a sweep of γ × ε with two metrics —
//! P[every grid keeps majority access] (the Lemma 3 ∧ Lemma 6
//! precondition, the γ-sensitive event) and P[random permutation
//! routed] — plus the sizes, showing the reliability-vs-size trade.

use ft_bench::table::{f, sci, Table};
use ft_bench::workload::mc_threads;
use ft_core::access::all_grids_majority;
use ft_core::network::FtNetwork;
use ft_core::params::Params;
use ft_core::repair::Survivor;
use ft_core::routing;
use ft_core::theory;
use ft_failure::montecarlo::estimate_probability_parallel;
use ft_failure::{FailureInstance, FailureModel};
use ft_graph::Digraph;

/// One trial: (grids all majority, permutation fully routed).
fn trial(ftn: &FtNetwork, eps: f64, rng: &mut rand::rngs::SmallRng) -> (bool, bool) {
    let m = ftn.net().num_edges();
    let model = FailureModel::symmetric(eps);
    let inst = FailureInstance::sample(&model, rng, m);
    let survivor = Survivor::new(ftn, &inst);
    let alive = survivor.routable_alive();
    let (grids_ok, _) = all_grids_majority(ftn, &alive);
    let mut router = routing::survivor_router(&survivor);
    let perm = routing::random_perm(rng, ftn.n());
    let (stats, _) = routing::route_permutation(&mut router, ftn, &perm);
    (grids_ok, stats.all_connected())
}

fn main() {
    println!("E12: gamma ablation -- the 4^gamma >= 34nu scale-up is load-bearing\n");

    let nu = 2u32;
    for &eps in &[0.02, 0.04, 0.06] {
        let mut t = Table::new(
            format!("nu={nu}, F=8, d=8, eps={eps}: sweep gamma"),
            &[
                "gamma",
                "l=F*4^g",
                "size",
                "trials",
                "P[grids majority]",
                "P[perm routed]",
                "lemma3 term",
            ],
        );
        for gamma in 1..=3u32 {
            let factor = (1usize << (2 * gamma)) as f64 / nu as f64;
            let p = Params::reduced(nu, 8, 8, factor);
            assert_eq!(p.gamma, gamma);
            let ftn = FtNetwork::build(p);
            let trials: u64 = if gamma == 3 { 100 } else { 300 };
            // count both events in one pass: run the grids-majority
            // event through the estimator and tally routing on the side
            let routed = std::sync::atomic::AtomicU64::new(0);
            let est = estimate_probability_parallel(trials, mc_threads(), 0x12A, |_| {
                let ftn = ftn.clone();
                let routed = &routed;
                move |rng: &mut rand::rngs::SmallRng| {
                    let (grids_ok, perm_ok) = trial(&ftn, eps, rng);
                    if perm_ok {
                        routed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    grids_ok
                }
            });
            let routed = routed.load(std::sync::atomic::Ordering::Relaxed);
            t.row(vec![
                gamma.to_string(),
                ftn.rows().to_string(),
                ftn.net().size().to_string(),
                trials.to_string(),
                f(est.p(), 3),
                f(routed as f64 / trials as f64, 3),
                sci(theory::lemma3_grid_failure_bound(&p, eps)),
            ]);
        }
        t.print();
    }

    println!(
        "paper: Section 6 fixes 4^gamma = Theta(nu) (34nu <= 4^gamma <=\n\
         136nu), making l = 64*4^gamma = Theta(log n) grid rows -- that\n\
         Theta(log n) redundancy IS the extra log factor of the\n\
         Theta(n log^2 n) size. The Lemma 3/6 failure terms decay like\n\
         e^(-c(eps) l): near the hammock threshold each gamma step (4x\n\
         the rows, 4x the size) multiplies reliability dramatically --\n\
         P[grids majority] rises with gamma at every eps while the size\n\
         column pays 4x per step. Routing a single permutation is the\n\
         more forgiving end-to-end event (it needs only one idle path\n\
         per pair, not majorities); the grids-majority column is the\n\
         certificate event Theorem 2's proof actually consumes."
    );
}
