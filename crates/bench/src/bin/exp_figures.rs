//! Figures 1–5: structural renders from real instances.
//!
//! * Fig. 1 — a *bad* leaf (no other leaf within distance 3) and the
//!   seven internal nodes it pays;
//! * Fig. 2 — an internal node collects at most six dollars;
//! * Fig. 3 — each path collects at most four dollars from unlucky
//!   leaves;
//! * Fig. 4 — the (4, 8)-directed grid;
//! * Fig. 5 — network 𝒩's stage map (the paper's block diagram).

use ft_bench::table::Table;
use ft_core::lowerbound::lemma1_short_paths;
use ft_core::network::FtNetwork;
use ft_core::params::Params;
use ft_graph::ids::v;
use ft_graph::DiGraph;
use ft_networks::DirectedGrid;

fn fig1_bad_leaf() {
    println!("Fig. 1 -- a bad leaf pays the 7 internal nodes within distance 3\n");
    // binary-ish tree where leaf L sits at distance >= 4 from every
    // other leaf: L - a - b - c with bushy far side
    //
    //           L
    //           |
    //           a
    //          / \
    //         b1  b2
    //        /|    |\
    //      c1 c2  c3 c4
    //      /|  |\  ... leaves further down
    let mut g = DiGraph::new();
    g.add_vertices(16);
    let edges = [
        (0u32, 1u32), // L - a
        (1, 2),
        (1, 3), // a - b1, b2
        (2, 4),
        (2, 5),
        (3, 6),
        (3, 7), // b - c
        (4, 8),
        (4, 9),
        (5, 10),
        (5, 11),
        (6, 12),
        (6, 13),
        (7, 14),
        (7, 15),
    ];
    for (a, b) in edges {
        g.add_edge(v(a), v(b));
    }
    println!("        L(0)");
    println!("         |");
    println!("        a(1)          <- internal, distance 1");
    println!("       /    \\");
    println!("    b1(2)   b2(3)     <- internal, distance 2");
    println!("    /  \\    /  \\");
    println!("  c1    c2 c3   c4    <- internal, distance 3 (7 nodes paid)");
    println!("  /\\    /\\ /\\   /\\");
    println!(" 8 9  10 11 12 13 14 15   <- nearest other leaves: distance 4");
    let r = lemma1_short_paths(&g);
    println!(
        "\nleaves = {}, good = {} (leaf 0 is BAD: nearest leaf at distance 4);",
        r.num_leaves, r.good_leaves
    );
    println!(
        "lemma 1 still finds {} edge-disjoint short paths among the good leaves\n",
        r.paths.len()
    );
}

fn fig2_six_dollars() {
    println!("Fig. 2 -- an internal node V collects at most six dollars\n");
    println!("  at most one bad leaf can be adjacent to an internal node:");
    println!("  two adjacent leaves would be at distance 2 from each other,");
    println!("  making both GOOD. So each of the <= 6 nodes at distance <= 2");
    println!("  from V contributes at most one paying bad leaf.\n");
    // demo: V with 3 branch children, 2 leaves each (internal degree 3)
    let mut g = DiGraph::new();
    g.add_vertices(10);
    for (a, b) in [
        (0u32, 1u32),
        (0, 2),
        (0, 3),
        (1, 4),
        (1, 5),
        (2, 6),
        (2, 7),
        (3, 8),
        (3, 9),
    ] {
        g.add_edge(v(a), v(b));
    }
    let r = lemma1_short_paths(&g);
    println!(
        "  demo tree: V(0), 3 branch children, 2 leaves each: leaves = {}, paths = {} (all good)\n",
        r.num_leaves,
        r.paths.len()
    );
}

fn fig3_four_dollars() {
    println!("Fig. 3 -- a path P collects at most four dollars from unlucky leaves\n");
    println!("  a path of length <= 3 has at most 4 vertices; only leaves at");
    println!("  distance <= 2 from P can be blocked by it, and at most four");
    println!("  leaves sit that close -- so |maximal family| >= good/6.\n");
}

fn fig4_grid() {
    println!("Fig. 4 -- the (4, 8)-directed grid (4 rows x 8 stages)\n");
    let g = DirectedGrid::new(4, 8);
    println!("  stage:   1   2   3   4   5   6   7   8");
    for row in 0..4 {
        let mut line = format!("  row {row}:  ");
        for stage in 0..8 {
            line.push('o');
            if stage < 7 {
                line.push_str(" - ");
            }
        }
        println!("{line}");
        if row < 3 {
            println!("           \\   \\   \\   \\   \\   \\   \\");
        }
    }
    println!(
        "\n  switches = {} ((2l-1)(w-1) = 7*7 = 49), depth = {}\n  (o - o straight; \\ down-diagonal; edges point rightward)\n",
        g.size(),
        g.net.depth()
    );
}

fn fig5_stage_map() {
    println!("Fig. 5 -- network N = Phi | M_l | M_r | Psi (stage map, nu=2 reduced)\n");
    let ftn = FtNetwork::build(Params::reduced(2, 8, 4, 1.0));
    let mut t = Table::new(
        "stage map",
        &["stage", "kind", "width", "groups", "group size"],
    );
    let nu = 2usize;
    for s in 0..ftn.num_stages() {
        let kind = format!("{:?}", ftn.stage_kind(s));
        let w = ftn.net().stage_range(s).len();
        let (groups, gsize) = if (nu..=3 * nu).contains(&s) {
            let (c, sz) = ftn.middle_groups(s);
            (c.to_string(), sz.to_string())
        } else if s == 0 || s == 4 * nu {
            ("-".into(), "-".into())
        } else {
            (ftn.n().to_string(), ftn.rows().to_string())
        };
        t.row(vec![s.to_string(), kind, w.to_string(), groups, gsize]);
    }
    t.print();
    println!(
        "  inputs fan to their private grids (stages 1..nu), the grids'\n\
         last stage IS stage nu of the truncated recursive middle, the\n\
         middle expands to a single group at stage 2nu and mirrors back,\n\
         and the output grids collect into the outputs -- the paper's\n\
         Fig. 5 block diagram."
    );
}

fn main() {
    println!("Figures 1-5, rendered from real instances\n");
    fig1_bad_leaf();
    fig2_six_dollars();
    fig3_four_dollars();
    fig4_grid();
    fig5_stage_map();
}
