//! E5 — Theorem 2 size/depth census: 𝒩 has `1408ν·4^{ν+γ}` switches
//! (paper census) and `4ν + 1` stages, i.e. `Θ(n (log n)²)` size and
//! `Θ(log n)` depth.
//!
//! Regenerates: the per-ν census (formula and, where feasible, a
//! physically built network), the paper's census column, the size
//! constant `size/(n (log₄ n)²)`, and the depth against the
//! `5 log₄ n` bound. Documents the two transcription deltas: our
//! grids carry their diagonal switches (`(2l−1)` per gap where the
//! paper counts `l`), and the printed constant "49" does not follow
//! from the paper's own census (see ft-core::theory docs).

use ft_bench::table::{f, sci, Table};
use ft_core::network::FtNetwork;
use ft_core::params::Params;
use ft_core::theory;

fn main() {
    println!("E5: Theorem 2 size/depth census (paper-exact profile)\n");

    let mut t = Table::new(
        "paper-exact census: F=64, d=10, 4^gamma in [34nu, 136nu]",
        &[
            "nu",
            "n",
            "gamma",
            "predicted",
            "paper 1408nu4^(nu+g)",
            "built",
            "size/(n nu^2)",
            "depth",
            "5log4 n",
        ],
    );
    for nu in 1..=6u32 {
        let p = Params::paper_exact(nu);
        let n = p.n();
        // building beyond nu = 2 exceeds laptop memory (documented
        // DESIGN.md substitution): census comes from the formulas,
        // which the built columns validate at nu <= 2.
        let built = if nu <= 2 {
            let ftn = FtNetwork::build(p);
            assert_eq!(ftn.census().total(), p.predicted_size());
            assert_eq!(ftn.net().depth() as usize + 1, p.num_stages());
            ftn.census().total().to_string()
        } else {
            "-".into()
        };
        t.row(vec![
            nu.to_string(),
            n.to_string(),
            p.gamma.to_string(),
            p.predicted_size().to_string(),
            p.paper_census().to_string(),
            built,
            f(p.size_constant(), 1),
            p.depth().to_string(),
            f(theory::theorem2_depth_bound(n), 1),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "reduced profile scaling (F=8, d=4): size stays Theta(n log^2 n)",
        &["nu", "n", "gamma", "size", "size/(n nu^2)", "depth"],
    );
    for nu in 1..=6u32 {
        let p = Params::reduced(nu, 8, 4, 1.0);
        t.row(vec![
            nu.to_string(),
            p.n().to_string(),
            p.gamma.to_string(),
            p.predicted_size().to_string(),
            f(p.size_constant(), 2),
            p.depth().to_string(),
        ]);
    }
    t.print();

    println!(
        "theorem 2 failure bound at eps = 1e-6 (per profile):\n  nu=2: {}\n  nu=4: {}",
        sci(theory::theorem2_failure_bound(
            &Params::paper_exact(2),
            1e-6
        )),
        sci(theory::theorem2_failure_bound(
            &Params::paper_exact(4),
            1e-6
        )),
    );
    println!(
        "\npaper: size <= '49 n (log4 n)^2' as printed; the census\n\
         1408nu4^(nu+gamma) with 4^gamma <= 136nu gives constant\n\
         1408*136 ~ 1.9e5 -- the '49' is a transcription casualty.\n\
         Our measured census exceeds the paper's 1408nu by the grid\n\
         diagonals the paper's count omits ((2l-1) vs l per grid gap);\n\
         both are Theta(n log^2 n). Depth: 4nu switches (4nu+1 stages)\n\
         <= 5 log4 n as claimed."
    );
}
