//! E11 — §4, observation 3: routing on the survivor is *cheap* —
//! strictly nonblocking containment means greedy BFS path-finding,
//! no rearrangement, no backtracking.
//!
//! Regenerates: per-connect wall-clock cost of greedy routing on 𝒩
//! (fault-free and repaired) against the Clos and Beneš baselines,
//! batch permutation cost, and path-length statistics. The matching
//! Criterion bench (`benches/routing.rs`) measures the same kernels
//! with statistical rigor; this binary prints the comparison table.

use ft_bench::table::{f, Table};
use ft_bench::workload::{reduced_params, sturdy_params, Baseline};
use ft_core::network::FtNetwork;
use ft_core::repair::Survivor;
use ft_core::routing;
use ft_failure::{FailureInstance, FailureModel};
use ft_graph::gen::{random_permutation, rng};
use ft_graph::Digraph;
use ft_networks::CircuitRouter;
use std::time::Instant;

/// Times `reps` repetitions of routing a random permutation; returns
/// (µs per connect, mean path length).
fn time_perm(net: &ft_graph::StagedNetwork, n: usize, reps: usize, seed: u64) -> (f64, f64) {
    let mut r = rng(seed);
    let mut total_us = 0.0;
    let mut total_len = 0usize;
    let mut total_conn = 0usize;
    for _ in 0..reps {
        let perm = random_permutation(&mut r, n);
        let mut router = CircuitRouter::new(net);
        let start = Instant::now();
        for (i, &o) in perm.iter().enumerate() {
            if let Ok(id) = router.connect(net.inputs()[i], net.outputs()[o as usize]) {
                total_len += router.session_path(id).map_or(0, |p| p.len() - 1);
                total_conn += 1;
            }
        }
        total_us += start.elapsed().as_secs_f64() * 1e6;
    }
    (
        total_us / (reps * n) as f64,
        total_len as f64 / total_conn.max(1) as f64,
    )
}

fn main() {
    println!("E11: greedy routing cost (Section 4, observation 3)\n");

    let mut t = Table::new(
        "greedy routing cost per connect (fault-free, 20 permutations)",
        &["network", "n", "size", "us/connect", "mean path len"],
    );
    for nu in [1u32, 2] {
        let ftn = FtNetwork::build(reduced_params(nu));
        let (us, len) = time_perm(ftn.net(), ftn.n(), 20, 0x11A);
        t.row(vec![
            format!("N reduced nu={nu}"),
            ftn.n().to_string(),
            ftn.net().size().to_string(),
            f(us, 1),
            f(len, 2),
        ]);
        let n = ftn.n();
        for b in [Baseline::ClosStrict, Baseline::Benes] {
            let net = b.build(n);
            let (us, len) = time_perm(&net, n, 20, 0x11B);
            t.row(vec![
                format!("{}({n})", b.name()),
                n.to_string(),
                net.size().to_string(),
                f(us, 1),
                f(len, 2),
            ]);
        }
    }
    t.print();

    // repaired-network routing: cost does not blow up under faults
    let p = sturdy_params(2);
    let ftn = FtNetwork::build(p);
    let m = ftn.net().num_edges();
    let mut t = Table::new(
        "N nu=2 (sturdy): routing cost on the repaired survivor",
        &["eps", "us/connect", "mean path len", "connected/16"],
    );
    let mut r = rng(0x11C);
    for &eps in &[0.0, 1e-4, 1e-3, 5e-3] {
        let model = FailureModel::symmetric(eps);
        let inst = FailureInstance::sample(&model, &mut r, m);
        let survivor = Survivor::new(&ftn, &inst);
        let mut router = routing::survivor_router(&survivor);
        let perm = routing::random_perm(&mut r, ftn.n());
        let start = Instant::now();
        let (stats, _) = routing::route_permutation(&mut router, &ftn, &perm);
        let us = start.elapsed().as_secs_f64() * 1e6 / ftn.n() as f64;
        t.row(vec![
            f(eps, 4),
            f(us, 1),
            f(stats.mean_path_len(), 2),
            format!("{}/16", stats.connected),
        ]);
    }
    t.print();

    println!(
        "paper: 'routing can be performed by a greedy application of a\n\
         standard path-finding algorithm, so again no difficult\n\
         computations are involved.' Costs are a single BFS over idle\n\
         vertices per request -- microseconds at these sizes -- and\n\
         path lengths equal the stage count (every route crosses all\n\
         4nu+1 stages; Clos/Benes paths are shorter but their networks\n\
         are not fault-tolerant: E10)."
    );
}
