//! E4 — Theorem 1: the zone audit. Around every *good* input (far
//! from all other inputs) the edge zones `B_h(v)` must each hold
//! Ω(log n) switches, and the disjoint balls sum to Ω(n (log n)²).
//!
//! Regenerates: good-input counts, minimum zone sizes and ball totals
//! on 𝒩 versus the O(n log n) baselines, and the Theorem 1 size/depth
//! lower-bound columns.

use ft_bench::table::{f, sci, Table};
use ft_bench::workload::{reduced_params, Baseline};
use ft_core::lowerbound::{zone_audit_with, ZoneAudit};
use ft_core::network::FtNetwork;
use ft_core::theory;
use ft_graph::StagedNetwork;

fn audit_row(t: &mut Table, name: &str, net: &StagedNetwork, thresh: u32, h_max: u32) {
    let a: ZoneAudit = zone_audit_with(net, net.inputs(), thresh, h_max);
    let n = net.inputs().len();
    t.row(vec![
        name.into(),
        n.to_string(),
        net.size().to_string(),
        net.depth().to_string(),
        a.good_terminals.to_string(),
        a.min_zone_edges.map_or("-".into(), |m| m.to_string()),
        f(a.mean_min_zone, 1),
        a.ball_edges_total.to_string(),
        sci(theory::theorem1_size_lower_bound(n)),
        f(theory::theorem1_depth_lower_bound(n), 2),
    ]);
}

fn main() {
    println!("E4: Theorem 1 zone audit (good inputs, B_h(v) zones)\n");

    // Use explicit thresholds beyond the degenerate small-n paper
    // values so the structural difference is visible: good = nearest
    // other input at distance >= 4; zones out to h_max = 2.
    let (thresh, h_max) = (4u32, 2u32);
    let mut t = Table::new(
        format!("zone audit (good dist >= {thresh}, zones h <= {h_max})"),
        &[
            "network",
            "n",
            "size",
            "depth",
            "good",
            "min zone",
            "mean min",
            "ball total",
            "thm1 size lb",
            "thm1 depth lb",
        ],
    );
    for nu in [1u32, 2] {
        let ftn = FtNetwork::build(reduced_params(nu));
        audit_row(
            &mut t,
            &format!("N reduced nu={nu}"),
            ftn.net(),
            thresh,
            h_max,
        );
    }
    for &n in &[16usize, 64, 256] {
        for b in [Baseline::Benes, Baseline::Butterfly] {
            let net = b.build(n);
            audit_row(&mut t, &format!("{}({n})", b.name()), &net, thresh, h_max);
        }
    }
    t.print();

    println!(
        "paper: Theorem 1 -- every (1/4,1/2)-n-superconcentrator has\n\
         >= n/2 good inputs, each zone B_h(v) carrying Omega(log n)\n\
         switches, so size >= n(log2 n)^2/2688 and depth >= (log2 n)/16.\n\
         N keeps every input good with wide zones (the grids realise\n\
         exactly the Omega(log n)-per-zone structure); Benes/butterfly\n\
         have NO good inputs at threshold 4 -- the structure Theorem 1\n\
         says fault tolerance requires is simply absent there."
    );
}
