//! CI smoke: flow-kernel portfolio cross-check.
//!
//! Two guarantees, checked over the committed fabric families:
//!
//! 1. **Kernel agreement** — Dinic and FIFO push-relabel return the same
//!    vertex-disjoint-path count on every fabric, on the full
//!    input→output cut and under deterministic random idle masks, and
//!    the `Auto` selector's pick agrees with both (it *is* one of
//!    them). The portfolio is the oracle: every kernel must agree.
//! 2. **Mincost-reroute determinism** — a storm scenario with
//!    `reroute = mincost` produces byte-identical per-seed event
//!    streams (event counts and FNV fingerprints) on 1 and 4 worker
//!    threads, same as the greedy path the determinism goldens pin.
//!
//! Exits nonzero (assert) on any mismatch.

use ft_graph::maxflow::{vertex_disjoint_paths_into, DisjointOptions, FlowKernel, FlowWorkspace};
use ft_sim::{
    run_sweep, Fabric, FaultSpec, HoldingTime, RerouteMode, RetryPolicy, SimConfig, TrafficPattern,
};
use rand::Rng;

fn fabrics() -> Vec<Fabric> {
    vec![
        Fabric::crossbar(4),
        Fabric::clos_strict(2, 3),
        Fabric::clos_rearrangeable(2, 2),
        Fabric::benes(3),
        Fabric::multibutterfly(3, 2, 7),
        Fabric::ftn_reduced(1, 8, 4, 1.0),
    ]
}

fn main() {
    // 1. kernel agreement per fabric family
    let mut fw = FlowWorkspace::new();
    for fabric in fabrics() {
        let net = fabric.net();
        let mut rng = ft_graph::gen::rng(41);
        // full cut first, then deterministic random idle masks
        let masks: Vec<Vec<bool>> = std::iter::once(vec![true; net.graph().num_vertices()])
            .chain((0..8).map(|_| {
                (0..net.graph().num_vertices())
                    .map(|_| rng.random_bool(0.8))
                    .collect()
            }))
            .collect();
        for (i, idle) in masks.iter().enumerate() {
            let count = |kernel: FlowKernel, fw: &mut FlowWorkspace| {
                vertex_disjoint_paths_into(
                    net.graph(),
                    net.inputs(),
                    net.outputs(),
                    |_| true,
                    |v| idle[v.index()],
                    DisjointOptions {
                        count_only: true,
                        limit: None,
                        kernel,
                    },
                    fw,
                )
                .count
            };
            let dinic = count(FlowKernel::Dinic, &mut fw);
            let pr = count(FlowKernel::PushRelabel, &mut fw);
            let auto = count(net.flow_kernel(), &mut fw);
            assert_eq!(
                dinic,
                pr,
                "{}: Dinic {dinic} != push-relabel {pr} (mask {i})",
                fabric.label()
            );
            assert_eq!(auto, dinic, "{}: selector disagrees", fabric.label());
        }
        println!(
            "kernel agreement {}: {} masks, selector = {:?}",
            fabric.label(),
            masks.len(),
            net.flow_kernel()
        );
    }

    // 2. mincost reroute streams are thread-count invariant
    let cfg = SimConfig {
        arrival_rate: 4.0,
        holding: HoldingTime::Exponential { mean: 0.8 },
        pattern: TrafficPattern::Uniform,
        fault_rate: 0.0,
        fault_open_share: 0.5,
        faults: FaultSpec::Storm {
            rate: 0.06,
            window: 2.0,
            stage: None,
        },
        retry: RetryPolicy::OnRepair,
        reroute: RerouteMode::Mincost,
        mttr: 8.0,
        duration: 120.0,
        warmup: 0.0,
        buckets: 4,
    };
    let seeds: Vec<u64> = (1..=6).collect();
    for fabric in [Fabric::clos_strict(2, 3), Fabric::benes(3)] {
        let one = run_sweep(&fabric, &cfg, &seeds, 1);
        let four = run_sweep(&fabric, &cfg, &seeds, 4);
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(
                (a.events, a.fingerprint),
                (b.events, b.fingerprint),
                "{} seed {}: mincost stream diverged across thread counts",
                fabric.label(),
                a.seed
            );
        }
        let moved: u64 = one.iter().map(|o| o.metrics.moved).sum();
        let rerouted: u64 = one.iter().map(|o| o.metrics.rerouted).sum();
        assert!(
            rerouted > 0,
            "{}: storm scenario produced no reroutes — smoke has no teeth",
            fabric.label()
        );
        println!(
            "mincost determinism {}: {} seeds, {} rerouted / {} moved, 1 == 4 threads",
            fabric.label(),
            seeds.len(),
            rerouted,
            moved
        );
    }

    println!("kernel_crosscheck: portfolio agreement and mincost determinism hold");
}
