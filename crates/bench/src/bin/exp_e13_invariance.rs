//! E13 — §3's invariance argument: the exact values of ε and δ do not
//! matter. Substituting an `(ε₂, ε₁)`-1-network for every switch of an
//! `(ε₁, δ)`-network yields an `(ε₂, δ)`-network, at a constant-factor
//! size/depth cost. This is how the paper's single construction at
//! ε = 10⁻⁶ covers every 0 < ε < ½.
//!
//! Regenerates: build the Moore–Shannon gadget for dirty switches
//! (ε₂ = 10%) that emulates a clean switch (ε₁ = 10⁻³); evaluate each
//! gadget copy under ε₂ noise to obtain the *effective* per-switch
//! failure instance on 𝒩; compare routing success of (a) 𝒩 on clean
//! switches, (b) 𝒩 directly on dirty switches, (c) the substituted
//! network on dirty switches — (c) must recover (a), at the printed
//! size/depth blow-up.

use ft_bench::table::{f, sci, Table};
use ft_bench::workload::{mc_threads, profile_label};
use ft_core::network::FtNetwork;
use ft_core::params::Params;
use ft_core::repair::Survivor;
use ft_core::routing;
use ft_failure::montecarlo::estimate_probability_parallel;
use ft_failure::onenet::construct_onenet;
use ft_failure::reliability::Connectivity;
use ft_failure::{FailureInstance, FailureModel, SwitchState};
use ft_graph::Digraph;

/// Samples the effective state of one emulated switch: run the gadget
/// copy under ε₂ noise; open if the terminals lose usable
/// connectivity, closed if closed-failed contacts alone short them.
fn effective_state(
    gadget: &ft_failure::reliability::TwoTerminal,
    model: &FailureModel,
    rng: &mut rand::rngs::SmallRng,
    scratch: &mut FailureInstance,
) -> SwitchState {
    scratch.resample(model, rng, gadget.graph.num_edges());
    if gadget.is_shorted(scratch) {
        SwitchState::Closed
    } else if !gadget.is_connected(scratch, Connectivity::Undirected) {
        SwitchState::Open
    } else {
        SwitchState::Normal
    }
}

/// One trial of the substituted network: emulate every switch, then
/// run the standard repair + greedy-permutation pipeline on 𝒩 with
/// the effective instance.
fn substituted_trial(
    ftn: &FtNetwork,
    gadget: &ft_failure::reliability::TwoTerminal,
    eps2: f64,
    rng: &mut rand::rngs::SmallRng,
) -> bool {
    let model = FailureModel::symmetric(eps2);
    let mut scratch = FailureInstance::perfect(gadget.graph.num_edges());
    let states: Vec<SwitchState> = (0..ftn.net().num_edges())
        .map(|_| effective_state(gadget, &model, rng, &mut scratch))
        .collect();
    let inst = FailureInstance::from_states(states);
    let survivor = Survivor::new(ftn, &inst);
    let mut router = routing::survivor_router(&survivor);
    let perm = routing::random_perm(rng, ftn.n());
    let (stats, _) = routing::route_permutation(&mut router, ftn, &perm);
    stats.all_connected()
}

/// Plain trial at a given ε.
fn plain_trial(ftn: &FtNetwork, eps: f64, rng: &mut rand::rngs::SmallRng) -> bool {
    let model = FailureModel::symmetric(eps);
    let inst = FailureInstance::sample(&model, rng, ftn.net().num_edges());
    let survivor = Survivor::new(ftn, &inst);
    let mut router = routing::survivor_router(&survivor);
    let perm = routing::random_perm(rng, ftn.n());
    let (stats, _) = routing::route_permutation(&mut router, ftn, &perm);
    stats.all_connected()
}

fn main() {
    println!("E13: Section 3 invariance -- dirty switches emulate clean ones\n");

    let eps_dirty = 0.1;
    let eps_clean = 1e-3;
    let gadget_net = construct_onenet(eps_dirty, eps_clean);
    println!(
        "gadget: ({eps_dirty}, {eps_clean})-1-network with {} relays, depth {}",
        gadget_net.size(),
        gadget_net.depth()
    );
    println!(
        "certified per-emulated-switch failure: open {} short {}\n",
        sci(gadget_net.certified.p_open),
        sci(gadget_net.certified.p_short)
    );

    let p = Params::reduced(1, 8, 8, 1.0);
    let ftn = FtNetwork::build(p);
    let trials = 300u64;

    let clean = estimate_probability_parallel(trials, mc_threads(), 0x13A, |_| {
        let ftn = ftn.clone();
        move |rng: &mut rand::rngs::SmallRng| plain_trial(&ftn, eps_clean, rng)
    });
    let dirty = estimate_probability_parallel(trials, mc_threads(), 0x13B, |_| {
        let ftn = ftn.clone();
        move |rng: &mut rand::rngs::SmallRng| plain_trial(&ftn, eps_dirty, rng)
    });
    let substituted = estimate_probability_parallel(trials, mc_threads(), 0x13C, |_| {
        let ftn = ftn.clone();
        let gadget = gadget_net.net.clone();
        move |rng: &mut rand::rngs::SmallRng| substituted_trial(&ftn, &gadget, eps_dirty, rng)
    });

    let mut t = Table::new(
        format!(
            "P[random permutation routed] on {} ({} trials)",
            profile_label(&p),
            trials
        ),
        &[
            "configuration",
            "switch eps",
            "switches",
            "depth",
            "P[routed]",
        ],
    );
    let base_size = ftn.net().size();
    let base_depth = ftn.net().depth();
    t.row(vec![
        "N on clean switches".into(),
        sci(eps_clean),
        base_size.to_string(),
        base_depth.to_string(),
        f(clean.p(), 3),
    ]);
    t.row(vec![
        "N directly on dirty switches".into(),
        sci(eps_dirty),
        base_size.to_string(),
        base_depth.to_string(),
        f(dirty.p(), 3),
    ]);
    t.row(vec![
        "N substituted (gadget per switch)".into(),
        sci(eps_dirty),
        (base_size * gadget_net.size()).to_string(),
        (base_depth * gadget_net.depth()).to_string(),
        f(substituted.p(), 3),
    ]);
    t.print();

    println!(
        "paper: 'To observe the fact that the exact value of eps does not\n\
         affect the asymptotic behaviors ... substitute this network for\n\
         each edge' (Section 3). The substituted row recovers the clean\n\
         row's reliability from 10%-failing switches, paying exactly the\n\
         gadget's constant size/depth factors ({}x switches, {}x depth)\n\
         -- an (eps2, delta)-network from an (eps1, delta)-network, as\n\
         the invariance argument promises.",
        gadget_net.size(),
        gadget_net.depth()
    );
}
