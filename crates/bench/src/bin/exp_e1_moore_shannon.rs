//! E1 — Proposition 1 (Moore–Shannon): explicit `(ε, ε′)`-1-networks
//! with `O((log 1/ε′)²)` switches and `O(log 1/ε′)` depth.
//!
//! Regenerates: the Proposition 1 size/depth claim for a sweep of
//! target reliabilities, the certified (exact series-parallel) failure
//! probabilities, a Monte-Carlo cross-check, and the hammock (directed
//! grid) bound table behind the construction.

use ft_bench::table::{f, sci, yn, Table};
use ft_failure::onenet::{construct_onenet, depth_constant, size_constant};
use ft_failure::reliability::Connectivity;
use ft_failure::{FailureModel, Hammock};

fn main() {
    println!("E1: Moore-Shannon (eps, eps')-1-networks (Proposition 1)\n");

    let mut t = Table::new(
        "Proposition 1: size = c·(log2 1/eps')^2, depth = d·(log2 1/eps')",
        &[
            "eps",
            "eps'",
            "size",
            "depth",
            "c=size/lg^2",
            "d=depth/lg",
            "P[open]",
            "P[short]",
            "certified<eps'",
        ],
    );
    for &eps in &[0.25, 0.1, 0.01] {
        for &ep in &[1e-1, 1e-2, 1e-3, 1e-4, 1e-6] {
            if ep >= eps {
                continue;
            }
            let net = construct_onenet(eps, ep);
            let ok = net.certified.p_open < ep && net.certified.p_short < ep;
            t.row(vec![
                f(eps, 2),
                sci(ep),
                net.size().to_string(),
                net.depth().to_string(),
                f(size_constant(&net, ep), 3),
                f(depth_constant(&net, ep), 3),
                sci(net.certified.p_open),
                sci(net.certified.p_short),
                yn(ok),
            ]);
        }
    }
    t.print();

    // Monte-Carlo cross-check on a mid-size instance
    let eps = 0.1;
    let ep = 1e-3;
    let net = construct_onenet(eps, ep);
    let model = FailureModel::symmetric(eps);
    let (mc_open, mc_short) =
        net.net
            .mc_failure_probs(&model, Connectivity::Undirected, 40_000, 99);
    let mut t = Table::new(
        "MC cross-check of the certified failure pair (eps=0.1, eps'=1e-3)",
        &["mode", "exact(SP calculus)", "MC(40k trials)"],
    );
    t.row(vec![
        "open".into(),
        sci(net.certified.p_open),
        sci(mc_open.p()),
    ]);
    t.row(vec![
        "short".into(),
        sci(net.certified.p_short),
        sci(mc_short.p()),
    ]);
    t.print();

    // Hammock bounds (the paper's Fig. 4 gadget family)
    let mut t = Table::new(
        "(l, w)-hammock analytic failure bounds at eps = 0.05",
        &["l", "w", "switches", "P[open]<=", "P[short]<="],
    );
    let model = FailureModel::symmetric(0.05);
    for &(l, w) in &[(4usize, 8usize), (8, 8), (8, 16), (16, 16), (32, 16)] {
        let h = Hammock::new(l, w);
        let b = h.bounds(&model);
        t.row(vec![
            l.to_string(),
            w.to_string(),
            h.size().to_string(),
            sci(b.p_open),
            sci(b.p_short),
        ]);
    }
    t.print();

    println!(
        "paper: Proposition 1 promises C(eps)(log2 1/eps')^2 switches and\n\
         d(eps)·log2(1/eps') depth; the c and d columns above must stay\n\
         bounded as eps' sweeps five orders of magnitude."
    );
}
