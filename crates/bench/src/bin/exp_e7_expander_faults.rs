//! E7 — Lemmas 4–5: the expander outlet-fault tail. One expanding
//! graph with `t = 64·4^μ` outlets (each incident to 20 switches)
//! exceeds `0.07·4^μ` faulty outlets with probability at most
//! `exp(M·ln(1 + 2ε(e−1)) − 0.07·4^μ)` ≈ `e^{−0.06·4^μ}` at
//! ε = 10⁻⁶; the union over 𝓜's whole family stays o(1).
//!
//! Regenerates: the Lemma 4 tail at every scale of the paper-exact
//! family for a sweep of ε (Monte Carlo vs the analytic bound), the
//! Lemma 5 family union bound, and a measured faulty-outlet histogram
//! on a real sampled degree-10 expander inside 𝒩.

use ft_bench::table::{f, sci, Table};
use ft_bench::workload::mc_threads;
use ft_core::params::Params;
use ft_core::theory;
use ft_failure::montecarlo::estimate_probability_parallel;
use ft_failure::{FailureInstance, FailureModel};
use rand::Rng;

/// MC of the Lemma 4 event on the exact model: `t` outlets, each
/// faulty iff any of its `inc` incident switches failed (each switch
/// fails with probability 2ε), count > budget.
fn mc_outlet_tail(t: usize, inc: usize, eps: f64, budget: usize, trials: u64) -> f64 {
    let p_faulty = 1.0 - (1.0 - 2.0 * eps).powi(inc as i32);
    let est = estimate_probability_parallel(trials, mc_threads(), 0xE7, |_| {
        move |rng: &mut rand::rngs::SmallRng| {
            let mut faulty = 0usize;
            for _ in 0..t {
                if rng.random::<f64>() < p_faulty {
                    faulty += 1;
                    if faulty > budget {
                        return true;
                    }
                }
            }
            false
        }
    });
    est.p()
}

fn main() {
    println!("E7: Lemmas 4-5 expander outlet-fault tails\n");

    let mut t = Table::new(
        "Lemma 4: P[faulty outlets > 0.07*4^mu], t = 64*4^mu, 20 switches/outlet",
        &[
            "mu",
            "t",
            "budget",
            "eps",
            "MC (4000 trials)",
            "analytic tail",
        ],
    );
    for mu in 0..=3u32 {
        let tt = 64usize << (2 * mu);
        let budget = (0.07 * 4f64.powi(mu as i32)).floor() as usize;
        for &eps in &[1e-6, 1e-4, 5e-4, 2e-3] {
            let mc = mc_outlet_tail(tt, 20, eps, budget, 4000);
            t.row(vec![
                mu.to_string(),
                tt.to_string(),
                budget.to_string(),
                sci(eps),
                f(mc, 4),
                sci(theory::lemma4_paper_tail(mu, eps)),
            ]);
        }
    }
    t.print();

    let mut t = Table::new(
        "Lemma 5: union over the whole expander family of M_l",
        &["nu", "gamma", "eps", "family bound"],
    );
    for nu in [2u32, 4] {
        let p = Params::paper_exact(nu);
        for &eps in &[1e-6, 1e-4, 1e-3] {
            t.row(vec![
                nu.to_string(),
                p.gamma.to_string(),
                sci(eps),
                sci(theory::lemma5_family_bound(&p, eps)),
            ]);
        }
    }
    t.print();

    // Measured faulty-outlet counts on a materialized expander gap of
    // a built (reduced) network: group sizes F*4^(gamma+k).
    let p = Params::reduced(2, 8, 8, 1.0);
    let ftn = ft_core::network::FtNetwork::build(p);
    let m = ft_graph::Digraph::num_edges(ftn.net());
    let mut t = Table::new(
        "measured faulty vertices per middle group (built network, 300 trials)",
        &[
            "eps",
            "stage",
            "group size",
            "mean faulty",
            "max faulty",
            "budget(0.07/64)",
        ],
    );
    for &eps in &[1e-3, 1e-2] {
        let model = FailureModel::symmetric(eps);
        let mut rng = ft_graph::gen::rng(0x7E7);
        let nu = p.nu as usize;
        for s in [nu, 2 * nu] {
            let (count, size) = ftn.middle_groups(s);
            let mut sum = 0usize;
            let mut max = 0usize;
            let trials = 300;
            for _ in 0..trials {
                let inst = FailureInstance::sample(&model, &mut rng, m);
                let survivor = ft_core::repair::Survivor::new(&ftn, &inst);
                for g in 0..count {
                    let range = ftn.middle_group_range(s, g);
                    let faulty = range.filter(|&i| !survivor.alive[i as usize]).count();
                    sum += faulty;
                    max = max.max(faulty);
                }
            }
            t.row(vec![
                sci(eps),
                s.to_string(),
                size.to_string(),
                f(sum as f64 / (trials * count) as f64, 3),
                max.to_string(),
                format!("{}", (0.07 / 64.0 * size as f64)),
            ]);
        }
    }
    t.print();

    println!(
        "paper: at eps = 1e-6 the tail is e^(-0.06*4^mu) -- the MC column\n\
         records zero events, as it must. The eps sweep shows the tail\n\
         activating exactly where ln(1+2eps(e-1))*20t crosses the 0.07t/64\n\
         budget, matching the analytic column. The measured table shows\n\
         why reduced profiles need looser certification budgets: at\n\
         F = 8 a group has only 32-512 vertices, so the paper's\n\
         0.07/64 ~ 0.1% budget rounds to zero."
    );
}
