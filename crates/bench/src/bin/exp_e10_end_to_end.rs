//! E10 — Theorem 2 end-to-end: 𝒩 survives random switch failures and
//! still routes — it contains a nonblocking network w.h.p. — while
//! every Θ(n log n) baseline collapses under the same failure rates.
//!
//! Protocol fairness: each network routes with its *native* protocol.
//! 𝒩 and the strict Clos are strictly nonblocking, so they route
//! greedily request-by-request (§4 observation 3). Beneš routes with
//! the looping algorithm, the butterfly with its unique paths, the
//! crossbar with its direct switches; for those, a trial succeeds when
//! the natively-routed circuit set survives the failure instance
//! (every switch on every path normal). Success = the full random
//! permutation is carried.

use ft_bench::table::{f, sci, Table};
use ft_bench::workload::{mc_threads, profile_label, repair_staged, sturdy_params};
use ft_core::certify::certify_with_budget;
use ft_core::network::FtNetwork;
use ft_core::repair::Survivor;
use ft_core::routing;
use ft_failure::montecarlo::estimate_probability_parallel;
use ft_failure::{FailureInstance, FailureModel};
use ft_graph::gen::random_permutation;
use ft_graph::{Digraph, VertexId};
use ft_networks::{Benes, Butterfly, CircuitRouter, Clos};

const TRIALS: u64 = 300;

/// One 𝒩 trial: failures → repair → greedily route a random
/// permutation in full.
fn ftn_trial(ftn: &FtNetwork, eps: f64, rng: &mut rand::rngs::SmallRng) -> bool {
    let model = FailureModel::symmetric(eps);
    let inst = FailureInstance::sample(&model, rng, ftn.net().num_edges());
    let survivor = Survivor::new(ftn, &inst);
    let mut router = routing::survivor_router(&survivor);
    let perm = routing::random_perm(rng, ftn.n());
    let (stats, _) = routing::route_permutation(&mut router, ftn, &perm);
    stats.all_connected()
}

/// Do the natively-routed vertex-disjoint paths survive the instance?
/// Conservative repair semantics: every switch on a path must be
/// normal (checked edge-by-edge along consecutive path vertices).
fn paths_survive(g: &impl Digraph, inst: &FailureInstance, paths: &[Vec<VertexId>]) -> bool {
    for p in paths {
        for w in p.windows(2) {
            let ok = g
                .out_edge_slice(w[0])
                .iter()
                .any(|&e| g.edge_head(e) == w[1] && inst.is_normal(e));
            if !ok {
                return false;
            }
        }
    }
    true
}

fn main() {
    println!("E10: Theorem 2 end-to-end -- N routes through failures, baselines collapse\n");

    let eps_sweep = [1e-5, 1e-4, 1e-3, 5e-3, 2e-2];

    for nu in [1u32, 2] {
        let p = sturdy_params(nu);
        let ftn = FtNetwork::build(p);
        let n = ftn.n();
        let k = n.trailing_zeros();
        let mut t = Table::new(
            format!("P[random permutation carried] (n = {n}, {TRIALS} trials, native protocols)"),
            &[
                "network", "protocol", "size", "eps=1e-5", "1e-4", "1e-3", "5e-3", "2e-2",
            ],
        );

        // 𝒩: greedy on the repaired survivor
        let mut row = vec![
            format!("N {}", profile_label(&p)),
            "greedy".into(),
            ftn.net().size().to_string(),
        ];
        for &eps in &eps_sweep {
            let est = estimate_probability_parallel(TRIALS, mc_threads(), 0xE10, |_| {
                let ftn = ftn.clone();
                move |rng: &mut rand::rngs::SmallRng| ftn_trial(&ftn, eps, rng)
            });
            row.push(f(est.p(), 3));
        }
        t.row(row);

        // Beneš: looping-algorithm routing, then survival of the routed set
        let benes = Benes::new(k);
        let mut row = vec![
            format!("benes({n})"),
            "looping".into(),
            benes.net.size().to_string(),
        ];
        for &eps in &eps_sweep {
            let model = FailureModel::symmetric(eps);
            let est = estimate_probability_parallel(TRIALS, mc_threads(), 0xB10, |_| {
                let benes = benes.clone();
                move |rng: &mut rand::rngs::SmallRng| {
                    let perm = random_permutation(rng, benes.terminals());
                    let paths = benes.route_permutation(&perm);
                    let inst = FailureInstance::sample(&model, rng, benes.net.size());
                    paths_survive(&benes.net, &inst, &paths)
                }
            });
            row.push(f(est.p(), 3));
        }
        t.row(row);

        // Butterfly: unique paths
        let bf = Butterfly::new(k);
        let mut row = vec![
            format!("butterfly({n})"),
            "unique".into(),
            bf.net.size().to_string(),
        ];
        for &eps in &eps_sweep {
            let model = FailureModel::symmetric(eps);
            let est = estimate_probability_parallel(TRIALS, mc_threads(), 0xBF10, |_| {
                let bf = bf.clone();
                move |rng: &mut rand::rngs::SmallRng| {
                    let perm = random_permutation(rng, bf.terminals());
                    let paths: Vec<Vec<VertexId>> = perm
                        .iter()
                        .enumerate()
                        .map(|(x, &y)| bf.unique_path(x as u32, y))
                        .collect();
                    let inst = FailureInstance::sample(&model, rng, bf.net.size());
                    paths_survive(&bf.net, &inst, &paths)
                }
            });
            row.push(f(est.p(), 3));
        }
        t.row(row);

        // Strict Clos: greedy on the repaired survivor (its native
        // protocol — m = 2n−1 makes greedy complete fault-free)
        let g = 1usize << (k / 2);
        let clos = Clos::strictly_nonblocking(g, n / g);
        let mut row = vec![
            format!("clos-strict({n})"),
            "greedy".into(),
            clos.net.size().to_string(),
        ];
        for &eps in &eps_sweep {
            let model = FailureModel::symmetric(eps);
            let est = estimate_probability_parallel(TRIALS, mc_threads(), 0xC110, |_| {
                let net = clos.net.clone();
                move |rng: &mut rand::rngs::SmallRng| {
                    let inst = FailureInstance::sample(&model, rng, net.size());
                    let alive = repair_staged(&net, &inst);
                    let mut router = CircuitRouter::with_alive_mask(&net, alive);
                    let perm = random_permutation(rng, net.inputs().len());
                    perm.iter().enumerate().all(|(i, &o)| {
                        router
                            .connect(net.inputs()[i], net.outputs()[o as usize])
                            .is_ok()
                    })
                }
            });
            row.push(f(est.p(), 3));
        }
        t.row(row);

        // Crossbar: each pair's direct switch must be normal
        let xbar = ft_networks::crossbar(n);
        let mut row = vec![
            format!("crossbar({n})"),
            "direct".into(),
            xbar.size().to_string(),
        ];
        for &eps in &eps_sweep {
            let model = FailureModel::symmetric(eps);
            let est = estimate_probability_parallel(TRIALS, mc_threads(), 0xBA10, |_| {
                let xbar = xbar.clone();
                move |rng: &mut rand::rngs::SmallRng| {
                    let inst = FailureInstance::sample(&model, rng, xbar.size());
                    let perm = random_permutation(rng, xbar.inputs().len());
                    let paths: Vec<Vec<VertexId>> = perm
                        .iter()
                        .enumerate()
                        .map(|(i, &o)| vec![xbar.inputs()[i], xbar.outputs()[o as usize]])
                        .collect();
                    paths_survive(&xbar, &inst, &paths)
                }
            });
            row.push(f(est.p(), 3));
        }
        t.row(row);
        t.print();
    }

    // certification + churn on 𝒩 (nu = 2)
    let p = sturdy_params(2);
    let ftn = FtNetwork::build(p);
    let mut t = Table::new(
        "N nu=2: certification and churn (300 trials each)",
        &[
            "eps",
            "P[certified (budget 10%)]",
            "P[perm routed]",
            "P[churn 200 steps no block]",
        ],
    );
    for &eps in &eps_sweep {
        let m = ftn.net().num_edges();
        let cert = estimate_probability_parallel(TRIALS, mc_threads(), 0xC10, |_| {
            let ftn = ftn.clone();
            let model = FailureModel::symmetric(eps);
            move |rng: &mut rand::rngs::SmallRng| {
                let inst = FailureInstance::sample(&model, rng, m);
                certify_with_budget(&ftn, &inst, 0.10).implies_nonblocking()
            }
        });
        let route = estimate_probability_parallel(TRIALS, mc_threads(), 0xD10, |_| {
            let ftn = ftn.clone();
            move |rng: &mut rand::rngs::SmallRng| ftn_trial(&ftn, eps, rng)
        });
        let churn = estimate_probability_parallel(TRIALS, mc_threads(), 0xF10, |_| {
            let ftn = ftn.clone();
            let model = FailureModel::symmetric(eps);
            move |rng: &mut rand::rngs::SmallRng| {
                let inst = FailureInstance::sample(&model, rng, m);
                let survivor = Survivor::new(&ftn, &inst);
                let mut router = routing::survivor_router(&survivor);
                let stats = routing::churn(&mut router, &ftn, 200, 0.6, rng);
                stats.blocked == 0
            }
        });
        t.row(vec![
            sci(eps),
            f(cert.p(), 3),
            f(route.p(), 3),
            f(churn.p(), 3),
        ]);
    }
    t.print();

    println!(
        "paper: Theorem 2 -- N is a (1e-6, delta)-nonblocking network of\n\
         size O(n log^2 n). N holds ~1.0 success 1-2 orders of magnitude\n\
         in eps beyond where Benes/butterfly/Clos collapse, paying the\n\
         log-factor size premium the Section 5 lower bound proves\n\
         necessary. The crossbar survives single permutations longer\n\
         (unique 1-switch paths) but is quadratically larger and fails\n\
         the (eps, delta) definitions outright: its terminals sit one\n\
         switch apart, so a single closed failure shorts a terminal\n\
         pair (E3/E9), and it has no spare paths -- P[carried] =\n\
         (1-2eps)^n exactly, visibly decaying in the table while N\n\
         stays at 1.0. Certification is conservative: it drops before\n\
         routing does (the certificate's per-group budgets bind long\n\
         before actual access majorities are lost)."
    );
}
