//! CI smoke: sliced-vs-scalar Monte Carlo cross-check.
//!
//! Runs the bit-sliced estimators and their scalar references at the
//! same trial budget and seed, on 1 and 4 threads, and demands **exact
//! estimate agreement** — the sparse-regime guarantee of the per-lane
//! seeding discipline (lane *i* of a block is bit-identical to the
//! *i*-th consecutive scalar sample from the block RNG), plus the
//! block-partition guarantee that thread counts never change results.
//! Exits nonzero (assert) on any mismatch.

use ft_failure::montecarlo::{
    mc_event_probability_parallel, mc_sliced_event_probability_parallel, LaneVerdict, TrialScratch,
};
use ft_failure::reliability::{bridge, Connectivity};
use ft_failure::{FailureInstance, FailureModel, SlicedFailureMask};
use ft_graph::ids::v;
use ft_graph::sliced::sliced_reach_into;
use ft_graph::traversal::{bfs_into, Direction};
use ft_graph::DiGraph;
use ft_sim::{pair_blocking_estimate, pair_blocking_estimate_scalar, Fabric};

fn main() {
    let trials = 20_070; // non-multiple of 64: exercises the scalar tail
    let seed = 17;
    let model = FailureModel::new(0.02, 0.01); // sparse regime: exact equality holds

    // 1. mc_failure_probs: sliced pipeline vs scalar reference
    let net = bridge();
    for conn in [Connectivity::Undirected, Connectivity::Directed] {
        let sliced = net.mc_failure_probs(&model, conn, trials, seed);
        let scalar = net.mc_failure_probs_scalar(&model, conn, trials, seed);
        assert_eq!(sliced, scalar, "mc_failure_probs {conn:?}");
        println!(
            "mc_failure_probs {conn:?}: p_open {:.6} p_short {:.6} (sliced == scalar)",
            sliced.0.p(),
            sliced.1.p()
        );
    }

    // 2. the generic driver: lane-deciding event vs all-lanes-undecided
    //    fallback, each on 1 and 4 threads — all four exactly equal
    let mut g = DiGraph::new();
    g.add_vertices(3);
    g.add_edge(v(0), v(1));
    g.add_edge(v(1), v(2));
    fn lane_event(g: &DiGraph, s: &SlicedFailureMask, scratch: &mut TrialScratch) -> LaneVerdict {
        sliced_reach_into(
            g,
            &[(v(0), !0)],
            Direction::Forward,
            |e| s.usable_word(e.index()),
            |_| !0,
            &mut scratch.sws,
        );
        LaneVerdict::all(scratch.sws.reached_lanes(v(2)))
    }
    fn scalar_event(g: &DiGraph, inst: &FailureInstance, scratch: &mut TrialScratch) -> bool {
        bfs_into(
            g,
            &[v(0)],
            Direction::Forward,
            |e| inst.is_usable(e),
            |_| true,
            &mut scratch.ws,
        );
        scratch.ws.reached(v(2))
    }
    let mut estimates = Vec::new();
    for threads in [1, 4] {
        estimates.push(mc_sliced_event_probability_parallel(
            &g,
            &model,
            trials,
            threads,
            seed,
            lane_event,
            scalar_event,
        ));
        estimates.push(mc_event_probability_parallel(
            &g,
            &model,
            trials,
            threads,
            seed,
            scalar_event,
        ));
    }
    for e in &estimates[1..] {
        assert_eq!(
            *e, estimates[0],
            "sliced/fallback x threads estimates diverged: {estimates:?}"
        );
    }
    println!(
        "mc_event chain: p {:.6} across sliced/fallback x 1/4 threads",
        estimates[0].p()
    );

    // 3. the ft-sim snapshot estimator, including the ftn Survivor
    //    scalar-fallback path
    for fabric in [Fabric::clos_strict(2, 3), Fabric::ftn_reduced(1, 8, 4, 1.0)] {
        let sliced = pair_blocking_estimate(&fabric, &model, trials, seed);
        let scalar = pair_blocking_estimate_scalar(&fabric, &model, trials, seed);
        assert_eq!(sliced, scalar, "pair_blocking {}", fabric.label());
        println!(
            "pair_blocking {}: p {:.6} (sliced == scalar)",
            fabric.label(),
            sliced.p()
        );
    }

    println!("mc_crosscheck: all sliced estimates exactly equal their scalar references");
}
