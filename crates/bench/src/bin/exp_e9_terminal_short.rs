//! E9 — Lemma 7: the probability that some pair of 𝒩's terminals
//! contracts into one electrical node is at most `c₂ν²(160ε)^{2ν}` —
//! a short needs a whole path of ≥ 2ν closed switches.
//!
//! Regenerates: the minimum terminal-to-terminal undirected distance
//! (the `2ν` in the exponent), Monte-Carlo shorting probabilities
//! across closed-failure rates, and the Lemma 7 analytic bound.

use ft_bench::table::{f, sci, Table};
use ft_bench::workload::{all_terminals, mc_threads, profile_label, reduced_params};
use ft_core::network::FtNetwork;
use ft_core::theory;
use ft_failure::contraction::terminals_shorted;
use ft_failure::montecarlo::estimate_probability_parallel;
use ft_failure::{FailureInstance, FailureModel};
use ft_graph::distance::nearest_other_terminal;
use ft_graph::Digraph;

fn main() {
    println!("E9: Lemma 7 terminal shorting\n");

    let mut t = Table::new(
        "minimum terminal pair distance (the 2nu exponent)",
        &["profile", "n", "min pair distance", "2nu"],
    );
    for nu in [1u32, 2] {
        let ftn = FtNetwork::build(reduced_params(nu));
        let terms = all_terminals(&ftn);
        let d = nearest_other_terminal(ftn.net(), &terms);
        t.row(vec![
            profile_label(ftn.params()),
            ftn.n().to_string(),
            d.iter().min().unwrap().to_string(),
            (2 * nu).to_string(),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "P[some terminal pair shorted] (MC 1000 trials, eps1 = 0)",
        &["profile", "eps2", "MC P[short]", "lemma7 bound"],
    );
    for nu in [1u32, 2] {
        let p = reduced_params(nu);
        let ftn = FtNetwork::build(p);
        let m = ftn.net().num_edges();
        let terms = all_terminals(&ftn);
        for &eps in &[0.05, 0.1, 0.2, 0.3, 0.4] {
            let model = FailureModel::new(0.0, eps);
            let est = estimate_probability_parallel(1000, mc_threads(), 0xE9, |_| {
                let ftn = ftn.clone();
                let terms = terms.clone();
                move |rng: &mut rand::rngs::SmallRng| {
                    let inst = FailureInstance::sample(&model, rng, m);
                    terminals_shorted(ftn.net(), &inst, &terms)
                }
            });
            t.row(vec![
                profile_label(&p),
                f(eps, 2),
                f(est.p(), 4),
                sci(theory::lemma7_shorting_bound(&p, eps)),
            ]);
        }
    }
    t.print();

    println!(
        "paper: Lemma 7's bound c2 nu^2 (160 eps)^(2nu) targets the\n\
         eps -> 0 regime (at eps = 1e-6 it is ~1e-6 for nu = 2 and the\n\
         MC count is exactly zero); the stress sweep shows the MC\n\
         probability rising only once eps2 is large enough that whole\n\
         2nu-switch paths close -- deeper networks (larger nu) short\n\
         later, exactly the (160 eps)^(2nu) scaling."
    );
}
