//! E3 — Lemma 2: in any O(n log n)-size network the inputs are so
//! close together that closed failures short a pair with probability
//! ≥ ½ at ε = ¼ — which is why Θ(n log n) networks cannot be
//! fault-tolerant and the (ε, δ) classes need Ω(n (log n)²).
//!
//! Regenerates: nearest-other-input distances on Beneš/butterfly (the
//! O(n log n) baselines) versus 𝒩; the Lemma 2 pipeline's
//! edge-disjoint short input-to-input paths; the implied analytic
//! no-short bound; and a Monte-Carlo estimate of the actual shorting
//! probability at ε = ¼.

use ft_bench::table::{f, sci, Table};
use ft_bench::workload::{mc_threads, reduced_params, Baseline};
use ft_core::lowerbound::short_terminal_paths;
use ft_core::network::FtNetwork;
use ft_core::theory;
use ft_failure::contraction::terminals_shorted;
use ft_failure::montecarlo::estimate_probability_parallel;
use ft_failure::{FailureInstance, FailureModel};
use ft_graph::distance::nearest_other_terminal;
use ft_graph::StagedNetwork;

fn dist_stats(net: &StagedNetwork) -> (u32, f64) {
    let d = nearest_other_terminal(net, net.inputs());
    let min = *d.iter().min().unwrap();
    let mean = d.iter().map(|&x| x as f64).sum::<f64>() / d.len() as f64;
    (min, mean)
}

fn mc_short(net: &StagedNetwork, eps_close: f64, trials: u64) -> f64 {
    let m = net.graph().num_edges();
    let model = FailureModel::new(0.0, eps_close);
    let terminals: Vec<_> = net.inputs().to_vec();
    let est = estimate_probability_parallel(trials, mc_threads(), 0xE3, |_| {
        let net = net.clone();
        let terminals = terminals.clone();
        move |rng: &mut rand::rngs::SmallRng| {
            let inst = FailureInstance::sample(&model, rng, m);
            terminals_shorted(&net, &inst, &terminals)
        }
    });
    est.p()
}

fn main() {
    println!("E3: Lemma 2 -- input closeness forces shorting at eps=1/4\n");

    let mut t = Table::new(
        "input-to-input distances and Lemma 2 pipeline",
        &[
            "network",
            "n",
            "size",
            "min dist",
            "mean dist",
            "thresh (lg n)/8",
            "l2 paths",
            "max len",
            "P[no short] bound",
            "MC P[short] e2=1/4",
        ],
    );
    for &n in &[8usize, 16, 32, 64] {
        for b in [Baseline::Benes, Baseline::Butterfly] {
            let net = b.build(n);
            let (dmin, dmean) = dist_stats(&net);
            let max_j = theory::lemma2_distance_threshold(n).ceil() as u32 + 2;
            let l2 = short_terminal_paths(&net, net.inputs(), max_j);
            let bound =
                theory::lemma2_no_short_probability(l2.paths.len(), l2.max_len.max(1), 0.25);
            let mc = mc_short(&net, 0.25, 2000);
            t.row(vec![
                b.name().into(),
                n.to_string(),
                net.size().to_string(),
                dmin.to_string(),
                f(dmean, 2),
                f(theory::lemma2_distance_threshold(n), 2),
                l2.paths.len().to_string(),
                l2.max_len.to_string(),
                sci(bound),
                f(mc, 4),
            ]);
        }
    }
    t.print();

    // 𝒩 for contrast: the grids push input-input distances up, so the
    // shorting threshold moves orders of magnitude in eps2 (at the
    // Lemma 2 stress point eps2 = 1/4 EVERY network of this size
    // shorts; the crossover lives at moderate eps2)
    let mut t = Table::new(
        "contrast: P[input pair shorts] across eps2 (N vs Benes, n = 16)",
        &[
            "network", "min dist", "e2=0.005", "e2=0.02", "e2=0.05", "e2=0.1",
        ],
    );
    let eps_sweep = [0.005, 0.02, 0.05, 0.1];
    {
        let ftn = FtNetwork::build(reduced_params(2));
        let (dmin, _) = dist_stats(ftn.net());
        let mut row = vec![format!("N reduced nu=2"), dmin.to_string()];
        for &e in &eps_sweep {
            row.push(f(mc_short(ftn.net(), e, 1000), 4));
        }
        t.row(row);
    }
    {
        let net = Baseline::Benes.build(16);
        let (dmin, _) = dist_stats(&net);
        let mut row = vec!["benes(16)".into(), dmin.to_string()];
        for &e in &eps_sweep {
            row.push(f(mc_short(&net, e, 1000), 4));
        }
        t.row(row);
    }
    t.print();

    println!(
        "paper: Lemma 2 shows a (1/4,1/2)-superconcentrator needs >= n/2\n\
         inputs pairwise further than (log2 n)/8 apart. Benes/butterfly\n\
         inputs sit at distance 2-4 (two inputs share a first-stage\n\
         switch), the Lemma 2 pipeline extracts many short disjoint\n\
         input-input paths, and at eps2 = 1/4 Monte Carlo shorting\n\
         probabilities are near 1 -- these networks cannot tolerate\n\
         closed failures. N's grids push the distances up and the MC\n\
         shorting probability down, at a log^2 n size premium."
    );
}
