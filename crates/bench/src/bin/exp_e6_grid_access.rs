//! E6 — Lemma 3: an idle input keeps access to strictly more than
//! half of its grid's boundary stage w.h.p.; the failure probability
//! is at most `c₁ν(144ε)^l` (`l` = grid rows).
//!
//! Regenerates: Monte-Carlo estimates of the grid majority-access
//! failure probability across ε and grid sizes, next to the Lemma 3
//! analytic bound, plus the access-count distribution that shows the
//! hammock's sharp threshold.

use ft_bench::table::{f, sci, Table};
use ft_bench::workload::{mc_threads, profile_label};
use ft_core::access::grid_access_count;
use ft_core::network::{FtNetwork, Side};
use ft_core::params::Params;
use ft_core::repair::Survivor;
use ft_core::theory;
use ft_failure::montecarlo::estimate_probability_parallel;
use ft_failure::{FailureInstance, FailureModel};
use ft_graph::Digraph;

/// P[input 0 loses strict-majority access to its grid boundary].
fn mc_grid_failure(ftn: &FtNetwork, eps: f64, trials: u64) -> f64 {
    let m = ftn.net().num_edges();
    let l = ftn.rows();
    let model = FailureModel::symmetric(eps);
    let est = estimate_probability_parallel(trials, mc_threads(), 0xE6, |_| {
        let ftn = ftn.clone();
        move |rng: &mut rand::rngs::SmallRng| {
            let inst = FailureInstance::sample(&model, rng, m);
            let survivor = Survivor::new(&ftn, &inst);
            let alive = survivor.routable_alive();
            let c = grid_access_count(&ftn, &alive, Side::Input, 0);
            2 * c <= l
        }
    });
    est.p()
}

fn main() {
    println!("E6: Lemma 3 grid majority access\n");

    let profiles = [
        Params::reduced(1, 8, 8, 1.0),  // l = 32
        Params::reduced(2, 8, 8, 1.0),  // l = 32, deeper grid
        Params::reduced(2, 16, 8, 1.0), // l = 64
    ];
    let mut t = Table::new(
        "P[grid access <= l/2] (MC, 2000 trials) vs Lemma 3 bound",
        &["profile", "l", "eps", "MC failure", "lemma3 bound"],
    );
    for p in profiles {
        let ftn = FtNetwork::build(p);
        for &eps in &[0.005, 0.02, 0.05, 0.1, 0.15] {
            let mc = mc_grid_failure(&ftn, eps, 2000);
            t.row(vec![
                profile_label(&p),
                ftn.rows().to_string(),
                f(eps, 3),
                f(mc, 4),
                sci(theory::lemma3_grid_failure_bound(&p, eps)),
            ]);
        }
    }
    t.print();

    // Access-count distribution at one stressed point: the hammock
    // degrades gracefully (median stays near l) until it collapses.
    let p = Params::reduced(2, 8, 8, 1.0);
    let ftn = FtNetwork::build(p);
    let m = ftn.net().num_edges();
    let mut t = Table::new(
        "grid access count distribution (nu=2, F=8, d=8: l=32, 400 trials)",
        &["eps", "min", "p25", "median", "p75", "max"],
    );
    for &eps in &[0.01, 0.05, 0.1, 0.2] {
        let model = FailureModel::symmetric(eps);
        let mut counts: Vec<usize> = Vec::with_capacity(400);
        let mut rng = ft_graph::gen::rng(0x6E6);
        for _ in 0..400 {
            let inst = FailureInstance::sample(&model, &mut rng, m);
            let survivor = Survivor::new(&ftn, &inst);
            let alive = survivor.routable_alive();
            counts.push(grid_access_count(&ftn, &alive, Side::Input, 0));
        }
        counts.sort_unstable();
        t.row(vec![
            f(eps, 2),
            counts[0].to_string(),
            counts[100].to_string(),
            counts[200].to_string(),
            counts[300].to_string(),
            counts[399].to_string(),
        ]);
    }
    t.print();

    println!(
        "paper: Lemma 3 bounds the failure by c1*nu*(144 eps)^l -- at the\n\
         paper's eps = 1e-6 and l = 64*4^gamma >= 4096 the bound (and the\n\
         MC estimate) is indistinguishable from zero, so the sweep uses\n\
         stress eps. The bound is vacuous (>= 1) once 144 eps >= 1; the\n\
         MC columns show the true threshold sits near eps ~ 1/10 for\n\
         small grids: below it access fails with probability -> 0, in\n\
         the paper's asymptotic regime doubly-exponentially fast in l."
    );
}
