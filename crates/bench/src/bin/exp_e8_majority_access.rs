//! E8 — Lemma 6 / Corollary 2: 𝒩ₗ (and its mirror) is a
//! majority-access network — every idle terminal keeps access to a
//! strict majority of the stage-2ν vertices, for any pattern of busy
//! circuits.
//!
//! Regenerates: Monte-Carlo majority-access probabilities under
//! random failures *and* random busy circuits (both directions — the
//! Corollary 2 mirror), the per-stage access profile that the Lemma 6
//! induction lower-bounds, and the Lemma 6 analytic bound.

use ft_bench::table::{f, sci, Table};
use ft_bench::workload::{mc_threads, profile_label};
use ft_core::access::{access_profile, busy_mask, majority_access_report};
use ft_core::network::{FtNetwork, Side};
use ft_core::params::Params;
use ft_core::repair::Survivor;
use ft_core::routing;
use ft_core::theory;
use ft_failure::montecarlo::estimate_probability_parallel;
use ft_failure::{FailureInstance, FailureModel};
use ft_graph::Digraph;
use rand::Rng;

/// One trial: sample failures, repair, route a random partial
/// permutation (each pair kept with probability ½) as the busy
/// pattern, then test majority access of every idle terminal on both
/// sides.
fn trial(ftn: &FtNetwork, eps: f64, rng: &mut rand::rngs::SmallRng) -> bool {
    let m = ftn.net().num_edges();
    let model = FailureModel::symmetric(eps);
    let inst = FailureInstance::sample(&model, rng, m);
    let survivor = Survivor::new(ftn, &inst);
    let alive = survivor.routable_alive();
    // busy pattern: greedy-route a random partial permutation
    let mut router = routing::survivor_router(&survivor);
    let perm = routing::random_perm(rng, ftn.n());
    let mut paths: Vec<Vec<ft_graph::VertexId>> = Vec::new();
    for (i, &o) in perm.iter().enumerate() {
        if rng.random::<f64>() < 0.5 {
            continue;
        }
        if let Ok(id) = router.connect(ftn.input(i), ftn.output(o as usize)) {
            paths.push(router.session_path(id).unwrap().to_vec());
        }
    }
    let busy = busy_mask(ftn.net().num_vertices(), &paths);
    let fwd = majority_access_report(ftn, &alive, &busy, Side::Input);
    let bwd = majority_access_report(ftn, &alive, &busy, Side::Output);
    fwd.all_majority() && bwd.all_majority()
}

fn main() {
    println!("E8: Lemma 6 majority access under faults + busy circuits\n");

    let mut t = Table::new(
        "P[majority access holds, both sides] (MC 400 trials)",
        &["profile", "eps", "MC P[holds]", "1 - lemma6 bound"],
    );
    for p in [Params::reduced(1, 8, 8, 1.0), Params::reduced(2, 8, 8, 1.0)] {
        let ftn = FtNetwork::build(p);
        for &eps in &[1e-4, 1e-3, 5e-3, 2e-2, 5e-2] {
            let est = estimate_probability_parallel(400, mc_threads(), 0xE8, |_| {
                let ftn = ftn.clone();
                move |rng: &mut rand::rngs::SmallRng| trial(&ftn, eps, rng)
            });
            t.row(vec![
                profile_label(&p),
                sci(eps),
                f(est.p(), 4),
                sci(1.0 - theory::lemma6_majority_failure_bound(&p, eps)),
            ]);
        }
    }
    t.print();

    // The Lemma 6 induction, visualised: per-stage access counts of
    // one idle input while half the terminals are busy.
    let p = Params::reduced(2, 8, 8, 1.0);
    let ftn = FtNetwork::build(p);
    let mut rng = ft_graph::gen::rng(0x8E8);
    let model = FailureModel::symmetric(1e-3);
    let inst = FailureInstance::sample(&model, &mut rng, ftn.net().num_edges());
    let survivor = Survivor::new(&ftn, &inst);
    let alive = survivor.routable_alive();
    let mut router = routing::survivor_router(&survivor);
    let mut paths = Vec::new();
    for i in 1..ftn.n() / 2 {
        if let Ok(id) = router.connect(ftn.input(i), ftn.output(i)) {
            paths.push(router.session_path(id).unwrap().to_vec());
        }
    }
    let busy = busy_mask(ftn.net().num_vertices(), &paths);
    let prof = access_profile(&ftn, &alive, &busy, Side::Input, 0);
    let mut t = Table::new(
        "access profile of idle input 0 (nu=2, eps=1e-3, 7 busy circuits)",
        &["stage", "kind", "stage width", "accessed", "fraction"],
    );
    for (s, &c) in prof.iter().enumerate() {
        let w = ftn.net().stage_range(s).len();
        t.row(vec![
            s.to_string(),
            format!("{:?}", ftn.stage_kind(s)),
            w.to_string(),
            c.to_string(),
            f(c as f64 / w as f64, 3),
        ]);
    }
    t.print();

    // Degree ablation: the Lemma 6 access recurrence
    // r' = 1 - e^(-d r / 4) is subcritical at d <= 4 (the accessed
    // fraction decays with nu) and supercritical above -- the paper's
    // d = 10 sits deep in the safe region. Swept at nu = 2, eps = 1e-3.
    let mut t = Table::new(
        "degree ablation (nu=2, F=8, eps=1e-3, 200 trials): why d = 10",
        &[
            "d",
            "fixed point of r'=1-e^(-dr/4)",
            "MC P[majority access]",
        ],
    );
    for d in [3usize, 4, 5, 6, 8, 10] {
        let p = Params::reduced(2, 8, d, 1.0);
        let ftn = FtNetwork::build(p);
        let est = estimate_probability_parallel(200, mc_threads(), 0xE8D, |_| {
            let ftn = ftn.clone();
            move |rng: &mut rand::rngs::SmallRng| trial(&ftn, 1e-3, rng)
        });
        // iterate the recurrence from r = 1
        let mut r = 1.0f64;
        for _ in 0..200 {
            r = 1.0 - (-(d as f64) * r / 4.0).exp();
        }
        t.row(vec![d.to_string(), f(r, 3), f(est.p(), 3)]);
    }
    t.print();

    println!(
        "paper: Lemma 6's induction keeps the accessed share of each\n\
         recursive group above 1/2; the profile shows the share rising\n\
         through the expander stages (union-of-permutation expansion)\n\
         exactly as the induction predicts, and staying > 0.5 at stage\n\
         2nu despite faults and busy circuits. Corollary 2 (the mirror)\n\
         is the backward direction of the same table."
    );
}
