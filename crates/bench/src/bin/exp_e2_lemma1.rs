//! E2 — Lemma 1 / Corollary 1 (Figs. 1–3): every tree (forest) with
//! `l` leaves and internal degree ≥ 3 contains at least `l/42`
//! edge-disjoint leaf-to-leaf paths of length ≤ 3.
//!
//! Regenerates: the `l/42` guarantee on three tree families across
//! three orders of magnitude of `l`, and measures the actual ratio
//! against the Remark's conjectured `l/4`.

use ft_bench::table::{f, yn, Table};
use ft_core::lowerbound::lemma1_short_paths;
use ft_graph::gen::{caterpillar_tree, complete_dary_tree, random_lemma1_tree, rng};
use ft_graph::tree::leaves;
use ft_graph::DiGraph;

fn run_family(t: &mut Table, name: &str, tree: &DiGraph) {
    let l = leaves(tree).len();
    let r = lemma1_short_paths(tree);
    assert_eq!(r.num_leaves, l);
    t.row(vec![
        name.into(),
        l.to_string(),
        r.good_leaves.to_string(),
        r.paths.len().to_string(),
        f(r.ratio(), 4),
        yn(r.meets_l_over_42()),
        yn(r.ratio() >= 0.25),
    ]);
}

fn main() {
    println!("E2: Lemma 1 edge-disjoint short leaf paths (Figs. 1-3)\n");
    let mut t = Table::new(
        "paths >= l/42 (paper); ratio vs conjectured l/4 [L]",
        &[
            "family", "leaves", "good", "paths", "paths/l", ">=l/42", ">=l/4",
        ],
    );
    let mut r = rng(0xE2);
    for &target in &[8usize, 32, 128, 512, 2048, 4096] {
        run_family(
            &mut t,
            &format!("random({target})"),
            &random_lemma1_tree(&mut r, target),
        );
    }
    for &(spine, legs) in &[(4usize, 2usize), (16, 3), (64, 3), (256, 4)] {
        run_family(
            &mut t,
            &format!("caterpillar({spine},{legs})"),
            &caterpillar_tree(spine, legs),
        );
    }
    for &height in &[2usize, 4, 6] {
        run_family(
            &mut t,
            &format!("ternary(h={height})"),
            &complete_dary_tree(3, height),
        );
    }
    t.print();
    println!(
        "paper: Lemma 1 guarantees paths/l >= 1/42 ~ 0.0238; the Remark\n\
         (citing [L]) claims 1/4 with a more elaborate analysis. Every row\n\
         above must pass the 1/42 column; the measured ratios show how\n\
         much slack the charging argument leaves."
    );
}
