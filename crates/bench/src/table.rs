//! Aligned text tables (plus CSV) for the experiment binaries.
//!
//! Each experiment prints the same rows/series the paper's
//! lemma/theorem states, one [`Table`] per claim, with a
//! `paper` column (the stated bound/constant) next to a `measured`
//! column. Keeping the renderer dumb — strings in, strings out —
//! means every binary stays a straight-line script.

/// A column-aligned text table with a title and optional CSV dump.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// CSV rendering (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Fixed-precision float.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Scientific notation (probabilities, tail bounds).
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if !(1e-3..1e4).contains(&x.abs()) {
        format!("{x:.2e}")
    } else {
        format!("{x:.4}")
    }
}

/// A probability estimate with its 95% Wilson interval.
pub fn prob_ci(est: &ft_failure::Estimate) -> String {
    let (lo, hi) = est.wilson95();
    format!("{:.4} [{:.4},{:.4}]", est.p(), lo, hi)
}

/// Yes/no marker.
pub fn yn(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(vec!["4".into(), "1.0".into()]);
        t.row(vec!["1024".into(), "0.25".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("   4"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(sci(0.0), "0");
        assert!(sci(1.5e-9).contains('e'));
        assert_eq!(sci(0.5), "0.5000");
        assert_eq!(yn(true), "yes");
        assert_eq!(yn(false), "no");
    }
}
