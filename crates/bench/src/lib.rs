//! # ft-bench — experiment harness regenerating every quantitative
//! claim of the paper
//!
//! One binary per experiment (see DESIGN.md §5 for the index):
//!
//! | bin | paper object |
//! |-----|--------------|
//! | `exp_e1_moore_shannon` | Proposition 1 (ε, ε′)-1-networks |
//! | `exp_e2_lemma1` | Lemma 1 / Corollary 1 edge-disjoint leaf paths |
//! | `exp_e3_shorting_lb` | Lemma 2 closeness ⇒ shorting |
//! | `exp_e4_zones` | Theorem 1 zone audit |
//! | `exp_e5_size_depth` | Theorem 2 size/depth census |
//! | `exp_e6_grid_access` | Lemma 3 grid majority access |
//! | `exp_e7_expander_faults` | Lemmas 4–5 outlet-fault tails |
//! | `exp_e8_majority_access` | Lemma 6 / Corollary 2 |
//! | `exp_e9_terminal_short` | Lemma 7 terminal shorting |
//! | `exp_e10_end_to_end` | Theorem 2 end-to-end + baselines |
//! | `exp_e11_routing_cost` | §4 greedy routing cost |
//! | `exp_e12_gamma_ablation` | 4^γ ≥ 34ν scale ablation |
//! | `exp_e13_invariance` | §3 ε-invariance via edge substitution |
//! | `exp_figures` | Figures 1–5 structural renders |
//!
//! Criterion benches live in `benches/`. The [`table`] module prints
//! the aligned text tables the binaries emit; [`workload`] holds the
//! shared experiment plumbing (profiles, baselines, Monte-Carlo
//! glue).

#![warn(missing_docs)]

pub mod table;
pub mod workload;

pub use table::Table;
