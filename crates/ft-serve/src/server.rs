//! The TCP frontend: accept loop, per-connection reader/writer pairs,
//! and the backpressure boundary.
//!
//! No async runtime — the container carries only vendored std-adjacent
//! crates — so the shape is classic thread-per-connection: an acceptor
//! thread spawns one reader (and one writer) thread per client, all
//! feeding the single engine thread through a bounded
//! [`sync_channel`](std::sync::mpsc::sync_channel). The queue bound IS
//! the service's admission control: when it is full, `CONNECT` requests
//! are answered [`Status::Shed`] directly from the frontend (the engine
//! never sees them), while control-plane requests block — you can
//! always fetch metrics from, reload, or shut down a saturated server.
//!
//! Robustness properties the tests pin:
//! * a malformed frame gets a typed [`Status::BadFrame`] answer and the
//!   connection keeps serving (an oversized length prefix also answers,
//!   then closes, since the stream position is unrecoverable);
//! * a mid-frame disconnect or slow-loris writer affects only its own
//!   connection — reads time out in 250 ms slices and re-poll the
//!   shutdown flag, so even an idle peer never blocks teardown;
//! * every accepted request is answered exactly once, in engine order,
//!   per connection (responses to one connection are serialised by its
//!   writer thread);
//! * concurrent connections are capped ([`ServerConfig::max_connections`]):
//!   a raw connect flood is refused at accept (connection closed,
//!   [`SharedFlags::refused`] incremented) rather than spawning threads
//!   without bound.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ft_sim::Fabric;

use crate::engine::{self, EngineConfig, Job, SharedFlags};
use crate::protocol::{read_frame_with, write_frame, Request, Response, Status};

/// How long a frontend read blocks before re-polling the shutdown flag.
const READ_SLICE: Duration = Duration::from_millis(250);

/// How long [`Server::wait`] waits for lingering connection threads
/// (a writer blocked on a peer that stopped reading) before detaching
/// them. Comfortably above `READ_SLICE` so healthy readers always
/// make it out.
const JOIN_GRACE: Duration = Duration::from_millis(1000);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (use port 0 for an ephemeral port).
    pub addr: String,
    /// Engine queue depth — the backpressure bound. Connects past it
    /// are shed; the simulator's `retry = … shed N` knob is the
    /// conventional source of this number.
    pub queue_depth: usize,
    /// Concurrent-connection cap. Connections accepted past it are
    /// closed immediately ([`SharedFlags::refused`]) instead of
    /// spawning an unbounded thread per socket — a connection flood
    /// degrades at the acceptor, the same never-wedge discipline the
    /// queue bound applies one layer down.
    pub max_connections: usize,
    /// Engine determinism/snapshot settings.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_depth: 64,
            max_connections: 256,
            engine: EngineConfig {
                deterministic: false,
                snapshot_path: None,
                snapshot_every: 0,
            },
        }
    }
}

/// A running server: engine + acceptor + frontends.
pub struct Server {
    addr: SocketAddr,
    engine: JoinHandle<String>,
    acceptor: JoinHandle<()>,
    shared: Arc<SharedFlags>,
    /// Live connection threads, shared with the acceptor (which reaps
    /// finished ones and enforces the cap) and joined by [`wait`].
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the engine and acceptor, returns immediately.
    pub fn start(fabric: Fabric, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(SharedFlags::default());
        let conns = Arc::new(Mutex::new(Vec::new()));
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(cfg.queue_depth.max(1));

        let engine_shared = Arc::clone(&shared);
        let engine_cfg = cfg.engine.clone();
        let engine =
            std::thread::spawn(move || engine::run(fabric, job_rx, &engine_shared, &engine_cfg));

        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conns);
        let max_connections = cfg.max_connections.max(1);
        let acceptor = std::thread::spawn(move || {
            accept_loop(
                listener,
                job_tx,
                accept_shared,
                accept_conns,
                max_connections,
            );
        });

        Ok(Server {
            addr,
            engine,
            acceptor,
            shared,
            conns,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared flag block (tests read the shed counter directly).
    pub fn shared(&self) -> &SharedFlags {
        &self.shared
    }

    /// Blocks until the engine exits (graceful shutdown or all
    /// frontends gone), then joins the acceptor and every connection
    /// thread (each joins its own writer first), so the final
    /// `SHUTDOWN` response is flushed before this returns. Readers
    /// re-poll the shutdown flag every `READ_SLICE`, so the joins
    /// are bounded — and instant when all clients have hung up. A
    /// connection wedged by a peer that stopped reading is detached
    /// after `JOIN_GRACE` rather than held against shutdown.
    pub fn wait(self) -> String {
        let report = self.engine.join().expect("engine thread panicked");
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()` with a throwaway connect.
        let _ = TcpStream::connect(self.addr);
        self.acceptor.join().expect("acceptor thread panicked");
        let handles = std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        let deadline = Instant::now() + JOIN_GRACE;
        for h in handles {
            while !h.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            if h.is_finished() {
                let _ = h.join();
            }
            // else: detached — its writer is blocked on an unreachable
            // peer; process teardown reclaims it.
        }
        report
    }
}

fn accept_loop(
    listener: TcpListener,
    job_tx: SyncSender<Job>,
    shared: Arc<SharedFlags>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    max_connections: usize,
) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let mut handles = conns.lock().expect("conns lock");
        // Reap finished connection threads; the survivors are the live
        // connection count the cap applies to.
        let mut live = Vec::with_capacity(handles.len() + 1);
        for h in handles.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push(h);
            }
        }
        *handles = live;
        if handles.len() >= max_connections {
            // Connection cap: close at accept instead of spawning yet
            // another thread — a raw connect flood degrades here, before
            // it can exhaust threads the queue bound never sees.
            shared.refused.fetch_add(1, Ordering::SeqCst);
            continue; // `stream` drops → RST/FIN to the client
        }
        let tx = job_tx.clone();
        let sh = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || serve_connection(stream, tx, sh)));
    }
}

/// One client connection: reader loop on this thread, writer thread
/// draining the per-connection response channel.
fn serve_connection(stream: TcpStream, job_tx: SyncSender<Job>, shared: Arc<SharedFlags>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_SLICE));
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (resp_tx, resp_rx) = mpsc::channel::<Response>();
    let writer = std::thread::spawn(move || write_loop(stream, resp_rx));

    loop {
        let stop = || shared.shutdown.load(Ordering::SeqCst);
        match read_frame_with(&mut reader, stop) {
            Ok(Some(payload)) => {
                match Request::decode(&payload) {
                    Ok(req) => {
                        if !dispatch(req, &job_tx, &resp_tx, &shared) {
                            break; // engine gone: stop reading
                        }
                    }
                    Err(tag) => {
                        // Malformed payload inside a well-framed
                        // message: typed answer, keep serving.
                        shared.bad_frames.fetch_add(1, Ordering::SeqCst);
                        if resp_tx.send(Response::new(Status::BadFrame, tag)).is_err() {
                            break;
                        }
                    }
                }
            }
            Ok(None) => break, // clean EOF between frames
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Oversized/zero length prefix: the stream position is
                // unrecoverable. Answer, then close.
                shared.bad_frames.fetch_add(1, Ordering::SeqCst);
                let _ = resp_tx.send(Response::new(Status::BadFrame, 0));
                break;
            }
            Err(_) => break, // mid-frame EOF, shutdown interrupt, or I/O error
        }
    }
    drop(resp_tx);
    let _ = writer.join();
}

/// Routes one decoded request into the engine queue, applying the
/// backpressure policy. Returns `false` when the engine is gone.
fn dispatch(
    req: Request,
    job_tx: &SyncSender<Job>,
    resp_tx: &mpsc::Sender<Response>,
    shared: &SharedFlags,
) -> bool {
    let job = Job {
        reply: resp_tx.clone(),
        enqueued: Instant::now(),
        req,
    };
    match &job.req {
        Request::Connect { tag, .. } => {
            let tag = *tag;
            match job_tx.try_send(job) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    // Backpressure: shed the admission at the frontend.
                    shared.shed.fetch_add(1, Ordering::SeqCst);
                    resp_tx.send(Response::new(Status::Shed, tag)).is_ok()
                }
                Err(TrySendError::Disconnected(_)) => false,
            }
        }
        // Control plane blocks instead of shedding: a saturated server
        // must still answer metrics, reloads and shutdowns.
        _ => job_tx.send(job).is_ok(),
    }
}

fn write_loop(mut stream: TcpStream, resp_rx: Receiver<Response>) {
    // Writes use the default (blocking, no timeout) path: a slow reader
    // stalls only its own writer thread.
    let _ = stream.set_write_timeout(None);
    while let Ok(resp) = resp_rx.recv() {
        if write_frame(&mut stream, &resp.encode()).is_err() {
            break;
        }
        let _ = stream.flush();
    }
}
