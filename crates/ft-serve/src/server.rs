//! The TCP frontend: accept loop, per-connection reader/writer pairs,
//! and the backpressure boundary.
//!
//! No async runtime — the container carries only vendored std-adjacent
//! crates — so the shape is classic thread-per-connection: an acceptor
//! thread spawns one reader (and one writer) thread per client, all
//! feeding the single engine thread through a bounded
//! [`sync_channel`](std::sync::mpsc::sync_channel). The queue bound IS
//! the service's admission control: when it is full, `CONNECT` requests
//! are answered [`Status::Shed`] directly from the frontend (the engine
//! never sees them), while control-plane requests block — you can
//! always fetch metrics from, reload, or shut down a saturated server.
//!
//! Robustness properties the tests pin:
//! * a malformed frame gets a typed [`Status::BadFrame`] answer and the
//!   connection keeps serving (an oversized length prefix also answers,
//!   then closes, since the stream position is unrecoverable);
//! * a mid-frame disconnect or slow-loris writer affects only its own
//!   connection — reads time out in 250 ms slices and re-poll the
//!   shutdown flag, so even an idle peer never blocks teardown;
//! * every accepted request is answered exactly once, in engine order,
//!   per connection (responses to one connection are serialised by its
//!   writer thread).

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ft_sim::Fabric;

use crate::engine::{self, EngineConfig, Job, SharedFlags};
use crate::protocol::{read_frame_with, write_frame, Request, Response, Status};

/// How long a frontend read blocks before re-polling the shutdown flag.
const READ_SLICE: Duration = Duration::from_millis(250);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (use port 0 for an ephemeral port).
    pub addr: String,
    /// Engine queue depth — the backpressure bound. Connects past it
    /// are shed; the simulator's `retry = … shed N` knob is the
    /// conventional source of this number.
    pub queue_depth: usize,
    /// Engine determinism/snapshot settings.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_depth: 64,
            engine: EngineConfig {
                deterministic: false,
                snapshot_path: None,
                snapshot_every: 0,
            },
        }
    }
}

/// A running server: engine + acceptor + frontends.
pub struct Server {
    addr: SocketAddr,
    engine: JoinHandle<String>,
    acceptor: JoinHandle<()>,
    shared: Arc<SharedFlags>,
}

impl Server {
    /// Binds, spawns the engine and acceptor, returns immediately.
    pub fn start(fabric: Fabric, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(SharedFlags::default());
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(cfg.queue_depth.max(1));

        let engine_shared = Arc::clone(&shared);
        let engine_cfg = cfg.engine.clone();
        let engine =
            std::thread::spawn(move || engine::run(fabric, job_rx, &engine_shared, &engine_cfg));

        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::spawn(move || {
            accept_loop(listener, addr, job_tx, accept_shared);
        });

        Ok(Server {
            addr,
            engine,
            acceptor,
            shared,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared flag block (tests read the shed counter directly).
    pub fn shared(&self) -> &SharedFlags {
        &self.shared
    }

    /// Blocks until the engine exits (graceful shutdown or all
    /// frontends gone), then joins the acceptor and returns the final
    /// report. In-flight writer threads get a short grace period so a
    /// `SHUTDOWN` response reaches its client before the process exits.
    pub fn wait(self) -> String {
        let report = self.engine.join().expect("engine thread panicked");
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()` with a throwaway connect.
        let _ = TcpStream::connect(self.addr);
        self.acceptor.join().expect("acceptor thread panicked");
        std::thread::sleep(Duration::from_millis(200));
        report
    }
}

fn accept_loop(
    listener: TcpListener,
    addr: SocketAddr,
    job_tx: SyncSender<Job>,
    shared: Arc<SharedFlags>,
) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let tx = job_tx.clone();
        let sh = Arc::clone(&shared);
        std::thread::spawn(move || serve_connection(stream, tx, sh));
    }
    let _ = addr;
}

/// One client connection: reader loop on this thread, writer thread
/// draining the per-connection response channel.
fn serve_connection(stream: TcpStream, job_tx: SyncSender<Job>, shared: Arc<SharedFlags>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_SLICE));
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (resp_tx, resp_rx) = mpsc::channel::<Response>();
    let writer = std::thread::spawn(move || write_loop(stream, resp_rx));

    loop {
        let stop = || shared.shutdown.load(Ordering::SeqCst);
        match read_frame_with(&mut reader, stop) {
            Ok(Some(payload)) => {
                match Request::decode(&payload) {
                    Ok(req) => {
                        if !dispatch(req, &job_tx, &resp_tx, &shared) {
                            break; // engine gone: stop reading
                        }
                    }
                    Err(tag) => {
                        // Malformed payload inside a well-framed
                        // message: typed answer, keep serving.
                        shared.bad_frames.fetch_add(1, Ordering::SeqCst);
                        if resp_tx.send(Response::new(Status::BadFrame, tag)).is_err() {
                            break;
                        }
                    }
                }
            }
            Ok(None) => break, // clean EOF between frames
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Oversized/zero length prefix: the stream position is
                // unrecoverable. Answer, then close.
                shared.bad_frames.fetch_add(1, Ordering::SeqCst);
                let _ = resp_tx.send(Response::new(Status::BadFrame, 0));
                break;
            }
            Err(_) => break, // mid-frame EOF, shutdown interrupt, or I/O error
        }
    }
    drop(resp_tx);
    let _ = writer.join();
}

/// Routes one decoded request into the engine queue, applying the
/// backpressure policy. Returns `false` when the engine is gone.
fn dispatch(
    req: Request,
    job_tx: &SyncSender<Job>,
    resp_tx: &mpsc::Sender<Response>,
    shared: &SharedFlags,
) -> bool {
    let job = Job {
        reply: resp_tx.clone(),
        enqueued: Instant::now(),
        req,
    };
    match &job.req {
        Request::Connect { tag, .. } => {
            let tag = *tag;
            match job_tx.try_send(job) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    // Backpressure: shed the admission at the frontend.
                    shared.shed.fetch_add(1, Ordering::SeqCst);
                    resp_tx.send(Response::new(Status::Shed, tag)).is_ok()
                }
                Err(TrySendError::Disconnected(_)) => false,
            }
        }
        // Control plane blocks instead of shedding: a saturated server
        // must still answer metrics, reloads and shutdowns.
        _ => job_tx.send(job).is_ok(),
    }
}

fn write_loop(mut stream: TcpStream, resp_rx: Receiver<Response>) {
    // Writes use the default (blocking, no timeout) path: a slow reader
    // stalls only its own writer thread.
    let _ = stream.set_write_timeout(None);
    while let Ok(resp) = resp_rx.recv() {
        if write_frame(&mut stream, &resp.encode()).is_err() {
            break;
        }
        let _ = stream.flush();
    }
}
