//! # ft-serve — a crash-tolerant online circuit-switching service
//!
//! The simulator (`ft-sim`) proves the paper's operational claim in
//! virtual time; this crate proves it *against a wall clock*: `ftserve`
//! is a long-running TCP service wrapping the incremental
//! [`ft_networks::CircuitRouter`] + §4 alive-tracker behind a
//! length-prefixed binary protocol, and it is built to degrade — never
//! wedge — while switches fail, clients flood, topologies swap, and
//! the process itself is `kill -9`'d:
//!
//! * [`protocol`] — the frame grammar: typed requests, typed error
//!   statuses (`Shed`, `DeadlineExpired`, `BadFrame`, …), resumable
//!   frame reads that tolerate slow-loris writers;
//! * [`engine`] — the single-writer engine thread: one total admission
//!   order over a bounded queue (the simulator's `(time, seq)`
//!   discipline, transplanted), per-request deadlines, generational
//!   topology reload with live-circuit migration, fault/repair
//!   injection with recovery-episode accounting;
//! * [`server`] — the thread-per-connection frontend and the
//!   backpressure boundary (queue-full connects shed at the frontend;
//!   the control plane always gets through);
//! * [`snapshot`] — crash-consistent counter snapshots (temp sibling +
//!   rename) that a restarted server resumes from;
//! * [`client`] — the blocking lockstep client the replay tool, tests
//!   and benches speak through.
//!
//! Two binaries ship with the crate: `ftserve` (the server, boot from
//! any `ftsim` scenario file) and `ftserve-replay` (replays an
//! `ftsim --export-stream` workload against a live server at a
//! wall-clock speed multiplier, with client-side exponential backoff).
//! `--deterministic` on both sides yields byte-identical final reports
//! across runs — the service-shaped version of the simulator's
//! determinism guarantee. See `docs/SERVICE.md` for the protocol
//! grammar and worked sessions.

#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod protocol;
pub mod server;
pub mod snapshot;

pub use client::Client;
pub use engine::{Counters, EngineConfig, Job, SharedFlags};
pub use protocol::{Request, Response, Status, MAX_FRAME};
pub use server::{Server, ServerConfig};
pub use snapshot::Snapshot;
