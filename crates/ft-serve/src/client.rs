//! A blocking lockstep client: send one frame, await one response.
//!
//! The replay tool, the smoke tests and the `serve_connects_per_sec`
//! bench all speak through this. Lockstep is deliberate — it makes the
//! deterministic mode's byte-identity trivial (one in-flight request ⇒
//! one engine order) and keeps failure handling obvious: any transport
//! error surfaces as the `io::Error` of the call that hit it.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{read_frame, write_frame, Request, Response};

/// A connected lockstep client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Wraps an already-connected stream (tests that hand-craft the
    /// early bytes and then switch to the typed client).
    pub fn from_stream(stream: TcpStream) -> Client {
        Client { stream }
    }

    /// Sends `req`, awaits its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        self.read_response()
    }

    /// Sends raw payload bytes as one frame **without** awaiting a
    /// response — the robustness tests use this to deliver malformed
    /// payloads and then collect the typed error.
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Writes raw bytes verbatim — no framing. For tests that forge
    /// bad length prefixes or tear a frame mid-write.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        use io::Write;
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads the next response frame.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        Response::decode(&payload)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed response"))
    }

    /// Tears the connection down mid-stream (robustness tests).
    pub fn shutdown_socket(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Both)
    }

    /// `CONNECT` under client-chosen id; returns the response.
    pub fn connect_circuit(
        &mut self,
        id: u64,
        src: u32,
        dst: u32,
        deadline_ms: u32,
    ) -> io::Result<Response> {
        self.request(&Request::Connect {
            tag: id,
            src,
            dst,
            deadline_ms,
        })
    }

    /// `DISCONNECT` of circuit `id`.
    pub fn disconnect_circuit(&mut self, id: u64) -> io::Result<Response> {
        self.request(&Request::Disconnect { tag: id })
    }

    /// `FAULT` injection on `switch`.
    pub fn fault(&mut self, tag: u64, switch: u32, open: bool) -> io::Result<Response> {
        self.request(&Request::Fault { tag, switch, open })
    }

    /// `REPAIR` of `switch`.
    pub fn repair(&mut self, tag: u64, switch: u32) -> io::Result<Response> {
        self.request(&Request::Repair { tag, switch })
    }

    /// Live metrics (`KvLine` text).
    pub fn metrics(&mut self, tag: u64) -> io::Result<Response> {
        self.request(&Request::Metrics { tag })
    }

    /// Deterministic JSON report.
    pub fn report(&mut self, tag: u64) -> io::Result<Response> {
        self.request(&Request::Report { tag })
    }

    /// Graceful topology reload onto `spec`.
    pub fn reload(&mut self, tag: u64, spec: &str) -> io::Result<Response> {
        self.request(&Request::Reload {
            tag,
            spec: spec.to_string(),
        })
    }

    /// Force a crash-consistent snapshot now.
    pub fn snapshot(&mut self, tag: u64) -> io::Result<Response> {
        self.request(&Request::Snapshot { tag })
    }

    /// Graceful shutdown.
    pub fn shutdown(&mut self, tag: u64) -> io::Result<Response> {
        self.request(&Request::Shutdown { tag })
    }
}
