//! `ftserve` — the crash-tolerant circuit-switching server.
//!
//! ```text
//! usage: ftserve SCENARIO [--addr HOST:PORT] [--port-file PATH]
//!                [--queue-depth N] [--max-conns N] [--snapshot PATH]
//!                [--snapshot-every N] [--report PATH] [--deterministic]
//!
//!   SCENARIO         an ftsim scenario file; the server boots its
//!                    fabric, and its `retry = … shed N` depth (if any)
//!                    is the default queue depth
//!   --addr A         bind address (default 127.0.0.1:0, ephemeral)
//!   --port-file P    write the bound address to P (atomically) once
//!                    listening — scripts race-freely discover the port
//!   --queue-depth N  engine queue bound; connects past it are shed
//!   --max-conns N    concurrent-connection cap (default 256); extra
//!                    connections are closed at accept
//!   --snapshot P     crash-consistent counter snapshot file: restored
//!                    at boot if present, rewritten periodically
//!   --snapshot-every N   snapshot cadence in jobs (default 64)
//!   --report P       also write the final report to P (atomically)
//!   --deterministic  no deadlines, no wall-clock output — lockstep
//!                    replays produce byte-identical reports
//! ```
//!
//! The final report goes to stdout at shutdown; diagnostics to stderr.
//! Exit status 0 = graceful shutdown. See `docs/SERVICE.md`.

use std::process::ExitCode;

use ft_serve::{Server, ServerConfig};
use ft_sim::RetryPolicy;

fn usage() -> &'static str {
    "usage: ftserve SCENARIO [--addr HOST:PORT] [--port-file PATH] [--queue-depth N] [--max-conns N] [--snapshot PATH] [--snapshot-every N] [--report PATH] [--deterministic]"
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_path: Option<String> = None;
    let mut cfg = ServerConfig::default();
    let mut port_file: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut queue_depth: Option<usize> = None;
    cfg.engine.snapshot_every = 64;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            "--addr" => cfg.addr = it.next().ok_or("--addr needs HOST:PORT")?,
            "--port-file" => port_file = Some(it.next().ok_or("--port-file needs a path")?),
            "--queue-depth" => {
                let n = it.next().ok_or("--queue-depth needs a count")?;
                queue_depth = Some(n.parse().map_err(|_| format!("bad queue depth `{n}`"))?);
            }
            "--max-conns" => {
                let n = it.next().ok_or("--max-conns needs a count")?;
                cfg.max_connections = n.parse().map_err(|_| format!("bad connection cap `{n}`"))?;
            }
            "--snapshot" => {
                cfg.engine.snapshot_path = Some(it.next().ok_or("--snapshot needs a path")?.into());
            }
            "--snapshot-every" => {
                let n = it.next().ok_or("--snapshot-every needs a count")?;
                cfg.engine.snapshot_every = n
                    .parse()
                    .map_err(|_| format!("bad snapshot cadence `{n}`"))?;
            }
            "--report" => report_path = Some(it.next().ok_or("--report needs a path")?),
            "--deterministic" => cfg.engine.deterministic = true,
            other if scenario_path.is_none() => scenario_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let scenario_path = scenario_path.ok_or_else(|| usage().to_string())?;
    let text = std::fs::read_to_string(&scenario_path)
        .map_err(|e| format!("reading {scenario_path}: {e}"))?;
    let scenario = ft_sim::Scenario::parse(&text)?;
    // The scenario's shed depth is the natural backpressure bound: the
    // service degrades where the simulation said it should.
    cfg.queue_depth = queue_depth.unwrap_or(match scenario.config.retry {
        RetryPolicy::Backoff { shed_depth, .. } if shed_depth > 0 => shed_depth,
        _ => 64,
    });
    let fabric = scenario.fabric.build();
    eprintln!(
        "ftserve: {} ({} terminals), queue depth {}{}",
        fabric.label(),
        fabric.terminals(),
        cfg.queue_depth,
        if cfg.engine.deterministic {
            ", deterministic"
        } else {
            ""
        }
    );
    let server = Server::start(fabric, cfg).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();
    eprintln!("ftserve: listening on {addr}");
    if let Some(path) = &port_file {
        ft_obs::write_atomic(path, format!("{addr}\n"))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    let report = server.wait();
    print!("{report}");
    if let Some(path) = &report_path {
        ft_obs::write_atomic(path, &report).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("ftserve: report written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ftserve: {e}");
            ExitCode::FAILURE
        }
    }
}
