//! `ftserve-replay` — replays an ftsim workload stream against a live
//! `ftserve` at wall-clock speed.
//!
//! ```text
//! usage: ftserve-replay ADDR SCENARIO [--seed N] [--speed X] [--stream FILE]
//!                       [--deterministic] [--deadline-ms N] [--flood N]
//!                       [--reload-at T --reload-spec SPEC]
//!                       [--snapshot-at-end] [--shutdown] [--fetch-report]
//!
//!   ADDR             the server's HOST:PORT (or a --port-file's content)
//!   SCENARIO         the ftsim scenario the stream came from (supplies
//!                    the retry/backoff policy; also generates the
//!                    stream when --stream is absent)
//!   --seed N         stream seed (default: the scenario's first seed)
//!   --speed X        wall-clock speed multiplier (default 1.0; 4.0
//!                    replays a 120 s scenario in 30 s)
//!   --stream FILE    replay this `ftsim --export-stream` NDJSON file
//!                    instead of regenerating the stream
//!   --deterministic  lockstep: no pacing, no retries, no jitter —
//!                    with a --deterministic server, final reports are
//!                    byte-identical across runs
//!   --deadline-ms N  per-connect queueing deadline (default 0 = none)
//!   --flood N        before the replay, blast N pipelined connects to
//!                    exercise the shed path (ids ≥ 2^60, disconnected
//!                    again afterwards)
//!   --reload-at T    at virtual time T, issue a graceful reload…
//!   --reload-spec S  …onto fabric spec S (e.g. "clos-strict 4 4")
//!   --snapshot-at-end  force a snapshot after the stream
//!   --shutdown       finish with a graceful SHUTDOWN
//!   --fetch-report   print the server's final report JSON to stdout
//! ```
//!
//! Client-side degradation mirrors the simulator's `RetryPolicy`: a
//! `Blocked`/`Shed` connect retries up to the scenario's budget with
//! exponential backoff plus jitter (scaled by `--speed`). A replay
//! accounting line goes to stderr at the end.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use ft_serve::{Client, Request, Status};
use ft_sim::stream::{parse_ndjson, StreamKind};
use ft_sim::RetryPolicy;
use rand::Rng;

fn usage() -> &'static str {
    "usage: ftserve-replay ADDR SCENARIO [--seed N] [--speed X] [--stream FILE] [--deterministic] [--deadline-ms N] [--flood N] [--reload-at T --reload-spec SPEC] [--snapshot-at-end] [--shutdown] [--fetch-report]"
}

#[derive(Default)]
struct Tally {
    sent: u64,
    ok: u64,
    blocked: u64,
    busy: u64,
    shed: u64,
    deadline_expired: u64,
    unknown: u64,
    noop: u64,
    other: u64,
    retries: u64,
    gave_up: u64,
}

impl Tally {
    fn count(&mut self, status: Status) {
        match status {
            Status::Ok => self.ok += 1,
            Status::Blocked => self.blocked += 1,
            Status::Busy => self.busy += 1,
            Status::Shed => self.shed += 1,
            Status::DeadlineExpired => self.deadline_expired += 1,
            Status::UnknownCircuit => self.unknown += 1,
            Status::Noop => self.noop += 1,
            _ => self.other += 1,
        }
    }
}

struct Opts {
    speed: f64,
    deterministic: bool,
    deadline_ms: u32,
    budget: u32,
    backoff_base: f64,
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut seed: Option<u64> = None;
    let mut speed = 1.0f64;
    let mut stream_file: Option<String> = None;
    let mut deterministic = false;
    let mut deadline_ms = 0u32;
    let mut flood = 0u64;
    let mut reload_at: Option<f64> = None;
    let mut reload_spec: Option<String> = None;
    let mut snapshot_at_end = false;
    let mut shutdown = false;
    let mut fetch_report = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            "--seed" => {
                let n = it.next().ok_or("--seed needs a value")?;
                seed = Some(n.parse().map_err(|_| format!("bad seed `{n}`"))?);
            }
            "--speed" => {
                let x = it.next().ok_or("--speed needs a value")?;
                speed = x.parse().map_err(|_| format!("bad speed `{x}`"))?;
                if speed <= 0.0 {
                    return Err("--speed must be positive".into());
                }
            }
            "--stream" => stream_file = Some(it.next().ok_or("--stream needs a path")?),
            "--deterministic" => deterministic = true,
            "--deadline-ms" => {
                let n = it.next().ok_or("--deadline-ms needs a value")?;
                deadline_ms = n.parse().map_err(|_| format!("bad deadline `{n}`"))?;
            }
            "--flood" => {
                let n = it.next().ok_or("--flood needs a count")?;
                flood = n.parse().map_err(|_| format!("bad flood count `{n}`"))?;
            }
            "--reload-at" => {
                let t = it.next().ok_or("--reload-at needs a time")?;
                reload_at = Some(t.parse().map_err(|_| format!("bad reload time `{t}`"))?);
            }
            "--reload-spec" => reload_spec = Some(it.next().ok_or("--reload-spec needs a spec")?),
            "--snapshot-at-end" => snapshot_at_end = true,
            "--shutdown" => shutdown = true,
            "--fetch-report" => fetch_report = true,
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err(usage().to_string());
    }
    let addr = positional[0].trim().to_string();
    let scenario_text = std::fs::read_to_string(&positional[1])
        .map_err(|e| format!("reading {}: {e}", positional[1]))?;
    let scenario = ft_sim::Scenario::parse(&scenario_text)?;
    let seed = seed.unwrap_or_else(|| scenario.seed_list()[0]);
    let events = match &stream_file {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            parse_ndjson(&text)?
        }
        None => ft_sim::stream::export_stream(&scenario, seed),
    };
    if reload_at.is_some() != reload_spec.is_some() {
        return Err("--reload-at and --reload-spec go together".into());
    }
    let (budget, backoff_base) = match scenario.config.retry {
        RetryPolicy::Backoff { budget, base, .. } => (budget, base),
        _ => (3, 0.5),
    };
    let opts = Opts {
        speed,
        deterministic,
        deadline_ms,
        budget,
        backoff_base,
    };

    let mut client = Client::connect(&addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let mut tally = Tally::default();
    let mut jitter = ft_graph::gen::rng(seed ^ 0x5eed_5eed);

    if flood > 0 {
        flood_connects(&addr, flood, &mut tally)?;
    }

    let start = Instant::now();
    let mut reload_pending = reload_at;
    let mut control_tag = 1u64 << 40;
    for ev in &events {
        if let Some(at) = reload_pending {
            if ev.time >= at {
                reload_pending = None;
                control_tag += 1;
                let resp = client
                    .reload(control_tag, reload_spec.as_deref().unwrap())
                    .map_err(|e| format!("reload: {e}"))?;
                eprintln!("ftserve-replay: reload at t={at} → {}", resp.status.label());
            }
        }
        if !opts.deterministic {
            let target = Duration::from_secs_f64(ev.time / opts.speed);
            let elapsed = start.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }
        tally.sent += 1;
        match ev.kind {
            StreamKind::Connect { id, src, dst } => {
                play_connect(&mut client, &opts, &mut tally, &mut jitter, id, src, dst)?;
            }
            StreamKind::Disconnect { id } => {
                let resp = client
                    .disconnect_circuit(id)
                    .map_err(|e| format!("disconnect {id}: {e}"))?;
                tally.count(resp.status);
            }
            StreamKind::Fault { switch, open } => {
                control_tag += 1;
                let resp = client
                    .fault(control_tag, switch, open)
                    .map_err(|e| format!("fault {switch}: {e}"))?;
                tally.count(resp.status);
            }
            StreamKind::Repair { switch } => {
                control_tag += 1;
                let resp = client
                    .repair(control_tag, switch)
                    .map_err(|e| format!("repair {switch}: {e}"))?;
                tally.count(resp.status);
            }
        }
    }
    if let Some(spec) = reload_pending.and(reload_spec.as_deref()) {
        // The reload time fell past the last event: still honour it.
        control_tag += 1;
        let resp = client
            .reload(control_tag, spec)
            .map_err(|e| format!("reload: {e}"))?;
        eprintln!("ftserve-replay: trailing reload → {}", resp.status.label());
    }
    if snapshot_at_end {
        control_tag += 1;
        let resp = client
            .snapshot(control_tag)
            .map_err(|e| format!("snapshot: {e}"))?;
        eprintln!("ftserve-replay: snapshot → {}", resp.status.label());
    }
    if fetch_report {
        control_tag += 1;
        let resp = client
            .report(control_tag)
            .map_err(|e| format!("report: {e}"))?;
        print!("{}", resp.body_text());
    }
    if shutdown {
        control_tag += 1;
        let resp = client
            .shutdown(control_tag)
            .map_err(|e| format!("shutdown: {e}"))?;
        eprintln!("ftserve-replay: shutdown → {}", resp.status.label());
    }
    let line = ft_obs::KvLine::new("ftserve-replay")
        .kv("events", tally.sent)
        .kv("ok", tally.ok)
        .kv("blocked", tally.blocked)
        .kv("busy", tally.busy)
        .kv("shed", tally.shed)
        .kv("deadline_expired", tally.deadline_expired)
        .kv("unknown", tally.unknown)
        .kv("noop", tally.noop)
        .kv("other", tally.other)
        .kv("retries", tally.retries)
        .kv("gave_up", tally.gave_up)
        .finish();
    eprintln!("{line}");
    Ok(())
}

/// One connect with the simulator's degradation ladder: `Blocked`/
/// `Shed` retries up to the budget with exponential backoff + jitter
/// (skipped entirely in deterministic mode — one attempt, no sleeps).
fn play_connect(
    client: &mut Client,
    opts: &Opts,
    tally: &mut Tally,
    jitter: &mut impl Rng,
    id: u64,
    src: u32,
    dst: u32,
) -> Result<(), String> {
    let mut attempt = 0u32;
    loop {
        let resp = client
            .connect_circuit(id, src, dst, opts.deadline_ms)
            .map_err(|e| format!("connect {id}: {e}"))?;
        tally.count(resp.status);
        let transient = matches!(resp.status, Status::Blocked | Status::Shed);
        if !transient || opts.deterministic {
            return Ok(());
        }
        if attempt >= opts.budget {
            tally.gave_up += 1;
            return Ok(());
        }
        let backoff =
            opts.backoff_base * f64::from(1u32 << attempt.min(16)) * (0.5 + jitter.random::<f64>());
        std::thread::sleep(Duration::from_secs_f64(backoff / opts.speed));
        attempt += 1;
        tally.retries += 1;
    }
}

/// Blasts `n` pipelined connects (no per-frame response wait) on a
/// dedicated connection so the engine queue fills and the frontend's
/// shed path fires, then collects the `n` responses and releases
/// whatever connected.
fn flood_connects(addr: &str, n: u64, tally: &mut Tally) -> Result<(), String> {
    let mut c = Client::connect(addr).map_err(|e| format!("flood connect: {e}"))?;
    let base = 1u64 << 60;
    for i in 0..n {
        let req = Request::Connect {
            tag: base + i,
            src: 0,
            dst: 0,
            deadline_ms: 0,
        };
        c.send_raw(&req.encode())
            .map_err(|e| format!("flood send: {e}"))?;
    }
    let mut connected = Vec::new();
    for _ in 0..n {
        let resp = c.read_response().map_err(|e| format!("flood read: {e}"))?;
        tally.count(resp.status);
        if resp.status == Status::Ok {
            connected.push(resp.tag);
        }
    }
    for tag in connected {
        let resp = c
            .disconnect_circuit(tag)
            .map_err(|e| format!("flood cleanup: {e}"))?;
        tally.count(resp.status);
    }
    eprintln!(
        "ftserve-replay: flood of {n} done (shed so far {})",
        tally.shed
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ftserve-replay: {e}");
            ExitCode::FAILURE
        }
    }
}
