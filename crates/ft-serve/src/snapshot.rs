//! Crash-consistent metrics snapshots.
//!
//! The engine periodically dumps its cumulative counters (and the path-
//! length histogram) to a plain-text file via [`ft_obs::write_atomic`]
//! — temp sibling + rename — so a `kill -9` at any instant leaves
//! either the previous complete snapshot or the new complete snapshot,
//! never a torn file. On restart the snapshot becomes the counter
//! *base*: the revived server's report continues from where the dead
//! one checkpointed (modulo the jobs admitted after the last dump,
//! which are lost by design — the format trades a bounded counter gap
//! for zero write amplification on the admission path).
//!
//! Format (`ftserve snapshot v1`):
//!
//! ```text
//! ftserve snapshot v1
//! fields <n>
//! <key> <u64>        (exactly n lines, fixed order)
//! hist <compact histogram string>
//! ok <fnv-1a 64 of everything above, hex>
//! ```
//!
//! Any deviation — missing header, wrong field count, unparsable value,
//! truncation — makes [`Snapshot::parse`] return `None` and the server
//! starts from zero with a stderr note, mirroring the ftexp cell-cache
//! discipline: corruption degrades, never panics. The trailing checksum
//! exists because a *prefix* of the body can be self-consistent (the
//! compact histogram string truncates to a valid shorter histogram);
//! with it, every proper prefix is detectably torn.

use crate::engine::Counters;
use ft_obs::Hist;

/// Magic first line; bump on any layout change.
const VERSION: &str = "ftserve snapshot v1";

/// FNV-1a 64 over the snapshot body, for the trailing `ok` line.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// A parsed (or about-to-be-written) snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Cumulative engine counters at dump time.
    pub counters: Counters,
    /// Path-length histogram at dump time.
    pub hist: Hist,
}

impl Snapshot {
    /// Renders the snapshot body (the bytes handed to `write_atomic`).
    pub fn render(&self) -> String {
        let fields = self.counters.fields();
        let mut out = String::with_capacity(64 + fields.len() * 24);
        out.push_str(VERSION);
        out.push('\n');
        out.push_str(&format!("fields {}\n", fields.len()));
        for (key, value) in fields {
            out.push_str(&format!("{key} {value}\n"));
        }
        out.push_str("hist ");
        out.push_str(&self.hist.to_compact_string());
        out.push('\n');
        out.push_str(&format!("ok {:016x}\n", fnv1a(out.as_bytes())));
        out
    }

    /// Parses a snapshot body. `None` = corrupt/stale/truncated; the
    /// caller recomputes from zero.
    pub fn parse(text: &str) -> Option<Snapshot> {
        // Checksum first: the final `ok` line covers every preceding
        // byte, so any tear or bit-flip is caught before field parsing.
        let trimmed = text.strip_suffix('\n')?;
        let nl = trimmed.rfind('\n')?;
        let (body, ok_line) = trimmed.split_at(nl + 1);
        let want = u64::from_str_radix(ok_line.strip_prefix("ok ")?, 16).ok()?;
        if fnv1a(body.as_bytes()) != want {
            return None;
        }
        let text = body;
        let mut lines = text.lines();
        if lines.next()? != VERSION {
            return None;
        }
        let n: usize = lines.next()?.strip_prefix("fields ")?.parse().ok()?;
        let mut counters = Counters::default();
        let expected = counters.fields().len();
        if n != expected {
            return None;
        }
        let mut names = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let line = lines.next()?;
            let (key, value) = line.split_once(' ')?;
            names.push(key.to_string());
            values.push(value.parse::<u64>().ok()?);
        }
        counters.set_fields(&names, &values)?;
        let hist = Hist::from_compact_str(lines.next()?.strip_prefix("hist ")?)?;
        if lines.next().is_some() {
            return None; // trailing garbage
        }
        Some(Snapshot { counters, hist })
    }

    /// Writes the snapshot atomically to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        ft_obs::write_atomic(path, self.render())
    }

    /// Loads and parses `path`. Missing file is a silent `None`; any
    /// other failure gets a stderr note (and still degrades to `None`).
    pub fn load(path: &std::path::Path) -> Option<Snapshot> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                eprintln!(
                    "ftserve: snapshot {} unreadable ({e}); starting from zero",
                    path.display()
                );
                return None;
            }
        };
        let parsed = Snapshot::parse(&text);
        if parsed.is_none() {
            eprintln!(
                "ftserve: snapshot {} corrupt or stale; starting from zero",
                path.display()
            );
        }
        parsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.offered = 120;
        s.counters.connected = 100;
        s.counters.shed = 7;
        s.counters.recovery_episodes = 3;
        s.hist.record(4.0);
        s.hist.record_n(6.0, 9);
        s
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let s = sample();
        let text = s.render();
        let back = Snapshot::parse(&text).expect("well-formed snapshot parses");
        assert_eq!(back, s);
        assert_eq!(back.render(), text, "render is a fixed point");
    }

    #[test]
    fn truncation_at_every_boundary_is_a_clean_miss() {
        let text = sample().render();
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            let torn = &text[..cut];
            // Tearing can only accidentally stay parseable if the cut
            // lands exactly on the original content — it can't, since
            // the hist line is last and parse demands it.
            assert_eq!(Snapshot::parse(torn), None, "cut at byte {cut}");
        }
    }

    #[test]
    fn wrong_version_count_or_garbage_is_a_miss() {
        let s = sample();
        let text = s.render();
        assert_eq!(Snapshot::parse(&text.replace("v1", "v0")), None);
        assert_eq!(Snapshot::parse(&text.replace("fields ", "fields 9")), None);
        assert_eq!(Snapshot::parse(&format!("{text}extra\n")), None);
        assert_eq!(Snapshot::parse(&text.replace("offered", "ofefred")), None);
        assert_eq!(Snapshot::parse(""), None);
    }

    #[test]
    fn write_and_load_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("ftserve-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let s = sample();
        s.write(&path).unwrap();
        assert_eq!(Snapshot::load(&path), Some(s));
        std::fs::write(&path, "ftserve snapshot v1\nfields 2\n").unwrap();
        assert_eq!(Snapshot::load(&path), None, "torn file degrades");
        assert_eq!(Snapshot::load(&dir.join("missing.snap")), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
