//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! little-endian payload length followed by that many payload bytes.
//! Lengths are capped at [`MAX_FRAME`]; a peer announcing more is
//! desynchronized or hostile, and the connection is closed after a
//! typed [`Status::BadFrame`] response. All integers are little-endian.
//!
//! Request payloads open with a one-byte opcode, then an 8-byte tag the
//! response echoes (for circuit operations the tag *is* the
//! client-chosen circuit id), then opcode-specific fields:
//!
//! ```text
//! CONNECT    = 0x01  tag:u64  src:u32  dst:u32  deadline_ms:u32
//! DISCONNECT = 0x02  tag:u64
//! FAULT      = 0x03  tag:u64  switch:u32  open:u8
//! REPAIR     = 0x04  tag:u64  switch:u32
//! METRICS    = 0x05  tag:u64
//! RELOAD     = 0x06  tag:u64  spec:utf-8 (rest of frame)
//! SNAPSHOT   = 0x07  tag:u64
//! REPORT     = 0x08  tag:u64
//! SHUTDOWN   = 0x09  tag:u64
//! ```
//!
//! Response payloads are `status:u8  tag:u64  body:…` where the body is
//! status/opcode-specific: `path_len:u32` for a connected circuit,
//! `killed:u32` for an applied fault, `migrated:u32 dropped:u32` for a
//! completed reload, UTF-8 text for metrics and reports, empty
//! otherwise. Unknown opcodes, short payloads, and trailing garbage are
//! answered with [`Status::BadFrame`] *without* reaching the engine
//! thread; see `docs/SERVICE.md` for the full grammar and semantics.

use std::io::{self, Read, Write};

/// Hard cap on a frame's payload length, both directions. Metrics and
/// report bodies are far below this; anything larger is a framing error.
pub const MAX_FRAME: usize = 1 << 20;

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Establish a circuit `src → dst` under client-chosen id `tag`.
    Connect {
        /// Client-chosen circuit id (echoed as the response tag).
        tag: u64,
        /// Input terminal index.
        src: u32,
        /// Output terminal index.
        dst: u32,
        /// Admission deadline in milliseconds of *queueing* delay
        /// (0 = none): if the engine dequeues the request later than
        /// this, it answers [`Status::DeadlineExpired`] instead of
        /// routing. Ignored in deterministic mode.
        deadline_ms: u32,
    },
    /// Release circuit `tag`.
    Disconnect {
        /// The circuit id to release.
        tag: u64,
    },
    /// Inject a switch failure.
    Fault {
        /// Response correlation tag.
        tag: u64,
        /// Switch (edge index) to fail.
        switch: u32,
        /// Open failure (`true`) or closed (`false`).
        open: bool,
    },
    /// Repair a failed switch.
    Repair {
        /// Response correlation tag.
        tag: u64,
        /// Switch to restore.
        switch: u32,
    },
    /// Fetch live metrics as `KvLine` text.
    Metrics {
        /// Response correlation tag.
        tag: u64,
    },
    /// Graceful topology reload: drain, swap to `spec`, migrate.
    Reload {
        /// Response correlation tag.
        tag: u64,
        /// Fabric spec (`network =` value grammar, e.g. `clos-strict 4 4`).
        spec: String,
    },
    /// Force a crash-consistent snapshot now.
    Snapshot {
        /// Response correlation tag.
        tag: u64,
    },
    /// Fetch the deterministic JSON report.
    Report {
        /// Response correlation tag.
        tag: u64,
    },
    /// Graceful shutdown: final snapshot + report, then exit 0.
    Shutdown {
        /// Response correlation tag.
        tag: u64,
    },
}

/// Typed response statuses. Every request gets exactly one response;
/// robustness failures are statuses, never dropped connections (except
/// an unrecoverable framing desync, which still answers first).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request succeeded; body is opcode-specific.
    Ok = 0,
    /// No idle path between the requested terminals.
    Blocked = 1,
    /// A requested terminal is busy (or currently dead).
    Busy = 2,
    /// Disconnect of an id with no live circuit.
    UnknownCircuit = 3,
    /// Admission shed: the engine queue was full (backpressure).
    Shed = 4,
    /// The request waited in queue past its deadline.
    DeadlineExpired = 5,
    /// Malformed frame: unknown opcode, short payload, oversized
    /// length prefix, or trailing garbage.
    BadFrame = 6,
    /// Argument out of range (terminal or switch index).
    BadArg = 7,
    /// Unparseable fabric spec in a reload.
    BadSpec = 8,
    /// Connect under an id that already has a live circuit.
    DuplicateId = 9,
    /// Redundant fault/repair (switch already in that state).
    Noop = 10,
}

impl Status {
    /// Decodes a status byte.
    pub fn from_u8(b: u8) -> Option<Status> {
        use Status::*;
        Some(match b {
            0 => Ok,
            1 => Blocked,
            2 => Busy,
            3 => UnknownCircuit,
            4 => Shed,
            5 => DeadlineExpired,
            6 => BadFrame,
            7 => BadArg,
            8 => BadSpec,
            9 => DuplicateId,
            10 => Noop,
            _ => return None,
        })
    }

    /// Stable lower-case label (used in replay accounting and docs).
    pub fn label(&self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Blocked => "blocked",
            Status::Busy => "busy",
            Status::UnknownCircuit => "unknown-circuit",
            Status::Shed => "shed",
            Status::DeadlineExpired => "deadline-expired",
            Status::BadFrame => "bad-frame",
            Status::BadArg => "bad-arg",
            Status::BadSpec => "bad-spec",
            Status::DuplicateId => "duplicate-id",
            Status::Noop => "noop",
        }
    }
}

/// A decoded response frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Outcome of the request.
    pub status: Status,
    /// Echo of the request's tag.
    pub tag: u64,
    /// Status/opcode-specific body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A bodyless response.
    pub fn new(status: Status, tag: u64) -> Response {
        Response {
            status,
            tag,
            body: Vec::new(),
        }
    }

    /// An [`Status::Ok`] response with a body.
    pub fn ok(tag: u64, body: Vec<u8>) -> Response {
        Response {
            status: Status::Ok,
            tag,
            body,
        }
    }

    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + self.body.len());
        out.push(self.status as u8);
        out.extend_from_slice(&self.tag.to_le_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses a frame payload. `None` = malformed.
    pub fn decode(payload: &[u8]) -> Option<Response> {
        if payload.len() < 9 {
            return None;
        }
        Some(Response {
            status: Status::from_u8(payload[0])?,
            tag: u64::from_le_bytes(payload[1..9].try_into().ok()?),
            body: payload[9..].to_vec(),
        })
    }

    /// The body as UTF-8 text (metrics/report responses).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

const OP_CONNECT: u8 = 0x01;
const OP_DISCONNECT: u8 = 0x02;
const OP_FAULT: u8 = 0x03;
const OP_REPAIR: u8 = 0x04;
const OP_METRICS: u8 = 0x05;
const OP_RELOAD: u8 = 0x06;
const OP_SNAPSHOT: u8 = 0x07;
const OP_REPORT: u8 = 0x08;
const OP_SHUTDOWN: u8 = 0x09;

fn u32_at(b: &[u8], i: usize) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(i..i + 4)?.try_into().ok()?))
}

fn u64_at(b: &[u8], i: usize) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(i..i + 8)?.try_into().ok()?))
}

impl Request {
    /// The correlation tag the response will echo.
    pub fn tag(&self) -> u64 {
        match *self {
            Request::Connect { tag, .. }
            | Request::Disconnect { tag }
            | Request::Fault { tag, .. }
            | Request::Repair { tag, .. }
            | Request::Metrics { tag }
            | Request::Reload { tag, .. }
            | Request::Snapshot { tag }
            | Request::Report { tag }
            | Request::Shutdown { tag } => tag,
        }
    }

    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        match self {
            Request::Connect {
                tag,
                src,
                dst,
                deadline_ms,
            } => {
                out.push(OP_CONNECT);
                out.extend_from_slice(&tag.to_le_bytes());
                out.extend_from_slice(&src.to_le_bytes());
                out.extend_from_slice(&dst.to_le_bytes());
                out.extend_from_slice(&deadline_ms.to_le_bytes());
            }
            Request::Disconnect { tag } => {
                out.push(OP_DISCONNECT);
                out.extend_from_slice(&tag.to_le_bytes());
            }
            Request::Fault { tag, switch, open } => {
                out.push(OP_FAULT);
                out.extend_from_slice(&tag.to_le_bytes());
                out.extend_from_slice(&switch.to_le_bytes());
                out.push(u8::from(*open));
            }
            Request::Repair { tag, switch } => {
                out.push(OP_REPAIR);
                out.extend_from_slice(&tag.to_le_bytes());
                out.extend_from_slice(&switch.to_le_bytes());
            }
            Request::Metrics { tag } => {
                out.push(OP_METRICS);
                out.extend_from_slice(&tag.to_le_bytes());
            }
            Request::Reload { tag, spec } => {
                out.push(OP_RELOAD);
                out.extend_from_slice(&tag.to_le_bytes());
                out.extend_from_slice(spec.as_bytes());
            }
            Request::Snapshot { tag } => {
                out.push(OP_SNAPSHOT);
                out.extend_from_slice(&tag.to_le_bytes());
            }
            Request::Report { tag } => {
                out.push(OP_REPORT);
                out.extend_from_slice(&tag.to_le_bytes());
            }
            Request::Shutdown { tag } => {
                out.push(OP_SHUTDOWN);
                out.extend_from_slice(&tag.to_le_bytes());
            }
        }
        out
    }

    /// Parses a frame payload. `Err(tag)` = malformed, carrying the
    /// best-effort tag (0 if even that is unreadable) so the
    /// [`Status::BadFrame`] response can still correlate.
    pub fn decode(payload: &[u8]) -> Result<Request, u64> {
        let tag = u64_at(payload, 1).unwrap_or(0);
        let op = *payload.first().ok_or(0u64)?;
        if payload.len() < 9 {
            return Err(tag);
        }
        let exact = |want: usize, req: Request| {
            if payload.len() == want {
                Ok(req)
            } else {
                Err(tag)
            }
        };
        match op {
            OP_CONNECT => exact(
                21,
                Request::Connect {
                    tag,
                    src: u32_at(payload, 9).ok_or(tag)?,
                    dst: u32_at(payload, 13).ok_or(tag)?,
                    deadline_ms: u32_at(payload, 17).ok_or(tag)?,
                },
            ),
            OP_DISCONNECT => exact(9, Request::Disconnect { tag }),
            OP_FAULT => exact(
                14,
                Request::Fault {
                    tag,
                    switch: u32_at(payload, 9).ok_or(tag)?,
                    open: payload.get(13).copied().unwrap_or(0) != 0,
                },
            ),
            OP_REPAIR => exact(
                13,
                Request::Repair {
                    tag,
                    switch: u32_at(payload, 9).ok_or(tag)?,
                },
            ),
            OP_METRICS => exact(9, Request::Metrics { tag }),
            OP_RELOAD => Ok(Request::Reload {
                tag,
                spec: std::str::from_utf8(&payload[9..])
                    .map_err(|_| tag)?
                    .to_string(),
            }),
            OP_SNAPSHOT => exact(9, Request::Snapshot { tag }),
            OP_REPORT => exact(9, Request::Report { tag }),
            OP_SHUTDOWN => exact(9, Request::Shutdown { tag }),
            _ => Err(tag),
        }
    }
}

/// Writes one frame: length prefix + payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame. `Ok(None)` = the peer closed cleanly *before* the
/// frame started; EOF mid-frame is an [`io::ErrorKind::UnexpectedEof`]
/// error. A length prefix above [`MAX_FRAME`] (or zero) is
/// [`io::ErrorKind::InvalidData`] — the caller answers
/// [`Status::BadFrame`] and closes, since the stream position is
/// unrecoverable.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    read_frame_with(r, || false)
}

/// [`read_frame`] with a stop predicate polled whenever a blocking read
/// times out ([`io::ErrorKind::WouldBlock`]/`TimedOut`): the server's
/// frontends set a short read timeout and pass the shutdown flag, so a
/// slow-loris writer ties up only its own connection and a shutdown is
/// never blocked on an idle peer. Partial frames survive timeouts — the
/// accumulated bytes are kept until the frame completes or the stop
/// predicate fires (reported as [`io::ErrorKind::Interrupted`]).
pub fn read_frame_with(
    r: &mut impl Read,
    should_stop: impl Fn() -> bool,
) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    if !read_exact_with(r, &mut len_buf, true, &should_stop)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    if !read_exact_with(r, &mut payload, false, &should_stop)? {
        return Err(io::ErrorKind::UnexpectedEof.into());
    }
    Ok(Some(payload))
}

/// Fills `buf`, tolerating read timeouts. Returns `false` on EOF at
/// offset 0 when `eof_ok` (clean close between frames).
fn read_exact_with(
    r: &mut impl Read,
    buf: &mut [u8],
    eof_ok: bool,
    should_stop: &impl Fn() -> bool,
) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok {
                    return Ok(false);
                }
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if should_stop() {
                    return Err(io::ErrorKind::Interrupted.into());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Connect {
                tag: 7,
                src: 1,
                dst: 2,
                deadline_ms: 250,
            },
            Request::Disconnect { tag: 7 },
            Request::Fault {
                tag: 9,
                switch: 33,
                open: true,
            },
            Request::Repair {
                tag: 10,
                switch: 33,
            },
            Request::Metrics { tag: 1 },
            Request::Reload {
                tag: 2,
                spec: "clos-strict 4 4".into(),
            },
            Request::Snapshot { tag: 3 },
            Request::Report { tag: 4 },
            Request::Shutdown { tag: 5 },
        ];
        for req in reqs {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes), Ok(req.clone()), "{req:?}");
        }
    }

    #[test]
    fn malformed_requests_decode_to_err_with_best_effort_tag() {
        assert_eq!(Request::decode(&[]), Err(0));
        assert_eq!(Request::decode(&[0xEE]), Err(0), "unknown opcode, no tag");
        // unknown opcode with readable tag
        let mut bad = vec![0xEEu8];
        bad.extend_from_slice(&42u64.to_le_bytes());
        assert_eq!(Request::decode(&bad), Err(42));
        // short connect payload
        let mut short = Request::Connect {
            tag: 3,
            src: 0,
            dst: 0,
            deadline_ms: 0,
        }
        .encode();
        short.truncate(12);
        assert_eq!(Request::decode(&short), Err(3), "short body, tag intact");
        short.truncate(5);
        assert_eq!(Request::decode(&short), Err(0), "tag itself truncated");
        // trailing garbage after a well-formed disconnect
        let mut long = Request::Disconnect { tag: 8 }.encode();
        long.push(0xFF);
        assert_eq!(Request::decode(&long), Err(8));
        // invalid UTF-8 reload spec
        let mut reload = Request::Reload {
            tag: 6,
            spec: String::new(),
        }
        .encode();
        reload.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(Request::decode(&reload), Err(6));
    }

    #[test]
    fn responses_round_trip() {
        let resp = Response::ok(99, b"hello".to_vec());
        assert_eq!(Response::decode(&resp.encode()), Some(resp));
        let err = Response::new(Status::Shed, 7);
        assert_eq!(Response::decode(&err.encode()), Some(err));
        assert_eq!(Response::decode(&[0, 1, 2]), None, "short payload");
        assert_eq!(
            Response::decode(&[200, 0, 0, 0, 0, 0, 0, 0, 0]),
            None,
            "unknown status"
        );
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        write_frame(&mut buf, b"defg").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"abc");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"defg");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        // oversized length prefix
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut r = &huge[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // zero length prefix
        let zero = 0u32.to_le_bytes();
        let mut r = &zero[..];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // EOF mid-frame
        let mut torn = Vec::new();
        write_frame(&mut torn, b"full frame").unwrap();
        torn.truncate(7);
        let mut r = &torn[..];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn status_labels_are_distinct() {
        let all: Vec<Status> = (0..=10).map(|b| Status::from_u8(b).unwrap()).collect();
        let labels: std::collections::BTreeSet<&str> = all.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), all.len());
        assert!(Status::from_u8(11).is_none());
    }
}
