//! The single-writer engine thread.
//!
//! All routing state — the [`CircuitRouter`], the cumulative
//! [`FailureInstance`], the §4 [`AliveTracker`](ft_failure::AliveTracker)
//! — is owned by ONE
//! thread that drains a bounded job queue. Frontends never touch the
//! router; they encode requests into [`Job`]s and try-send them. A full
//! queue is *backpressure*: connect attempts are shed at the frontend
//! with [`Status::Shed`] (mirroring the simulator's
//! `RetryPolicy::Backoff` shed ladder), control requests block. This
//! preserves the simulator's admission discipline — jobs execute in one
//! total order, so `--deterministic` runs replay to byte-identical
//! reports — while keeping the service responsive under storm load:
//! the engine never wedges, it degrades.
//!
//! Topology reloads are generational: the engine drains the current
//! router (stopping admission for the duration of one queue pass),
//! swaps in the freshly built fabric, then *migrates* every live
//! circuit onto it in ascending circuit-id order, counting the ones the
//! new topology cannot carry as dropped. Counters and histograms
//! survive generations — and, via [`Snapshot`], `kill -9`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Instant;

use ft_failure::{FailureInstance, SwitchState};
use ft_graph::{Digraph, EdgeId};
use ft_networks::{CircuitRouter, RouteError, SessionId};
use ft_obs::Hist;
use ft_sim::{Fabric, FabricSpec};

use crate::protocol::{Request, Response, Status};
use crate::snapshot::Snapshot;

/// Cumulative service counters. Field order is the snapshot wire order
/// — append-only; renames or reorders bump the snapshot version.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names are the documentation (and the snapshot format)
pub struct Counters {
    pub offered: u64,
    pub connected: u64,
    pub blocked: u64,
    pub busy: u64,
    pub shed: u64,
    pub deadline_expired: u64,
    pub duplicate: u64,
    pub bad_arg: u64,
    pub disconnected: u64,
    pub unknown_disconnects: u64,
    pub faults: u64,
    pub fault_noops: u64,
    pub repairs: u64,
    pub repair_noops: u64,
    pub killed: u64,
    pub reloads: u64,
    pub bad_specs: u64,
    pub migrated: u64,
    pub migrate_dropped: u64,
    pub snapshots: u64,
    pub recovery_episodes: u64,
    pub bad_frames: u64,
}

macro_rules! counter_fields {
    ($($name:ident),* $(,)?) => {
        impl Counters {
            /// `(name, value)` pairs in fixed snapshot order.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($name), self.$name)),*]
            }

            /// Restores from parsed `(names, values)`; `None` on any
            /// name/order mismatch (stale snapshot layout).
            pub fn set_fields(&mut self, names: &[String], values: &[u64]) -> Option<()> {
                let expected = [$(stringify!($name)),*];
                if names.len() != expected.len() || values.len() != expected.len() {
                    return None;
                }
                for (got, want) in names.iter().zip(expected) {
                    if got != want {
                        return None;
                    }
                }
                let mut it = values.iter();
                $(self.$name = *it.next()?;)*
                Some(())
            }
        }
    };
}

counter_fields!(
    offered,
    connected,
    blocked,
    busy,
    shed,
    deadline_expired,
    duplicate,
    bad_arg,
    disconnected,
    unknown_disconnects,
    faults,
    fault_noops,
    repairs,
    repair_noops,
    killed,
    reloads,
    bad_specs,
    migrated,
    migrate_dropped,
    snapshots,
    recovery_episodes,
    bad_frames,
);

/// Lock-free state shared between frontends and the engine.
#[derive(Debug, Default)]
pub struct SharedFlags {
    /// Connects shed at the frontends (queue full). Folded into
    /// [`Counters::shed`] at render/snapshot time.
    pub shed: AtomicU64,
    /// Malformed frames answered at the frontends.
    pub bad_frames: AtomicU64,
    /// Connections closed at accept because the concurrent-connection
    /// cap was reached. Not part of the wire report (the engine never
    /// saw these clients); tests and operators read it here.
    pub refused: AtomicU64,
    /// Set by the engine on shutdown; frontends and the acceptor poll it.
    pub shutdown: AtomicBool,
}

/// One queued request plus its reply channel and admission timestamp.
#[derive(Debug)]
pub struct Job {
    /// The decoded request.
    pub req: Request,
    /// Where the (single) response goes. Send errors are ignored — a
    /// vanished client does not perturb the engine.
    pub reply: Sender<Response>,
    /// When the frontend enqueued the job, for deadline accounting.
    pub enqueued: Instant,
}

/// Engine configuration, fixed at startup.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Deterministic mode: no deadline expiry, no wall-clock in any
    /// output — a lockstep client replays to byte-identical reports.
    pub deterministic: bool,
    /// Snapshot file; `None` disables both restore and periodic dumps.
    pub snapshot_path: Option<PathBuf>,
    /// Dump a snapshot every this many jobs (0 = only on request/shutdown).
    pub snapshot_every: u64,
}

/// Why a generation ended.
enum GenExit {
    /// Graceful reload: swap to this fabric, then migrate and reply.
    Reload {
        fabric: Box<Fabric>,
        tag: u64,
        reply: Sender<Response>,
    },
    /// Graceful shutdown (tag/reply already answered).
    Shutdown,
    /// Every frontend sender dropped — the server is tearing down.
    Disconnected,
}

/// State that survives generations (reloads) within one process.
struct Persistent {
    counters: Counters,
    /// Path lengths (hops) of every successfully connected circuit,
    /// recorded once at admission — reload migration re-places circuits
    /// without re-recording, so `count()` tracks `connected`.
    path_hist: Hist,
    /// Live circuits by client id → terminal pair; `BTreeMap` so
    /// migration order is deterministic.
    endpoints: BTreeMap<u64, (u32, u32)>,
    generations: u64,
    restored: bool,
    jobs_since_snapshot: u64,
}

/// Runs the engine to completion on the calling thread. Returns the
/// final report (also the body of the last `REPORT` response).
///
/// `fabric` is the boot topology; reloads replace it in place. If
/// `cfg.snapshot_path` holds a well-formed snapshot from a previous
/// incarnation, its counters and histogram become the starting base
/// (the crash-recovery path exercised by the CI `server_smoke` step).
pub fn run(
    mut fabric: Fabric,
    rx: Receiver<Job>,
    shared: &SharedFlags,
    cfg: &EngineConfig,
) -> String {
    let mut state = Persistent {
        counters: Counters::default(),
        path_hist: Hist::new(),
        endpoints: BTreeMap::new(),
        generations: 0,
        restored: false,
        jobs_since_snapshot: 0,
    };
    if let Some(path) = &cfg.snapshot_path {
        if let Some(snap) = Snapshot::load(path) {
            state.counters = snap.counters;
            state.path_hist = snap.hist;
            state.restored = true;
            eprintln!(
                "ftserve: restored counters from snapshot {} (offered {})",
                path.display(),
                state.counters.offered
            );
        }
    }
    let mut pending_migration: Option<(u64, Sender<Response>)> = None;
    loop {
        state.generations += 1;
        let exit = run_generation(
            &fabric,
            &rx,
            shared,
            cfg,
            &mut state,
            pending_migration.take(),
        );
        match exit {
            GenExit::Reload {
                fabric: f,
                tag,
                reply,
            } => {
                fabric = *f;
                pending_migration = Some((tag, reply));
            }
            GenExit::Shutdown | GenExit::Disconnected => break,
        }
    }
    shared.shutdown.store(true, Ordering::SeqCst);
    if cfg.snapshot_path.is_some() {
        write_snapshot(&mut state, shared, cfg);
    }
    render_report(&fabric, &state, shared, cfg)
}

fn effective_counters(state: &Persistent, shared: &SharedFlags) -> Counters {
    let mut c = state.counters.clone();
    c.shed += shared.shed.load(Ordering::SeqCst);
    c.bad_frames += shared.bad_frames.load(Ordering::SeqCst);
    c
}

fn write_snapshot(state: &mut Persistent, shared: &SharedFlags, cfg: &EngineConfig) {
    let Some(path) = &cfg.snapshot_path else {
        return;
    };
    let snap = Snapshot {
        counters: effective_counters(state, shared),
        hist: state.path_hist.clone(),
    };
    match snap.write(path) {
        Ok(()) => state.counters.snapshots += 1,
        Err(e) => eprintln!("ftserve: snapshot write to {} failed: {e}", path.display()),
    }
    state.jobs_since_snapshot = 0;
}

fn render_report(
    fabric: &Fabric,
    state: &Persistent,
    shared: &SharedFlags,
    cfg: &EngineConfig,
) -> String {
    let c = effective_counters(state, shared);
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str("  \"service\": \"ftserve\",\n");
    out.push_str(&format!("  \"fabric\": \"{}\",\n", fabric.label()));
    out.push_str(&format!("  \"terminals\": {},\n", fabric.terminals()));
    out.push_str(&format!("  \"deterministic\": {},\n", cfg.deterministic));
    out.push_str(&format!("  \"generations\": {},\n", state.generations));
    out.push_str(&format!("  \"restored\": {},\n", state.restored));
    out.push_str("  \"counters\": {\n");
    let fields = c.fields();
    for (i, (key, value)) in fields.iter().enumerate() {
        let comma = if i + 1 < fields.len() { "," } else { "" };
        out.push_str(&format!("    \"{key}\": {value}{comma}\n"));
    }
    out.push_str("  },\n");
    out.push_str("  \"path_hops\": {\n");
    out.push_str(&format!("    \"count\": {},\n", state.path_hist.count()));
    out.push_str(&format!(
        "    \"p50\": {:.3},\n",
        state.path_hist.quantile(50.0)
    ));
    out.push_str(&format!(
        "    \"p90\": {:.3},\n",
        state.path_hist.quantile(90.0)
    ));
    out.push_str(&format!(
        "    \"p99\": {:.3}\n",
        state.path_hist.quantile(99.0)
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

fn render_metrics(
    fabric: &Fabric,
    state: &Persistent,
    shared: &SharedFlags,
    cfg: &EngineConfig,
    active: usize,
    failed: usize,
    started: Instant,
) -> String {
    let c = effective_counters(state, shared);
    let mut line = ft_obs::KvLine::new("ftserve metrics")
        .kv("active", active)
        .kv("failed_switches", failed)
        .kv("generation", state.generations);
    for (key, value) in c.fields() {
        line = line.kv(key, value);
    }
    line = line
        .kv_f1("hops_p50", state.path_hist.quantile(50.0))
        .kv_f1("hops_p99", state.path_hist.quantile(99.0));
    if !cfg.deterministic {
        line = line.kv("uptime_ms", started.elapsed().as_millis());
    }
    let _ = fabric; // label lives in the report; metrics stay one line
    line.finish()
}

/// One generation: a router bound to `fabric` serving jobs until
/// reload, shutdown, or disconnect.
fn run_generation(
    fabric: &Fabric,
    rx: &Receiver<Job>,
    shared: &SharedFlags,
    cfg: &EngineConfig,
    state: &mut Persistent,
    pending_migration: Option<(u64, Sender<Response>)>,
) -> GenExit {
    let started = Instant::now();
    let net = fabric.net();
    let mut router = CircuitRouter::new(net);
    let mut inst = FailureInstance::perfect(net.num_edges());
    let mut tracker = fabric.alive_tracker(&inst);
    // Client circuit id → live session, and the reverse by router slot.
    let mut sessions: BTreeMap<u64, SessionId> = BTreeMap::new();
    let mut slot_owner: Vec<Option<u64>> = Vec::new();
    let mut failed_count: usize = 0;
    let mut delta: Vec<ft_graph::VertexId> = Vec::new();
    let mut scratch: Vec<SessionId> = Vec::new();

    // Migrate the previous generation's circuits onto the new fabric,
    // ascending circuit id (BTreeMap order) so the outcome is a pure
    // function of the live set — not of arrival history.
    let (mut migrated, mut dropped) = (0u32, 0u32);
    let survivors: Vec<(u64, u32, u32)> = state
        .endpoints
        .iter()
        .map(|(&id, &(src, dst))| (id, src, dst))
        .collect();
    for (id, src, dst) in survivors {
        let n = fabric.terminals();
        let placed = if (src as usize) < n && (dst as usize) < n {
            router
                .connect(net.inputs()[src as usize], net.outputs()[dst as usize])
                .ok()
        } else {
            None
        };
        match placed {
            Some(sid) => {
                sessions.insert(id, sid);
                claim_slot(&mut slot_owner, sid, id);
                // No path_hist record here: the circuit was already
                // counted at admission, and a circuit surviving N
                // reloads must not weigh N+1 times.
                migrated += 1;
            }
            None => {
                state.endpoints.remove(&id);
                dropped += 1;
            }
        }
    }
    if let Some((tag, reply)) = pending_migration {
        state.counters.migrated += u64::from(migrated);
        state.counters.migrate_dropped += u64::from(dropped);
        let mut body = Vec::with_capacity(8);
        body.extend_from_slice(&migrated.to_le_bytes());
        body.extend_from_slice(&dropped.to_le_bytes());
        let _ = reply.send(Response::ok(tag, body));
    }

    loop {
        let Ok(job) = rx.recv() else {
            return GenExit::Disconnected;
        };
        state.jobs_since_snapshot += 1;
        let reply = job.reply;
        // Deadline check at dequeue: a connect that waited in queue
        // past its deadline is answered typed, not routed — the client
        // has already given up on it. Deterministic mode never expires.
        if !cfg.deterministic {
            if let Request::Connect {
                tag, deadline_ms, ..
            } = job.req
            {
                if deadline_ms > 0
                    && job.enqueued.elapsed().as_millis() as u64 > u64::from(deadline_ms)
                {
                    state.counters.offered += 1;
                    state.counters.deadline_expired += 1;
                    let _ = reply.send(Response::new(Status::DeadlineExpired, tag));
                    continue;
                }
            }
        }
        match job.req {
            Request::Connect { tag, src, dst, .. } => {
                state.counters.offered += 1;
                let n = fabric.terminals();
                // The entry API doesn't fit: the insert is conditional
                // on `router.connect` succeeding in a later branch.
                #[allow(clippy::map_entry)]
                let resp = if sessions.contains_key(&tag) {
                    state.counters.duplicate += 1;
                    Response::new(Status::DuplicateId, tag)
                } else if (src as usize) >= n || (dst as usize) >= n {
                    state.counters.bad_arg += 1;
                    Response::new(Status::BadArg, tag)
                } else {
                    match router.connect(net.inputs()[src as usize], net.outputs()[dst as usize]) {
                        Ok(sid) => {
                            state.counters.connected += 1;
                            sessions.insert(tag, sid);
                            claim_slot(&mut slot_owner, sid, tag);
                            state.endpoints.insert(tag, (src, dst));
                            let hops = router.session_path(sid).map_or(0, |p| p.len());
                            state.path_hist.record(hops as f64);
                            Response::ok(tag, (hops as u32).to_le_bytes().to_vec())
                        }
                        Err(RouteError::Blocked(..)) => {
                            state.counters.blocked += 1;
                            Response::new(Status::Blocked, tag)
                        }
                        Err(RouteError::InputUnavailable(_) | RouteError::OutputUnavailable(_)) => {
                            state.counters.busy += 1;
                            Response::new(Status::Busy, tag)
                        }
                    }
                };
                let _ = reply.send(resp);
            }
            Request::Disconnect { tag } => {
                let resp = match sessions.remove(&tag) {
                    Some(sid) => {
                        let released = router.disconnect(sid);
                        debug_assert!(released, "session map out of sync with router");
                        slot_owner[sid.0 as usize] = None;
                        state.endpoints.remove(&tag);
                        state.counters.disconnected += 1;
                        Response::new(Status::Ok, tag)
                    }
                    None => {
                        state.counters.unknown_disconnects += 1;
                        Response::new(Status::UnknownCircuit, tag)
                    }
                };
                let _ = reply.send(resp);
            }
            Request::Fault { tag, switch, open } => {
                let resp = if (switch as usize) >= net.num_edges() || !fabric.supports_faults() {
                    state.counters.bad_arg += 1;
                    Response::new(Status::BadArg, tag)
                } else {
                    let e = EdgeId(switch);
                    if !inst.is_normal(e) {
                        state.counters.fault_noops += 1;
                        Response::new(Status::Noop, tag)
                    } else {
                        state.counters.faults += 1;
                        inst.set_state(
                            e,
                            if open {
                                SwitchState::Open
                            } else {
                                SwitchState::Closed
                            },
                        );
                        let (t, h) = net.graph().endpoints(e);
                        delta.clear();
                        tracker.fail_edge(t, h, &mut delta);
                        // Crossing circuits die in ascending slot order —
                        // same discipline as the simulator's kill wave.
                        scratch.clear();
                        for &v in &delta {
                            if let Some(sid) = router.session_through(v) {
                                if !scratch.contains(&sid) {
                                    scratch.push(sid);
                                }
                            }
                        }
                        scratch.sort_unstable_by_key(|sid| sid.0);
                        let mut kill_count = 0u32;
                        for &sid in &scratch {
                            let torn = router.disconnect(sid);
                            debug_assert!(torn);
                            if let Some(owner) = slot_owner[sid.0 as usize].take() {
                                sessions.remove(&owner);
                                state.endpoints.remove(&owner);
                            }
                            state.counters.killed += 1;
                            kill_count += 1;
                        }
                        let mut already = Vec::new();
                        for &v in &delta {
                            router.kill_vertex_into(v, &mut already);
                        }
                        debug_assert!(already.is_empty(), "kills after release");
                        failed_count += 1;
                        Response::ok(tag, kill_count.to_le_bytes().to_vec())
                    }
                };
                let _ = reply.send(resp);
            }
            Request::Repair { tag, switch } => {
                let resp = if (switch as usize) >= net.num_edges() || !fabric.supports_faults() {
                    state.counters.bad_arg += 1;
                    Response::new(Status::BadArg, tag)
                } else {
                    let e = EdgeId(switch);
                    if inst.is_normal(e) {
                        state.counters.repair_noops += 1;
                        Response::new(Status::Noop, tag)
                    } else {
                        state.counters.repairs += 1;
                        inst.set_state(e, SwitchState::Normal);
                        let (t, h) = net.graph().endpoints(e);
                        delta.clear();
                        tracker.repair_edge(t, h, &mut delta);
                        for &v in &delta {
                            router.revive_vertex(v);
                        }
                        failed_count -= 1;
                        if failed_count == 0 {
                            // The fabric is whole again: one recovery
                            // episode closed (the smoke test's headline
                            // robustness counter).
                            state.counters.recovery_episodes += 1;
                        }
                        Response::new(Status::Ok, tag)
                    }
                };
                let _ = reply.send(resp);
            }
            Request::Metrics { tag } => {
                let text = render_metrics(
                    fabric,
                    state,
                    shared,
                    cfg,
                    router.active_sessions(),
                    failed_count,
                    started,
                );
                let _ = reply.send(Response::ok(tag, text.into_bytes()));
            }
            Request::Reload { tag, spec } => match FabricSpec::parse(&spec) {
                Ok(fs) => {
                    state.counters.reloads += 1;
                    if failed_count > 0 {
                        // A reload swaps in a whole fabric, closing any
                        // open degradation episode.
                        state.counters.recovery_episodes += 1;
                    }
                    // Drain: tear the live circuits out of the old
                    // router cleanly; their endpoints stay registered
                    // for migration onto the new fabric.
                    let drained = router.drain();
                    debug_assert_eq!(drained.len(), sessions.len());
                    return GenExit::Reload {
                        fabric: Box::new(fs.build()),
                        tag,
                        reply,
                    };
                }
                Err(e) => {
                    state.counters.bad_specs += 1;
                    eprintln!("ftserve: reload rejected: {e}");
                    let _ = reply.send(Response::new(Status::BadSpec, tag));
                }
            },
            Request::Snapshot { tag } => {
                if cfg.snapshot_path.is_some() {
                    write_snapshot(state, shared, cfg);
                    let _ = reply.send(Response::new(Status::Ok, tag));
                } else {
                    let _ = reply.send(Response::new(Status::BadArg, tag));
                }
            }
            Request::Report { tag } => {
                let text = render_report(fabric, state, shared, cfg);
                let _ = reply.send(Response::ok(tag, text.into_bytes()));
            }
            Request::Shutdown { tag } => {
                let _ = reply.send(Response::new(Status::Ok, tag));
                return GenExit::Shutdown;
            }
        }
        if cfg.snapshot_every > 0
            && cfg.snapshot_path.is_some()
            && state.jobs_since_snapshot >= cfg.snapshot_every
        {
            write_snapshot(state, shared, cfg);
        }
    }
}

fn claim_slot(slot_owner: &mut Vec<Option<u64>>, sid: SessionId, owner: u64) {
    let slot = sid.0 as usize;
    if slot >= slot_owner.len() {
        slot_owner.resize(slot + 1, None);
    }
    slot_owner[slot] = Some(owner);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    fn boot() -> (Fabric, EngineConfig, SharedFlags) {
        (
            FabricSpec::parse("clos-strict 4 4").unwrap().build(),
            EngineConfig {
                deterministic: false,
                snapshot_path: None,
                snapshot_every: 0,
            },
            SharedFlags::default(),
        )
    }

    /// Drives `run` on a thread; returns (job sender, report receiver).
    fn spawn(fabric: Fabric, cfg: EngineConfig) -> (mpsc::SyncSender<Job>, mpsc::Receiver<String>) {
        let (tx, rx) = mpsc::sync_channel(64);
        let (report_tx, report_rx) = mpsc::channel();
        std::thread::spawn(move || {
            let shared = SharedFlags::default();
            let report = run(fabric, rx, &shared, &cfg);
            report_tx.send(report).unwrap();
        });
        (tx, report_rx)
    }

    fn ask(tx: &mpsc::SyncSender<Job>, req: Request) -> Response {
        ask_at(tx, req, Instant::now())
    }

    fn ask_at(tx: &mpsc::SyncSender<Job>, req: Request, enqueued: Instant) -> Response {
        let (reply, reply_rx) = mpsc::channel();
        tx.send(Job {
            req,
            reply,
            enqueued,
        })
        .unwrap();
        reply_rx.recv().unwrap()
    }

    #[test]
    fn connect_disconnect_and_typed_errors() {
        let (fabric, cfg, _) = boot();
        let terminals = fabric.terminals() as u32;
        let (tx, report_rx) = spawn(fabric, cfg);
        let ok = ask(
            &tx,
            Request::Connect {
                tag: 1,
                src: 0,
                dst: 1,
                deadline_ms: 0,
            },
        );
        assert_eq!(ok.status, Status::Ok);
        assert!(u32::from_le_bytes(ok.body[..4].try_into().unwrap()) >= 2);
        // duplicate id
        let dup = ask(
            &tx,
            Request::Connect {
                tag: 1,
                src: 2,
                dst: 3,
                deadline_ms: 0,
            },
        );
        assert_eq!(dup.status, Status::DuplicateId);
        // busy input terminal
        let busy = ask(
            &tx,
            Request::Connect {
                tag: 2,
                src: 0,
                dst: 2,
                deadline_ms: 0,
            },
        );
        assert_eq!(busy.status, Status::Busy);
        // out-of-range terminal
        let bad = ask(
            &tx,
            Request::Connect {
                tag: 3,
                src: terminals,
                dst: 0,
                deadline_ms: 0,
            },
        );
        assert_eq!(bad.status, Status::BadArg);
        assert_eq!(ask(&tx, Request::Disconnect { tag: 1 }).status, Status::Ok);
        // double disconnect of the same circuit id
        assert_eq!(
            ask(&tx, Request::Disconnect { tag: 1 }).status,
            Status::UnknownCircuit
        );
        assert_eq!(ask(&tx, Request::Shutdown { tag: 99 }).status, Status::Ok);
        let report = report_rx.recv().unwrap();
        assert!(report.contains("\"connected\": 1"));
        assert!(report.contains("\"duplicate\": 1"));
    }

    #[test]
    fn stale_connect_expires_but_deterministic_mode_never_does() {
        let (fabric, mut cfg, _) = boot();
        let stale = Instant::now() - Duration::from_millis(500);
        {
            let (tx, _report) = spawn(
                FabricSpec::parse("clos-strict 4 4").unwrap().build(),
                cfg.clone(),
            );
            let resp = ask_at(
                &tx,
                Request::Connect {
                    tag: 1,
                    src: 0,
                    dst: 0,
                    deadline_ms: 10,
                },
                stale,
            );
            assert_eq!(resp.status, Status::DeadlineExpired);
            ask(&tx, Request::Shutdown { tag: 2 });
        }
        cfg.deterministic = true;
        let (tx, _report) = spawn(fabric, cfg);
        let resp = ask_at(
            &tx,
            Request::Connect {
                tag: 1,
                src: 0,
                dst: 0,
                deadline_ms: 10,
            },
            stale,
        );
        assert_eq!(
            resp.status,
            Status::Ok,
            "deterministic mode ignores deadlines"
        );
        ask(&tx, Request::Shutdown { tag: 2 });
    }

    #[test]
    fn fault_kills_crossing_circuits_and_repair_closes_the_episode() {
        let (fabric, cfg, _) = boot();
        let (tx, report_rx) = spawn(fabric, cfg);
        for i in 0..4u64 {
            let r = ask(
                &tx,
                Request::Connect {
                    tag: i,
                    src: i as u32,
                    dst: i as u32,
                    deadline_ms: 0,
                },
            );
            assert_eq!(r.status, Status::Ok);
        }
        // Fail switches until some circuit dies, then repair them all.
        let mut struck = Vec::new();
        let mut total_killed = 0u32;
        for switch in 0.. {
            let r = ask(
                &tx,
                Request::Fault {
                    tag: 100 + switch as u64,
                    switch,
                    open: true,
                },
            );
            if r.status == Status::BadArg {
                break; // ran past the edge count
            }
            assert_eq!(r.status, Status::Ok);
            struck.push(switch);
            total_killed += u32::from_le_bytes(r.body[..4].try_into().unwrap());
            if total_killed > 0 {
                break;
            }
        }
        assert!(total_killed > 0, "some strike must kill a circuit");
        // Double-fault is a typed no-op.
        let again = ask(
            &tx,
            Request::Fault {
                tag: 999,
                switch: struck[0],
                open: true,
            },
        );
        assert_eq!(again.status, Status::Noop);
        for &switch in &struck {
            let r = ask(
                &tx,
                Request::Repair {
                    tag: 200 + switch as u64,
                    switch,
                },
            );
            assert_eq!(r.status, Status::Ok);
        }
        // A killed circuit's id is free again.
        let metrics = ask(&tx, Request::Metrics { tag: 1000 });
        assert_eq!(metrics.status, Status::Ok);
        let text = metrics.body_text();
        assert!(
            text.contains("recovery_episodes=1"),
            "episode closed: {text}"
        );
        ask(&tx, Request::Shutdown { tag: 0 });
        let report = report_rx.recv().unwrap();
        assert!(report.contains("\"recovery_episodes\": 1"), "{report}");
        assert!(
            report.contains(&format!("\"killed\": {total_killed}")),
            "{report}"
        );
    }

    #[test]
    fn reload_migrates_live_circuits_and_rejects_bad_specs() {
        let (fabric, cfg, _) = boot();
        let (tx, report_rx) = spawn(fabric, cfg);
        for i in 0..3u64 {
            let r = ask(
                &tx,
                Request::Connect {
                    tag: 10 + i,
                    src: i as u32,
                    dst: (3 - i) as u32,
                    deadline_ms: 0,
                },
            );
            assert_eq!(r.status, Status::Ok);
        }
        let bad = ask(
            &tx,
            Request::Reload {
                tag: 50,
                spec: "klos-strict 4 4".into(),
            },
        );
        assert_eq!(bad.status, Status::BadSpec);
        // Reload onto a bigger fabric: everything migrates.
        let r = ask(
            &tx,
            Request::Reload {
                tag: 51,
                spec: "benes 8".into(),
            },
        );
        assert_eq!(r.status, Status::Ok);
        let migrated = u32::from_le_bytes(r.body[..4].try_into().unwrap());
        let dropped = u32::from_le_bytes(r.body[4..8].try_into().unwrap());
        assert_eq!((migrated, dropped), (3, 0));
        // The migrated circuits are live on the new fabric: their ids
        // still disconnect cleanly.
        for i in 0..3u64 {
            assert_eq!(
                ask(&tx, Request::Disconnect { tag: 10 + i }).status,
                Status::Ok
            );
        }
        ask(&tx, Request::Shutdown { tag: 0 });
        let report = report_rx.recv().unwrap();
        assert!(report.contains("\"generations\": 2"), "{report}");
        assert!(report.contains("\"migrated\": 3"), "{report}");
        assert!(report.contains("\"bad_specs\": 1"), "{report}");
    }

    #[test]
    fn snapshot_survives_a_simulated_crash() {
        let dir = std::env::temp_dir().join(format!("ftserve-engine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crash.snap");
        let mut cfg = EngineConfig {
            deterministic: true,
            snapshot_path: Some(path.clone()),
            snapshot_every: 1,
        };
        let fabric = FabricSpec::parse("clos-strict 4 4").unwrap().build();
        {
            let (tx, _report) = spawn(
                FabricSpec::parse("clos-strict 4 4").unwrap().build(),
                cfg.clone(),
            );
            for i in 0..5u64 {
                ask(
                    &tx,
                    Request::Connect {
                        tag: i,
                        src: (i % 4) as u32,
                        dst: (i % 4) as u32,
                        deadline_ms: 0,
                    },
                );
            }
            // Simulated kill -9: drop the sender without Shutdown. The
            // engine sees Disconnected and exits; the per-job snapshot
            // cadence already persisted the counters.
        }
        std::thread::sleep(Duration::from_millis(100));
        let snap = Snapshot::load(&path).expect("snapshot exists after crash");
        assert_eq!(snap.counters.offered, 5);
        // Restart against the same snapshot: counters resume.
        cfg.snapshot_every = 0;
        let (tx, report_rx) = spawn(fabric, cfg);
        ask(
            &tx,
            Request::Connect {
                tag: 100,
                src: 0,
                dst: 0,
                deadline_ms: 0,
            },
        );
        ask(&tx, Request::Shutdown { tag: 0 });
        let report = report_rx.recv().unwrap();
        assert!(report.contains("\"restored\": true"), "{report}");
        assert!(report.contains("\"offered\": 6"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
