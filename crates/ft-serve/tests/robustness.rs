//! Protocol-robustness tests over real TCP: malformed frames, framing
//! desyncs, mid-frame disconnects, slow-loris writers, floods. The
//! invariant under test is always the same — every abuse gets a *typed*
//! response (or at worst its own connection closed), and the engine
//! keeps serving everyone else.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use ft_serve::{Client, EngineConfig, Request, Server, ServerConfig, Status};
use ft_sim::FabricSpec;

fn start_server(queue_depth: usize) -> Server {
    let fabric = FabricSpec::parse("clos-strict 4 4").unwrap().build();
    Server::start(
        fabric,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_depth,
            ..ServerConfig::default()
        },
    )
    .expect("bind")
}

fn finish(server: Server) {
    let mut c = Client::connect(server.addr()).unwrap();
    assert_eq!(c.shutdown(0).unwrap().status, Status::Ok);
    let _ = server.wait();
}

#[test]
fn unknown_opcode_gets_bad_frame_and_connection_survives() {
    let server = start_server(64);
    let mut c = Client::connect(server.addr()).unwrap();
    // A well-framed payload with a junk opcode but readable tag.
    let mut payload = vec![0xEEu8];
    payload.extend_from_slice(&77u64.to_le_bytes());
    c.send_raw(&payload).unwrap();
    let resp = c.read_response().unwrap();
    assert_eq!(resp.status, Status::BadFrame);
    assert_eq!(resp.tag, 77, "best-effort tag still correlates");
    // Same connection keeps working.
    assert_eq!(c.connect_circuit(1, 0, 0, 0).unwrap().status, Status::Ok);
    assert_eq!(c.disconnect_circuit(1).unwrap().status, Status::Ok);
    finish(server);
}

#[test]
fn short_and_oversized_payloads_are_typed_errors() {
    let server = start_server(64);
    let mut c = Client::connect(server.addr()).unwrap();
    // Truncated connect body (well-framed): typed error, keep serving.
    let mut short = Request::Connect {
        tag: 5,
        src: 0,
        dst: 0,
        deadline_ms: 0,
    }
    .encode();
    short.truncate(12);
    c.send_raw(&short).unwrap();
    assert_eq!(c.read_response().unwrap().status, Status::BadFrame);
    assert_eq!(c.metrics(6).unwrap().status, Status::Ok);
    // Oversized length prefix: answered, then the connection closes
    // (stream position is unrecoverable).
    c.send_bytes(&(u32::MAX).to_le_bytes()).unwrap();
    let resp = c.read_response().unwrap();
    assert_eq!(resp.status, Status::BadFrame);
    assert!(
        c.read_response().is_err(),
        "connection closed after framing desync"
    );
    // The server as a whole is unaffected.
    let mut c2 = Client::connect(server.addr()).unwrap();
    assert_eq!(c2.metrics(7).unwrap().status, Status::Ok);
    assert!(server.shared().bad_frames.load(Ordering::SeqCst) >= 2);
    finish(server);
}

#[test]
fn mid_frame_disconnect_only_kills_its_own_connection() {
    let server = start_server(64);
    // Write a length prefix promising 100 bytes, deliver 3, vanish.
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(b"abc").unwrap();
        s.flush().unwrap();
    } // dropped here — mid-frame EOF on the server
    std::thread::sleep(Duration::from_millis(50));
    let mut c = Client::connect(server.addr()).unwrap();
    assert_eq!(c.connect_circuit(1, 1, 2, 0).unwrap().status, Status::Ok);
    finish(server);
}

#[test]
fn slow_loris_writer_is_served_and_does_not_starve_others() {
    let server = start_server(64);
    let addr = server.addr();
    // The loris: one valid metrics request, delivered a byte at a time
    // with pauses longer than the server's read slice.
    let loris = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        let payload = Request::Metrics { tag: 42 }.encode();
        let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&payload);
        for b in frame {
            s.write_all(&[b]).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(30));
        }
        // The partial-read loop must have accumulated the frame.
        let mut c = Client::from_stream(s);
        let resp = c.read_response().unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.tag, 42);
    });
    // Meanwhile everyone else gets instant service.
    let mut c = Client::connect(addr).unwrap();
    for i in 0..20 {
        assert_eq!(c.connect_circuit(i, 0, 0, 0).unwrap().status, Status::Ok);
        assert_eq!(c.disconnect_circuit(i).unwrap().status, Status::Ok);
    }
    loris.join().unwrap();
    finish(server);
}

#[test]
fn double_disconnect_over_the_wire_is_unknown_circuit() {
    let server = start_server(64);
    let mut c = Client::connect(server.addr()).unwrap();
    assert_eq!(c.connect_circuit(9, 3, 3, 0).unwrap().status, Status::Ok);
    assert_eq!(c.disconnect_circuit(9).unwrap().status, Status::Ok);
    assert_eq!(
        c.disconnect_circuit(9).unwrap().status,
        Status::UnknownCircuit
    );
    // And for an id that never existed.
    assert_eq!(
        c.disconnect_circuit(12345).unwrap().status,
        Status::UnknownCircuit
    );
    finish(server);
}

#[test]
fn pipelined_flood_sheds_instead_of_wedging() {
    let server = start_server(1);
    let mut c = Client::connect(server.addr()).unwrap();
    let n = 200u64;
    for i in 0..n {
        c.send_raw(
            &Request::Connect {
                tag: i,
                src: 0,
                dst: 0,
                deadline_ms: 0,
            }
            .encode(),
        )
        .unwrap();
    }
    let mut shed = 0u64;
    let mut connected = Vec::new();
    for _ in 0..n {
        let resp = c.read_response().unwrap();
        match resp.status {
            Status::Shed => shed += 1,
            Status::Ok => connected.push(resp.tag),
            Status::Busy => {}
            other => panic!("unexpected flood status {other:?}"),
        }
    }
    assert!(
        shed > 0,
        "queue depth 1 under a 200-deep pipeline must shed"
    );
    assert_eq!(shed, server.shared().shed.load(Ordering::SeqCst));
    // The engine is alive and consistent after the flood.
    for tag in connected {
        assert_eq!(c.disconnect_circuit(tag).unwrap().status, Status::Ok);
    }
    assert_eq!(c.metrics(0).unwrap().status, Status::Ok);
    finish(server);
}

#[test]
fn connection_cap_refuses_excess_connections() {
    let fabric = FabricSpec::parse("clos-strict 4 4").unwrap().build();
    let server = Server::start(
        fabric,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    assert_eq!(a.metrics(1).unwrap().status, Status::Ok);
    assert_eq!(b.metrics(2).unwrap().status, Status::Ok);
    // The third connection completes the TCP handshake (listener
    // backlog) but the acceptor closes it unanswered.
    let mut c = Client::connect(server.addr()).unwrap();
    assert!(
        c.metrics(3).is_err(),
        "over-cap connection must be closed, not served"
    );
    assert!(server.shared().refused.load(Ordering::SeqCst) >= 1);
    // Hanging up frees a slot: the next accept reaps the finished
    // thread and serves again.
    drop(a);
    std::thread::sleep(Duration::from_millis(50));
    let mut d = Client::connect(server.addr()).unwrap();
    assert_eq!(d.metrics(4).unwrap().status, Status::Ok);
    // Free both live slots so finish()'s shutdown connection fits.
    drop(b);
    drop(d);
    std::thread::sleep(Duration::from_millis(50));
    finish(server);
}

#[test]
fn deterministic_servers_produce_byte_identical_reports() {
    let script = |server: Server| -> String {
        let mut c = Client::connect(server.addr()).unwrap();
        for i in 0..8u64 {
            let _ = c.connect_circuit(i, (i % 4) as u32, ((i + 1) % 4) as u32, 0);
        }
        for i in 0..4u64 {
            let _ = c.disconnect_circuit(i);
        }
        let _ = c.fault(100, 0, true);
        let _ = c.repair(101, 0);
        let _ = c.reload(102, "clos-strict 4 4");
        c.shutdown(103).unwrap();
        server.wait()
    };
    let mk = || {
        Server::start(
            FabricSpec::parse("clos-strict 4 4").unwrap().build(),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                queue_depth: 64,
                engine: EngineConfig {
                    deterministic: true,
                    snapshot_path: None,
                    snapshot_every: 0,
                },
                ..ServerConfig::default()
            },
        )
        .unwrap()
    };
    let a = script(mk());
    let b = script(mk());
    assert_eq!(a, b, "deterministic mode must be byte-identical");
    assert!(a.contains("\"deterministic\": true"));
}
