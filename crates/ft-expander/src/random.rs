//! Random regular bipartite expanders (the Bassalygo–Pinsker route).
//!
//! The standard probabilistic construction the paper cites \[BP\]: a
//! `d`-regular bipartite graph obtained as the union of `d` uniformly
//! random perfect matchings is, with high probability, an excellent
//! expander. The §6 construction needs `(32s, 33.07s, 64s)`-expanding
//! graphs of degree 10 on `64s + 64s` vertices; random degree-10 unions
//! exceed that expansion with overwhelming probability (Lemma 5 of the
//! paper budgets for it).

use crate::bipartite::BipartiteGraph;
use ft_graph::gen::random_permutation;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

/// Union of `d` random permutations: a `d`-regular bipartite multigraph
/// on `n + n` vertices (both sides exactly degree `d`).
pub fn union_of_permutations(rng: &mut SmallRng, n: usize, d: usize) -> BipartiteGraph {
    let mut adj = vec![Vec::with_capacity(d); n];
    for _ in 0..d {
        let p = random_permutation(rng, n);
        for (i, &o) in p.iter().enumerate() {
            adj[i].push(o);
        }
    }
    BipartiteGraph::new(adj, n)
}

/// Random bipartite graph where each of `inlets` picks `d` outlets
/// without replacement (left-regular only).
pub fn random_left_regular(
    rng: &mut SmallRng,
    inlets: usize,
    outlets: usize,
    d: usize,
) -> BipartiteGraph {
    assert!(d <= outlets, "degree exceeds outlet count");
    let mut pool: Vec<u32> = (0..outlets as u32).collect();
    let mut adj = Vec::with_capacity(inlets);
    for _ in 0..inlets {
        // Use the returned sample slice — its position within `pool`
        // differs between upstream rand and the vendored shim.
        let (sampled, _) = pool.partial_shuffle(rng, d);
        let mut nbrs = sampled.to_vec();
        nbrs.sort_unstable();
        adj.push(nbrs);
    }
    BipartiteGraph::new(adj, outlets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::rng;

    #[test]
    fn permutation_union_is_biregular() {
        let mut r = rng(1);
        let b = union_of_permutations(&mut r, 50, 10);
        assert_eq!(b.num_inlets(), 50);
        assert_eq!(b.num_outlets(), 50);
        assert_eq!(b.num_edges(), 500);
        for i in 0..50 {
            assert_eq!(b.degree(i), 10);
        }
        assert!(b.outlet_degrees().iter().all(|&d| d == 10));
    }

    #[test]
    fn left_regular_shape() {
        let mut r = rng(2);
        let b = random_left_regular(&mut r, 20, 30, 5);
        assert_eq!(b.num_inlets(), 20);
        assert_eq!(b.num_outlets(), 30);
        for i in 0..20 {
            assert_eq!(b.degree(i), 5);
            // distinct outlets
            let mut nbrs = b.neighbors(i).to_vec();
            nbrs.dedup();
            assert_eq!(nbrs.len(), 5);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = union_of_permutations(&mut rng(7), 16, 3);
        let b = union_of_permutations(&mut rng(7), 16, 3);
        for i in 0..16 {
            assert_eq!(a.neighbors(i), b.neighbors(i));
        }
    }

    #[test]
    fn random_graphs_expand_in_practice() {
        // degree-10 union on 64 vertices: every 32-subset sampled should
        // see well over 33 outlets (the paper's requirement at s = 1)
        let mut r = rng(3);
        let b = union_of_permutations(&mut r, 64, 10);
        let mut scratch = Vec::new();
        use rand::seq::SliceRandom;
        let mut idx: Vec<usize> = (0..64).collect();
        for _ in 0..200 {
            idx.shuffle(&mut r);
            let nb = b.neighborhood_size(&idx[..32], &mut scratch);
            assert!(nb >= 34, "expansion too small: {nb}");
        }
    }
}
