//! Bipartite graphs with inlets and outlets.
//!
//! The §6 construction is glued together from `(c, c′, t)`-**expanding
//! graphs**: bipartite directed graphs on `t` inlets and `t` outlets in
//! which every set of `c` inlets is joined to at least `c′` outlets.
//! This module holds the representation shared by the random and explicit
//! constructions and the expansion verifiers.

use ft_graph::{DiGraph, VertexId};

/// A bipartite graph from `inlets` to `outlets`, stored as adjacency
/// lists (`adj[i]` = outlets of inlet `i`; parallel edges permitted).
#[derive(Clone, Debug)]
pub struct BipartiteGraph {
    outlets: usize,
    adj: Vec<Vec<u32>>,
}

impl BipartiteGraph {
    /// Creates a bipartite graph from adjacency lists.
    ///
    /// # Panics
    /// Panics if an adjacency entry exceeds `outlets`.
    pub fn new(adj: Vec<Vec<u32>>, outlets: usize) -> Self {
        for nbrs in &adj {
            for &o in nbrs {
                assert!((o as usize) < outlets, "outlet {o} out of range");
            }
        }
        BipartiteGraph { outlets, adj }
    }

    /// Number of inlets.
    pub fn num_inlets(&self) -> usize {
        self.adj.len()
    }

    /// Number of outlets.
    pub fn num_outlets(&self) -> usize {
        self.outlets
    }

    /// Number of edges (with multiplicity).
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Outlets adjacent to inlet `i`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.adj[i]
    }

    /// Out-degree of inlet `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }

    /// In-degrees of all outlets.
    pub fn outlet_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.outlets];
        for nbrs in &self.adj {
            for &o in nbrs {
                deg[o as usize] += 1;
            }
        }
        deg
    }

    /// Size of the neighbourhood `|Γ(S)|` of an inlet set (distinct
    /// outlets), using a scratch buffer to stay allocation-light.
    pub fn neighborhood_size(&self, inlet_set: &[usize], scratch: &mut Vec<bool>) -> usize {
        scratch.clear();
        scratch.resize(self.outlets, false);
        let mut count = 0usize;
        for &i in inlet_set {
            for &o in &self.adj[i] {
                if !scratch[o as usize] {
                    scratch[o as usize] = true;
                    count += 1;
                }
            }
        }
        count
    }

    /// The neighbourhood as a sorted outlet list.
    pub fn neighborhood(&self, inlet_set: &[usize]) -> Vec<u32> {
        let mut scratch = Vec::new();
        self.neighborhood_size(inlet_set, &mut scratch);
        scratch
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(o, _)| o as u32)
            .collect()
    }

    /// Embeds the bipartite graph into a [`DiGraph`]: inlets get ids
    /// `0..inlets`, outlets `inlets..inlets+outlets`.
    pub fn to_digraph(&self) -> DiGraph {
        let mut g = DiGraph::with_capacity(self.num_inlets() + self.outlets, self.num_edges());
        g.add_vertices(self.num_inlets() + self.outlets);
        let base = self.num_inlets();
        for (i, nbrs) in self.adj.iter().enumerate() {
            for &o in nbrs {
                g.add_edge(VertexId::from(i), VertexId::from(base + o as usize));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k23() -> BipartiteGraph {
        // complete bipartite 2 inlets × 3 outlets
        BipartiteGraph::new(vec![vec![0, 1, 2], vec![0, 1, 2]], 3)
    }

    #[test]
    fn basic_shape() {
        let b = k23();
        assert_eq!(b.num_inlets(), 2);
        assert_eq!(b.num_outlets(), 3);
        assert_eq!(b.num_edges(), 6);
        assert_eq!(b.degree(0), 3);
        assert_eq!(b.outlet_degrees(), vec![2, 2, 2]);
    }

    #[test]
    fn neighborhoods() {
        let b = BipartiteGraph::new(vec![vec![0, 1], vec![1, 2], vec![2, 2]], 4);
        let mut scratch = Vec::new();
        assert_eq!(b.neighborhood_size(&[0], &mut scratch), 2);
        assert_eq!(b.neighborhood_size(&[0, 1], &mut scratch), 3);
        assert_eq!(
            b.neighborhood_size(&[2], &mut scratch),
            1,
            "parallel edges counted once"
        );
        assert_eq!(b.neighborhood(&[1, 2]), vec![1, 2]);
        assert_eq!(b.neighborhood_size(&[], &mut scratch), 0);
    }

    #[test]
    fn digraph_embedding() {
        let b = k23();
        let g = b.to_digraph();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 6);
        assert!(g.has_edge(ft_graph::ids::v(0), ft_graph::ids::v(2)));
        assert!(ft_graph::traversal::is_acyclic(&g));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_outlet() {
        BipartiteGraph::new(vec![vec![3]], 3);
    }
}
