//! The paper's expanding graphs: `(32s, 33.07s, 64s)`, degree 10.
//!
//! §6 consumes, between consecutive stages of the recursive network,
//! disjoint `(32·4^i, 32(1 + (2−√3)/8)·4^i, 64·4^i)`-expanding graphs in
//! which every inlet has ten out-edges and every outlet ten in-edges.
//! `32(1 + (2−√3)/8) ≈ 33.07` — the paper rounds it to 33.07 throughout
//! (`(2−√3)/4` is the Gabber–Galil expansion constant; at half-full sets
//! it contributes `(2−√3)/8`).
//! This module packages that exact parameterisation: construction (union
//! of ten random permutations), requirement computation, and probe-based
//! acceptance testing used when a sampled graph must be retried.

use crate::bipartite::BipartiteGraph;
use crate::random::union_of_permutations;
use crate::spectral::certified_c_prime;
use crate::verify::{min_neighborhood_greedy, min_neighborhood_sampled};
use rand::rngs::SmallRng;

/// The paper's expander degree (ten out-edges per inlet, ten in-edges
/// per outlet).
pub const PAPER_DEGREE: usize = 10;

/// The expansion factor `1 + (2 − √3)/8` relating `c` to `c′`.
pub fn expansion_factor() -> f64 {
    1.0 + (2.0 - 3.0f64.sqrt()) / 8.0
}

/// Parameters of a `(c, c′, t)`-expanding graph at scale `s` (the
/// paper's `4^i`): `c = 32s`, `c′ = ⌈32·(1+(2−√2)/8)·s⌉`, `t = 64s`
/// vertices per side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpanderSpec {
    /// Inlet-subset size whose expansion is guaranteed (`32s`).
    pub c: usize,
    /// Guaranteed neighbourhood size (`≈ 33.07s`).
    pub c_prime: usize,
    /// Vertices per side (`64s`).
    pub t: usize,
}

impl ExpanderSpec {
    /// Spec at scale `s` (the paper's `4^i`; any positive integer works
    /// for reduced profiles).
    pub fn at_scale(s: usize) -> Self {
        assert!(s >= 1);
        ExpanderSpec {
            c: 32 * s,
            c_prime: (expansion_factor() * 32.0 * s as f64).ceil() as usize,
            t: 64 * s,
        }
    }

    /// A reduced spec with side `t` (halving rules preserved:
    /// `c = t/2`, `c′ = ⌈factor·t/2⌉`). Used by laptop-scale profiles
    /// where `t` is not a multiple of 64.
    pub fn with_side(t: usize) -> Self {
        assert!(t >= 2 && t.is_multiple_of(2), "side must be even, got {t}");
        let c = t / 2;
        ExpanderSpec {
            c,
            c_prime: (expansion_factor() * c as f64).ceil() as usize,
            t,
        }
    }
}

/// A constructed paper expander: the bipartite graph plus its spec.
#[derive(Clone, Debug)]
pub struct PaperExpander {
    /// Expansion specification the graph is meant to satisfy.
    pub spec: ExpanderSpec,
    /// The degree-10 biregular bipartite graph.
    pub graph: BipartiteGraph,
}

/// Samples a degree-10 union-of-permutations graph for `spec`.
/// No acceptance test is run (Lemma 5 budgets failure probability for
/// the whole family); use [`sample_probed`] when a stronger guarantee
/// per instance is wanted.
pub fn sample(spec: ExpanderSpec, rng: &mut SmallRng) -> PaperExpander {
    PaperExpander {
        spec,
        graph: union_of_permutations(rng, spec.t, PAPER_DEGREE),
    }
}

/// Acceptance testing ran out of attempts: no sampled graph passed the
/// probe cascade for the spec. With degree 10 and the paper's ratios
/// this is overwhelmingly unlikely for `t ≥ 8`, so surviving callers
/// usually `expect` it — but library code gets to decide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeExhausted {
    /// The spec no candidate satisfied.
    pub spec: ExpanderSpec,
    /// How many candidates were sampled and rejected.
    pub attempts: usize,
}

impl std::fmt::Display for ProbeExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no degree-{PAPER_DEGREE} sample satisfied {:?} after {} attempts",
            self.spec, self.attempts
        )
    }
}

impl std::error::Error for ProbeExhausted {}

/// Samples and retries until probing finds no violation of the spec
/// (at most `max_attempts` tries).
///
/// Candidates run through a cheap-to-expensive cascade, so the typical
/// accept costs microseconds instead of the former full greedy sweep:
///
/// 1. **sampled falsifier** — a handful of uniform random `c`-subsets;
///    rejects egregiously bad samples for ~one neighbourhood scan each;
/// 2. **spectral certificate** — Tanner's bound from power-iteration
///    estimates of λ₂ (`O(iters · E)`). Power iteration approaches λ₂
///    from below, so a single estimate is *not* a sound upper bound;
///    to keep the accept conservative we take the **worst of two
///    independent estimates** (independent random starts), inflate it
///    by a 10% slack, and require the bound to clear the spec. A
///    random degree-10 union of permutations is near-Ramanujan
///    (λ ≈ 6, versus the ≈9.5 the paper's ratios tolerate), so the
///    margin is wide and virtually every candidate still certifies —
///    with evidence that, unlike subset probing, covers all subsets at
///    once (it is still probabilistic, as the greedy sweep always was);
/// 3. **greedy adversarial probe** — the previous full falsifier, kept
///    as the accept path for graphs the spectral bound cannot certify
///    (tiny `t`, unlucky λ estimates).
///
/// # Errors
/// Returns [`ProbeExhausted`] when no sample passes within
/// `max_attempts` — with degree 10 and the paper's ratios this is
/// overwhelmingly unlikely for `t ≥ 8`.
pub fn sample_probed(
    spec: ExpanderSpec,
    rng: &mut SmallRng,
    max_attempts: usize,
) -> Result<PaperExpander, ProbeExhausted> {
    for _ in 0..max_attempts {
        let cand = sample(spec, rng);
        // 1. cheap falsifier: reject obviously bad candidates early
        let quick_probes = (spec.t / 8).clamp(2, 16);
        if min_neighborhood_sampled(&cand.graph, spec.c, quick_probes, rng).size < spec.c_prime {
            continue;
        }
        // 2. spectral certificate: worst of two independent estimates
        let certified = (0..2)
            .map(|_| certified_c_prime(&cand.graph, spec.c, 60, 0.10, rng))
            .min()
            .unwrap();
        if certified >= spec.c_prime {
            return Ok(cand);
        }
        // 3. full greedy adversarial probing (previous behaviour)
        let probes = spec.t.clamp(4, 64);
        let worst = min_neighborhood_greedy(&cand.graph, spec.c, probes, rng);
        if worst.size >= spec.c_prime {
            return Ok(cand);
        }
    }
    Err(ProbeExhausted {
        spec,
        attempts: max_attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::rng;

    #[test]
    fn factor_matches_paper_constant() {
        // 32·(1+(2−√2)/8) ≈ 33.0745 — the paper writes 33.07
        let f = expansion_factor() * 32.0;
        assert!((f - 33.07).abs() < 0.01, "factor {f}");
    }

    #[test]
    fn spec_at_paper_scales() {
        let s1 = ExpanderSpec::at_scale(1);
        assert_eq!(
            s1,
            ExpanderSpec {
                c: 32,
                c_prime: 34,
                t: 64
            }
        );
        let s4 = ExpanderSpec::at_scale(4);
        assert_eq!(s4.c, 128);
        assert_eq!(s4.t, 256);
        // ⌈33.0745·4⌉ = ⌈132.3⌉ = 133
        assert_eq!(s4.c_prime, 133);
    }

    #[test]
    fn reduced_spec() {
        let s = ExpanderSpec::with_side(16);
        assert_eq!(s.c, 8);
        assert_eq!(s.t, 16);
        assert_eq!(s.c_prime, 9); // ⌈8·1.0336⌉ = ⌈8.26⌉
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn reduced_spec_rejects_odd() {
        ExpanderSpec::with_side(7);
    }

    #[test]
    fn sampled_expander_is_degree_10() {
        let spec = ExpanderSpec::at_scale(1);
        let e = sample(spec, &mut rng(1));
        assert_eq!(e.graph.num_inlets(), 64);
        for i in 0..64 {
            assert_eq!(e.graph.degree(i), PAPER_DEGREE);
        }
        assert!(e.graph.outlet_degrees().iter().all(|&d| d == PAPER_DEGREE));
    }

    #[test]
    fn probed_sampling_succeeds_at_scale_1() {
        let spec = ExpanderSpec::at_scale(1);
        let e = sample_probed(spec, &mut rng(2), 10).unwrap();
        assert_eq!(e.spec, spec);
    }

    #[test]
    fn probed_sampling_reports_exhaustion_as_an_error() {
        // zero attempts can never accept; the typed error carries the
        // spec and the attempt count
        let spec = ExpanderSpec::at_scale(1);
        let err = sample_probed(spec, &mut rng(4), 0).unwrap_err();
        assert_eq!(err, ProbeExhausted { spec, attempts: 0 });
        assert!(err.to_string().contains("after 0 attempts"), "{err}");
    }

    #[test]
    fn probed_sampling_survives_adversarial_recheck() {
        // whatever path accepted the sample (spectral or greedy), the
        // result must withstand a full greedy falsification sweep
        let spec = ExpanderSpec::at_scale(1);
        for seed in 0..5u64 {
            let mut r = rng(0x5EC + seed);
            let e = sample_probed(spec, &mut r, 10).unwrap();
            let worst = min_neighborhood_greedy(&e.graph, spec.c, 64, &mut r);
            assert!(
                worst.size >= spec.c_prime,
                "accepted sample falsified: {} < {} (seed {seed})",
                worst.size,
                spec.c_prime
            );
        }
    }

    #[test]
    fn probed_sampling_succeeds_reduced() {
        let spec = ExpanderSpec::with_side(8);
        // t=8, c=4, degree 10 > t means permutations repeat outlets;
        // still fine: c'=5 ≤ 8
        let e = sample_probed(spec, &mut rng(3), 20).unwrap();
        assert!(e.graph.num_outlets() == 8);
    }
}
