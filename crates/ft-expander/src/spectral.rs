//! Spectral expansion certificates (Tanner's bound).
//!
//! For a `d`-biregular bipartite graph on `n + n` vertices with second
//! singular value `λ` of its adjacency matrix, Tanner's theorem gives,
//! for every inlet set `S`,
//!
//! ```text
//! |Γ(S)| ≥ d²·|S| / (λ² + (d² − λ²)·|S|/n)
//! ```
//!
//! — a *certificate* of `(c, c′, t)`-expansion that, unlike subset
//! sampling, holds for all sets at once. λ is estimated by power
//! iteration on `AᵀA` with deflation of the top singular vector (which
//! is the all-ones vector for biregular graphs, with σ₁ = d).

use crate::bipartite::BipartiteGraph;
use rand::rngs::SmallRng;
use rand::Rng;

/// Estimates the second singular value of the (biregular) adjacency
/// matrix by deflated power iteration.
///
/// # Panics
/// Panics if the graph is not biregular (top singular vector would not
/// be all-ones, invalidating the deflation).
pub fn second_singular_value(b: &BipartiteGraph, iters: usize, rng: &mut SmallRng) -> f64 {
    let n = b.num_inlets();
    assert_eq!(n, b.num_outlets(), "spectral bound needs equal sides");
    assert!(n >= 2, "need at least two inlets");
    let d = b.degree(0);
    assert!(
        (0..n).all(|i| b.degree(i) == d) && b.outlet_degrees().iter().all(|&x| x == d),
        "graph must be d-biregular"
    );

    // x lives on inlets; repeatedly apply AᵀA and project out 1-vector.
    let mut x: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    let mut y = vec![0.0f64; n]; // outlet workspace
    let mut sigma2 = 0.0f64;
    for _ in 0..iters {
        // deflate: x ← x − mean(x)
        let mean = x.iter().sum::<f64>() / n as f64;
        for v in x.iter_mut() {
            *v -= mean;
        }
        // y = A x (outlet o accumulates inlet values)
        y.iter_mut().for_each(|v| *v = 0.0);
        for (i, &xi) in x.iter().enumerate() {
            for &o in b.neighbors(i) {
                y[o as usize] += xi;
            }
        }
        // x' = Aᵀ y
        let mut x2 = vec![0.0f64; n];
        for (i, xi2) in x2.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &o in b.neighbors(i) {
                acc += y[o as usize];
            }
            *xi2 = acc;
        }
        let norm_x = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let norm_x2 = x2.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm_x <= 1e-300 || norm_x2 <= 1e-300 {
            return 0.0; // numerically disconnected from the 2nd eigenspace
        }
        sigma2 = norm_x2 / norm_x; // Rayleigh estimate of λ²
        let inv = 1.0 / norm_x2;
        x = x2;
        x.iter_mut().for_each(|v| *v *= inv);
    }
    sigma2.max(0.0).sqrt()
}

/// Tanner's lower bound on `|Γ(S)|` for `|S| = s` in a `d`-biregular
/// graph on `n + n` vertices with second singular value `lambda`.
pub fn tanner_bound(d: usize, lambda: f64, n: usize, s: usize) -> f64 {
    let d2 = (d * d) as f64;
    let l2 = lambda * lambda;
    let frac = s as f64 / n as f64;
    d2 * s as f64 / (l2 + (d2 - l2) * frac)
}

/// Certified expansion `(c, c′)` implied by the spectral estimate:
/// returns the `c′` that Tanner guarantees for sets of size `c`
/// (rounded down), using a λ estimate inflated by `slack` to absorb
/// power-iteration error.
pub fn certified_c_prime(
    b: &BipartiteGraph,
    c: usize,
    iters: usize,
    slack: f64,
    rng: &mut SmallRng,
) -> usize {
    let d = b.degree(0);
    let lambda = second_singular_value(b, iters, rng) * (1.0 + slack);
    let lambda = lambda.min(d as f64);
    tanner_bound(d, lambda, b.num_inlets(), c).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::margulis::gabber_galil;
    use crate::random::union_of_permutations;
    use ft_graph::gen::rng;

    #[test]
    fn complete_bipartite_has_zero_lambda2() {
        // K_{n,n}: rank-1 adjacency, λ₂ = 0
        let n = 8;
        let adj = vec![(0..n as u32).collect::<Vec<_>>(); n];
        let b = BipartiteGraph::new(adj, n);
        let mut r = rng(1);
        let l = second_singular_value(&b, 60, &mut r);
        assert!(l < 1e-6, "λ₂ = {l}");
        // Tanner then certifies full expansion
        assert!(tanner_bound(n, l, n, 2) > (n - 1) as f64);
    }

    #[test]
    fn disjoint_matchings_have_lambda2_equal_d() {
        // identity matching (d=1): A = I, all singular values 1 = d —
        // no expansion, and Tanner degenerates to |S|
        let n = 8;
        let adj: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![i]).collect();
        let b = BipartiteGraph::new(adj, n);
        let mut r = rng(2);
        let l = second_singular_value(&b, 60, &mut r);
        assert!((l - 1.0).abs() < 1e-6, "λ₂ = {l}");
        let t = tanner_bound(1, l, n, 3);
        assert!((t - 3.0).abs() < 1e-6);
    }

    #[test]
    fn random_expander_beats_trivial_bound() {
        let mut r = rng(3);
        let b = union_of_permutations(&mut r, 64, 10);
        let l = second_singular_value(&b, 120, &mut r);
        assert!(l < 10.0, "λ₂ must be below d");
        // random d-regular graphs approach Ramanujan: λ ≈ 2√(d−1) = 6
        assert!(l < 8.5, "λ₂ = {l} too large for a random 10-regular graph");
        // Tanner certificate at the paper's operating point (c = n/2)
        let guaranteed = tanner_bound(10, l, 64, 32);
        assert!(
            guaranteed >= 34.0,
            "spectral certificate {guaranteed} below paper requirement"
        );
    }

    #[test]
    fn gabber_galil_is_biregular_and_spectral_runs() {
        let b = gabber_galil(6);
        let mut r = rng(4);
        let l = second_singular_value(&b, 100, &mut r);
        assert!(l < 5.0, "λ₂ = {l} must be < d = 5");
        assert!(l > 0.5, "GG is not complete bipartite");
    }

    #[test]
    fn certified_c_prime_is_conservative() {
        let mut r = rng(5);
        let b = union_of_permutations(&mut r, 64, 10);
        let cert = certified_c_prime(&b, 32, 120, 0.05, &mut r);
        // certificate must never exceed what sampling observes
        let observed = crate::verify::min_neighborhood_sampled(&b, 32, 300, &mut r);
        assert!(
            cert <= observed.size,
            "certificate {cert} > observed {}",
            observed.size
        );
        assert!(cert >= 32, "certificate uselessly small: {cert}");
    }

    #[test]
    #[should_panic(expected = "biregular")]
    fn rejects_irregular() {
        let b = BipartiteGraph::new(vec![vec![0, 1], vec![0]], 2);
        second_singular_value(&b, 10, &mut rng(6));
    }
}
