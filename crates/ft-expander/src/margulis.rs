//! The explicit Margulis / Gabber–Galil expander.
//!
//! The paper notes that explicit `(an, bn, n)`-expanding graphs were
//! first constructed by Margulis \[M\] and made effective by Gabber &
//! Galil \[GG\]. The GG graph lives on two copies of `Z_m × Z_m`: inlet
//! `(x, y)` is joined to the five outlets
//!
//! ```text
//! (x, y),  (x, x + y),  (x, x + y + 1),  (x + y, y),  (x + y + 1, y)   (mod m)
//! ```
//!
//! Gabber & Galil prove `|Γ(S)| ≥ (1 + c·(1 − |S|/n))·|S|` with
//! `c = (2 − √3)/4`. We expose the construction and its expansion
//! guarantee; the verifier module checks it empirically on small `m`.

use crate::bipartite::BipartiteGraph;

/// The Gabber–Galil expansion constant `c = (2 − √3)/4 ≈ 0.0669`.
pub const GG_EXPANSION_CONSTANT: f64 = 0.066_987_298_107_780_68;

/// Degree of the Gabber–Galil graph.
pub const GG_DEGREE: usize = 5;

/// Builds the Gabber–Galil expander on `n = m²` inlets/outlets.
pub fn gabber_galil(m: usize) -> BipartiteGraph {
    assert!(m >= 1, "m must be positive");
    let n = m * m;
    let id = |x: usize, y: usize| (x % m) * m + (y % m);
    let mut adj = Vec::with_capacity(n);
    for x in 0..m {
        for y in 0..m {
            let mut nbrs = vec![
                id(x, y) as u32,
                id(x, x + y) as u32,
                id(x, x + y + 1) as u32,
                id(x + y, y) as u32,
                id(x + y + 1, y) as u32,
            ];
            nbrs.sort_unstable();
            adj.push(nbrs);
        }
    }
    BipartiteGraph::new(adj, n)
}

/// The Gabber–Galil guarantee: a set of `s` inlets (out of `n`) has at
/// least this many outlets.
pub fn gg_guaranteed_neighborhood(n: usize, s: usize) -> f64 {
    let frac = s as f64 / n as f64;
    (1.0 + GG_EXPANSION_CONSTANT * (1.0 - frac)) * s as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::rng;
    use rand::seq::SliceRandom;

    #[test]
    fn shape() {
        let b = gabber_galil(5);
        assert_eq!(b.num_inlets(), 25);
        assert_eq!(b.num_outlets(), 25);
        for i in 0..25 {
            assert!(b.degree(i) == GG_DEGREE);
        }
        // m=1 degenerates gracefully (all neighbours coincide)
        let t = gabber_galil(1);
        assert_eq!(t.num_inlets(), 1);
    }

    #[test]
    fn neighbors_formula_spot_check() {
        let m = 7;
        let b = gabber_galil(m);
        // inlet (2, 3) = index 2*7+3 = 17
        let nbrs = b.neighborhood(&[17]);
        let id = |x: usize, y: usize| ((x % m) * m + (y % m)) as u32;
        let mut expect = vec![id(2, 3), id(2, 5), id(2, 6), id(5, 3), id(6, 3)];
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(nbrs, expect);
    }

    #[test]
    fn gg_expansion_holds_on_sampled_sets() {
        // exhaustive verification is exponential; sample sets of several
        // sizes and check the published guarantee (it must hold for ALL
        // sets, so sampling can only ever falsify)
        let m = 8;
        let b = gabber_galil(m);
        let n = m * m;
        let mut r = rng(9);
        let mut idx: Vec<usize> = (0..n).collect();
        let mut scratch = Vec::new();
        for &s in &[1usize, 4, 16, 32, 48] {
            for _ in 0..100 {
                idx.shuffle(&mut r);
                let nb = b.neighborhood_size(&idx[..s], &mut scratch);
                let need = gg_guaranteed_neighborhood(n, s);
                assert!(
                    nb as f64 >= need.floor(),
                    "set of {s} has {nb} < {need} neighbours"
                );
            }
        }
    }

    #[test]
    fn guarantee_formula_shape() {
        // small sets expand by ≈ (1 + c), full set by exactly 1×
        let n = 100;
        assert!(gg_guaranteed_neighborhood(n, 1) > 1.0);
        assert!((gg_guaranteed_neighborhood(n, n) - n as f64).abs() < 1e-9);
    }
}
