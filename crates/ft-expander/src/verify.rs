//! Expansion verification: exhaustive, sampled and adversarial.
//!
//! A `(c, c′, t)`-expanding graph must give **every** `c`-subset of
//! inlets at least `c′` outlets. Deciding this exactly is co-NP-hard in
//! general, so the library offers three tiers:
//!
//! 1. [`verify_exhaustive`] — checks every subset; feasible for small
//!    `t` (tests and the Figure-scale gadgets);
//! 2. [`min_neighborhood_sampled`] — random subsets; can falsify, never
//!    certify;
//! 3. [`min_neighborhood_greedy`] — adversarial local search that tries
//!    to *shrink* a neighbourhood, a much stronger falsifier in practice.
//!
//! The spectral certificate (Tanner bound) lives in [`crate::spectral`].

use crate::bipartite::BipartiteGraph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Result of a minimum-neighbourhood search.
#[derive(Clone, Debug)]
pub struct MinNeighborhood {
    /// The worst inlet set found.
    pub inlets: Vec<usize>,
    /// Its neighbourhood size.
    pub size: usize,
}

/// Exhaustively verifies that every `c`-subset of inlets has at least
/// `c_prime` outlets. Returns a violating subset if one exists.
///
/// # Panics
/// Panics if the number of inlets exceeds 24 (subset enumeration blows up).
pub fn verify_exhaustive(b: &BipartiteGraph, c: usize, c_prime: usize) -> Option<MinNeighborhood> {
    let n = b.num_inlets();
    assert!(n <= 24, "exhaustive expansion check limited to 24 inlets");
    assert!(c <= n, "subset size exceeds inlet count");
    let mut scratch = Vec::new();
    let mut subset: Vec<usize> = (0..c).collect();
    loop {
        let size = b.neighborhood_size(&subset, &mut scratch);
        if size < c_prime {
            return Some(MinNeighborhood {
                inlets: subset,
                size,
            });
        }
        // next combination in lexicographic order
        let mut i = c;
        loop {
            if i == 0 {
                return None;
            }
            i -= 1;
            if subset[i] != i + n - c {
                subset[i] += 1;
                for j in i + 1..c {
                    subset[j] = subset[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Samples `trials` random `c`-subsets; returns the smallest
/// neighbourhood seen.
pub fn min_neighborhood_sampled(
    b: &BipartiteGraph,
    c: usize,
    trials: usize,
    rng: &mut SmallRng,
) -> MinNeighborhood {
    let n = b.num_inlets();
    assert!(c <= n && c > 0);
    let mut idx: Vec<usize> = (0..n).collect();
    let mut scratch = Vec::new();
    let mut best = MinNeighborhood {
        inlets: Vec::new(),
        size: usize::MAX,
    };
    for _ in 0..trials {
        idx.shuffle(rng);
        let s = &idx[..c];
        let size = b.neighborhood_size(s, &mut scratch);
        if size < best.size {
            best = MinNeighborhood {
                inlets: s.to_vec(),
                size,
            };
        }
    }
    best
}

/// Adversarial local search: starts from a random `c`-subset and
/// hill-climbs swaps (one inlet out, one in) that shrink the
/// neighbourhood; repeats over `restarts` starts. A far better
/// falsifier than uniform sampling because bad sets are exponentially
/// rare but locally reachable.
pub fn min_neighborhood_greedy(
    b: &BipartiteGraph,
    c: usize,
    restarts: usize,
    rng: &mut SmallRng,
) -> MinNeighborhood {
    let n = b.num_inlets();
    assert!(c <= n && c > 0);
    let mut scratch = Vec::new();
    let mut best = MinNeighborhood {
        inlets: Vec::new(),
        size: usize::MAX,
    };
    let mut idx: Vec<usize> = (0..n).collect();
    for _ in 0..restarts {
        idx.shuffle(rng);
        let mut current: Vec<usize> = idx[..c].to_vec();
        let mut outside: Vec<usize> = idx[c..].to_vec();
        let mut cur_size = b.neighborhood_size(&current, &mut scratch);
        let mut improved = true;
        while improved {
            improved = false;
            // try a bounded number of random swaps per round
            for _ in 0..4 * c.max(8) {
                if outside.is_empty() {
                    break;
                }
                let ci = rng.random_range(0..current.len());
                let oi = rng.random_range(0..outside.len());
                std::mem::swap(&mut current[ci], &mut outside[oi]);
                let new_size = b.neighborhood_size(&current, &mut scratch);
                if new_size < cur_size {
                    cur_size = new_size;
                    improved = true;
                } else {
                    // revert
                    std::mem::swap(&mut current[ci], &mut outside[oi]);
                }
            }
        }
        if cur_size < best.size {
            best = MinNeighborhood {
                inlets: current,
                size: cur_size,
            };
        }
    }
    best
}

/// Convenience: does the graph satisfy `(c, c′, t)`-expansion as far as
/// `trials` sampled + greedy probes can tell? (`true` = no violation
/// found; not a proof.)
pub fn passes_probes(
    b: &BipartiteGraph,
    c: usize,
    c_prime: usize,
    trials: usize,
    rng: &mut SmallRng,
) -> bool {
    if min_neighborhood_sampled(b, c, trials, rng).size < c_prime {
        return false;
    }
    min_neighborhood_greedy(b, c, (trials / 10).max(1), rng).size >= c_prime
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::union_of_permutations;
    use ft_graph::gen::rng;

    fn identity_graph(n: usize) -> BipartiteGraph {
        BipartiteGraph::new((0..n as u32).map(|i| vec![i]).collect(), n)
    }

    #[test]
    fn exhaustive_accepts_identity_at_c_eq_cprime() {
        let b = identity_graph(6);
        // every c-subset has exactly c outlets
        assert!(verify_exhaustive(&b, 3, 3).is_none());
        // and fails c' = c+1
        let viol = verify_exhaustive(&b, 3, 4).unwrap();
        assert_eq!(viol.size, 3);
        assert_eq!(viol.inlets.len(), 3);
    }

    #[test]
    fn exhaustive_finds_concentrated_violation() {
        // inlets 0,1,2 all map to outlet 0 — the unique bad subset
        let b = BipartiteGraph::new(
            vec![vec![0], vec![0], vec![0], vec![1], vec![2], vec![3]],
            4,
        );
        let viol = verify_exhaustive(&b, 3, 2).unwrap();
        assert_eq!(viol.inlets, vec![0, 1, 2]);
        assert_eq!(viol.size, 1);
    }

    #[test]
    fn exhaustive_full_subset() {
        let b = identity_graph(5);
        assert!(verify_exhaustive(&b, 5, 5).is_none());
        assert!(verify_exhaustive(&b, 5, 6).is_some());
    }

    #[test]
    fn sampled_and_greedy_find_planted_bad_set() {
        // plant a 4-subset {0,1,2,3} with a single shared outlet inside an
        // otherwise well-spread graph
        let mut adj: Vec<Vec<u32>> = (0..40u32).map(|i| vec![i, (i + 7) % 40]).collect();
        for row in adj.iter_mut().take(4) {
            *row = vec![0];
        }
        let b = BipartiteGraph::new(adj, 40);
        let mut r = rng(5);
        // greedy should find the planted set (neighbourhood size 1)
        let g = min_neighborhood_greedy(&b, 4, 30, &mut r);
        assert_eq!(g.size, 1, "greedy missed the planted set: {g:?}");
        // uniform sampling is weaker but still reports ≤ full spread
        let s = min_neighborhood_sampled(&b, 4, 2000, &mut r);
        assert!(s.size <= 8);
    }

    #[test]
    fn probes_pass_on_random_expander() {
        let mut r = rng(6);
        let b = union_of_permutations(&mut r, 64, 10);
        // paper's requirement at s=1: every 32-set sees ≥ 34 outlets
        assert!(passes_probes(&b, 32, 34, 300, &mut r));
    }

    #[test]
    #[should_panic(expected = "limited to 24")]
    fn exhaustive_rejects_large() {
        let b = identity_graph(30);
        verify_exhaustive(&b, 2, 2);
    }
}
