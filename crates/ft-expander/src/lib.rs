//! # ft-expander — expanding graphs for fault-tolerant switching
//!
//! The §6 construction of Pippenger & Lin is built from
//! `(c, c′, t)`-**expanding graphs**: bipartite graphs in which every
//! set of `c` inlets reaches at least `c′` outlets. This crate provides:
//!
//! * [`bipartite`] — the shared representation;
//! * [`random`] — the probabilistic construction the paper cites
//!   (Bassalygo–Pinsker): unions of random perfect matchings;
//! * [`margulis`] — the explicit Margulis/Gabber–Galil expander the
//!   paper references for constructivity;
//! * [`verify`] — exhaustive / sampled / adversarial expansion checks;
//! * [`spectral`] — Tanner-bound certificates from the second singular
//!   value;
//! * [`paper`] — the exact `(32s, 33.07s, 64s)` degree-10
//!   parameterisation consumed by the §6 network.

#![warn(missing_docs)]

pub mod bipartite;
pub mod margulis;
pub mod paper;
pub mod random;
pub mod spectral;
pub mod verify;

pub use bipartite::BipartiteGraph;
pub use paper::{ExpanderSpec, PaperExpander};
