//! Property-based tests for the expander constructions.

use ft_expander::bipartite::BipartiteGraph;
use ft_expander::margulis::gabber_galil;
use ft_expander::paper::{expansion_factor, sample, ExpanderSpec, PAPER_DEGREE};
use ft_expander::random::union_of_permutations;
use ft_expander::spectral::{second_singular_value, tanner_bound};
use ft_expander::verify::min_neighborhood_greedy;
use ft_graph::gen::rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Union of d permutations is exactly d-regular on both sides.
    #[test]
    fn union_of_perms_biregular(t_exp in 1u32..6, d in 1usize..12, seed in 0u64..50_000) {
        let t = 1usize << t_exp;
        let mut r = rng(seed);
        let g = union_of_permutations(&mut r, t, d);
        prop_assert_eq!(g.num_inlets(), t);
        prop_assert_eq!(g.num_outlets(), t);
        prop_assert_eq!(g.num_edges(), t * d);
        for i in 0..t {
            prop_assert_eq!(g.degree(i), d);
        }
        for &od in g.outlet_degrees().iter() {
            prop_assert_eq!(od, d);
        }
    }

    /// Spec arithmetic: c = t/2, c′ = ⌈factor·c⌉, and the paper scale.
    #[test]
    fn spec_arithmetic(s in 1usize..200) {
        let spec = ExpanderSpec::at_scale(s);
        prop_assert_eq!(spec.t, 64 * s);
        prop_assert_eq!(spec.c, 32 * s);
        prop_assert_eq!(spec.c_prime,
            (expansion_factor() * 32.0 * s as f64).ceil() as usize);
        prop_assert!(spec.c_prime > spec.c);
        prop_assert!(spec.c_prime <= spec.t);
    }

    /// Greedy adversarial probing never reports a neighborhood larger
    /// than brute force allows (it is a lower-bounding adversary), and
    /// the reported set size is within [1, t].
    #[test]
    fn probe_reports_sane_sizes(seed in 0u64..20_000) {
        let spec = ExpanderSpec::with_side(32);
        let mut r = rng(seed);
        let e = sample(spec, &mut r);
        let worst = min_neighborhood_greedy(&e.graph, spec.c, 16, &mut r);
        prop_assert!(worst.size >= 1);
        prop_assert!(worst.size <= spec.t);
        prop_assert_eq!(worst.inlets.len(), spec.c);
        // verify the reported neighborhood size by recomputation
        let mut seen = vec![false; spec.t];
        let mut count = 0;
        for &i in &worst.inlets {
            for &o in e.graph.neighbors(i) {
                if !seen[o as usize] {
                    seen[o as usize] = true;
                    count += 1;
                }
            }
        }
        prop_assert_eq!(count, worst.size);
    }

    /// Paper-degree samples have degree 10 everywhere.
    #[test]
    fn paper_sample_degree(seed in 0u64..20_000) {
        let spec = ExpanderSpec::at_scale(1);
        let e = sample(spec, &mut rng(seed));
        for i in 0..spec.t {
            prop_assert_eq!(e.graph.degree(i), PAPER_DEGREE);
        }
    }

    /// Gabber–Galil is 5-regular on inlets with m² vertices per side.
    #[test]
    fn gabber_galil_structure(m in 2usize..12) {
        let g = gabber_galil(m);
        prop_assert_eq!(g.num_inlets(), m * m);
        prop_assert_eq!(g.num_outlets(), m * m);
        for i in 0..m * m {
            prop_assert_eq!(g.degree(i), 5);
        }
    }

    /// The spectral certificate is a valid singular-value estimate:
    /// 0 ≤ λ₂ ≤ d, and the Tanner bound it implies is ≥ the subset
    /// size (expansion ≥ 1 at λ < d).
    #[test]
    fn spectral_certificate_range(seed in 0u64..10_000) {
        let mut r = rng(seed);
        let g = union_of_permutations(&mut r, 64, 6);
        let lam = second_singular_value(&g, 40, &mut r);
        prop_assert!(lam >= -1e-9);
        prop_assert!(lam <= 6.0 + 1e-6, "lambda {lam} > d");
        let guaranteed = tanner_bound(6, lam.max(0.0), 64, 32);
        prop_assert!(guaranteed <= 64.0);
    }

    /// Bipartite adjacency construction round-trips.
    #[test]
    fn bipartite_roundtrip(t in 1usize..40) {
        let adj: Vec<Vec<u32>> = (0..t).map(|i| vec![(i as u32 + 1) % t as u32]).collect();
        let g = BipartiteGraph::new(adj, t);
        prop_assert_eq!(g.num_inlets(), t);
        prop_assert_eq!(g.num_edges(), t);
        for i in 0..t {
            prop_assert_eq!(g.neighbors(i), &[(i as u32 + 1) % t as u32]);
        }
    }
}
