//! The `.ftexp` grid spec: a `.ftsim` scenario plus `sweep` directives.
//!
//! A grid spec is the `.ftsim` plain-text format (every `key = value`
//! directive of `ft_sim::scenario`, same defaults and validation)
//! extended with three grid-level directives:
//!
//! ```text
//! # base scenario — any .ftsim directive
//! arrival_rate = 6.0
//! duration     = 150
//! seeds        = 4
//!
//! # grid-level: static Monte Carlo cross-check per cell (0 = off)
//! static_trials = 20000
//!
//! # the swept axes (cartesian product, first axis outermost)
//! sweep network    = clos-strict 4 4 | benes 3 | multibutterfly 3 2 7
//! sweep fault_rate = 0.0005, 0.001, 0.002, 0.004, 0.008
//! ```
//!
//! Sweep value lists come in three shapes:
//!
//! * `|`-separated verbatim values — required for keys whose values
//!   contain spaces (`network`, `pattern`, `holding`), accepted for
//!   every key;
//! * `,`-separated scalars — the usual form for numeric keys;
//! * `range START STOP COUNT` / `logrange START STOP COUNT` — `COUNT`
//!   linearly (resp. geometrically) spaced values, endpoints included.
//!
//! Any scenario key except `threads` may be swept (`threads` must not
//! affect results, so a sweep over it would be vacuous by
//! construction). Each cell of the cartesian product is assembled by
//! overlaying its assignments on the base [`ScenarioBuilder`] — a cell
//! therefore obeys exactly the validator a hand-written scenario does,
//! and a cell whose combination is invalid (e.g. `crossbar` with a
//! positive `fault_rate`) becomes a *skipped* cell with the validator's
//! message rather than an error for the whole study.

use ft_sim::{FabricSpec, HoldingTime, Scenario, ScenarioBuilder, TrafficPattern, SCENARIO_KEYS};

/// One swept axis: a key and its ordered value list.
#[derive(Clone, Debug, PartialEq)]
pub struct Sweep {
    /// The scenario key being swept.
    pub key: String,
    /// The values, in spec order (verbatim directive text per value).
    pub values: Vec<String>,
    /// Source line of the `sweep` directive (error attribution).
    pub line: usize,
}

/// A parsed grid spec: base scenario + swept axes + grid options.
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// The base scenario every cell starts from.
    pub base: ScenarioBuilder,
    /// Swept axes in spec order; the first varies slowest.
    pub sweeps: Vec<Sweep>,
    /// Per-cell static Monte Carlo cross-check trials (0 = disabled).
    pub static_trials: u64,
}

/// One cell of the cartesian product.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Row-major index in the grid (first sweep outermost).
    pub index: usize,
    /// The `(key, value)` assignments of this cell, in sweep order.
    pub assignments: Vec<(String, String)>,
    /// The resolved scenario, or the validator's skip reason.
    pub scenario: Result<Scenario, String>,
    /// Content hash of the resolved cell (scenario + seed list +
    /// static trials); `None` for skipped cells.
    pub hash: Option<u64>,
}

impl GridSpec {
    /// Parses a grid spec. Diagnostics carry `line N:` prefixes, same
    /// as the scenario parser.
    pub fn parse(text: &str) -> Result<GridSpec, String> {
        let mut base = ScenarioBuilder::new();
        let mut sweeps: Vec<Sweep> = Vec::new();
        let mut static_trials = 0u64;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let at = |msg: String| format!("line {}: {msg}", lineno + 1);
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at(format!("expected `key = value`, got `{line}`")))?;
            let (key, value) = (key.trim(), value.trim());
            if let Some(target) = key.strip_prefix("sweep ") {
                let target = target.trim();
                if !SCENARIO_KEYS.contains(&target) {
                    return Err(at(format!("cannot sweep unknown key `{target}`")));
                }
                if target == "threads" {
                    return Err(at(
                        "cannot sweep `threads`: worker counts never affect results".into(),
                    ));
                }
                if sweeps.iter().any(|s| s.key == target) {
                    return Err(at(format!("duplicate sweep over `{target}`")));
                }
                let values = parse_sweep_values(value).map_err(at)?;
                sweeps.push(Sweep {
                    key: target.to_string(),
                    values,
                    line: lineno + 1,
                });
            } else if key == "static_trials" {
                static_trials = value
                    .parse::<u64>()
                    .map_err(|_| at(format!("expected a nonnegative integer, got `{value}`")))?;
            } else {
                base.set(key, value, lineno + 1).map_err(at)?;
            }
        }
        if sweeps.is_empty() {
            return Err("grid must declare at least one `sweep` directive".into());
        }
        if !base.has_network() && !sweeps.iter().any(|s| s.key == "network") {
            return Err("grid must set `network = ...` in the base scenario or sweep it".into());
        }
        let spec = GridSpec {
            base,
            sweeps,
            static_trials,
        };
        // Surface per-value parse errors now, not at run time: every
        // value of every sweep must at least parse for its key.
        // Combination validity stays per-cell (an invalid combination
        // becomes a skipped cell).
        for sweep in &spec.sweeps {
            for v in &sweep.values {
                let mut probe = spec.base.clone();
                probe
                    .set(&sweep.key, v, sweep.line)
                    .map_err(|msg| format!("line {}: sweep value `{v}`: {msg}", sweep.line))?;
            }
        }
        Ok(spec)
    }

    /// Total number of cells (product of axis lengths).
    pub fn num_cells(&self) -> usize {
        self.sweeps.iter().map(|s| s.values.len()).product()
    }

    /// Expands the cartesian product into resolved cells, row-major
    /// with the first sweep outermost. Deterministic: cell `index` is a
    /// pure function of the spec text.
    pub fn cells(&self) -> Vec<Cell> {
        let total = self.num_cells();
        let mut cells = Vec::with_capacity(total);
        for index in 0..total {
            // decode the mixed-radix index, last axis fastest
            let mut rem = index;
            let mut choice = vec![0usize; self.sweeps.len()];
            for (axis, sweep) in self.sweeps.iter().enumerate().rev() {
                choice[axis] = rem % sweep.values.len();
                rem /= sweep.values.len();
            }
            let mut b = self.base.clone();
            let mut assignments = Vec::with_capacity(self.sweeps.len());
            let mut first_err: Option<String> = None;
            for (axis, sweep) in self.sweeps.iter().enumerate() {
                let value = &sweep.values[choice[axis]];
                assignments.push((sweep.key.clone(), value.clone()));
                if first_err.is_none() {
                    if let Err(msg) = b.set(&sweep.key, value, sweep.line) {
                        first_err = Some(format!("line {}: {msg}", sweep.line));
                    }
                }
            }
            let scenario = match first_err {
                Some(e) => Err(e),
                None => b.build(),
            };
            let hash = scenario
                .as_ref()
                .ok()
                .map(|s| cell_hash(s, self.static_trials));
            cells.push(Cell {
                index,
                assignments,
                scenario,
                hash,
            });
        }
        cells
    }
}

fn parse_sweep_values(value: &str) -> Result<Vec<String>, String> {
    let words: Vec<&str> = value.split_whitespace().collect();
    match words.as_slice() {
        ["range", start, stop, count] => spaced_values(start, stop, count, false),
        ["logrange", start, stop, count] => spaced_values(start, stop, count, true),
        _ => {
            let sep = if value.contains('|') { '|' } else { ',' };
            let vals: Vec<String> = value
                .split(sep)
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
                .collect();
            if vals.is_empty() {
                return Err("sweep needs at least one value".into());
            }
            Ok(vals)
        }
    }
}

fn spaced_values(start: &str, stop: &str, count: &str, log: bool) -> Result<Vec<String>, String> {
    let parse = |s: &str| {
        s.parse::<f64>()
            .map_err(|_| format!("expected a number, got `{s}`"))
    };
    let (a, b) = (parse(start)?, parse(stop)?);
    let n: usize = count
        .parse()
        .map_err(|_| format!("expected a count, got `{count}`"))?;
    if n < 2 {
        return Err("range needs COUNT >= 2".into());
    }
    if log && (a <= 0.0 || b <= 0.0) {
        return Err("logrange needs positive endpoints".into());
    }
    let vals = (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            let x = if log {
                a * (b / a).powf(t)
            } else {
                a + (b - a) * t
            };
            x.to_string()
        })
        .collect();
    Ok(vals)
}

/// Canonical text of a resolved cell — what the cell cache hashes. The
/// scenario is re-rendered from its *parsed* form (not the spec bytes),
/// so `0.5` and `.5` in the spec name the same cell; `threads` is
/// deliberately excluded because it must not affect results. Bumped to
/// `v2` when the `faults`/`retry` directives joined the scenario, and
/// to `v3` when the `reroute` planner did: anything that changes the
/// event stream must change the cell key.
pub fn canonical_cell_text(s: &Scenario, static_trials: u64) -> String {
    format!(
        "ftexp-cell v3\nnetwork = {}\npattern = {}\nholding = {}\narrival_rate = {}\n\
         fault_rate = {}\nfault_open_share = {}\nfaults = {}\nretry = {}\nreroute = {}\n\
         mttr = {}\nduration = {}\nwarmup = {}\nbuckets = {}\nseeds = {}\nseed_base = {}\n\
         static_trials = {}\n",
        s.fabric.to_spec_string(),
        pattern_spec(&s.config.pattern),
        holding_spec(&s.config.holding),
        s.config.arrival_rate,
        s.config.fault_rate,
        s.config.fault_open_share,
        s.config.faults.to_spec_string(),
        s.config.retry.to_spec_string(),
        s.config.reroute.to_spec_string(),
        s.config.mttr,
        s.config.duration,
        s.config.warmup,
        s.config.buckets,
        s.seeds,
        s.seed_base,
        static_trials,
    )
}

/// FNV-1a content hash of the canonical cell text: the cache key, and
/// the seed of the cell's static cross-check estimator.
pub fn cell_hash(s: &Scenario, static_trials: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in canonical_cell_text(s, static_trials).bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// The directive spelling of a traffic pattern (inverse of the parser).
pub fn pattern_spec(p: &TrafficPattern) -> String {
    match p {
        TrafficPattern::Uniform => "uniform".into(),
        TrafficPattern::Permutation => "permutation".into(),
        TrafficPattern::Hotspot {
            hot_fraction,
            p_hot,
        } => format!("hotspot {hot_fraction} {p_hot}"),
        TrafficPattern::Bursty {
            mean_on,
            mean_off,
            boost,
        } => format!("bursty {mean_on} {mean_off} {boost}"),
    }
}

/// The directive spelling of a holding-time law (inverse of the parser).
pub fn holding_spec(h: &HoldingTime) -> String {
    match h {
        HoldingTime::Exponential { mean } => format!("exp {mean}"),
        HoldingTime::Pareto { shape, mean } => format!("pareto {shape} {mean}"),
    }
}

/// True when the fabric family cannot express switch faults as vertex
/// discards (informational; the per-cell validator is authoritative).
pub fn fault_free_only(spec: &FabricSpec) -> bool {
    matches!(spec, FabricSpec::Crossbar(_))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRID: &str = "\
arrival_rate = 4
duration = 30
seeds = 2
static_trials = 1000
sweep network = clos-strict 2 2 | benes 2
sweep fault_rate = 0.001, 0.002, 0.004
";

    #[test]
    fn parses_and_expands_row_major() {
        let spec = GridSpec::parse(GRID).unwrap();
        assert_eq!(spec.static_trials, 1000);
        assert_eq!(spec.num_cells(), 6);
        let cells = spec.cells();
        assert_eq!(cells.len(), 6);
        // first sweep outermost: network varies slowest
        assert_eq!(cells[0].assignments[0].1, "clos-strict 2 2");
        assert_eq!(cells[0].assignments[1].1, "0.001");
        assert_eq!(cells[2].assignments[1].1, "0.004");
        assert_eq!(cells[3].assignments[0].1, "benes 2");
        assert_eq!(cells[3].assignments[1].1, "0.001");
        for c in &cells {
            assert!(c.scenario.is_ok(), "{:?}", c.scenario);
            assert!(c.hash.is_some());
        }
        // all hashes distinct
        let mut hashes: Vec<u64> = cells.iter().map(|c| c.hash.unwrap()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 6);
    }

    #[test]
    fn range_and_logrange_expand() {
        let vals = parse_sweep_values("range 0 1 5").unwrap();
        assert_eq!(vals, ["0", "0.25", "0.5", "0.75", "1"]);
        let vals = parse_sweep_values("logrange 0.001 0.1 3").unwrap();
        assert_eq!(vals.len(), 3);
        assert_eq!(vals[0], "0.001");
        assert_eq!(vals[2], "0.1");
        let mid: f64 = vals[1].parse().unwrap();
        assert!((mid - 0.01).abs() < 1e-12, "{mid}");
        assert!(parse_sweep_values("range 0 1 1").is_err());
        assert!(parse_sweep_values("logrange 0 1 3").is_err());
    }

    #[test]
    fn invalid_combinations_become_skipped_cells() {
        let spec = GridSpec::parse(
            "duration = 20\nsweep network = crossbar 4 | clos-strict 2 2\n\
             sweep fault_rate = 0, 0.01\n",
        )
        .unwrap();
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        // crossbar at fault_rate 0 is fine; at 0.01 it must be skipped
        assert!(cells[0].scenario.is_ok());
        let err = cells[1].scenario.as_ref().unwrap_err();
        assert!(err.contains("crossbar"), "{err}");
        assert!(cells[1].hash.is_none());
        assert!(cells[2].scenario.is_ok() && cells[3].scenario.is_ok());
    }

    #[test]
    fn rejects_bad_sweeps() {
        for (text, frag) in [
            ("sweep bogus = 1, 2\n", "unknown key"),
            ("sweep threads = 1, 2\n", "cannot sweep `threads`"),
            (
                "network = benes 2\nsweep mttr = 1, 2\nsweep mttr = 3, 4\n",
                "duplicate sweep",
            ),
            ("network = benes 2\n", "at least one `sweep`"),
            (
                "network = benes 2\nsweep arrival_rate = 1, zap\n",
                "sweep value `zap`",
            ),
            (
                "duration = 20\nsweep fault_rate = 0, 0.01\n",
                "must set `network",
            ),
        ] {
            let err = GridSpec::parse(text).unwrap_err();
            assert!(err.contains(frag), "{text} -> {err}");
        }
    }

    #[test]
    fn hash_ignores_spelling_and_threads_but_not_values() {
        let a = Scenario::parse("network = benes 2\narrival_rate = 0.5\nthreads = 1\n").unwrap();
        let b = Scenario::parse("network = benes 2\narrival_rate = .5\nthreads = 8\n").unwrap();
        assert_eq!(cell_hash(&a, 100), cell_hash(&b, 100));
        assert_ne!(cell_hash(&a, 100), cell_hash(&a, 200));
        let c = Scenario::parse("network = benes 2\narrival_rate = 0.6\n").unwrap();
        assert_ne!(cell_hash(&a, 100), cell_hash(&c, 100));
        // the injector and retry ladder are part of the cell identity
        let d = Scenario::parse(
            "network = benes 2\narrival_rate = 0.5\nfaults = storm 0.05 1\nmttr = 5\n",
        )
        .unwrap();
        assert_ne!(cell_hash(&a, 100), cell_hash(&d, 100));
        let e = Scenario::parse(
            "network = benes 2\narrival_rate = 0.5\nretry = budget 2 backoff 0.5\n",
        )
        .unwrap();
        assert_ne!(cell_hash(&a, 100), cell_hash(&e, 100));
        // so is the reroute planner — and spelling out the greedy
        // default names the same cell as omitting it
        let f =
            Scenario::parse("network = benes 2\narrival_rate = 0.5\nreroute = mincost\n").unwrap();
        assert_ne!(cell_hash(&a, 100), cell_hash(&f, 100));
        let g =
            Scenario::parse("network = benes 2\narrival_rate = 0.5\nreroute = greedy\n").unwrap();
        assert_eq!(cell_hash(&a, 100), cell_hash(&g, 100));
    }

    #[test]
    fn spec_spellings_round_trip_through_the_parser() {
        let s = Scenario::parse(
            "network = benes 2\npattern = hotspot 0.25 0.8\nholding = pareto 2.5 1.5\n",
        )
        .unwrap();
        let text = format!(
            "network = benes 2\npattern = {}\nholding = {}\n",
            pattern_spec(&s.config.pattern),
            holding_spec(&s.config.holding)
        );
        let again = Scenario::parse(&text).unwrap();
        assert_eq!(s.config.pattern, again.config.pattern);
        assert_eq!(s.config.holding, again.config.holding);
    }
}
