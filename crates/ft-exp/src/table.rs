//! Deterministic JSON and CSV study tables.
//!
//! Both writers are hand-rolled (no serde in the offline container)
//! and byte-stable: fixed key/column order, Rust's shortest-round-trip
//! float formatting, `\n` separators. Aggregates are recomputed from
//! the per-seed scalar rows at render time, so a cache-warm rendering
//! is byte-identical to the cache-cold one — along with thread-count
//! independence, that is the contract `tests/determinism.rs` pins.
//!
//! The JSON deliberately echoes the run accounting *nowhere*: how many
//! cells came from the cache is a property of the run, not of the
//! study, and must not perturb the bytes. It goes to stderr instead
//! (see [`crate::runner::StudyResult::summary_line`]).

use crate::grid::GridSpec;
use crate::result::Stat;
use crate::runner::StudyResult;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn stat_json(s: &Stat) -> String {
    format!(
        "{{\"mean\": {}, \"std\": {}, \"ci95\": {}}}",
        s.mean, s.std, s.ci95
    )
}

/// Renders the study as a deterministic JSON document.
pub fn to_json(spec: &GridSpec, result: &StudyResult) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("{\n  \"study\": {\n    \"sweeps\": [\n");
    for (i, sweep) in spec.sweeps.iter().enumerate() {
        let values: Vec<String> = sweep.values.iter().map(|v| json_str(v)).collect();
        out.push_str(&format!(
            "      {{\"key\": {}, \"values\": [{}]}}{}\n",
            json_str(&sweep.key),
            values.join(", "),
            if i + 1 == spec.sweeps.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        "    ],\n    \"static_trials\": {},\n    \"cells\": {}\n  }},\n",
        spec.static_trials,
        result.cells.len()
    ));

    out.push_str("  \"cells\": [\n");
    for (i, report) in result.cells.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"cell\": {},\n", report.cell.index));
        let params: Vec<String> = report
            .cell
            .assignments
            .iter()
            .map(|(k, v)| format!("{}: {}", json_str(k), json_str(v)))
            .collect();
        out.push_str(&format!("      \"params\": {{{}}},\n", params.join(", ")));
        match &report.data {
            Err(reason) => {
                out.push_str("      \"status\": \"skipped\",\n");
                out.push_str(&format!("      \"skip_reason\": {}\n", json_str(reason)));
            }
            Ok((data, _)) => {
                out.push_str("      \"status\": \"ok\",\n");
                out.push_str(&format!(
                    "      \"fabric\": {},\n      \"switches\": {},\n      \"terminals\": {},\n",
                    json_str(&data.fabric_label),
                    data.switches,
                    data.terminals
                ));
                out.push_str("      \"per_seed\": [\n");
                for (j, r) in data.seeds.iter().enumerate() {
                    out.push_str(&format!(
                        "        {{\"seed\": {}, \"events\": {}, \"fingerprint\": \"{:#018x}\", \
                         \"offered\": {}, \"connected\": {}, \"blocked\": {}, \
                         \"rejected_busy\": {}, \"dropped\": {}, \"rerouted\": {}, \
                         \"moved\": {}, \
                         \"abandoned\": {}, \"faults\": {}, \"repairs\": {}, \
                         \"storms\": {}, \"shed\": {}, \"degraded_time\": {}, \
                         \"time_to_recover\": {}, \"dropped_per_storm\": {}, \
                         \"blocking\": {}, \"busy_rejection\": {}, \"drop_rate\": {}, \
                         \"carried_erlangs\": {}, \"mean_path_len\": {}, \
                         \"mean_reroute_latency\": {}, \"util_max\": {}, \
                         \"reroute_latency_events_p50\": {}, \
                         \"reroute_latency_events_p99\": {}, \
                         \"reroute_latency_time_p50\": {}, \
                         \"reroute_latency_time_p99\": {}}}{}\n",
                        r.seed,
                        r.events,
                        r.fingerprint,
                        r.offered,
                        r.connected,
                        r.blocked,
                        r.rejected_busy,
                        r.dropped,
                        r.rerouted,
                        r.moved,
                        r.abandoned,
                        r.faults,
                        r.repairs,
                        r.storms,
                        r.shed,
                        r.degraded_time,
                        r.time_to_recover,
                        r.dropped_per_storm,
                        r.blocking,
                        r.busy_rejection,
                        r.drop_rate,
                        r.carried_erlangs,
                        r.mean_path_len,
                        r.mean_reroute_latency,
                        r.util_max,
                        r.reroute_hist_events.quantile(50.0) as u64,
                        r.reroute_hist_events.quantile(99.0) as u64,
                        r.reroute_hist_time.quantile(50.0),
                        r.reroute_hist_time.quantile(99.0),
                        if j + 1 == data.seeds.len() { "" } else { "," }
                    ));
                }
                out.push_str("      ],\n");
                let a = data.aggregate();
                let (ev_hist, time_hist) = data.merged_reroute_hists();
                out.push_str(&format!(
                    "      \"aggregate\": {{\"offered\": {}, \"blocking\": {}, \
                     \"busy_rejection\": {}, \"drop_rate\": {}, \"carried_erlangs\": {}, \
                     \"mean_path_len\": {}, \"reroute_latency\": {}, \"util_max\": {}, \
                     \"time_to_recover\": {}, \"dropped_per_storm\": {}, \
                     \"reroute_latency_quantiles\": {{\"events_p50\": {}, \
                     \"events_p99\": {}, \"events_p999\": {}, \"time_p50\": {}, \
                     \"time_p99\": {}, \"time_p999\": {}}}}}",
                    a.offered_total,
                    stat_json(&a.blocking),
                    stat_json(&a.busy_rejection),
                    stat_json(&a.drop_rate),
                    stat_json(&a.carried_erlangs),
                    stat_json(&a.mean_path_len),
                    stat_json(&a.reroute_latency),
                    stat_json(&a.util_max),
                    stat_json(&a.time_to_recover),
                    stat_json(&a.dropped_per_storm),
                    ev_hist.quantile(50.0) as u64,
                    ev_hist.quantile(99.0) as u64,
                    ev_hist.quantile(99.9) as u64,
                    time_hist.quantile(50.0),
                    time_hist.quantile(99.0),
                    time_hist.quantile(99.9),
                ));
                match data.static_est {
                    Some(est) => {
                        let (lo, hi) = est.wilson95();
                        out.push_str(&format!(
                            ",\n      \"static\": {{\"p\": {}, \"lo95\": {}, \"hi95\": {}, \
                             \"trials\": {}}}\n",
                            est.p(),
                            lo,
                            hi,
                            est.trials
                        ));
                    }
                    None => out.push('\n'),
                }
            }
        }
        out.push_str(if i + 1 == result.cells.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders the study as a deterministic CSV table: one row per cell,
/// one column per swept key, aggregate and cross-check columns after.
/// Skipped cells keep their parameter columns and carry the validator
/// message in the final `note` column.
pub fn to_csv(spec: &GridSpec, result: &StudyResult) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("cell");
    for sweep in &spec.sweeps {
        out.push(',');
        out.push_str(&csv_field(&sweep.key));
    }
    out.push_str(
        ",status,fabric,switches,terminals,seeds,offered,moved,blocking_mean,blocking_std,\
         blocking_ci95,busy_rejection_mean,drop_rate_mean,carried_erlangs_mean,\
         mean_path_len_mean,reroute_latency_mean,util_max_mean,time_to_recover_mean,\
         dropped_per_storm_mean,reroute_latency_events_p50,reroute_latency_events_p99,\
         reroute_latency_events_p999,reroute_latency_time_p50,reroute_latency_time_p99,\
         reroute_latency_time_p999,static_p,static_lo95,static_hi95,static_trials,note\n",
    );
    for report in &result.cells {
        out.push_str(&report.cell.index.to_string());
        for (_, value) in &report.cell.assignments {
            out.push(',');
            out.push_str(&csv_field(value));
        }
        match &report.data {
            Err(reason) => {
                out.push_str(",skipped");
                out.push_str(&",".repeat(27));
                out.push(',');
                out.push_str(&csv_field(reason));
            }
            Ok((data, _)) => {
                let a = data.aggregate();
                let (ev_hist, time_hist) = data.merged_reroute_hists();
                out.push_str(&format!(
                    ",ok,{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    csv_field(&data.fabric_label),
                    data.switches,
                    data.terminals,
                    data.seeds.len(),
                    a.offered_total,
                    data.seeds.iter().map(|r| r.moved).sum::<u64>(),
                    a.blocking.mean,
                    a.blocking.std,
                    a.blocking.ci95,
                    a.busy_rejection.mean,
                    a.drop_rate.mean,
                    a.carried_erlangs.mean,
                    a.mean_path_len.mean,
                    a.reroute_latency.mean,
                    a.util_max.mean,
                    a.time_to_recover.mean,
                    a.dropped_per_storm.mean,
                    ev_hist.quantile(50.0) as u64,
                    ev_hist.quantile(99.0) as u64,
                    ev_hist.quantile(99.9) as u64,
                    time_hist.quantile(50.0),
                    time_hist.quantile(99.0),
                    time_hist.quantile(99.9),
                ));
                match data.static_est {
                    Some(est) => {
                        let (lo, hi) = est.wilson95();
                        out.push_str(&format!(",{},{lo},{hi},{},", est.p(), est.trials));
                    }
                    None => out.push_str(",,,,,"),
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;
    use crate::runner::{run_grid, RunOptions};

    fn study() -> (GridSpec, StudyResult) {
        let spec = GridSpec::parse(
            "mttr = 10\nduration = 25\nseeds = 2\nstatic_trials = 300\n\
             sweep network = clos-strict 2 2 | crossbar 4\nsweep fault_rate = 0, 0.004\n",
        )
        .unwrap();
        let result = run_grid(&spec, &RunOptions::default()).unwrap();
        (spec, result)
    }

    #[test]
    fn json_is_reproducible_and_balanced() {
        let (spec, result) = study();
        let a = to_json(&spec, &result);
        let (spec2, result2) = study();
        assert_eq!(a, to_json(&spec2, &result2));
        let depth = a.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "unbalanced JSON:\n{a}");
        for key in [
            "\"study\"",
            "\"sweeps\"",
            "\"cells\"",
            "\"params\"",
            "\"per_seed\"",
            "\"aggregate\"",
            "\"static\"",
            "\"skipped\"",
            "\"skip_reason\"",
            "\"reroute_latency_events_p50\"",
            "\"reroute_latency_quantiles\"",
            "\"moved\"",
        ] {
            assert!(a.contains(key), "missing {key} in\n{a}");
        }
    }

    #[test]
    fn csv_has_one_row_per_cell_and_stable_columns() {
        let (spec, result) = study();
        let csv = to_csv(&spec, &result);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4);
        assert!(lines[0].starts_with("cell,network,fault_rate,status,"));
        let cols = lines[0].split(',').count();
        // every data row has the same column count (quoted fields in
        // the note column contain no commas in this study)
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "row: {row}");
        }
        assert!(lines[4].contains("skipped"));
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
