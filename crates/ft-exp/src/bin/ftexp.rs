//! `ftexp` — run a `.ftexp` parameter-grid study and emit the
//! deterministic JSON/CSV tables.
//!
//! ```text
//! usage: ftexp SPEC [--out PATH] [--csv PATH] [--cache DIR]
//!              [--no-cache] [--recompute] [--threads N] [--profile]
//!
//!   SPEC          path to a grid spec (`-` reads stdin)
//!   --out PATH    also write the JSON table to PATH
//!   --csv PATH    also write the CSV table to PATH
//!   --cache DIR   cell cache directory (default: SPEC.cache;
//!                 stdin specs default to no cache)
//!   --no-cache    disable the cell cache entirely
//!   --recompute   ignore cache hits, recompute and rewrite every cell
//!   --threads N   worker threads (0 = one per core; default: the
//!                 spec's `threads` directive)
//!   --profile     print per-phase wall-clock lines to stderr
//! ```
//!
//! The JSON table goes to stdout; diagnostics go to stderr, including
//! the run-accounting line
//! `ftexp: cells total=T computed=A cached=B skipped=C`
//! (CI greps it to assert a cache-warm rerun computes zero cells —
//! the accounting is *not* part of the JSON, which must stay
//! byte-identical across cold and warm runs). Exit status is nonzero
//! on any parse or I/O error.

use ft_exp::{run_grid, to_csv, to_json, GridSpec, RunOptions};
use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: ftexp SPEC [--out PATH] [--csv PATH] [--cache DIR] [--no-cache] [--recompute] [--threads N] [--profile]\n       (SPEC = path to a grid spec file, or `-` for stdin)"
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut recompute = false;
    let mut profile = false;
    let mut threads_override: Option<usize> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            "--out" => out_path = Some(it.next().ok_or("--out needs a path")?),
            "--csv" => csv_path = Some(it.next().ok_or("--csv needs a path")?),
            "--cache" => cache_dir = Some(PathBuf::from(it.next().ok_or("--cache needs a dir")?)),
            "--no-cache" => no_cache = true,
            "--recompute" => recompute = true,
            "--profile" => profile = true,
            "--threads" => {
                let n = it.next().ok_or("--threads needs a count")?;
                threads_override = Some(n.parse().map_err(|_| format!("bad thread count `{n}`"))?);
            }
            other if spec_path.is_none() => spec_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let spec_path = spec_path.ok_or_else(|| usage().to_string())?;
    let text = if spec_path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(&spec_path).map_err(|e| format!("reading {spec_path}: {e}"))?
    };

    let spec = GridSpec::parse(&text)?;
    let cache_dir = if no_cache {
        None
    } else {
        cache_dir
            .or_else(|| (spec_path != "-").then(|| PathBuf::from(format!("{spec_path}.cache"))))
    };
    let opts = RunOptions {
        threads: threads_override.unwrap_or_else(|| spec.base.threads()),
        cache_dir,
        recompute,
    };
    eprintln!(
        "ftexp: {} sweep axis(es), {} cell(s), static_trials {}{}",
        spec.sweeps.len(),
        spec.num_cells(),
        spec.static_trials,
        match &opts.cache_dir {
            Some(d) => format!(", cache {}", d.display()),
            None => ", cache disabled".into(),
        }
    );
    let result = run_grid(&spec, &opts)?;
    eprintln!("ftexp: {}", result.summary_line());
    if let Some(timing) = result.timing_line() {
        eprintln!("ftexp: {timing}");
    }
    if profile {
        for line in result.phase_lines() {
            eprintln!("ftexp: {line}");
        }
    }

    let json = to_json(&spec, &result);
    print!("{json}");
    if let Some(path) = out_path {
        // Temp sibling + rename: an interrupted run must never leave a
        // torn table that downstream tooling half-parses.
        ft_obs::write_atomic(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("ftexp: JSON table written to {path}");
    }
    if let Some(path) = csv_path {
        let csv = to_csv(&spec, &result);
        ft_obs::write_atomic(&path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("ftexp: CSV table written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ftexp: {e}");
            ExitCode::FAILURE
        }
    }
}
