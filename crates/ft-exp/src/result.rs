//! Per-cell results and cross-seed aggregation.
//!
//! A [`SeedRow`] is the flat scalar summary of one simulated seed —
//! exactly the fields the aggregate tables need, all of which
//! round-trip losslessly through the text cache (integers verbatim,
//! `f64` via shortest-round-trip formatting). Aggregates are always
//! recomputed from the seed rows at render time, so a cache-warm run
//! and a cache-cold run go through the identical arithmetic.

use ft_failure::Estimate;
use ft_obs::Hist;
use ft_sim::{Fabric, SeedOutcome};

/// Flat scalar summary of one simulated seed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeedRow {
    /// The seed.
    pub seed: u64,
    /// Events processed.
    pub events: u64,
    /// FNV fingerprint of the event stream (determinism witness).
    pub fingerprint: u64,
    /// Call arrivals (post-warm-up).
    pub offered: u64,
    /// Calls connected.
    pub connected: u64,
    /// Calls refused for lack of an idle path.
    pub blocked: u64,
    /// Calls refused because a terminal was busy.
    pub rejected_busy: u64,
    /// Live sessions killed by faults.
    pub dropped: u64,
    /// Killed sessions re-routed before hangup.
    pub rerouted: u64,
    /// Executed reroute operations (greedy attempts, or mincost
    /// placements actually committed to the fabric).
    pub moved: u64,
    /// Killed sessions lost for good.
    pub abandoned: u64,
    /// Switch-fault events.
    pub faults: u64,
    /// Repair completions.
    pub repairs: u64,
    /// Fault episodes (storm/burst/adversary onsets; == faults for
    /// i.i.d.).
    pub storms: u64,
    /// Killed calls shed by the admission ladder.
    pub shed: u64,
    /// Time spent degraded (failed switches or calls waiting).
    pub degraded_time: f64,
    /// Mean completed degraded-interval length.
    pub time_to_recover: f64,
    /// Killed calls per fault episode.
    pub dropped_per_storm: f64,
    /// Blocking probability.
    pub blocking: f64,
    /// Busy-rejection fraction.
    pub busy_rejection: f64,
    /// Drop rate (abandoned / connected).
    pub drop_rate: f64,
    /// Carried load (erlangs).
    pub carried_erlangs: f64,
    /// Mean established path length (switches).
    pub mean_path_len: f64,
    /// Mean fault/repair events waited by re-routed calls.
    pub mean_reroute_latency: f64,
    /// Busiest stage's mean utilisation.
    pub util_max: f64,
    /// Reroute-latency distribution in fault/repair events (streaming
    /// log-bucketed histogram; merges exactly across seeds).
    pub reroute_hist_events: Hist,
    /// Reroute-latency distribution in sim-time units.
    pub reroute_hist_time: Hist,
}

impl SeedRow {
    /// Flattens one engine outcome (the fabric supplies the stage
    /// sizes for utilisation denominators).
    pub fn from_outcome(out: &SeedOutcome, fabric: &Fabric) -> SeedRow {
        let m = &out.metrics;
        let util_max = (0..m.stage_busy_time.len())
            .map(|s| {
                let r = fabric.net().stage_range(s);
                m.stage_utilisation(s, (r.end - r.start) as usize)
            })
            .fold(0.0f64, f64::max);
        SeedRow {
            seed: out.seed,
            events: out.events,
            fingerprint: out.fingerprint,
            offered: m.offered,
            connected: m.connected,
            blocked: m.blocked,
            rejected_busy: m.rejected_busy,
            dropped: m.dropped,
            rerouted: m.rerouted,
            moved: m.moved,
            abandoned: m.abandoned,
            faults: m.faults,
            repairs: m.repairs,
            storms: m.storms,
            shed: m.shed,
            degraded_time: m.degraded_time,
            time_to_recover: m.time_to_recover_mean(),
            dropped_per_storm: m.dropped_per_storm(),
            blocking: m.blocking_probability(),
            busy_rejection: m.busy_rejection(),
            drop_rate: m.drop_rate(),
            carried_erlangs: m.carried_erlangs(),
            mean_path_len: m.mean_path_len(),
            mean_reroute_latency: m.mean_reroute_latency_events(),
            util_max,
            reroute_hist_events: m.reroute_hist_events.clone(),
            reroute_hist_time: m.reroute_hist_time.clone(),
        }
    }
}

/// A completed (simulated or cache-loaded) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellData {
    /// Fabric label as built (family and size).
    pub fabric_label: String,
    /// Switch count of the fabric.
    pub switches: usize,
    /// Terminal count of the fabric.
    pub terminals: usize,
    /// One row per seed, in seed order.
    pub seeds: Vec<SeedRow>,
    /// Static pair-blocking cross-check at the stationary
    /// unavailability (present when the cell has faults *and* repair
    /// and the grid enabled `static_trials`).
    pub static_est: Option<Estimate>,
}

/// Mean, sample standard deviation and 95% CI half-width over `xs`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Normal-approximation 95% half-width `1.96·std/√n`.
    pub ci95: f64,
}

/// Computes a [`Stat`] over an exact-sized iterator of samples.
pub fn stat(xs: impl Iterator<Item = f64> + Clone) -> Stat {
    let n = xs.clone().count();
    if n == 0 {
        return Stat {
            mean: 0.0,
            std: 0.0,
            ci95: 0.0,
        };
    }
    let mean = xs.clone().sum::<f64>() / n as f64;
    if n == 1 {
        return Stat {
            mean,
            std: 0.0,
            ci95: 0.0,
        };
    }
    let var = xs.map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    let std = var.sqrt();
    Stat {
        mean,
        std,
        ci95: 1.96 * std / (n as f64).sqrt(),
    }
}

/// The aggregate statistics a cell contributes to the study tables.
#[derive(Clone, Copy, Debug)]
pub struct CellAggregate {
    /// Blocking probability across seeds.
    pub blocking: Stat,
    /// Busy-rejection fraction across seeds.
    pub busy_rejection: Stat,
    /// Drop rate across seeds.
    pub drop_rate: Stat,
    /// Carried erlangs across seeds.
    pub carried_erlangs: Stat,
    /// Mean path length across seeds.
    pub mean_path_len: Stat,
    /// Mean reroute latency (fault/repair events) across seeds.
    pub reroute_latency: Stat,
    /// Busiest-stage utilisation across seeds.
    pub util_max: Stat,
    /// Mean time-to-recover across seeds.
    pub time_to_recover: Stat,
    /// Dropped-per-storm across seeds.
    pub dropped_per_storm: Stat,
    /// Total offered calls across seeds.
    pub offered_total: u64,
}

impl CellData {
    /// Merges the per-seed reroute-latency histograms (events, time).
    /// Histogram merge is exact, so the resulting quantiles are the
    /// quantiles of the pooled sample regardless of seed partitioning.
    pub fn merged_reroute_hists(&self) -> (Hist, Hist) {
        let mut events = Hist::new();
        let mut time = Hist::new();
        for row in &self.seeds {
            events.merge(&row.reroute_hist_events);
            time.merge(&row.reroute_hist_time);
        }
        (events, time)
    }

    /// Aggregates the seed rows (recomputed at render time on both the
    /// cold and the warm path).
    pub fn aggregate(&self) -> CellAggregate {
        let f = |sel: fn(&SeedRow) -> f64| stat(self.seeds.iter().map(sel));
        CellAggregate {
            blocking: f(|r| r.blocking),
            busy_rejection: f(|r| r.busy_rejection),
            drop_rate: f(|r| r.drop_rate),
            carried_erlangs: f(|r| r.carried_erlangs),
            mean_path_len: f(|r| r.mean_path_len),
            reroute_latency: f(|r| r.mean_reroute_latency),
            util_max: f(|r| r.util_max),
            time_to_recover: f(|r| r.time_to_recover),
            dropped_per_storm: f(|r| r.dropped_per_storm),
            offered_total: self.seeds.iter().map(|r| r.offered).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_basics() {
        let s = stat([1.0, 3.0].into_iter());
        assert_eq!(s.mean, 2.0);
        assert!((s.std - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!((s.ci95 - 1.96 * s.std / 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(stat(std::iter::empty()).mean, 0.0);
        let one = stat([5.0].into_iter());
        assert_eq!((one.mean, one.std, one.ci95), (5.0, 0.0, 0.0));
    }

    #[test]
    fn seed_rows_flatten_outcomes() {
        let fabric = Fabric::clos_strict(2, 2);
        let cfg = ft_sim::SimConfig {
            arrival_rate: 4.0,
            holding: ft_sim::HoldingTime::Exponential { mean: 1.0 },
            pattern: ft_sim::TrafficPattern::Uniform,
            fault_rate: 0.002,
            fault_open_share: 0.5,
            mttr: 10.0,
            duration: 50.0,
            warmup: 0.0,
            buckets: 1,
            ..ft_sim::SimConfig::default()
        };
        let out = ft_sim::run_seed(&fabric, &cfg, 3);
        let row = SeedRow::from_outcome(&out, &fabric);
        assert_eq!(row.seed, 3);
        assert_eq!(row.fingerprint, out.fingerprint);
        assert_eq!(row.blocking, out.metrics.blocking_probability());
        assert!(row.util_max > 0.0 && row.util_max <= 1.0);
    }
}
