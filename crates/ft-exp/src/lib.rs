//! # ft-exp — declarative parameter-grid experiment runner (`ftexp`)
//!
//! `ft-sim` answers "what happens in *this* scenario"; this crate
//! answers the paper's actual questions — blocking and connectivity as
//! *functions* of failure probability ε, redundancy ν, load and fabric
//! choice — by running whole parameter grids as one declarative study:
//!
//! * [`grid`] — the `.ftexp` spec: a base `.ftsim` scenario plus
//!   `sweep key = v1, v2, ...` / `range` / `logrange` axes, expanded
//!   to the cartesian product of scenario cells (invalid combinations
//!   become *skipped* cells, not study failures);
//! * [`runner`] — parallel cell execution on the one-workspace-per-
//!   worker discipline, with completed cells cached under a content
//!   hash of `(resolved scenario, seed set, static trials)` so
//!   interrupted or re-run studies only compute missing cells;
//! * [`cache`] — the self-describing flat-text cell store whose
//!   numbers round-trip exactly (warm runs render byte-identical
//!   reports);
//! * [`result`] — per-seed scalar rows and cross-seed mean/std/CI
//!   aggregation;
//! * [`table`] — deterministic JSON and CSV study tables, including
//!   the per-cell static Monte Carlo cross-check
//!   ([`ft_sim::staticcheck`]) at the stationary unavailability.
//!
//! Committed studies live under `studies/` (blocking vs ε across
//! fabrics; fault-tolerance overhead vs ν); the grammar reference is
//! `docs/SCENARIOS.md`.
//!
//! **Determinism guarantee:** for a fixed spec text, the JSON and CSV
//! tables are byte-identical across runs, across worker counts, and
//! across cache-cold vs cache-warm executions (`tests/determinism.rs`
//! pins all three).

#![warn(missing_docs)]

pub mod cache;
pub mod grid;
pub mod result;
pub mod runner;
pub mod table;

pub use grid::{cell_hash, Cell, GridSpec, Sweep};
pub use result::{CellData, SeedRow, Stat};
pub use runner::{run_grid, CellReport, CellSource, RunOptions, StudyResult};
pub use table::{to_csv, to_json};

/// Parses a grid spec, runs it and renders both tables — the CLI's
/// whole pipeline, reusable from tests and examples. Returns
/// `(result, json, csv)`.
pub fn run_grid_text(
    text: &str,
    opts: &RunOptions,
) -> Result<(StudyResult, String, String), String> {
    let spec = GridSpec::parse(text)?;
    let result = run_grid(&spec, opts)?;
    let json = to_json(&spec, &result);
    let csv = to_csv(&spec, &result);
    Ok((result, json, csv))
}
