//! The on-disk cell cache: one flat text file per completed cell.
//!
//! A cell is keyed by the FNV content hash of its canonical resolved
//! scenario plus the static-check trial count
//! ([`crate::grid::cell_hash`]), so interrupted or re-run studies only
//! compute missing cells and *any* change to a cell's parameters (or to
//! the cache format) is a clean miss, never a stale hit. Files are
//! self-describing `key = value` text; every number round-trips exactly
//! (integers verbatim, `f64` through Rust's shortest-round-trip
//! formatting), which is what lets a cache-warm run render the
//! byte-identical aggregate report a cold run does — pinned by
//! `tests/determinism.rs`. A file that fails any check (trailing
//! checksum, version, hash, structure) is treated as a miss and
//! recomputed.

use crate::result::{CellData, SeedRow};
use ft_failure::Estimate;
use std::path::{Path, PathBuf};

/// Format tag written to (and required of) every cache file. Bumped to
/// v2 when the recovery metrics (storms/shed/degraded_time/…) joined
/// the per-seed rows, to v3 when the reroute-latency histograms
/// (compact `idx:count` sparse encodings) did, to v4 when the
/// `moved` reroute-churn counter did, and to v5 when the trailing
/// `ok <fnv1a>` checksum line was added (a truncation that clips the
/// final histogram value mid-digit still parses as a valid shorter
/// histogram, so structure checks alone cannot catch every torn tail)
/// — older files are clean misses.
const VERSION: &str = "ftexp cell-cache v5";

/// FNV-1a over raw bytes — the checksum in the trailing `ok` line.
/// Same constants as [`crate::grid::cell_hash`].
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// The cache file path for a cell hash.
pub fn cell_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("{hash:016x}.ftcell"))
}

/// Renders a completed cell for the cache.
pub fn render(hash: u64, data: &CellData) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(VERSION);
    out.push('\n');
    push(&mut out, "hash", &format!("{hash:016x}"));
    push(&mut out, "fabric", &data.fabric_label);
    push(&mut out, "switches", &data.switches.to_string());
    push(&mut out, "terminals", &data.terminals.to_string());
    push(&mut out, "seed_rows", &data.seeds.len().to_string());
    if let Some(est) = data.static_est {
        push(&mut out, "static_successes", &est.successes.to_string());
        push(&mut out, "static_trials", &est.trials.to_string());
    }
    for row in &data.seeds {
        push(&mut out, "seed", &row.seed.to_string());
        push(&mut out, "events", &row.events.to_string());
        push(
            &mut out,
            "fingerprint",
            &format!("{:016x}", row.fingerprint),
        );
        push(&mut out, "offered", &row.offered.to_string());
        push(&mut out, "connected", &row.connected.to_string());
        push(&mut out, "blocked", &row.blocked.to_string());
        push(&mut out, "rejected_busy", &row.rejected_busy.to_string());
        push(&mut out, "dropped", &row.dropped.to_string());
        push(&mut out, "rerouted", &row.rerouted.to_string());
        push(&mut out, "moved", &row.moved.to_string());
        push(&mut out, "abandoned", &row.abandoned.to_string());
        push(&mut out, "faults", &row.faults.to_string());
        push(&mut out, "repairs", &row.repairs.to_string());
        push(&mut out, "storms", &row.storms.to_string());
        push(&mut out, "shed", &row.shed.to_string());
        push(&mut out, "degraded_time", &row.degraded_time.to_string());
        push(
            &mut out,
            "time_to_recover",
            &row.time_to_recover.to_string(),
        );
        push(
            &mut out,
            "dropped_per_storm",
            &row.dropped_per_storm.to_string(),
        );
        push(&mut out, "blocking", &row.blocking.to_string());
        push(&mut out, "busy_rejection", &row.busy_rejection.to_string());
        push(&mut out, "drop_rate", &row.drop_rate.to_string());
        push(
            &mut out,
            "carried_erlangs",
            &row.carried_erlangs.to_string(),
        );
        push(&mut out, "mean_path_len", &row.mean_path_len.to_string());
        push(
            &mut out,
            "mean_reroute_latency",
            &row.mean_reroute_latency.to_string(),
        );
        push(&mut out, "util_max", &row.util_max.to_string());
        push(
            &mut out,
            "reroute_hist_events",
            &row.reroute_hist_events.to_compact_string(),
        );
        push(
            &mut out,
            "reroute_hist_time",
            &row.reroute_hist_time.to_compact_string(),
        );
    }
    let sum = fnv1a(out.as_bytes());
    out.push_str(&format!("ok {sum:016x}\n"));
    out
}

fn push(out: &mut String, key: &str, value: &str) {
    out.push_str(key);
    out.push_str(" = ");
    out.push_str(value);
    out.push('\n');
}

/// Parses a cache file back into a [`CellData`]. `None` = malformed or
/// wrong version/hash — callers treat it as a miss.
pub fn parse(text: &str, expect_hash: u64) -> Option<CellData> {
    // The trailing `ok <fnv1a>` line is verified first: any torn or
    // bit-flipped byte anywhere in the file is a miss before field
    // parsing even starts.
    let body = text.strip_suffix('\n')?;
    let nl = body.rfind('\n')?;
    let (content, last) = body.split_at(nl + 1);
    let sum = last.strip_prefix("ok ")?;
    if u64::from_str_radix(sum, 16).ok()? != fnv1a(content.as_bytes()) {
        return None;
    }
    let mut lines = content.lines();
    if lines.next()? != VERSION {
        return None;
    }
    /// Per-seed fields following each `seed` line (completeness check).
    const SEED_FIELDS: usize = 26;
    let mut header: Vec<(String, String)> = Vec::new();
    let mut seeds: Vec<SeedRow> = Vec::new();
    let mut fields_in_row = SEED_FIELDS;
    for line in lines {
        let (key, value) = line.split_once(" = ")?;
        if key == "seed" {
            if fields_in_row != SEED_FIELDS {
                return None; // truncated previous row
            }
            fields_in_row = 0;
            seeds.push(SeedRow {
                seed: value.parse().ok()?,
                ..SeedRow::default()
            });
            continue;
        }
        match seeds.last_mut() {
            None => header.push((key.to_string(), value.to_string())),
            Some(row) => {
                let v = value;
                match key {
                    "events" => row.events = v.parse().ok()?,
                    "fingerprint" => row.fingerprint = u64::from_str_radix(v, 16).ok()?,
                    "offered" => row.offered = v.parse().ok()?,
                    "connected" => row.connected = v.parse().ok()?,
                    "blocked" => row.blocked = v.parse().ok()?,
                    "rejected_busy" => row.rejected_busy = v.parse().ok()?,
                    "dropped" => row.dropped = v.parse().ok()?,
                    "rerouted" => row.rerouted = v.parse().ok()?,
                    "moved" => row.moved = v.parse().ok()?,
                    "abandoned" => row.abandoned = v.parse().ok()?,
                    "faults" => row.faults = v.parse().ok()?,
                    "repairs" => row.repairs = v.parse().ok()?,
                    "storms" => row.storms = v.parse().ok()?,
                    "shed" => row.shed = v.parse().ok()?,
                    "degraded_time" => row.degraded_time = v.parse().ok()?,
                    "time_to_recover" => row.time_to_recover = v.parse().ok()?,
                    "dropped_per_storm" => row.dropped_per_storm = v.parse().ok()?,
                    "blocking" => row.blocking = v.parse().ok()?,
                    "busy_rejection" => row.busy_rejection = v.parse().ok()?,
                    "drop_rate" => row.drop_rate = v.parse().ok()?,
                    "carried_erlangs" => row.carried_erlangs = v.parse().ok()?,
                    "mean_path_len" => row.mean_path_len = v.parse().ok()?,
                    "mean_reroute_latency" => row.mean_reroute_latency = v.parse().ok()?,
                    "util_max" => row.util_max = v.parse().ok()?,
                    "reroute_hist_events" => {
                        row.reroute_hist_events = ft_obs::Hist::from_compact_str(v)?
                    }
                    "reroute_hist_time" => {
                        row.reroute_hist_time = ft_obs::Hist::from_compact_str(v)?
                    }
                    _ => return None,
                }
                fields_in_row += 1;
            }
        }
    }
    if fields_in_row != SEED_FIELDS {
        return None; // truncated final row
    }
    let get = |k: &str| {
        header
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    };
    if u64::from_str_radix(get("hash")?, 16).ok()? != expect_hash {
        return None;
    }
    let static_est = match (get("static_successes"), get("static_trials")) {
        (Some(s), Some(t)) => Some(Estimate {
            successes: s.parse().ok()?,
            trials: t.parse().ok()?,
        }),
        (None, None) => None,
        _ => return None,
    };
    if seeds.is_empty() || get("seed_rows")?.parse::<usize>().ok()? != seeds.len() {
        return None; // truncated between complete rows
    }
    Some(CellData {
        fabric_label: get("fabric")?.to_string(),
        switches: get("switches")?.parse().ok()?,
        terminals: get("terminals")?.parse().ok()?,
        seeds,
        static_est,
    })
}

/// Loads a cell from `dir`, verifying version and hash. `None` = miss.
///
/// An *absent* file is a silent miss (the normal cold-cache case). A
/// file that exists but fails any check — unreadable bytes, wrong
/// version, bit-flipped content, truncation — is still a miss (the
/// cell recomputes), but it leaves a one-line note on stderr: silent
/// degradation would hide a corrupting disk or a torn writer from the
/// operator forever.
pub fn load(dir: &Path, hash: u64) -> Option<CellData> {
    let path = cell_path(dir, hash);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            eprintln!(
                "ftexp: cache file {} unreadable ({e}); recomputing cell",
                path.display()
            );
            return None;
        }
    };
    let parsed = parse(&text, hash);
    if parsed.is_none() {
        eprintln!(
            "ftexp: cache file {} corrupt or stale; recomputing cell",
            path.display()
        );
    }
    parsed
}

/// Stores a completed cell in `dir` (best-effort: an unwritable cache
/// degrades to recomputation, never to failure). The write goes to a
/// temporary sibling and is renamed into place, so an interrupted run
/// can never leave a half-written file under the final name — and the
/// trailing checksum catches truncation even if it somehow does.
pub fn store(dir: &Path, hash: u64, data: &CellData) -> std::io::Result<()> {
    ft_obs::write_atomic(cell_path(dir, hash), render(hash, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CellData {
        CellData {
            fabric_label: "clos m=3 n=2 r=2".into(),
            switches: 24,
            terminals: 4,
            seeds: vec![
                SeedRow {
                    seed: 1,
                    events: 321,
                    fingerprint: 0xDEAD_BEEF_0123_4567,
                    offered: 100,
                    connected: 90,
                    blocked: 4,
                    rejected_busy: 6,
                    dropped: 3,
                    rerouted: 2,
                    moved: 4,
                    abandoned: 1,
                    faults: 5,
                    repairs: 4,
                    storms: 2,
                    shed: 1,
                    degraded_time: 7.25,
                    time_to_recover: 3.625,
                    dropped_per_storm: 1.5,
                    blocking: 0.04,
                    busy_rejection: 0.06,
                    drop_rate: 1.0 / 90.0,
                    carried_erlangs: 2.517_342_109_8,
                    mean_path_len: 3.733_333_333_333_333_3,
                    mean_reroute_latency: 0.5,
                    util_max: 0.312_500_001,
                    reroute_hist_events: {
                        let mut h = ft_obs::Hist::new();
                        h.record(1.0);
                        h.record_n(3.0, 2);
                        h
                    },
                    reroute_hist_time: {
                        let mut h = ft_obs::Hist::new();
                        h.record(0.5);
                        h
                    },
                },
                SeedRow {
                    seed: 2,
                    blocking: f64::MIN_POSITIVE,
                    ..SeedRow::default()
                },
            ],
            static_est: Some(Estimate {
                successes: 17,
                trials: 1000,
            }),
        }
    }

    #[test]
    fn render_parse_round_trip_is_exact() {
        let data = sample();
        let text = render(42, &data);
        let back = parse(&text, 42).expect("parses");
        assert_eq!(back, data);
        // and renders back to the identical bytes — the property the
        // cold-vs-warm byte-identical aggregate depends on
        assert_eq!(render(42, &back), text);
    }

    #[test]
    fn wrong_hash_version_or_structure_is_a_miss() {
        let data = sample();
        let text = render(42, &data);
        assert!(parse(&text, 43).is_none(), "hash mismatch must miss");
        let other = text.replace(VERSION, "ftexp cell-cache v0");
        assert!(parse(&other, 42).is_none(), "old version must miss");
        let truncated = &text[..text.len() / 2];
        // truncation either drops rows or breaks a line; both must miss
        // or at worst parse fewer seeds — never panic
        let _ = parse(truncated, 42);
        let garbled = text.replace("blocking", "blockiNG");
        assert!(parse(&garbled, 42).is_none());
        // truncation at a *complete* row boundary: structurally valid,
        // caught only by the seed_rows header count
        let boundary = text.find("seed = 2").unwrap();
        assert!(
            parse(&text[..boundary], 42).is_none(),
            "row-boundary truncation must miss"
        );
    }

    #[test]
    fn no_static_estimate_round_trips_too() {
        let mut data = sample();
        data.static_est = None;
        let text = render(7, &data);
        assert_eq!(parse(&text, 7).unwrap(), data);
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ftexp_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Bit-flip every byte of a committed cache file in turn: with the
    /// trailing checksum line, *every* single-bit corruption — content,
    /// checksum digits, even the final newline — must be a clean
    /// recomputation miss, never a panic and never a silent hit.
    #[test]
    fn bit_flipped_committed_file_is_always_a_miss() {
        let dir = scratch_dir("bitflip");
        let data = sample();
        store(&dir, 42, &data).unwrap();
        let path = cell_path(&dir, 42);
        let clean = std::fs::read(&path).unwrap();
        assert!(load(&dir, 42).is_some(), "clean stored file must hit");
        for pos in 0..clean.len() {
            for bit in [0x01u8, 0x80] {
                let mut bytes = clean.clone();
                bytes[pos] ^= bit;
                std::fs::write(&path, &bytes).unwrap();
                assert!(
                    load(&dir, 42).is_none(),
                    "bit flip at byte {pos} (mask {bit:#04x}) must miss"
                );
            }
        }
        // invalid UTF-8 is an unreadable file, not a crash
        std::fs::write(&path, [0xFFu8, 0xFE, b'\n']).unwrap();
        assert!(load(&dir, 42).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncate a committed cache file at every byte boundary: always a
    /// miss (the seed_rows header catches even row-aligned prefixes),
    /// never a panic, and a subsequent store repairs the cell.
    #[test]
    fn truncated_committed_file_is_always_a_miss() {
        let dir = scratch_dir("truncate");
        let data = sample();
        store(&dir, 9, &data).unwrap();
        let path = cell_path(&dir, 9);
        let clean = std::fs::read(&path).unwrap();
        for len in 0..clean.len() {
            std::fs::write(&path, &clean[..len]).unwrap();
            assert!(
                load(&dir, 9).is_none(),
                "truncation to {len} bytes must be a miss"
            );
        }
        store(&dir, 9, &data).unwrap();
        assert_eq!(load(&dir, 9).unwrap(), data, "re-store must repair");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
