//! The grid runner: parallel cell execution with cache reuse.
//!
//! Cells are prepared (expanded, validated, hashed, cache-probed)
//! serially — that part is cheap and deterministic — and the cache
//! misses are then executed by a worker pool. Each worker owns **one
//! [`SimWorkspace`] for every seed of every cell it runs** (the
//! `mc_event_probability_parallel` discipline the `ft-sim` sweep driver
//! follows), workers claim cells from an atomic cursor, and results
//! land by cell index. Per-cell work is single-threaded and seeded, so
//! the worker count affects wall clock only — never a byte of the
//! report, which `tests/determinism.rs` pins.

use crate::cache;
use crate::grid::{Cell, GridSpec};
use crate::result::{CellData, SeedRow};
use ft_failure::FailureModel;
use ft_sim::{pair_blocking_estimate, run_seed_with, Scenario, SimWorkspace};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How the runner should execute a study.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Cell cache directory (`None` disables caching entirely).
    pub cache_dir: Option<PathBuf>,
    /// Ignore cache hits and recompute every cell (still writes back).
    pub recompute: bool,
}

/// How a cell's data came to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellSource {
    /// Simulated this run.
    Computed,
    /// Loaded from the cell cache.
    Cached,
}

/// One finished cell: the grid cell plus its data (or skip reason).
#[derive(Clone, Debug)]
pub struct CellReport {
    /// The expanded grid cell (assignments, scenario, hash).
    pub cell: Cell,
    /// The results, or `Err(reason)` for a skipped (invalid) cell.
    pub data: Result<(CellData, CellSource), String>,
}

/// A finished study: every cell in grid order, plus run accounting.
#[derive(Clone, Debug)]
pub struct StudyResult {
    /// Cells in grid (row-major) order.
    pub cells: Vec<CellReport>,
    /// Cells simulated this run.
    pub computed: usize,
    /// Cells served from the cache.
    pub cached: usize,
    /// Cells skipped by the validator.
    pub skipped: usize,
    /// Mean wall-time per *computed* cell, in milliseconds (0 when no
    /// cell was computed). Wall time is run accounting — stderr only,
    /// never part of the deterministic study bytes.
    pub wall_ms_mean: f64,
    /// Worst computed-cell wall-time, in milliseconds.
    pub wall_ms_max: f64,
    /// Wall-clock of the three runner phases — (serial cache probe,
    /// parallel compute, write-back/assembly) — in milliseconds. Run
    /// accounting for `--profile`; stderr only, never in the tables.
    pub phase_ms: [f64; 3],
}

/// Display names for [`StudyResult::phase_ms`], in order.
pub const PHASE_NAMES: [&str; 3] = ["probe", "compute", "write-back"];

impl StudyResult {
    /// One-line run accounting (the `ftexp` CLI prints this to stderr;
    /// CI greps it to assert a warm run computes zero cells). Stable
    /// and deterministic — timing lives in [`Self::timing_line`].
    pub fn summary_line(&self) -> String {
        ft_obs::KvLine::new("cells")
            .kv("total", self.cells.len())
            .kv("computed", self.computed)
            .kv("cached", self.cached)
            .kv("skipped", self.skipped)
            .finish()
    }

    /// Per-cell wall-time accounting for the cells computed this run
    /// (`None` when everything came from the cache or was skipped) —
    /// makes study-runtime regressions visible in CI logs without
    /// touching the byte-stable tables.
    pub fn timing_line(&self) -> Option<String> {
        (self.computed > 0).then(|| {
            ft_obs::KvLine::new("cell wall-time ms:")
                .kv("computed", self.computed)
                .kv_f1("mean", self.wall_ms_mean)
                .kv_f1("max", self.wall_ms_max)
                .finish()
        })
    }

    /// One `phase <name> ms=<t>` line per runner phase, for `--profile`.
    pub fn phase_lines(&self) -> Vec<String> {
        let mut prof = ft_obs::Profiler::new(true);
        for (name, &ms) in PHASE_NAMES.iter().zip(&self.phase_ms) {
            prof.add_ms(name, ms);
        }
        prof.lines()
    }
}

/// Executes every cell of `spec`, reusing `opts.cache_dir` hits.
///
/// Fails only on environment errors (cache directory creation); a cell
/// whose parameter combination is invalid is reported as skipped, and a
/// cache file that fails verification is recomputed.
pub fn run_grid(spec: &GridSpec, opts: &RunOptions) -> Result<StudyResult, String> {
    if let Some(dir) = &opts.cache_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("creating cache dir {}: {e}", dir.display()))?;
    }

    let cells = spec.cells();
    let phase_start = std::time::Instant::now();
    // 1) serial pass: skips and cache probes, in cell order
    let mut resolved: Vec<Option<Result<(CellData, CellSource), String>>> =
        Vec::with_capacity(cells.len());
    let mut jobs: Vec<usize> = Vec::new();
    let (mut cached, mut skipped) = (0usize, 0usize);
    for cell in &cells {
        let entry = match (&cell.scenario, cell.hash) {
            (Err(reason), _) => {
                skipped += 1;
                Some(Err(reason.clone()))
            }
            (Ok(_), Some(hash)) => {
                let hit = if opts.recompute {
                    None
                } else {
                    opts.cache_dir.as_deref().and_then(|d| cache::load(d, hash))
                };
                match hit {
                    Some(data) => {
                        cached += 1;
                        Some(Ok((data, CellSource::Cached)))
                    }
                    None => {
                        jobs.push(cell.index);
                        None
                    }
                }
            }
            (Ok(_), None) => unreachable!("valid cells always hash"),
        };
        resolved.push(entry);
    }

    let probe_ms = phase_start.elapsed().as_secs_f64() * 1e3;
    let phase_start = std::time::Instant::now();

    // 2) parallel pass: workers claim cache misses from a cursor
    let computed = jobs.len();
    let slots: Vec<Mutex<Option<(CellData, f64)>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let workers = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        opts.threads
    };
    let workers = workers.clamp(1, jobs.len().max(1));
    let cursor = AtomicUsize::new(0);
    let (cells_ref, jobs_ref, slots_ref) = (&cells, &jobs, &slots);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut ws = SimWorkspace::default();
                loop {
                    let j = cursor.fetch_add(1, Ordering::Relaxed);
                    if j >= jobs_ref.len() {
                        return;
                    }
                    let cell = &cells_ref[jobs_ref[j]];
                    let scenario = cell.scenario.as_ref().expect("jobs are valid cells");
                    let hash = cell.hash.expect("valid cells always hash");
                    let t0 = std::time::Instant::now();
                    let data = compute_cell(scenario, spec.static_trials, hash, &mut ws);
                    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                    *slots_ref[j].lock().unwrap() = Some((data, wall_ms));
                }
            });
        }
    });

    let compute_ms = phase_start.elapsed().as_secs_f64() * 1e3;
    let phase_start = std::time::Instant::now();

    // 3) write-back and assembly, in cell order
    let (mut wall_sum, mut wall_max) = (0.0f64, 0.0f64);
    for (&ci, slot) in jobs.iter().zip(&slots) {
        let (data, wall_ms) = slot
            .lock()
            .unwrap()
            .take()
            .expect("worker left a cell unfilled");
        wall_sum += wall_ms;
        wall_max = wall_max.max(wall_ms);
        if let Some(dir) = &opts.cache_dir {
            // best-effort: an unwritable cache costs recomputation later
            let _ = cache::store(dir, cells[ci].hash.unwrap(), &data);
        }
        resolved[ci] = Some(Ok((data, CellSource::Computed)));
    }
    let reports = cells
        .into_iter()
        .zip(resolved)
        .map(|(cell, data)| CellReport {
            cell,
            data: data.expect("every cell resolved"),
        })
        .collect();
    Ok(StudyResult {
        cells: reports,
        computed,
        cached,
        skipped,
        wall_ms_mean: if computed > 0 {
            wall_sum / computed as f64
        } else {
            0.0
        },
        wall_ms_max: wall_max,
        phase_ms: [
            probe_ms,
            compute_ms,
            phase_start.elapsed().as_secs_f64() * 1e3,
        ],
    })
}

/// Simulates one cell: every seed through the engine on the caller's
/// workspace, then the static cross-check (seeded by the cell hash so
/// it is deterministic per cell content).
fn compute_cell(
    scenario: &Scenario,
    static_trials: u64,
    hash: u64,
    ws: &mut SimWorkspace,
) -> CellData {
    let fabric = scenario.fabric.build();
    let seeds = scenario
        .seed_list()
        .iter()
        .map(|&seed| {
            SeedRow::from_outcome(&run_seed_with(&fabric, &scenario.config, seed, ws), &fabric)
        })
        .collect();
    let c = &scenario.config;
    let static_est = (static_trials > 0 && c.fault_rate > 0.0 && c.mttr > 0.0).then(|| {
        let model = FailureModel::stationary(c.fault_rate, c.mttr, c.fault_open_share);
        pair_blocking_estimate(&fabric, &model, static_trials, hash)
    });
    CellData {
        fabric_label: fabric.label(),
        switches: fabric.net().size(),
        terminals: fabric.terminals(),
        seeds,
        static_est,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridSpec;

    const GRID: &str = "\
arrival_rate = 4
duration = 25
seeds = 2
static_trials = 500
sweep network = clos-strict 2 2 | crossbar 4
sweep fault_rate = 0, 0.004
";

    fn no_cache() -> RunOptions {
        RunOptions {
            threads: 1,
            cache_dir: None,
            recompute: false,
        }
    }

    #[test]
    fn runs_a_grid_and_skips_invalid_cells() {
        let spec = GridSpec::parse(GRID).unwrap();
        let result = run_grid(&spec, &no_cache()).unwrap();
        assert_eq!(result.cells.len(), 4);
        assert_eq!(result.computed, 3);
        assert_eq!(result.cached, 0);
        assert_eq!(result.skipped, 1); // crossbar × fault_rate 0.004
        let skip = result.cells[3].data.as_ref().unwrap_err();
        assert!(skip.contains("crossbar"), "{skip}");
        // faulty clos cell carries the static cross-check; fault-free
        // cells don't
        let (faulty, _) = result.cells[1].data.as_ref().unwrap();
        assert!(faulty.static_est.is_none(), "mttr defaults to 0 here");
        assert_eq!(
            result.summary_line(),
            "cells total=4 computed=3 cached=0 skipped=1"
        );
        // wall-time accounting covers exactly the computed cells
        assert!(result.wall_ms_mean > 0.0);
        assert!(result.wall_ms_max >= result.wall_ms_mean);
        let timing = result.timing_line().expect("cells were computed");
        assert!(timing.starts_with("cell wall-time ms: computed=3 mean="));
        let phases = result.phase_lines();
        assert_eq!(phases.len(), 3);
        assert!(phases[0].starts_with("phase probe ms="), "{}", phases[0]);
        assert!(phases[1].starts_with("phase compute ms="), "{}", phases[1]);
        assert!(
            phases[2].starts_with("phase write-back ms="),
            "{}",
            phases[2]
        );
    }

    #[test]
    fn timing_line_absent_when_nothing_computed() {
        let spec = GridSpec::parse("duration = 5\nsweep network = crossbar 2\n").unwrap();
        let dir = std::env::temp_dir().join("ftexp-runner-timing-test");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunOptions {
            threads: 1,
            cache_dir: Some(dir),
            recompute: false,
        };
        let cold = run_grid(&spec, &opts).unwrap();
        assert!(cold.timing_line().is_some());
        let warm = run_grid(&spec, &opts).unwrap();
        assert_eq!(warm.computed, 0);
        assert_eq!(warm.timing_line(), None, "cache hits report no wall time");
        assert_eq!(warm.wall_ms_mean, 0.0);
    }

    #[test]
    fn static_check_runs_with_repairs_enabled() {
        let spec =
            GridSpec::parse("mttr = 10\nduration = 25\nstatic_trials = 400\nsweep network = clos-strict 2 2\nsweep fault_rate = 0.004, 0.04\n")
                .unwrap();
        let result = run_grid(&spec, &no_cache()).unwrap();
        let (lo, _) = result.cells[0].data.as_ref().unwrap();
        let (hi, _) = result.cells[1].data.as_ref().unwrap();
        let (lo, hi) = (lo.static_est.unwrap(), hi.static_est.unwrap());
        assert_eq!(lo.trials, 400);
        assert!(hi.p() >= lo.p(), "{} vs {}", hi.p(), lo.p());
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let spec = GridSpec::parse(GRID).unwrap();
        let serial = run_grid(&spec, &no_cache()).unwrap();
        let mut opts = no_cache();
        opts.threads = 4;
        let parallel = run_grid(&spec, &opts).unwrap();
        opts.threads = 0;
        let auto = run_grid(&spec, &opts).unwrap();
        for other in [&parallel, &auto] {
            for (a, b) in serial.cells.iter().zip(&other.cells) {
                match (&a.data, &b.data) {
                    (Ok((da, _)), Ok((db, _))) => assert_eq!(da, db),
                    (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                    // deliberate test-only panic: a cell that is ok on
                    // one thread count and skipped on another is a
                    // determinism bug this test exists to catch
                    _ => panic!("cell source mix-up"),
                }
            }
        }
    }
}
