//! Validation of the grid runner against the committed studies and the
//! static snapshot machinery — the `sim_validation.rs` discipline
//! lifted to grid level:
//!
//! 1. every committed `.ftexp` study under `studies/` must keep
//!    parsing, and the headline study must keep covering ≥ 4
//!    fault-capable fabrics × ≥ 5 ε values (the acceptance shape);
//! 2. the CI smoke grid must run cold → warm with 100% cell-cache
//!    hits;
//! 3. in sparse traffic, each cell's temporal blocking must agree with
//!    its own `static_p` cross-check column (PASTA at the stationary
//!    unavailability), the same closed-loop check
//!    `ft-sim/tests/sim_validation.rs` pins for a single scenario.

use ft_exp::{run_grid, GridSpec, RunOptions};
use std::path::PathBuf;

fn study_text(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../studies")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn committed_studies_parse_and_keep_their_shape() {
    for name in [
        "blocking_vs_eps.ftexp",
        "ft_overhead_vs_nu.ftexp",
        "smoke_grid.ftexp",
    ] {
        let spec = GridSpec::parse(&study_text(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(spec.static_trials > 0, "{name} must cross-check");
    }

    // the acceptance shape of study (a): ≥ 4 fault-capable fabrics
    // (crossbar rides along but its ε > 0 cells are skipped) × ≥ 5 ε
    let spec = GridSpec::parse(&study_text("blocking_vs_eps.ftexp")).unwrap();
    assert_eq!(spec.sweeps[0].key, "network");
    assert_eq!(spec.sweeps[1].key, "fault_rate");
    let fault_capable = spec.sweeps[0]
        .values
        .iter()
        .filter(|v| !v.starts_with("crossbar"))
        .count();
    assert!(fault_capable >= 4, "{:?}", spec.sweeps[0].values);
    assert!(
        spec.sweeps[1].values.len() >= 5,
        "{:?}",
        spec.sweeps[1].values
    );
    let skipped_expected =
        (spec.sweeps[0].values.len() - fault_capable) * spec.sweeps[1].values.len();
    let cells = spec.cells();
    assert_eq!(
        cells.iter().filter(|c| c.scenario.is_err()).count(),
        skipped_expected,
        "exactly the crossbar × ε > 0 cells are skipped"
    );
}

#[test]
fn smoke_grid_runs_cold_then_warm_with_full_cache_hits() {
    let spec = GridSpec::parse(&study_text("smoke_grid.ftexp")).unwrap();
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("smoke-grid-cache");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = RunOptions {
        threads: 0,
        cache_dir: Some(dir),
        recompute: false,
    };
    let cold = run_grid(&spec, &opts).unwrap();
    assert_eq!(cold.computed, spec.num_cells());
    assert_eq!((cold.cached, cold.skipped), (0, 0));
    let warm = run_grid(&spec, &opts).unwrap();
    assert_eq!(warm.computed, 0, "warm run must be 100% cache hits");
    assert_eq!(warm.cached, spec.num_cells());
}

/// The grid-level PASTA cross-check: sparse traffic (so busy collisions
/// are negligible), long run, per-switch failure rate λ with repair
/// rate 1/mttr. Arrival-observed blocking in each cell must match that
/// cell's own static snapshot column within Monte Carlo noise.
#[test]
fn cell_blocking_matches_its_static_cross_check_in_sparse_traffic() {
    const GRID: &str = "\
network       = clos-strict 2 3
arrival_rate  = 1.0
holding       = exp 0.02
mttr          = 5
duration      = 4000
warmup        = 100
buckets       = 1
static_trials = 20000
sweep fault_rate = 0.01, 0.02
";
    let spec = GridSpec::parse(GRID).unwrap();
    let result = run_grid(
        &spec,
        &RunOptions {
            threads: 0,
            cache_dir: None,
            recompute: false,
        },
    )
    .unwrap();
    for report in &result.cells {
        let (data, _) = report.data.as_ref().unwrap();
        let agg = data.aggregate();
        assert!(
            agg.busy_rejection.mean < 0.01,
            "traffic not sparse enough: {:?}",
            agg.busy_rejection
        );
        let static_p = data.static_est.expect("cross-check must run").p();
        assert!(
            (agg.blocking.mean - static_p).abs() < 0.03,
            "cell {:?}: temporal {} vs static {static_p}",
            report.cell.assignments,
            agg.blocking.mean
        );
        assert!(static_p > 0.01, "signal too small to compare: {static_p}");
    }
}
