//! Hopcroft–Karp maximum bipartite matching.
//!
//! Used for (a) verifying the Hall/expansion condition of bipartite
//! expanding graphs (a `(c, c', t)`-expanding graph gives every `c`-subset
//! of inlets a large neighbourhood, certified through matchings), and
//! (b) the edge-colouring step of the looping algorithm on Beneš/Clos
//! networks. Runs in O(E·√V).

/// Result of a maximum matching computation on a bipartite graph with
/// `left` and `right` vertex sets.
#[derive(Clone, Debug)]
pub struct Matching {
    /// `pair_left[l]` = matched right vertex, or `u32::MAX`.
    pub pair_left: Vec<u32>,
    /// `pair_right[r]` = matched left vertex, or `u32::MAX`.
    pub pair_right: Vec<u32>,
    /// Number of matched pairs.
    pub size: usize,
}

const FREE: u32 = u32::MAX;
const INF: u32 = u32::MAX;

/// Reusable buffers for [`hopcroft_karp_into`]: the pair arrays plus the
/// layered-BFS scratch. One workspace serves instances of any size —
/// buffers are resized (never shrunk below capacity) per call, so
/// repeated matchings in expansion-verification loops allocate nothing
/// after the first.
#[derive(Clone, Debug, Default)]
pub struct MatchingWorkspace {
    /// `pair_left[l]` = matched right vertex, or `u32::MAX` — valid
    /// after [`hopcroft_karp_into`] returns.
    pub pair_left: Vec<u32>,
    /// `pair_right[r]` = matched left vertex, or `u32::MAX`.
    pub pair_right: Vec<u32>,
    dist: Vec<u32>,
    queue: Vec<u32>,
}

impl MatchingWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Maximum matching in the bipartite graph `adj` where `adj[l]` lists the
/// right-neighbours of left vertex `l`, with `right_count` right vertices.
pub fn hopcroft_karp(adj: &[Vec<u32>], right_count: usize) -> Matching {
    let mut ws = MatchingWorkspace::new();
    let size = hopcroft_karp_into(adj, right_count, &mut ws);
    Matching {
        pair_left: ws.pair_left,
        pair_right: ws.pair_right,
        size,
    }
}

/// [`hopcroft_karp`] writing the pair arrays into a reusable
/// [`MatchingWorkspace`]; returns the matching size. Results are
/// identical to the allocating entry point.
pub fn hopcroft_karp_into(
    adj: &[Vec<u32>],
    right_count: usize,
    ws: &mut MatchingWorkspace,
) -> usize {
    let n = adj.len();
    ws.pair_left.clear();
    ws.pair_left.resize(n, FREE);
    ws.pair_right.clear();
    ws.pair_right.resize(right_count, FREE);
    ws.dist.clear();
    ws.dist.resize(n, INF);
    let pair_left = &mut ws.pair_left;
    let pair_right = &mut ws.pair_right;
    let dist = &mut ws.dist;
    let queue = &mut ws.queue;
    let mut size = 0usize;

    loop {
        // BFS from free left vertices to establish layer distances.
        queue.clear();
        for l in 0..n {
            if pair_left[l] == FREE {
                dist[l] = 0;
                queue.push(l as u32);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting = false;
        let mut head = 0;
        while head < queue.len() {
            let l = queue[head];
            head += 1;
            for &r in &adj[l as usize] {
                let l2 = pair_right[r as usize];
                if l2 == FREE {
                    found_augmenting = true;
                } else if dist[l2 as usize] == INF {
                    dist[l2 as usize] = dist[l as usize] + 1;
                    queue.push(l2);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS augmentation along layered paths.
        fn try_augment(
            l: u32,
            adj: &[Vec<u32>],
            pair_left: &mut [u32],
            pair_right: &mut [u32],
            dist: &mut [u32],
        ) -> bool {
            for &r in &adj[l as usize] {
                let l2 = pair_right[r as usize];
                let ok = if l2 == FREE {
                    true
                } else if dist[l2 as usize] == dist[l as usize] + 1 {
                    try_augment(l2, adj, pair_left, pair_right, dist)
                } else {
                    false
                };
                if ok {
                    pair_left[l as usize] = r;
                    pair_right[r as usize] = l;
                    return true;
                }
            }
            dist[l as usize] = INF;
            false
        }
        for l in 0..n as u32 {
            if pair_left[l as usize] == FREE && try_augment(l, adj, pair_left, pair_right, dist) {
                size += 1;
            }
        }
    }

    size
}

/// Whether the bipartite graph has a matching saturating every left
/// vertex (Hall's condition).
pub fn has_perfect_left_matching(adj: &[Vec<u32>], right_count: usize) -> bool {
    hopcroft_karp(adj, right_count).size == adj.len()
}

/// Decomposes a `d`-regular bipartite multigraph (given as, for each left
/// vertex, exactly `d` right endpoints, repeats allowed) into `d` perfect
/// matchings — the edge-colouring used by the looping algorithm for
/// recursive Clos/Beneš route assignment. Returns `colors[l][k]` = right
/// endpoint matched to `l` in matching `k`.
///
/// Uses repeated Hopcroft–Karp peeling (a d-regular bipartite multigraph
/// always contains a perfect matching, by Hall).
///
/// # Panics
/// Panics if the graph is not `d`-regular on both sides.
pub fn regular_bipartite_edge_coloring(adj: &[Vec<u32>], right_count: usize) -> Vec<Vec<u32>> {
    let n = adj.len();
    if n == 0 {
        return Vec::new();
    }
    let d = adj[0].len();
    let mut right_deg = vec![0usize; right_count];
    for nbrs in adj {
        assert_eq!(nbrs.len(), d, "left side not regular");
        for &r in nbrs {
            right_deg[r as usize] += 1;
        }
    }
    assert!(
        right_deg.iter().all(|&x| x == d || x == 0),
        "right side not regular"
    );

    // remaining multiset of edges per left vertex
    let mut remaining: Vec<Vec<u32>> = adj.to_vec();
    let mut colors: Vec<Vec<u32>> = vec![Vec::with_capacity(d); n];
    let mut ws = MatchingWorkspace::new();
    for _round in 0..d {
        let simple: Vec<Vec<u32>> = remaining
            .iter()
            .map(|nbrs| {
                let mut s = nbrs.clone();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let size = hopcroft_karp_into(&simple, right_count, &mut ws);
        assert_eq!(
            size, n,
            "regular bipartite multigraph must have a perfect matching"
        );
        for l in 0..n {
            let r = ws.pair_left[l];
            colors[l].push(r);
            // remove one copy of (l, r)
            let pos = remaining[l]
                .iter()
                .position(|&x| x == r)
                .expect("matched edge must exist");
            remaining[l].swap_remove(pos);
        }
    }
    debug_assert!(remaining.iter().all(|v| v.is_empty()));
    colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_bipartite_adjacency, rng};
    use rand::Rng;

    #[test]
    fn perfect_matching_identity() {
        let adj: Vec<Vec<u32>> = (0..5).map(|i| vec![i]).collect();
        let m = hopcroft_karp(&adj, 5);
        assert_eq!(m.size, 5);
        for l in 0..5 {
            assert_eq!(m.pair_left[l], l as u32);
            assert_eq!(m.pair_right[l], l as u32);
        }
        assert!(has_perfect_left_matching(&adj, 5));
    }

    #[test]
    fn bottleneck_limits_matching() {
        // 3 left vertices all pointing at right vertex 0
        let adj = vec![vec![0], vec![0], vec![0]];
        let m = hopcroft_karp(&adj, 1);
        assert_eq!(m.size, 1);
        assert!(!has_perfect_left_matching(&adj, 1));
    }

    #[test]
    fn augmenting_path_needed() {
        // l0: {r0}, l1: {r0, r1} — greedy could match l1-r0 first; HK must fix it
        let adj = vec![vec![0], vec![0, 1]];
        let m = hopcroft_karp(&adj, 2);
        assert_eq!(m.size, 2);
    }

    #[test]
    fn empty_graph() {
        let m = hopcroft_karp(&[], 0);
        assert_eq!(m.size, 0);
        let adj: Vec<Vec<u32>> = vec![vec![], vec![]];
        let m = hopcroft_karp(&adj, 3);
        assert_eq!(m.size, 0);
    }

    /// Matching size must equal max-flow on the same bipartite instance.
    #[test]
    fn matches_flow_on_random_instances() {
        let mut r = rng(0xBEEF);
        for _ in 0..25 {
            let left = r.random_range(1..15usize);
            let right = r.random_range(1..15usize);
            let deg = r.random_range(0..=right.min(6));
            let adj = random_bipartite_adjacency(&mut r, left, right, deg);
            let m = hopcroft_karp(&adj, right);
            // flow cross-check
            let mut f = crate::maxflow::FlowNetwork::new(left + right + 2);
            let s = (left + right) as u32;
            let t = s + 1;
            for (l, nbrs) in adj.iter().enumerate() {
                f.add_arc(s, l as u32, 1);
                for &rr in nbrs {
                    f.add_arc(l as u32, (left as u32) + rr, 1);
                }
            }
            for rr in 0..right {
                f.add_arc((left + rr) as u32, t, 1);
            }
            assert_eq!(m.size as u32, f.max_flow(s, t, None));
            // consistency of pair arrays
            for (l, nbrs) in adj.iter().enumerate() {
                let pr = m.pair_left[l];
                if pr != u32::MAX {
                    assert_eq!(m.pair_right[pr as usize], l as u32);
                    assert!(nbrs.contains(&pr));
                }
            }
        }
    }

    #[test]
    fn edge_coloring_splits_regular_graph() {
        // 2-regular: l0-{r0,r1}, l1-{r1,r0}
        let adj = vec![vec![0, 1], vec![1, 0]];
        let colors = regular_bipartite_edge_coloring(&adj, 2);
        assert_eq!(colors.len(), 2);
        for k in 0..2 {
            // each round is a perfect matching
            let mut used = [false; 2];
            for row in &colors {
                let r = row[k] as usize;
                assert!(!used[r]);
                used[r] = true;
            }
        }
    }

    #[test]
    fn edge_coloring_with_parallel_edges() {
        // 2-regular multigraph with a doubled edge: l0={r0,r0}, l1={r1,r1}
        let adj = vec![vec![0, 0], vec![1, 1]];
        let colors = regular_bipartite_edge_coloring(&adj, 2);
        assert_eq!(colors[0], vec![0, 0]);
        assert_eq!(colors[1], vec![1, 1]);
    }

    #[test]
    fn edge_coloring_random_regular() {
        // build a d-regular bipartite multigraph as union of d permutations
        let mut r = rng(0xC01);
        for _ in 0..10 {
            let n = r.random_range(2..12usize);
            let d = r.random_range(1..5usize);
            let mut adj = vec![Vec::with_capacity(d); n];
            for _ in 0..d {
                let p = crate::gen::random_permutation(&mut r, n);
                for (l, &rr) in p.iter().enumerate() {
                    adj[l].push(rr);
                }
            }
            let colors = regular_bipartite_edge_coloring(&adj, n);
            for k in 0..d {
                let mut used = vec![false; n];
                for row in &colors {
                    let rr = row[k] as usize;
                    assert!(!used[rr], "round {k} not a matching");
                    used[rr] = true;
                }
            }
        }
    }
}
