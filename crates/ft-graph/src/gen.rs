//! Seeded random generators for tests, property tests and experiments.
//!
//! Every experiment in the workspace is reproducible from a `u64` seed;
//! this module centralises RNG construction so all crates agree on the
//! generator (`SmallRng`, which on 64-bit targets is xoshiro256++ — fast
//! and statistically adequate for Monte Carlo, not for cryptography).

use crate::digraph::DiGraph;
use crate::ids::VertexId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Canonical seeded RNG used across the workspace.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// A uniformly random permutation of `0..n`.
pub fn random_permutation(r: &mut SmallRng, n: usize) -> Vec<u32> {
    let mut p: Vec<u32> = (0..n as u32).collect();
    p.shuffle(r);
    p
}

/// Random DAG on `n` vertices: each of the `m` edges goes from a lower to
/// a higher index, endpoints uniform. Used by flow/traversal tests.
pub fn random_dag(r: &mut SmallRng, n: usize, m: usize) -> DiGraph {
    assert!(n >= 2, "need at least two vertices");
    let mut g = DiGraph::with_capacity(n, m);
    g.add_vertices(n);
    for _ in 0..m {
        let a = r.random_range(0..n - 1);
        let b = r.random_range(a + 1..n);
        g.add_edge(VertexId::from(a), VertexId::from(b));
    }
    g
}

/// An undirected tree on `n ≥ 1` vertices encoded as a digraph (edges point
/// parent → child; lower-bound code treats edges as undirected). Each new
/// vertex attaches to a uniformly random earlier vertex.
pub fn random_tree(r: &mut SmallRng, n: usize) -> DiGraph {
    let mut g = DiGraph::with_capacity(n, n.saturating_sub(1));
    g.add_vertices(n);
    for i in 1..n {
        let p = r.random_range(0..i);
        g.add_edge(VertexId::from(p), VertexId::from(i));
    }
    g
}

/// A random tree in which **every internal node has degree ≥ 3** — the
/// hypothesis of Lemma 1. Built by growing: start from a star with 3
/// leaves; repeatedly either attach 2 children to a random leaf (turning
/// it into a degree-3 internal node) or attach 1 child to a random
/// internal node (raising its degree). Returns the tree; leaves are the
/// degree-1 vertices.
pub fn random_lemma1_tree(r: &mut SmallRng, target_leaves: usize) -> DiGraph {
    assert!(target_leaves >= 3, "Lemma 1 trees need at least 3 leaves");
    let mut g = DiGraph::new();
    let root = g.add_vertex();
    let mut leaves: Vec<VertexId> = Vec::new();
    let mut internals: Vec<VertexId> = vec![root];
    for _ in 0..3 {
        let c = g.add_vertex();
        g.add_edge(root, c);
        leaves.push(c);
    }
    while leaves.len() < target_leaves {
        // Attaching 2 children to a leaf keeps all internal degrees ≥ 3 and
        // nets +1 leaf; attaching 1 child to an internal node also nets +1.
        if r.random_bool(0.5) {
            let li = r.random_range(0..leaves.len());
            let leaf = leaves.swap_remove(li);
            internals.push(leaf);
            for _ in 0..2 {
                let c = g.add_vertex();
                g.add_edge(leaf, c);
                leaves.push(c);
            }
        } else {
            let p = internals[r.random_range(0..internals.len())];
            let c = g.add_vertex();
            g.add_edge(p, c);
            leaves.push(c);
        }
    }
    g
}

/// A caterpillar tree whose spine vertices each carry enough legs to have
/// degree ≥ 3 — a worst-case-ish shape for Lemma 1 (paths between leaves
/// on distant spine vertices are long).
pub fn caterpillar_tree(spine: usize, legs_per_vertex: usize) -> DiGraph {
    assert!(spine >= 1 && legs_per_vertex >= 1);
    let mut g = DiGraph::new();
    let first = g.add_vertices(spine);
    for i in 0..spine - 1 {
        g.add_edge(
            VertexId::from(first.index() + i),
            VertexId::from(first.index() + i + 1),
        );
    }
    for i in 0..spine {
        let s = VertexId::from(first.index() + i);
        // endpoints of the spine have spine-degree 1, middles 2
        let spine_deg = if spine == 1 {
            0
        } else if i == 0 || i == spine - 1 {
            1
        } else {
            2
        };
        let need = (3usize.saturating_sub(spine_deg)).max(legs_per_vertex);
        for _ in 0..need {
            let leaf = g.add_vertex();
            g.add_edge(s, leaf);
        }
    }
    g
}

/// Complete `d`-ary tree of the given height (height 0 = single vertex).
/// With `d ≥ 3` the root has degree d ≥ 3 and internal vertices degree
/// d+1 ≥ 4, satisfying Lemma 1's hypothesis.
pub fn complete_dary_tree(d: usize, height: usize) -> DiGraph {
    let mut g = DiGraph::new();
    let root = g.add_vertex();
    let mut frontier = vec![root];
    for _ in 0..height {
        let mut next = Vec::with_capacity(frontier.len() * d);
        for &p in &frontier {
            for _ in 0..d {
                let c = g.add_vertex();
                g.add_edge(p, c);
                next.push(c);
            }
        }
        frontier = next;
    }
    g
}

/// Random bipartite graph: `left × right` vertices, each left vertex gets
/// `degree` out-edges sampled without replacement (degree ≤ right).
/// Returns adjacency `adj[l] = sorted right-neighbours`.
pub fn random_bipartite_adjacency(
    r: &mut SmallRng,
    left: usize,
    right: usize,
    degree: usize,
) -> Vec<Vec<u32>> {
    assert!(degree <= right, "degree exceeds right side");
    let mut adj = Vec::with_capacity(left);
    let mut pool: Vec<u32> = (0..right as u32).collect();
    for _ in 0..left {
        // Read the sample from the returned slice, not a fixed end of
        // `pool` — upstream rand and the vendored shim place it at
        // opposite ends of the slice.
        let (sampled, _) = pool.partial_shuffle(r, degree);
        let mut nbrs: Vec<u32> = sampled.to_vec();
        nbrs.sort_unstable();
        adj.push(nbrs);
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::bfs_undirected;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn permutation_is_permutation() {
        let mut r = rng(1);
        let p = random_permutation(&mut r, 100);
        let mut seen = [false; 100];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
    }

    #[test]
    fn random_dag_is_acyclic() {
        let mut r = rng(2);
        for _ in 0..10 {
            let g = random_dag(&mut r, 20, 50);
            assert!(crate::traversal::is_acyclic(&g));
            assert_eq!(g.num_edges(), 50);
        }
    }

    #[test]
    fn random_tree_is_connected_tree() {
        let mut r = rng(3);
        for n in [1usize, 2, 5, 50] {
            let g = random_tree(&mut r, n);
            assert_eq!(g.num_edges(), n - 1.min(n));
            let b = bfs_undirected(&g, crate::ids::v(0));
            assert_eq!(b.order.len(), n, "connected");
        }
    }

    #[test]
    fn lemma1_tree_internal_degrees() {
        let mut r = rng(4);
        for target in [3usize, 8, 40, 200] {
            let g = random_lemma1_tree(&mut r, target);
            let leaves: Vec<_> = g.vertices().filter(|&u| g.degree(u) == 1).collect();
            assert!(leaves.len() >= target);
            for u in g.vertices() {
                let d = g.degree(u);
                assert!(d == 1 || d >= 3, "internal degree {d} at {u:?}");
            }
            // connected
            let b = bfs_undirected(&g, crate::ids::v(0));
            assert_eq!(b.order.len(), g.num_vertices());
        }
    }

    #[test]
    fn caterpillar_degrees() {
        let g = caterpillar_tree(5, 2);
        for u in g.vertices() {
            let d = g.degree(u);
            assert!(d == 1 || d >= 3);
        }
        let b = bfs_undirected(&g, crate::ids::v(0));
        assert_eq!(b.order.len(), g.num_vertices());
    }

    #[test]
    fn dary_tree_shape() {
        let g = complete_dary_tree(3, 3);
        assert_eq!(g.num_vertices(), 1 + 3 + 9 + 27);
        let leaves = g.vertices().filter(|&u| g.degree(u) == 1).count();
        assert_eq!(leaves, 27);
    }

    #[test]
    fn bipartite_degrees() {
        let mut r = rng(5);
        let adj = random_bipartite_adjacency(&mut r, 10, 20, 7);
        assert_eq!(adj.len(), 10);
        for nbrs in &adj {
            assert_eq!(nbrs.len(), 7);
            // distinct
            for w in nbrs.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!(nbrs.iter().all(|&x| x < 20));
        }
    }
}
