//! Undirected distances and the zone decomposition of §5.
//!
//! The lower-bound proofs of the paper measure distance **ignoring edge
//! direction**: `dist(v₁, v₂)` is the length of the shortest undirected
//! path, and the distance from a vertex to an edge `e = (τ, η)` is
//! `min(dist(v, τ), dist(v, η)) + 1`. Around each *good* input the proof
//! of Theorem 1 partitions the nearby edges into **zones**
//! `B_h(v) = { e : dist(v, e) = h }` and argues every zone must carry
//! Ω(log n) switches, else open failures disconnect the input.

use crate::ids::{EdgeId, VertexId};
use crate::traversal::{bfs, Direction, UNREACHED};
use crate::Digraph;

/// Undirected BFS distances from `v` (UNREACHED where disconnected).
pub fn undirected_distances<G: Digraph>(g: &G, v: VertexId) -> Vec<u32> {
    bfs(g, &[v], Direction::Undirected, |_| true, |_| true).dist
}

/// `dist(v, e)` as defined in §5: `min` over endpoints `+ 1`, or
/// `UNREACHED` if neither endpoint is reachable.
pub fn edge_distance(dist: &[u32], endpoints: (VertexId, VertexId)) -> u32 {
    let (t, h) = endpoints;
    let d = dist[t.index()].min(dist[h.index()]);
    if d == UNREACHED {
        UNREACHED
    } else {
        d + 1
    }
}

/// The zone decomposition `B_1(v), …, B_k(v)`: `zones[h-1]` lists the edges
/// at distance exactly `h` from `v` (1-based distance, as in the paper).
/// Edges farther than `max_h` are ignored.
pub fn edge_zones<G: Digraph>(g: &G, v: VertexId, max_h: u32) -> Vec<Vec<EdgeId>> {
    let dist = undirected_distances(g, v);
    let mut zones: Vec<Vec<EdgeId>> = vec![Vec::new(); max_h as usize];
    for e in 0..g.num_edges() {
        let e = EdgeId::from(e);
        let d = edge_distance(&dist, g.endpoints(e));
        if d != UNREACHED && d <= max_h {
            zones[(d - 1) as usize].push(e);
        }
    }
    zones
}

/// All edges within distance `max_h` of `v` — the set `B(v)` of Theorem 1.
pub fn edge_ball<G: Digraph>(g: &G, v: VertexId, max_h: u32) -> Vec<EdgeId> {
    let dist = undirected_distances(g, v);
    (0..g.num_edges())
        .map(EdgeId::from)
        .filter(|&e| {
            let d = edge_distance(&dist, g.endpoints(e));
            d != UNREACHED && d <= max_h
        })
        .collect()
}

/// For every vertex in `terminals`, the undirected distance to the nearest
/// *other* vertex of `terminals` (`UNREACHED` if none reachable).
///
/// Lemma 2 shows a (¼, ½)-superconcentrator must have ≥ n/2 inputs whose
/// nearest-other-input distance is ≥ (1/16)·log₂ n; this function is the
/// measurement behind that experiment. Runs one BFS per terminal.
pub fn nearest_other_terminal<G: Digraph>(g: &G, terminals: &[VertexId]) -> Vec<u32> {
    let mut is_terminal = vec![false; g.num_vertices()];
    for &t in terminals {
        is_terminal[t.index()] = true;
    }
    terminals
        .iter()
        .map(|&t| {
            let b = bfs(g, &[t], Direction::Undirected, |_| true, |_| true);
            let mut best = UNREACHED;
            for &u in &b.order {
                if u != t && is_terminal[u.index()] {
                    best = best.min(b.dist[u.index()]);
                }
            }
            best
        })
        .collect()
}

/// Counts the terminals whose nearest-other-terminal distance is at least
/// `threshold` — the paper's **good inputs** (Theorem 1 proof).
pub fn count_good_terminals<G: Digraph>(g: &G, terminals: &[VertexId], threshold: u32) -> usize {
    nearest_other_terminal(g, terminals)
        .iter()
        .filter(|&&d| d >= threshold)
        .count()
}

/// Undirected eccentricity of `v` restricted to reachable vertices.
pub fn eccentricity<G: Digraph>(g: &G, v: VertexId) -> u32 {
    undirected_distances(g, v)
        .into_iter()
        .filter(|&d| d != UNREACHED)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::v;
    use crate::DiGraph;

    /// Path 0 -> 1 -> 2 -> 3 with an extra branch 1 -> 4.
    fn branched_path() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_vertices(5);
        g.add_edge(v(0), v(1)); // e0
        g.add_edge(v(1), v(2)); // e1
        g.add_edge(v(2), v(3)); // e2
        g.add_edge(v(1), v(4)); // e3
        g
    }

    #[test]
    fn undirected_distances_ignore_direction() {
        let g = branched_path();
        let d = undirected_distances(&g, v(3));
        assert_eq!(d, vec![3, 2, 1, 0, 3]);
    }

    #[test]
    fn edge_distance_definition() {
        let g = branched_path();
        let d = undirected_distances(&g, v(0));
        // e0 = (0,1): min(0,1)+1 = 1
        assert_eq!(edge_distance(&d, g.endpoints(crate::ids::e(0))), 1);
        // e1 = (1,2): min(1,2)+1 = 2
        assert_eq!(edge_distance(&d, g.endpoints(crate::ids::e(1))), 2);
        // e2 = (2,3): min(2,3)+1 = 3
        assert_eq!(edge_distance(&d, g.endpoints(crate::ids::e(2))), 3);
        // e3 = (1,4): min(1,4)+1 = 2
        assert_eq!(edge_distance(&d, g.endpoints(crate::ids::e(3))), 2);
    }

    #[test]
    fn zones_partition_the_ball() {
        let g = branched_path();
        let zones = edge_zones(&g, v(0), 3);
        assert_eq!(zones.len(), 3);
        assert_eq!(zones[0].len(), 1); // e0
        assert_eq!(zones[1].len(), 2); // e1, e3
        assert_eq!(zones[2].len(), 1); // e2
        let ball = edge_ball(&g, v(0), 2);
        assert_eq!(ball.len(), 3);
        // zones are disjoint and their union is the ball (for matching radius)
        let flat: usize = edge_zones(&g, v(0), 2).iter().map(|z| z.len()).sum();
        assert_eq!(flat, ball.len());
    }

    #[test]
    fn disconnected_edges_excluded() {
        let mut g = branched_path();
        g.add_vertices(2);
        g.add_edge(v(5), v(6)); // disconnected component
        let zones = edge_zones(&g, v(0), 10);
        let total: usize = zones.iter().map(|z| z.len()).sum();
        assert_eq!(total, 4, "the island edge is unreachable");
    }

    #[test]
    fn nearest_terminals_exact() {
        let g = branched_path();
        // dist(0,4) = 2 (0-1-4); dist(0,3) = 3; dist(3,4) = 3 (3-2-1-4)
        let d = nearest_other_terminal(&g, &[v(0), v(3), v(4)]);
        assert_eq!(d[0], 2);
        assert_eq!(d[1], 3);
        assert_eq!(d[2], 2);
        assert_eq!(count_good_terminals(&g, &[v(0), v(3), v(4)], 3), 1);
        assert_eq!(count_good_terminals(&g, &[v(0), v(3), v(4)], 2), 3);
    }

    #[test]
    fn eccentricity_of_path() {
        let g = branched_path();
        assert_eq!(eccentricity(&g, v(0)), 3);
        assert_eq!(eccentricity(&g, v(1)), 2);
        let lonely = {
            let mut g = DiGraph::new();
            g.add_vertex();
            g
        };
        assert_eq!(eccentricity(&lonely, v(0)), 0);
    }
}
