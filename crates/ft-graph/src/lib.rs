//! # ft-graph — directed-graph kernel for circuit-switching networks
//!
//! This crate is the substrate on which the entire reproduction of
//! Pippenger & Lin, *Fault-Tolerant Circuit-Switching Networks* (SPAA 1992
//! / SIAM J. Disc. Math. 1994) is built. The paper describes every network
//! as an acyclic directed graph whose **edges are switches** and whose
//! distinguished vertices are the input/output terminals; proofs reason
//! about undirected distances, vertex-disjoint paths (Menger), trees with
//! high-degree internal nodes, and staged (levelled) networks.
//!
//! Provided here:
//!
//! * [`DiGraph`] — growable directed multigraph builder, and [`Csr`] — a
//!   frozen compressed-sparse-row snapshot for traversal-heavy Monte Carlo.
//! * [`StagedNetwork`] — a digraph with terminals and stage structure, the
//!   shape of every network in the paper (Beneš, Clos, grids, network 𝒩).
//! * [`traversal`] / [`distance`] — BFS machinery, directed and undirected
//!   (the paper's `dist` ignores edge direction), zone decompositions
//!   `B_h(v)` used by the Theorem 1 lower bound.
//! * [`maxflow`] — the max-flow kernel portfolio (Dinic + FIFO
//!   push-relabel behind the [`FlowKernel`] selector) with vertex
//!   splitting, the engine for vertex-disjoint path questions;
//!   [`mincost`] — successive-shortest-path min-cost flow with
//!   potentials, the minimal-disruption reroute planner; [`matching`] —
//!   Hopcroft–Karp; [`menger`] — disjoint-path helpers phrased for
//!   network verification.
//! * [`unionfind`] — quotient construction for *closed* switch failures
//!   (edge contraction).
//! * [`tree`] — tree/forest utilities for the Lemma 1/2 lower-bound
//!   machinery (stretch contraction, leaf analysis).
//! * [`gen`] — seeded random generators used by tests and experiments.

#![warn(missing_docs)]

pub mod csr;
pub mod digraph;
pub mod distance;
pub mod gen;
pub mod ids;
pub mod matching;
pub mod maxflow;
pub mod menger;
pub mod mincost;
pub mod paths;
pub mod sliced;
pub mod staged;
pub mod traversal;
pub mod tree;
pub mod unionfind;
pub mod workspace;

pub use csr::Csr;
pub use digraph::DiGraph;
pub use ids::{EdgeId, VertexId};
pub use maxflow::{FlowKernel, FlowWorkspace, PrWorkspace};
pub use mincost::{CostFlowNetwork, McfWorkspace};
pub use paths::Path;
pub use sliced::{sliced_reach_into, SlicedWorkspace, LANES};
pub use staged::{StagedBuilder, StagedNetwork};
pub use unionfind::UnionFind;
pub use workspace::{KernelStats, TraversalWorkspace};

/// Minimal read-only digraph interface implemented by both [`DiGraph`] and
/// [`Csr`], so traversal and flow algorithms are written once.
pub trait Digraph {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;
    /// Number of edges.
    fn num_edges(&self) -> usize;
    /// `(tail, head)` of an edge.
    fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId);
    /// Edges leaving `v`.
    fn out_edge_slice(&self, v: VertexId) -> &[EdgeId];
    /// Edges entering `v`.
    fn in_edge_slice(&self, v: VertexId) -> &[EdgeId];

    /// Heads of the edges leaving `v`, parallel to
    /// [`Self::out_edge_slice`], when the representation stores them
    /// (CSR does). Traversals use this to skip the per-edge `endpoints`
    /// lookup; builder graphs return `None` and fall back to
    /// [`Self::other_endpoint`].
    #[inline]
    fn out_head_slice(&self, _v: VertexId) -> Option<&[VertexId]> {
        None
    }

    /// Tails of the edges entering `v`, parallel to
    /// [`Self::in_edge_slice`], when the representation stores them.
    #[inline]
    fn in_tail_slice(&self, _v: VertexId) -> Option<&[VertexId]> {
        None
    }

    /// Tail of `e`.
    #[inline]
    fn edge_tail(&self, e: EdgeId) -> VertexId {
        self.endpoints(e).0
    }

    /// Head of `e`.
    #[inline]
    fn edge_head(&self, e: EdgeId) -> VertexId {
        self.endpoints(e).1
    }

    /// The endpoint of `e` that is not `v` (for undirected walks); if `e`
    /// is a self-loop this returns `v` itself.
    #[inline]
    fn other_endpoint(&self, e: EdgeId, v: VertexId) -> VertexId {
        let (t, h) = self.endpoints(e);
        if t == v {
            h
        } else {
            t
        }
    }
}
