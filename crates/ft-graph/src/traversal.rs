//! Breadth-first traversal, topological order and DAG depth.
//!
//! Algorithms are generic over [`Digraph`] and accept an *edge filter* so
//! the same code traverses a pristine network, a failure-stricken survivor
//! (open failures remove edges) or a repaired network (faulty vertices
//! removed) without materialising a new graph per Monte Carlo trial.

use crate::ids::{EdgeId, VertexId};
use crate::workspace::TraversalWorkspace;
use crate::Digraph;
use std::collections::VecDeque;

/// Distance value meaning "unreached".
pub const UNREACHED: u32 = u32::MAX;

/// Result of a BFS sweep.
#[derive(Clone, Debug)]
pub struct Bfs {
    /// `dist[v]` = number of edges from the nearest source (`UNREACHED` if none).
    pub dist: Vec<u32>,
    /// `parent_edge[v]` = edge by which `v` was discovered (NONE for sources).
    pub parent_edge: Vec<EdgeId>,
    /// Vertices in discovery order.
    pub order: Vec<VertexId>,
}

impl Bfs {
    /// Whether `v` was reached.
    pub fn reached(&self, v: VertexId) -> bool {
        self.dist[v.index()] != UNREACHED
    }

    /// Reconstructs a path from some source to `v` (inclusive), following
    /// parent edges backwards. Returns `None` if `v` was not reached.
    /// `g` must be the graph the BFS ran on.
    pub fn path_to(&self, g: &impl Digraph, v: VertexId) -> Option<Vec<VertexId>> {
        if !self.reached(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while !self.parent_edge[cur.index()].is_none() {
            let e = self.parent_edge[cur.index()];
            cur = g.other_endpoint(e, cur);
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Direction in which BFS follows edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges tail → head.
    Forward,
    /// Follow edges head → tail.
    Backward,
    /// Ignore orientation (the paper's `dist`, §5).
    Undirected,
}

/// BFS from `sources`, following edges per `dir`, visiting only edges for
/// which `edge_ok` holds and vertices for which `vertex_ok` holds.
/// Sources failing `vertex_ok` are skipped.
pub fn bfs<G: Digraph>(
    g: &G,
    sources: &[VertexId],
    dir: Direction,
    mut edge_ok: impl FnMut(EdgeId) -> bool,
    mut vertex_ok: impl FnMut(VertexId) -> bool,
) -> Bfs {
    let n = g.num_vertices();
    let mut dist = vec![UNREACHED; n];
    let mut parent_edge = vec![EdgeId::NONE; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s.index()] == UNREACHED && vertex_ok(s) {
            dist[s.index()] = 0;
            order.push(s);
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        let sides: [&[EdgeId]; 2] = match dir {
            Direction::Forward => [g.out_edge_slice(u), &[]],
            Direction::Backward => [g.in_edge_slice(u), &[]],
            Direction::Undirected => [g.out_edge_slice(u), g.in_edge_slice(u)],
        };
        for edges in sides {
            for &e in edges {
                if !edge_ok(e) {
                    continue;
                }
                let w = g.other_endpoint(e, u);
                if dist[w.index()] == UNREACHED && vertex_ok(w) {
                    dist[w.index()] = du + 1;
                    parent_edge[w.index()] = e;
                    order.push(w);
                    queue.push_back(w);
                }
            }
        }
    }
    Bfs {
        dist,
        parent_edge,
        order,
    }
}

/// Zero-allocation BFS into a reusable [`TraversalWorkspace`].
///
/// Semantically identical to [`bfs`] (same discovery order, distances
/// and parent edges — pinned by proptests) but borrows its buffers from
/// `ws` instead of allocating, and clears them in O(touched) via the
/// workspace epoch. Query the result through the workspace accessors
/// ([`TraversalWorkspace::reached`], [`TraversalWorkspace::dist`],
/// [`TraversalWorkspace::order`], [`TraversalWorkspace::path_to`]).
///
/// This is the Monte Carlo hot path: run it over a [`crate::Csr`]
/// snapshot, not the `Vec<Vec>` builder graph.
pub fn bfs_into<G: Digraph>(
    g: &G,
    sources: &[VertexId],
    dir: Direction,
    mut edge_ok: impl FnMut(EdgeId) -> bool,
    mut vertex_ok: impl FnMut(VertexId) -> bool,
    ws: &mut TraversalWorkspace,
) {
    ws.begin(g.num_vertices());
    for &s in sources {
        if !ws.is_touched(s.index()) && vertex_ok(s) {
            ws.touch(s.index());
            ws.dist[s.index()] = 0;
            ws.parent[s.index()] = EdgeId::NONE.0;
            ws.queue.push(s);
        }
    }
    let mut head = 0;
    while head < ws.queue.len() {
        let u = ws.queue[head];
        head += 1;
        let du = ws.dist[u.index()];
        // Out-edges pair with their heads, in-edges with their tails;
        // for a self-loop either one equals `other_endpoint`, so the
        // parallel slices are valid in every direction.
        let sides: [(&[EdgeId], Option<&[VertexId]>); 2] = match dir {
            Direction::Forward => [(g.out_edge_slice(u), g.out_head_slice(u)), (&[], None)],
            Direction::Backward => [(g.in_edge_slice(u), g.in_tail_slice(u)), (&[], None)],
            Direction::Undirected => [
                (g.out_edge_slice(u), g.out_head_slice(u)),
                (g.in_edge_slice(u), g.in_tail_slice(u)),
            ],
        };
        for (edges, others) in sides {
            match others {
                // CSR fast path: neighbour read straight off the
                // parallel slice, no `endpoints` indirection.
                Some(others) => {
                    for (&e, &w) in edges.iter().zip(others) {
                        if !edge_ok(e) {
                            continue;
                        }
                        if !ws.is_touched(w.index()) && vertex_ok(w) {
                            ws.touch(w.index());
                            ws.dist[w.index()] = du + 1;
                            ws.parent[w.index()] = e.0;
                            ws.queue.push(w);
                        }
                    }
                }
                None => {
                    for &e in edges {
                        if !edge_ok(e) {
                            continue;
                        }
                        let w = g.other_endpoint(e, u);
                        if !ws.is_touched(w.index()) && vertex_ok(w) {
                            ws.touch(w.index());
                            ws.dist[w.index()] = du + 1;
                            ws.parent[w.index()] = e.0;
                            ws.queue.push(w);
                        }
                    }
                }
            }
        }
    }
}

/// Expands the forward frontier entries `range` of `fwd` one stage,
/// discovering heads that pass `ok` (and, when `prune` is given, are
/// touched in it — the complete backward cone). Returns `true` the
/// instant `target` is discovered; the parent chain to `target` is then
/// final, so stopping early reconstructs the identical path.
fn expand_forward_stage<G: Digraph>(
    g: &G,
    fwd: &mut TraversalWorkspace,
    range: std::ops::Range<usize>,
    target: VertexId,
    mut ok: impl FnMut(VertexId) -> bool,
    prune: Option<&TraversalWorkspace>,
) -> bool {
    #[inline(always)]
    fn visit(
        fwd: &mut TraversalWorkspace,
        prune: Option<&TraversalWorkspace>,
        ok: &mut impl FnMut(VertexId) -> bool,
        e: EdgeId,
        w: VertexId,
        du: u32,
        target: VertexId,
    ) -> bool {
        if fwd.is_touched(w.index()) || !ok(w) {
            return false;
        }
        if let Some(cone) = prune {
            if !cone.is_touched(w.index()) {
                // Provably cannot reach the target. Mark it seen
                // (without enqueueing) so the other edges into it
                // short-circuit on the stamp instead of re-running the
                // filter — never expanded, never on the path, so the
                // backtracked result is untouched.
                fwd.touch(w.index());
                fwd.parent[w.index()] = EdgeId::NONE.0;
                return false;
            }
        }
        fwd.touch(w.index());
        fwd.dist[w.index()] = du + 1;
        fwd.parent[w.index()] = e.0;
        fwd.queue.push(w);
        w == target
    }

    for qi in range {
        let u = fwd.queue[qi];
        let du = fwd.dist[u.index()];
        let edges = g.out_edge_slice(u);
        match g.out_head_slice(u) {
            // CSR fast path: neighbour read off the parallel slice.
            Some(heads) => {
                for (&e, &w) in edges.iter().zip(heads) {
                    if visit(fwd, prune, &mut ok, e, w, du, target) {
                        return true;
                    }
                }
            }
            None => {
                for &e in edges {
                    let w = g.other_endpoint(e, u);
                    if visit(fwd, prune, &mut ok, e, w, du, target) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Expands the backward frontier entries `range` of `bwd` one level
/// (toward the inputs), marking every `ok` in-tail as reaching the
/// target. Only membership matters downstream; distances and parents
/// are still recorded for consistency.
fn expand_backward_level<G: Digraph>(
    g: &G,
    bwd: &mut TraversalWorkspace,
    range: std::ops::Range<usize>,
    mut ok: impl FnMut(VertexId) -> bool,
) {
    #[inline(always)]
    fn visit(
        bwd: &mut TraversalWorkspace,
        ok: &mut impl FnMut(VertexId) -> bool,
        e: EdgeId,
        w: VertexId,
        du: u32,
    ) {
        if !bwd.is_touched(w.index()) && ok(w) {
            bwd.touch(w.index());
            bwd.dist[w.index()] = du + 1;
            bwd.parent[w.index()] = e.0;
            bwd.queue.push(w);
        }
    }

    for qi in range {
        let u = bwd.queue[qi];
        let du = bwd.dist[u.index()];
        let edges = g.in_edge_slice(u);
        match g.in_tail_slice(u) {
            Some(tails) => {
                for (&e, &w) in edges.iter().zip(tails) {
                    visit(bwd, &mut ok, e, w, du);
                }
            }
            None => {
                for &e in edges {
                    let w = g.other_endpoint(e, u);
                    visit(bwd, &mut ok, e, w, du);
                }
            }
        }
    }
}

/// Bidirectional, stage-aware point-to-point search over a
/// **unit-staged** network (every edge joins adjacent stages — see
/// [`crate::StagedNetwork::is_unit_staged`]), meeting in the middle
/// instead of flooding the whole graph.
///
/// Returns whether `target` is reachable from `source` through vertices
/// passing `vertex_ok`; on success the path is read from `fwd` with
/// [`TraversalWorkspace::path_to`] /
/// [`TraversalWorkspace::path_to_into`].
///
/// # Exactness
///
/// The reachability verdict **and the reconstructed path** are
/// bit-identical to what a full forward [`bfs_into`] with the same
/// vertex filter (and no edge filter) produces — same parent edges,
/// same tie-breaks — so callers whose downstream behaviour depends on
/// the exact path (the deterministic simulation engine, whose event
/// fingerprints are pinned) can switch kernels without perturbing a
/// single event. Two facts make the backward prune invisible:
///
/// 1. **Closure.** If a vertex reaches `target` through `vertex_ok`
///    vertices, so does each of its `vertex_ok` in-neighbours (via that
///    vertex). Pruning to "reaches `target`" therefore never removes a
///    potential discoverer of a surviving vertex.
/// 2. **Stage-completeness.** Unit staging means a vertex at stage `s`
///    can reach the stage-`sL` target only in exactly `sL − s` hops, so
///    once the backward cone has been expanded `j` levels it is
///    *complete* for every stage `≥ sL − j`: cone membership there *is*
///    target-reachability. The forward search is pruned only at those
///    stages.
///
/// By induction over stages the pruned forward search discovers every
/// surviving (target-reaching) vertex via the same first-discoverer
/// edge, in the same relative order, as the unpruned search — pruned
/// vertices can never appear on the backtracked path, so the path and
/// the blocked verdict coincide. Pinned by proptests against [`bfs`].
///
/// # Backward budget
///
/// `max_backward_levels` caps how many levels the backward cone may
/// grow. The cap trades pruning power against backward scan cost and
/// **cannot affect the result** (any correct prune is invisible —
/// exactness holds for every budget, which the proptests sample):
/// fabrics with narrow output cones (Clos egress groups, butterfly
/// sub-trees) profit from a deep meet, while expander-like fabrics
/// whose cones saturate a stage in one or two hops (the paper's 𝒩)
/// should pass a small budget or `0`, degrading gracefully to an
/// early-exit forward search pruned only at the target's own stage.
/// Callers that route many times over one topology should derive the
/// budget from a one-off structural analysis (see
/// `CircuitRouter::backward_budget` in `ft-networks`).
///
/// `vertex_ok` must be a pure predicate: it is consulted in an
/// unspecified order and from both directions.
#[allow(clippy::too_many_arguments)] // flat kernel signature, hot path
pub fn bibfs_into<G: Digraph>(
    g: &G,
    source: VertexId,
    target: VertexId,
    stage_of: &[u32],
    max_backward_levels: u32,
    mut vertex_ok: impl FnMut(VertexId) -> bool,
    fwd: &mut TraversalWorkspace,
    bwd: &mut TraversalWorkspace,
) -> bool {
    let n = g.num_vertices();
    debug_assert_eq!(stage_of.len(), n);
    fwd.begin(n);
    bwd.begin(n);
    if !vertex_ok(source) || !vertex_ok(target) {
        return false;
    }
    fwd.touch(source.index());
    fwd.dist[source.index()] = 0;
    fwd.parent[source.index()] = EdgeId::NONE.0;
    fwd.queue.push(source);
    if source == target {
        return true;
    }
    let (s0, sl) = (stage_of[source.index()], stage_of[target.index()]);
    if sl <= s0 {
        return false; // stages only increase along unit-staged edges
    }
    bwd.touch(target.index());
    bwd.dist[target.index()] = 0;
    bwd.parent[target.index()] = EdgeId::NONE.0;
    bwd.queue.push(target);

    // Stages `meet..=sl` have a complete backward cone in `bwd`.
    let mut meet = sl;
    let mut fstage = s0; // stage of the current forward frontier
    let (mut fhead, mut bhead) = (0usize, 0usize);

    // Phase 1: grow whichever frontier is currently smaller until they
    // are adjacent (or the backward budget is spent). Forward expansion
    // below the meet stage cannot be pruned (no backward information
    // exists there yet).
    while fstage + 1 < meet {
        let flen = fwd.queue.len() - fhead;
        let blen = bwd.queue.len() - bhead;
        let may_grow_bwd = sl - meet < max_backward_levels;
        if may_grow_bwd && blen <= flen {
            let end = bwd.queue.len();
            bwd.stats.bibfs_pops += (end - bhead) as u64;
            expand_backward_level(g, bwd, bhead..end, &mut vertex_ok);
            bhead = end;
            meet -= 1;
            if bwd.queue.len() == bhead {
                // No vertex at stage `meet` reaches the target, and any
                // source → target path must cross that stage.
                return false;
            }
        } else {
            let end = fwd.queue.len();
            fwd.stats.bibfs_pops += (end - fhead) as u64;
            if expand_forward_stage(g, fwd, fhead..end, target, &mut vertex_ok, None) {
                return true; // adjacent-stage source/target pairs
            }
            fhead = end;
            fstage += 1;
            if fwd.queue.len() == fhead {
                return false;
            }
        }
    }

    // Phase 2: forward expansion pruned to the backward cone, stopping
    // the instant the target is discovered.
    loop {
        let end = fwd.queue.len();
        if fhead == end {
            return false;
        }
        fwd.stats.bibfs_pops += (end - fhead) as u64;
        if expand_forward_stage(g, fwd, fhead..end, target, &mut vertex_ok, Some(bwd)) {
            return true;
        }
        fhead = end;
    }
}

/// BFS forward from a single source with no filters.
pub fn bfs_forward<G: Digraph>(g: &G, source: VertexId) -> Bfs {
    bfs(g, &[source], Direction::Forward, |_| true, |_| true)
}

/// BFS ignoring direction from a single source with no filters.
pub fn bfs_undirected<G: Digraph>(g: &G, source: VertexId) -> Bfs {
    bfs(g, &[source], Direction::Undirected, |_| true, |_| true)
}

/// Set of vertices reachable (forward) from `sources` through `edge_ok`
/// edges and `vertex_ok` vertices, as a boolean mask.
pub fn reachable<G: Digraph>(
    g: &G,
    sources: &[VertexId],
    edge_ok: impl FnMut(EdgeId) -> bool,
    vertex_ok: impl FnMut(VertexId) -> bool,
) -> Vec<bool> {
    let b = bfs(g, sources, Direction::Forward, edge_ok, vertex_ok);
    b.dist.iter().map(|&d| d != UNREACHED).collect()
}

/// Topological order of a DAG; `None` if the graph has a directed cycle.
pub fn topo_order<G: Digraph>(g: &G) -> Option<Vec<VertexId>> {
    let n = g.num_vertices();
    let mut indeg: Vec<u32> = (0..n)
        .map(|v| g.in_edge_slice(VertexId::from(v)).len() as u32)
        .collect();
    let mut queue: VecDeque<VertexId> = (0..n)
        .map(VertexId::from)
        .filter(|&v| indeg[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &e in g.out_edge_slice(u) {
            let w = g.edge_head(e);
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                queue.push_back(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Whether the digraph is acyclic. All networks in the paper are DAGs.
pub fn is_acyclic<G: Digraph>(g: &G) -> bool {
    topo_order(g).is_some()
}

/// Length (in edges) of the longest directed path in a DAG — the paper's
/// **depth** when measured from inputs to outputs.
///
/// # Panics
/// Panics if the graph has a directed cycle.
pub fn dag_depth<G: Digraph>(g: &G) -> u32 {
    let order = topo_order(g).expect("dag_depth requires an acyclic graph");
    let mut depth = vec![0u32; g.num_vertices()];
    let mut best = 0;
    for u in order {
        let du = depth[u.index()];
        best = best.max(du);
        for &e in g.out_edge_slice(u) {
            let w = g.edge_head(e);
            depth[w.index()] = depth[w.index()].max(du + 1);
        }
    }
    best
}

/// Longest directed path from any vertex of `from` to any vertex of `to`
/// (in edges); `None` if no such path exists. This is the paper's depth
/// measure restricted to input→output paths.
pub fn dag_depth_between<G: Digraph>(g: &G, from: &[VertexId], to: &[VertexId]) -> Option<u32> {
    let order = topo_order(g).expect("dag_depth_between requires an acyclic graph");
    const MINF: i64 = i64::MIN;
    let mut depth = vec![MINF; g.num_vertices()];
    for &s in from {
        depth[s.index()] = 0;
    }
    for u in order {
        let du = depth[u.index()];
        if du == MINF {
            continue;
        }
        for &e in g.out_edge_slice(u) {
            let w = g.edge_head(e);
            if depth[w.index()] < du + 1 {
                depth[w.index()] = du + 1;
            }
        }
    }
    to.iter()
        .map(|t| depth[t.index()])
        .filter(|&d| d != MINF)
        .max()
        .map(|d| d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{e, v};
    use crate::DiGraph;

    fn chain(n: usize) -> DiGraph {
        let mut g = DiGraph::new();
        g.add_vertices(n);
        for i in 0..n - 1 {
            g.add_edge(v(i as u32), v(i as u32 + 1));
        }
        g
    }

    #[test]
    fn bfs_chain_distances() {
        let g = chain(5);
        let b = bfs_forward(&g, v(0));
        assert_eq!(b.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(b.order.len(), 5);
        let p = b.path_to(&g, v(4)).unwrap();
        assert_eq!(p, vec![v(0), v(1), v(2), v(3), v(4)]);
    }

    #[test]
    fn bfs_backward_and_undirected() {
        let g = chain(4);
        let fwd = bfs(&g, &[v(3)], Direction::Forward, |_| true, |_| true);
        assert!(!fwd.reached(v(0)));
        let bwd = bfs(&g, &[v(3)], Direction::Backward, |_| true, |_| true);
        assert_eq!(bwd.dist[0], 3);
        let und = bfs(&g, &[v(1)], Direction::Undirected, |_| true, |_| true);
        assert_eq!(und.dist, vec![1, 0, 1, 2]);
    }

    #[test]
    fn bfs_edge_filter_blocks() {
        let g = chain(4);
        // block the middle edge e1 (v1 -> v2)
        let b = bfs(&g, &[v(0)], Direction::Forward, |x| x != e(1), |_| true);
        assert!(b.reached(v(1)));
        assert!(!b.reached(v(2)));
    }

    #[test]
    fn bfs_vertex_filter_blocks() {
        let g = chain(4);
        let b = bfs(&g, &[v(0)], Direction::Forward, |_| true, |x| x != v(2));
        assert!(b.reached(v(1)));
        assert!(!b.reached(v(2)));
        assert!(!b.reached(v(3)));
    }

    #[test]
    fn bfs_filtered_source() {
        let g = chain(3);
        let b = bfs(&g, &[v(0)], Direction::Forward, |_| true, |x| x != v(0));
        assert!(!b.reached(v(0)));
        assert!(b.order.is_empty());
    }

    #[test]
    fn multi_source_bfs() {
        let g = chain(6);
        let b = bfs(&g, &[v(0), v(4)], Direction::Forward, |_| true, |_| true);
        assert_eq!(b.dist[5], 1, "nearest source wins");
        assert_eq!(b.dist[3], 3);
    }

    #[test]
    fn topo_order_on_dag() {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(0), v(2));
        g.add_edge(v(1), v(3));
        g.add_edge(v(2), v(3));
        let order = topo_order(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, u) in order.iter().enumerate() {
                p[u.index()] = i;
            }
            p
        };
        for (_, t, h) in g.edges() {
            assert!(pos[t.index()] < pos[h.index()]);
        }
        assert!(is_acyclic(&g));
        assert_eq!(dag_depth(&g), 2);
    }

    #[test]
    fn cycle_detected() {
        let mut g = DiGraph::new();
        g.add_vertices(3);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.add_edge(v(2), v(0));
        assert!(topo_order(&g).is_none());
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn depth_between_terminals() {
        // diamond with a long tail not between terminals
        let mut g = DiGraph::new();
        g.add_vertices(6);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.add_edge(v(0), v(2));
        g.add_edge(v(3), v(4)); // disconnected tail
        g.add_edge(v(4), v(5));
        assert_eq!(dag_depth_between(&g, &[v(0)], &[v(2)]), Some(2));
        assert_eq!(dag_depth_between(&g, &[v(2)], &[v(0)]), None);
        assert_eq!(dag_depth_between(&g, &[v(0), v(3)], &[v(2), v(5)]), Some(2));
        assert_eq!(dag_depth(&g), 2);
    }

    #[test]
    fn reachable_mask() {
        let g = chain(4);
        let m = reachable(&g, &[v(1)], |_| true, |_| true);
        assert_eq!(m, vec![false, true, true, true]);
    }

    #[test]
    fn bfs_into_matches_allocating_bfs() {
        let g = chain(6);
        let mut ws = TraversalWorkspace::new();
        for dir in [
            Direction::Forward,
            Direction::Backward,
            Direction::Undirected,
        ] {
            let a = bfs(&g, &[v(2), v(4)], dir, |x| x != e(1), |x| x != v(5));
            bfs_into(
                &g,
                &[v(2), v(4)],
                dir,
                |x| x != e(1),
                |x| x != v(5),
                &mut ws,
            );
            for u in 0..6 {
                assert_eq!(a.dist[u], ws.dist(v(u as u32)), "dir {dir:?} vertex {u}");
                assert_eq!(a.parent_edge[u], ws.parent_edge(v(u as u32)));
            }
            assert_eq!(a.order, ws.order());
        }
    }

    #[test]
    fn bibfs_matches_bfs_on_small_staged_net() {
        use crate::staged::StagedBuilder;
        // 3 stages, 2 wide, fully wired: plenty of equal-length paths,
        // so the tie-break rules are what is under test.
        let mut b = StagedBuilder::new();
        let s0 = b.add_stage(2);
        let s1 = b.add_stage(2);
        let s2 = b.add_stage(2);
        for t in s0.clone() {
            for h in s1.clone() {
                b.add_edge(v(t), v(h));
            }
        }
        for t in s1.clone() {
            for h in s2.clone() {
                b.add_edge(v(t), v(h));
            }
        }
        b.set_inputs(s0.map(v).collect());
        b.set_outputs(s2.map(v).collect());
        let net = b.finish();
        assert!(net.is_unit_staged());
        let csr = net.csr();
        let (mut rws, mut fwd, mut bwd) = (
            TraversalWorkspace::new(),
            TraversalWorkspace::new(),
            TraversalWorkspace::new(),
        );
        // every pair, under every single-vertex knockout of stage 1
        for knockout in [None, Some(v(2)), Some(v(3))] {
            let ok = |u: VertexId| Some(u) != knockout;
            for src in 0..2u32 {
                for dst in 4..6u32 {
                    bfs_into(csr, &[v(src)], Direction::Forward, |_| true, ok, &mut rws);
                    let want = rws.path_to(csr, v(dst));
                    // every budget must give the identical answer
                    for budget in [0, 1, u32::MAX] {
                        let got = bibfs_into(
                            csr,
                            v(src),
                            v(dst),
                            net.stage_table(),
                            budget,
                            ok,
                            &mut fwd,
                            &mut bwd,
                        );
                        assert_eq!(got, want.is_some());
                        if got {
                            assert_eq!(fwd.path_to(csr, v(dst)).unwrap(), want.clone().unwrap());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bibfs_edge_cases() {
        use crate::staged::StagedBuilder;
        // a 2-stage (adjacent source/target) network
        let mut b = StagedBuilder::new();
        let s0 = b.add_stage(2);
        let s1 = b.add_stage(2);
        b.add_edge(v(s0.start), v(s1.start));
        b.set_inputs(s0.clone().map(v).collect());
        b.set_outputs(s1.clone().map(v).collect());
        let net = b.finish();
        let csr = net.csr();
        let (mut fwd, mut bwd) = (TraversalWorkspace::new(), TraversalWorkspace::new());
        let tab = net.stage_table();
        // direct edge: found
        assert!(bibfs_into(
            csr,
            v(0),
            v(2),
            tab,
            u32::MAX,
            |_| true,
            &mut fwd,
            &mut bwd
        ));
        assert_eq!(fwd.path_to(csr, v(2)).unwrap(), vec![v(0), v(2)]);
        // absent edge: blocked
        assert!(!bibfs_into(
            csr,
            v(1),
            v(3),
            tab,
            u32::MAX,
            |_| true,
            &mut fwd,
            &mut bwd
        ));
        // busy source / busy target: blocked
        assert!(!bibfs_into(
            csr,
            v(0),
            v(2),
            tab,
            u32::MAX,
            |u| u != v(0),
            &mut fwd,
            &mut bwd
        ));
        assert!(!bibfs_into(
            csr,
            v(0),
            v(2),
            tab,
            u32::MAX,
            |u| u != v(2),
            &mut fwd,
            &mut bwd
        ));
        // source == target is trivially reachable
        assert!(bibfs_into(
            csr,
            v(0),
            v(0),
            tab,
            u32::MAX,
            |_| true,
            &mut fwd,
            &mut bwd
        ));
        assert_eq!(fwd.path_to(csr, v(0)).unwrap(), vec![v(0)]);
        // target at an earlier stage than the source: unreachable
        assert!(!bibfs_into(
            csr,
            v(2),
            v(0),
            tab,
            u32::MAX,
            |_| true,
            &mut fwd,
            &mut bwd
        ));
    }

    #[test]
    fn works_on_csr_too() {
        let g = chain(5);
        let c = crate::Csr::from_digraph(&g);
        let b = bfs_forward(&c, v(0));
        assert_eq!(b.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(dag_depth(&c), 4);
    }
}
