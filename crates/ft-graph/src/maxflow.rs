//! Max-flow kernels (Dinic + FIFO push-relabel) and vertex-disjoint
//! path extraction.
//!
//! Vertex-disjoint paths are the currency of the paper: nonblocking,
//! rearrangeable and superconcentrator properties (§2) are all statements
//! about the existence of vertex-disjoint input→output path families, and
//! Menger's theorem (used in Lemma 3) converts their absence into vertex
//! cuts. We reduce vertex-disjointness to edge capacities by the standard
//! **vertex splitting** transform: each vertex `v` becomes `v_in → v_out`
//! with capacity 1, and each original edge `(u, w)` becomes
//! `u_out → w_in`.
//!
//! Two kernels share the same [`FlowNetwork`] residual representation and
//! are interchangeable — both run to completion and leave a valid
//! max-flow residual, so min-cut extraction and path decomposition work
//! identically on either:
//!
//! * **Dinic** (O(E·√V) on unit capacities) — the default, and the only
//!   kernel with a cheap early stop, so every `limit` query runs it.
//! * **FIFO push-relabel** with the gap and global-relabel heuristics —
//!   wins on dense flow instances where Dinic's level-graph rebuilds
//!   dominate.
//!
//! [`FlowKernel`] selects between them; `Auto` applies a static density
//! cost model (see [`FlowKernel::resolve`]). The portfolio is also its
//! own oracle: `tests/kernel_equiv.rs` pins that every kernel agrees on
//! every instance.

use crate::ids::{EdgeId, VertexId};
use crate::workspace::TraversalWorkspace;
use crate::Digraph;
use std::collections::VecDeque;

/// A flow arc in the residual network.
#[derive(Clone, Debug)]
struct Arc {
    to: u32,
    /// Index of the reverse arc in `arcs`.
    rev: u32,
    cap: u32,
}

/// Max-flow problem builder/solver (Dinic).
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    first: Vec<Vec<u32>>, // arc indices per node
    arcs: Vec<Arc>,
}

impl FlowNetwork {
    /// Creates a flow network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            first: vec![Vec::new(); n],
            arcs: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.first.len()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> u32 {
        self.first.push(Vec::new());
        (self.first.len() - 1) as u32
    }

    /// Clears the network down to `n` isolated nodes while keeping every
    /// allocation (arc list and per-node adjacency capacity). Monte Carlo
    /// loops rebuild the same-shaped flow problem thousands of times;
    /// after the first trial a `reset` + rebuild allocates nothing.
    pub fn reset(&mut self, n: usize) {
        self.arcs.clear();
        if self.first.len() > n {
            self.first.truncate(n);
        }
        for f in &mut self.first {
            f.clear();
        }
        if self.first.len() < n {
            self.first.resize_with(n, Vec::new);
        }
    }

    /// Adds a directed arc `u → v` with capacity `cap`; returns the arc
    /// index (its residual twin is `index + 1`).
    pub fn add_arc(&mut self, u: u32, v: u32, cap: u32) -> u32 {
        let idx = self.arcs.len() as u32;
        let rev = idx + 1;
        self.arcs.push(Arc { to: v, rev, cap });
        self.arcs.push(Arc {
            to: u,
            rev: idx,
            cap: 0,
        });
        self.first[u as usize].push(idx);
        self.first[v as usize].push(rev);
        idx
    }

    /// Flow currently pushed through arc `idx` (i.e. residual capacity of
    /// its twin).
    pub fn flow_on(&self, idx: u32) -> u32 {
        self.arcs[self.arcs[idx as usize].rev as usize].cap
    }

    /// Computes the maximum `s → t` flow, optionally stopping once `limit`
    /// units have been pushed (useful for "are there at least r disjoint
    /// paths?" questions).
    pub fn max_flow(&mut self, s: u32, t: u32, limit: Option<u32>) -> u32 {
        let mut ws = TraversalWorkspace::new();
        self.max_flow_into(s, t, limit, &mut ws)
    }

    /// [`Self::max_flow`] borrowing Dinic's level and arc-cursor buffers
    /// from a reusable [`TraversalWorkspace`] (zero allocations once the
    /// workspace has grown to the node count). Results are identical.
    pub fn max_flow_into(
        &mut self,
        s: u32,
        t: u32,
        limit: Option<u32>,
        ws: &mut TraversalWorkspace,
    ) -> u32 {
        assert_ne!(s, t, "source equals sink");
        let n = self.num_nodes();
        let limit = limit.unwrap_or(u32::MAX);
        let mut flow = 0u32;
        // Borrow the workspace's buffers: `dist` is the level array,
        // `parent` the DFS arc cursor, `queue` the BFS queue. Dinic
        // phases touch nearly every node, so plain per-phase fills beat
        // the epoch trick here (one load per level check in the DFS
        // instead of stamp + level); zero allocation is preserved
        // because the buffers live in the reusable workspace.
        ws.begin(n);
        while flow < limit {
            // BFS: build level graph.
            ws.dist[..n].fill(u32::MAX);
            ws.dist[s as usize] = 0;
            ws.queue.clear();
            ws.queue.push(VertexId(s));
            let mut head = 0;
            while head < ws.queue.len() {
                let u = ws.queue[head].0;
                head += 1;
                let du = ws.dist[u as usize];
                for &ai in &self.first[u as usize] {
                    let a = &self.arcs[ai as usize];
                    if a.cap > 0 && ws.dist[a.to as usize] == u32::MAX {
                        ws.dist[a.to as usize] = du + 1;
                        ws.queue.push(VertexId(a.to));
                    }
                }
            }
            if ws.dist[t as usize] == u32::MAX {
                break;
            }
            // DFS blocking flow.
            ws.parent[..n].fill(0);
            loop {
                let pushed = self.dfs(s, t, limit - flow, ws);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
                if flow >= limit {
                    break;
                }
            }
        }
        flow
    }

    fn dfs(&mut self, u: u32, t: u32, up_to: u32, ws: &mut TraversalWorkspace) -> u32 {
        if u == t {
            return up_to;
        }
        while (ws.parent[u as usize] as usize) < self.first[u as usize].len() {
            let ai = self.first[u as usize][ws.parent[u as usize] as usize];
            let (to, cap) = {
                let a = &self.arcs[ai as usize];
                (a.to, a.cap)
            };
            if cap > 0 && ws.dist[to as usize] == ws.dist[u as usize] + 1 {
                let pushed = self.dfs(to, t, up_to.min(cap), ws);
                if pushed > 0 {
                    self.arcs[ai as usize].cap -= pushed;
                    let rev = self.arcs[ai as usize].rev;
                    self.arcs[rev as usize].cap += pushed;
                    return pushed;
                }
            }
            ws.parent[u as usize] += 1;
        }
        0
    }

    /// Forward (capacity-carrying) arc count — the problem size the
    /// kernel cost model reasons about. Each [`Self::add_arc`] stores a
    /// residual twin too; that factor is the same for every instance, so
    /// the model ignores it.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len() / 2
    }

    /// Computes the maximum `s → t` flow by FIFO push-relabel, allocating
    /// a fresh [`PrWorkspace`]. See [`Self::push_relabel_into`].
    pub fn push_relabel(&mut self, s: u32, t: u32) -> u32 {
        let mut prw = PrWorkspace::new();
        self.push_relabel_into(s, t, &mut prw)
    }

    /// Computes the maximum `s → t` flow by FIFO push-relabel with the
    /// gap and global-relabel heuristics, borrowing all scratch state
    /// from a reusable [`PrWorkspace`] (zero allocations once the
    /// workspace has grown to the node count).
    ///
    /// The algorithm always runs to completion — every unit of excess is
    /// either delivered to `t` or returned to `s` — so on return the
    /// residual arcs encode a *valid maximum flow*: [`Self::flow_on`],
    /// [`Self::min_cut_source_side`] and path decomposition behave
    /// exactly as after [`Self::max_flow`]. (That is the portfolio
    /// contract; there is no early-stop `limit` here, which is why the
    /// kernel selector routes `limit` queries to Dinic.)
    pub fn push_relabel_into(&mut self, s: u32, t: u32, prw: &mut PrWorkspace) -> u32 {
        assert_ne!(s, t, "source equals sink");
        let n = self.num_nodes();
        prw.begin(n);
        // Saturate every arc out of the source FIRST: the exact-label BFS
        // below parks nodes with no residual path back to `s` at `2n`,
        // which is only sound once every excess-carrying node has its
        // saturated twin arc (hence a residual path to `s`) in place.
        for k in 0..self.first[s as usize].len() {
            let ai = self.first[s as usize][k] as usize;
            let cap = self.arcs[ai].cap;
            if cap == 0 {
                continue;
            }
            let to = self.arcs[ai].to;
            let rev = self.arcs[ai].rev as usize;
            self.arcs[ai].cap = 0;
            self.arcs[rev].cap += cap;
            prw.excess[to as usize] += cap as u64;
            if to != s && to != t && !prw.active[to as usize] {
                prw.active[to as usize] = true;
                prw.queue.push_back(to);
            }
        }
        self.global_relabel(s, t, prw);
        // FIFO discharge loop with periodic global relabels. The work
        // threshold is the usual "rebuild once the discharge work since
        // the last rebuild is comparable to the rebuild cost" rule.
        let threshold = 4 * self.arcs.len() as u64 + n as u64 + 1;
        let mut work = 0u64;
        while let Some(u) = prw.queue.pop_front() {
            prw.active[u as usize] = false;
            self.discharge(u, s, t, prw, &mut work);
            if work >= threshold {
                work = 0;
                self.global_relabel(s, t, prw);
            }
        }
        debug_assert!(
            (0..n).all(|v| prw.excess[v] == 0 || v == s as usize || v == t as usize),
            "push-relabel terminated with stranded excess"
        );
        prw.excess[t as usize] as u32
    }

    /// Fully discharges `u`: pushes excess along admissible arcs,
    /// relabelling (with the gap heuristic) whenever the arc list is
    /// exhausted, until `u` carries no excess.
    fn discharge(&mut self, u: u32, s: u32, t: u32, prw: &mut PrWorkspace, work: &mut u64) {
        let n = self.num_nodes();
        let ui = u as usize;
        while prw.excess[ui] > 0 {
            if (prw.cur[ui] as usize) == self.first[ui].len() {
                // Relabel to one above the lowest residual neighbour.
                *work += self.first[ui].len() as u64 + 1;
                let old_h = prw.height[ui];
                let mut new_h = u32::MAX;
                for &ai in &self.first[ui] {
                    let a = &self.arcs[ai as usize];
                    if a.cap > 0 {
                        new_h = new_h.min(prw.height[a.to as usize] + 1);
                    }
                }
                debug_assert!(
                    new_h != u32::MAX,
                    "node with excess has no residual out-arc"
                );
                debug_assert!(new_h > old_h && new_h < 2 * n as u32);
                prw.count[old_h as usize] -= 1;
                prw.count[new_h as usize] += 1;
                prw.height[ui] = new_h;
                prw.cur[ui] = 0;
                // Gap heuristic: if `old_h < n` just became empty, no
                // node between the gap and `n` can reach `t` any more —
                // lift them all past `n` so they route excess back to
                // `s` instead of churning toward the sink.
                if old_h < n as u32 && prw.count[old_h as usize] == 0 {
                    let lift = n as u32 + 1;
                    for v in 0..n {
                        let h = prw.height[v];
                        if h > old_h && h < n as u32 {
                            prw.count[h as usize] -= 1;
                            prw.count[lift as usize] += 1;
                            prw.height[v] = lift;
                            prw.cur[v] = 0;
                        }
                    }
                }
            } else {
                let ai = self.first[ui][prw.cur[ui] as usize] as usize;
                *work += 1;
                let (to, cap) = {
                    let a = &self.arcs[ai];
                    (a.to, a.cap)
                };
                if cap > 0 && prw.height[ui] == prw.height[to as usize] + 1 {
                    let amt = prw.excess[ui].min(cap as u64) as u32;
                    let rev = self.arcs[ai].rev as usize;
                    self.arcs[ai].cap -= amt;
                    self.arcs[rev].cap += amt;
                    prw.excess[ui] -= amt as u64;
                    prw.excess[to as usize] += amt as u64;
                    if to != s && to != t && !prw.active[to as usize] {
                        prw.active[to as usize] = true;
                        prw.queue.push_back(to);
                    }
                } else {
                    prw.cur[ui] += 1;
                }
            }
        }
    }

    /// Recomputes exact height labels: a backward BFS from `t` over the
    /// residual graph assigns `d(v, t)`; nodes cut off from `t` get
    /// `n + d(v, s)` from a second backward BFS seeded at `s` (their
    /// excess can only return to the source). Nodes reachable from
    /// neither hold no excess and are parked at `2n`.
    fn global_relabel(&self, s: u32, t: u32, prw: &mut PrWorkspace) {
        let n = self.num_nodes();
        let parked = 2 * n as u32;
        prw.height[..n].fill(parked);
        prw.height[t as usize] = 0;
        prw.bfs.clear();
        prw.bfs.push(t);
        let mut head = 0;
        while head < prw.bfs.len() {
            let v = prw.bfs[head] as usize;
            head += 1;
            let hv = prw.height[v];
            for &ai in &self.first[v] {
                let a = &self.arcs[ai as usize];
                let u = a.to;
                // Residual arc u → v exists iff the twin of `ai` (an arc
                // leaving `u`) still has capacity.
                if u != s && prw.height[u as usize] == parked && self.arcs[a.rev as usize].cap > 0 {
                    prw.height[u as usize] = hv + 1;
                    prw.bfs.push(u);
                }
            }
        }
        prw.height[s as usize] = n as u32;
        prw.bfs.clear();
        prw.bfs.push(s);
        head = 0;
        while head < prw.bfs.len() {
            let v = prw.bfs[head] as usize;
            head += 1;
            let hv = prw.height[v];
            for &ai in &self.first[v] {
                let a = &self.arcs[ai as usize];
                let u = a.to;
                if prw.height[u as usize] == parked && self.arcs[a.rev as usize].cap > 0 {
                    prw.height[u as usize] = hv + 1;
                    prw.bfs.push(u);
                }
            }
        }
        prw.count.fill(0);
        for v in 0..n {
            prw.cur[v] = 0;
            prw.count[prw.height[v] as usize] += 1;
        }
    }

    /// Nodes reachable from `s` in the residual graph — the source side of
    /// a minimum cut after [`Self::max_flow`] has run.
    pub fn min_cut_source_side(&self, s: u32) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes()];
        let mut q = VecDeque::new();
        seen[s as usize] = true;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ai in &self.first[u as usize] {
                let a = &self.arcs[ai as usize];
                if a.cap > 0 && !seen[a.to as usize] {
                    seen[a.to as usize] = true;
                    q.push_back(a.to);
                }
            }
        }
        seen
    }
}

/// Reusable buffers for [`FlowNetwork::push_relabel_into`]: height and
/// excess labels, per-node current-arc cursors, per-height node counts
/// (the gap heuristic), the FIFO of active nodes and the global-relabel
/// BFS queue. Grows on first use; repeated solves allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct PrWorkspace {
    height: Vec<u32>,
    excess: Vec<u64>,
    cur: Vec<u32>,
    count: Vec<u32>,
    queue: VecDeque<u32>,
    active: Vec<bool>,
    bfs: Vec<u32>,
}

impl PrWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes every buffer for an `n`-node problem and clears state.
    fn begin(&mut self, n: usize) {
        self.height.clear();
        self.height.resize(n, 0);
        self.excess.clear();
        self.excess.resize(n, 0);
        self.cur.clear();
        self.cur.resize(n, 0);
        self.count.clear();
        self.count.resize(2 * n + 1, 0);
        self.active.clear();
        self.active.resize(n, false);
        self.queue.clear();
        self.bfs.clear();
    }
}

/// Which max-flow kernel a disjoint-path query runs. The kernels agree
/// on every instance (pinned by `tests/kernel_equiv.rs`), so this is a
/// pure performance choice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FlowKernel {
    /// Resolve per instance from the static density cost model
    /// ([`FlowKernel::resolve`]).
    #[default]
    Auto,
    /// Dinic's blocking-flow algorithm — O(E·√V) on unit capacities,
    /// and the only kernel with a cheap early stop (`limit`).
    Dinic,
    /// FIFO push-relabel with gap + global-relabel heuristics — wins on
    /// dense instances where Dinic's per-phase level rebuilds dominate.
    PushRelabel,
}

/// Arcs-per-node density at which `Auto` switches to push-relabel.
/// Below this, Dinic's O(E·√V) unit-capacity bound is unbeatable; at or
/// above it the level-graph rebuild cost (E per phase) overtakes
/// push-relabel's locality. Calibrated on the committed fabric families
/// by the `repair_nu2` bench pair: degree-2 Beneš/butterfly instances
/// stay on Dinic, the ν = 2 𝒩 repair flows (degree ≈ 8) switch.
const PR_DENSITY: usize = 4;

impl FlowKernel {
    /// Resolves the kernel for a flow instance with `nodes` nodes and
    /// `arcs` forward arcs. `limit` queries always resolve to Dinic —
    /// push-relabel must run to completion to leave a usable residual,
    /// so it cannot honour an early stop.
    pub fn resolve(self, nodes: usize, arcs: usize, limit: Option<u32>) -> FlowKernel {
        if limit.is_some() {
            return FlowKernel::Dinic;
        }
        match self {
            FlowKernel::Auto => {
                if arcs >= PR_DENSITY * nodes.max(1) {
                    FlowKernel::PushRelabel
                } else {
                    FlowKernel::Dinic
                }
            }
            k => k,
        }
    }
}

/// Result of a vertex-disjoint path computation.
#[derive(Clone, Debug)]
pub struct DisjointPaths {
    /// Number of vertex-disjoint paths found (the max-flow value).
    pub count: u32,
    /// The paths, each a sequence of original vertex ids from a source to
    /// a sink.
    pub paths: Vec<Vec<VertexId>>,
}

/// Options for [`vertex_disjoint_paths`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DisjointOptions {
    /// Stop as soon as this many paths are found.
    pub limit: Option<u32>,
    /// If `true`, only count the flow; skip path extraction.
    pub count_only: bool,
    /// Which max-flow kernel to run (the answer is kernel-independent).
    pub kernel: FlowKernel,
}

/// Reusable state for repeated vertex-disjoint-path queries: the flow
/// network (arc pool + adjacency), the Dinic traversal workspace and the
/// arc-index scratch tables. After the first call on a given graph shape,
/// [`vertex_disjoint_paths_into`] performs no heap allocation (path
/// extraction aside).
#[derive(Clone, Debug, Default)]
pub struct FlowWorkspace {
    fnet: FlowNetwork,
    ws: TraversalWorkspace,
    prw: PrWorkspace,
    sink_arc: Vec<u32>,
    source_arc: Vec<u32>,
    graph_arc: Vec<u32>,
    next_vertex: Vec<VertexId>,
}

impl FlowWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Maximum family of vertex-disjoint directed paths from `sources` to
/// `sinks`, using only vertices with `vertex_ok` and edges with `edge_ok`.
///
/// Sources and sinks are themselves capacity-1 (each source starts at most
/// one path), matching the paper's definitions where paths must be
/// vertex-disjoint *including* endpoints. A vertex listed in both
/// `sources` and `sinks` yields a trivial length-0 path.
pub fn vertex_disjoint_paths<G: Digraph>(
    g: &G,
    sources: &[VertexId],
    sinks: &[VertexId],
    edge_ok: impl FnMut(EdgeId) -> bool,
    vertex_ok: impl FnMut(VertexId) -> bool,
    opts: DisjointOptions,
) -> DisjointPaths {
    let mut fw = FlowWorkspace::new();
    vertex_disjoint_paths_into(g, sources, sinks, edge_ok, vertex_ok, opts, &mut fw)
}

/// [`vertex_disjoint_paths`] borrowing all scratch state from a reusable
/// [`FlowWorkspace`] — the Monte Carlo hot path. Results are identical.
#[allow(clippy::too_many_arguments)]
pub fn vertex_disjoint_paths_into<G: Digraph>(
    g: &G,
    sources: &[VertexId],
    sinks: &[VertexId],
    mut edge_ok: impl FnMut(EdgeId) -> bool,
    mut vertex_ok: impl FnMut(VertexId) -> bool,
    opts: DisjointOptions,
    fw: &mut FlowWorkspace,
) -> DisjointPaths {
    let n = g.num_vertices();
    // Node layout: v_in = 2v, v_out = 2v+1, super-source = 2n, super-sink = 2n+1.
    let fnet = &mut fw.fnet;
    fnet.reset(2 * n + 2);
    let (ss, tt) = ((2 * n) as u32, (2 * n + 1) as u32);
    // split arcs enforce vertex capacity 1
    for vid in 0..n {
        let v = VertexId::from(vid);
        if vertex_ok(v) {
            fnet.add_arc(2 * vid as u32, 2 * vid as u32 + 1, 1);
        }
    }
    let sink_arc = &mut fw.sink_arc;
    sink_arc.clear();
    sink_arc.resize(n, u32::MAX);
    for &t in sinks {
        if sink_arc[t.index()] == u32::MAX {
            sink_arc[t.index()] = fnet.add_arc(2 * t.index() as u32 + 1, tt, 1);
        }
    }
    let source_arc = &mut fw.source_arc;
    source_arc.clear();
    source_arc.resize(n, u32::MAX);
    for &s in sources {
        if source_arc[s.index()] == u32::MAX {
            source_arc[s.index()] = fnet.add_arc(ss, 2 * s.index() as u32, 1);
        }
    }
    // graph arcs: u_out -> w_in
    let graph_arc = &mut fw.graph_arc;
    graph_arc.clear();
    graph_arc.resize(g.num_edges(), u32::MAX);
    for (eid, arc) in graph_arc.iter_mut().enumerate() {
        let e = EdgeId::from(eid);
        if !edge_ok(e) {
            continue;
        }
        let (t, h) = g.endpoints(e);
        *arc = fnet.add_arc(2 * t.index() as u32 + 1, 2 * h.index() as u32, 1);
    }

    let count = match opts
        .kernel
        .resolve(fnet.num_nodes(), fnet.num_arcs(), opts.limit)
    {
        FlowKernel::PushRelabel => fnet.push_relabel_into(ss, tt, &mut fw.prw),
        _ => fnet.max_flow_into(ss, tt, opts.limit, &mut fw.ws),
    };
    if opts.count_only {
        return DisjointPaths {
            count,
            paths: Vec::new(),
        };
    }

    // Extract paths by walking saturated graph arcs from each used source.
    // Unit vertex capacity ⇒ every vertex has at most one saturated
    // outgoing graph arc, so the walk is deterministic.
    let next_vertex = &mut fw.next_vertex;
    next_vertex.clear();
    next_vertex.resize(n, VertexId::NONE);
    for (eid, &ai) in graph_arc.iter().enumerate() {
        if ai != u32::MAX && fnet.flow_on(ai) > 0 {
            let (t, h) = g.endpoints(EdgeId::from(eid));
            debug_assert!(next_vertex[t.index()].is_none(), "vertex capacity violated");
            next_vertex[t.index()] = h;
        }
    }
    let mut paths = Vec::with_capacity(count as usize);
    for &s in sources {
        let sa = source_arc[s.index()];
        if sa == u32::MAX || fnet.flow_on(sa) == 0 {
            continue;
        }
        source_arc[s.index()] = u32::MAX; // don't start the same path twice
        let mut path = vec![s];
        let mut cur = s;
        loop {
            let sk = sink_arc[cur.index()];
            if sk != u32::MAX && fnet.flow_on(sk) > 0 {
                break; // the flow unit through `cur` terminates here
            }
            let nxt = next_vertex[cur.index()];
            assert!(
                !nxt.is_none() && path.len() <= n,
                "flow decomposition failed (non-DAG input?)"
            );
            next_vertex[cur.index()] = VertexId::NONE; // consume
            path.push(nxt);
            cur = nxt;
        }
        paths.push(path);
    }
    debug_assert_eq!(paths.len(), count as usize);
    DisjointPaths { count, paths }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::v;
    use crate::DiGraph;

    #[test]
    fn simple_max_flow() {
        // classic 4-node example
        let mut f = FlowNetwork::new(4);
        f.add_arc(0, 1, 2);
        f.add_arc(0, 2, 1);
        f.add_arc(1, 2, 1);
        f.add_arc(1, 3, 1);
        f.add_arc(2, 3, 2);
        assert_eq!(f.max_flow(0, 3, None), 3);
    }

    #[test]
    fn max_flow_respects_limit() {
        let mut f = FlowNetwork::new(2);
        for _ in 0..5 {
            f.add_arc(0, 1, 1);
        }
        assert_eq!(f.max_flow(0, 1, Some(3)), 3);
    }

    #[test]
    fn min_cut_matches_flow() {
        let mut f = FlowNetwork::new(4);
        let a = f.add_arc(0, 1, 3);
        let b = f.add_arc(1, 2, 1);
        let c = f.add_arc(2, 3, 3);
        let flow = f.max_flow(0, 3, None);
        assert_eq!(flow, 1);
        let side = f.min_cut_source_side(0);
        assert!(side[0] && side[1] && !side[2] && !side[3]);
        assert_eq!(f.flow_on(a), 1);
        assert_eq!(f.flow_on(b), 1);
        assert_eq!(f.flow_on(c), 1);
    }

    fn diamond() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(0), v(2));
        g.add_edge(v(1), v(3));
        g.add_edge(v(2), v(3));
        g
    }

    #[test]
    fn disjoint_paths_diamond() {
        let g = diamond();
        // 0 and 3 are both terminals: one path 0..3, vertex-disjointness
        // allows only one since both paths share 0 and 3.
        let r = vertex_disjoint_paths(
            &g,
            &[v(0)],
            &[v(3)],
            |_| true,
            |_| true,
            DisjointOptions::default(),
        );
        assert_eq!(r.count, 1);
        assert_eq!(r.paths.len(), 1);
        let p = &r.paths[0];
        assert_eq!(p.first(), Some(&v(0)));
        assert_eq!(p.last(), Some(&v(3)));
    }

    #[test]
    fn disjoint_paths_parallel_chains() {
        // two disjoint chains: 0->2->4, 1->3->5
        let mut g = DiGraph::new();
        g.add_vertices(6);
        g.add_edge(v(0), v(2));
        g.add_edge(v(2), v(4));
        g.add_edge(v(1), v(3));
        g.add_edge(v(3), v(5));
        let r = vertex_disjoint_paths(
            &g,
            &[v(0), v(1)],
            &[v(4), v(5)],
            |_| true,
            |_| true,
            DisjointOptions::default(),
        );
        assert_eq!(r.count, 2);
        assert_eq!(r.paths.len(), 2);
        // verify vertex-disjointness
        let mut seen = std::collections::HashSet::new();
        for p in &r.paths {
            for u in p {
                assert!(seen.insert(*u), "vertex {u:?} reused");
            }
        }
    }

    #[test]
    fn bottleneck_vertex_limits_count() {
        // 0 -> 2, 1 -> 2, 2 -> 3, 2 -> 4: all paths pass through 2
        let mut g = DiGraph::new();
        g.add_vertices(5);
        g.add_edge(v(0), v(2));
        g.add_edge(v(1), v(2));
        g.add_edge(v(2), v(3));
        g.add_edge(v(2), v(4));
        let r = vertex_disjoint_paths(
            &g,
            &[v(0), v(1)],
            &[v(3), v(4)],
            |_| true,
            |_| true,
            DisjointOptions::default(),
        );
        assert_eq!(r.count, 1, "vertex 2 is a 1-cut");
    }

    #[test]
    fn filters_apply() {
        let g = diamond();
        // forbid vertex 1: path must go through 2
        let r = vertex_disjoint_paths(
            &g,
            &[v(0)],
            &[v(3)],
            |_| true,
            |x| x != v(1),
            DisjointOptions::default(),
        );
        assert_eq!(r.count, 1);
        assert!(r.paths[0].contains(&v(2)));
        // forbid both middle vertices: no path
        let r = vertex_disjoint_paths(
            &g,
            &[v(0)],
            &[v(3)],
            |_| true,
            |x| x != v(1) && x != v(2),
            DisjointOptions::default(),
        );
        assert_eq!(r.count, 0);
    }

    #[test]
    fn count_only_skips_paths() {
        let g = diamond();
        let r = vertex_disjoint_paths(
            &g,
            &[v(0)],
            &[v(3)],
            |_| true,
            |_| true,
            DisjointOptions {
                count_only: true,
                ..Default::default()
            },
        );
        assert_eq!(r.count, 1);
        assert!(r.paths.is_empty());
    }

    #[test]
    fn limit_stops_early() {
        let mut g = DiGraph::new();
        g.add_vertices(8);
        for i in 0..4 {
            g.add_edge(v(i), v(i + 4));
        }
        let sources: Vec<_> = (0..4).map(v).collect();
        let sinks: Vec<_> = (4..8).map(v).collect();
        let r = vertex_disjoint_paths(
            &g,
            &sources,
            &sinks,
            |_| true,
            |_| true,
            DisjointOptions {
                limit: Some(2),
                count_only: true,
                ..DisjointOptions::default()
            },
        );
        assert_eq!(r.count, 2);
    }

    #[test]
    fn reset_reuses_network_allocation() {
        let mut f = FlowNetwork::new(4);
        f.add_arc(0, 1, 2);
        f.add_arc(1, 3, 2);
        assert_eq!(f.max_flow(0, 3, None), 2);
        // shrink to a fresh 2-node problem
        f.reset(2);
        assert_eq!(f.num_nodes(), 2);
        f.add_arc(0, 1, 5);
        assert_eq!(f.max_flow(0, 1, None), 5);
        // grow again
        f.reset(3);
        f.add_arc(0, 1, 1);
        f.add_arc(1, 2, 3);
        assert_eq!(f.max_flow(0, 2, None), 1);
    }

    #[test]
    fn workspace_reuse_matches_fresh_calls() {
        let g = diamond();
        let mut fw = FlowWorkspace::new();
        for (vetoed, expect) in [(None, 1u32), (Some(v(1)), 1), (Some(v(3)), 0)] {
            let fresh = vertex_disjoint_paths(
                &g,
                &[v(0)],
                &[v(3)],
                |_| true,
                |x| Some(x) != vetoed,
                DisjointOptions::default(),
            );
            let reused = vertex_disjoint_paths_into(
                &g,
                &[v(0)],
                &[v(3)],
                |_| true,
                |x| Some(x) != vetoed,
                DisjointOptions::default(),
                &mut fw,
            );
            assert_eq!(fresh.count, expect);
            assert_eq!(fresh.count, reused.count);
            assert_eq!(fresh.paths, reused.paths);
        }
    }

    #[test]
    fn push_relabel_matches_dinic_on_classic_instances() {
        // same instances as the Dinic tests above
        let mut f = FlowNetwork::new(4);
        f.add_arc(0, 1, 2);
        f.add_arc(0, 2, 1);
        f.add_arc(1, 2, 1);
        f.add_arc(1, 3, 1);
        f.add_arc(2, 3, 2);
        assert_eq!(f.push_relabel(0, 3), 3);
        // bottleneck chain: flow 1, and the residual supports min-cut
        let mut f = FlowNetwork::new(4);
        let a = f.add_arc(0, 1, 3);
        let b = f.add_arc(1, 2, 1);
        let c = f.add_arc(2, 3, 3);
        assert_eq!(f.push_relabel(0, 3), 1);
        let side = f.min_cut_source_side(0);
        assert!(side[0] && side[1] && !side[2] && !side[3]);
        assert_eq!(f.flow_on(a), 1);
        assert_eq!(f.flow_on(b), 1);
        assert_eq!(f.flow_on(c), 1);
    }

    #[test]
    fn push_relabel_returns_excess_past_dead_ends() {
        // 0 -> 1 -> 3 carries the flow; 1 -> 2 is a dead end the preflow
        // may enter and must fully retreat from.
        let mut f = FlowNetwork::new(4);
        f.add_arc(0, 1, 5);
        let dead = f.add_arc(1, 2, 5);
        f.add_arc(1, 3, 2);
        assert_eq!(f.push_relabel(0, 3), 2);
        // arcs encode a *flow*: nothing stranded on the dead end
        assert_eq!(f.flow_on(dead), 0, "dead-end arc must carry no flow");
    }

    #[test]
    fn push_relabel_workspace_reuse_matches_fresh() {
        let mut prw = PrWorkspace::new();
        for n in [2usize, 5, 9] {
            let mut a = FlowNetwork::new(n);
            let mut b = FlowNetwork::new(n);
            for u in 0..n as u32 - 1 {
                for v in u + 1..n as u32 {
                    a.add_arc(u, v, (u + v) % 3 + 1);
                    b.add_arc(u, v, (u + v) % 3 + 1);
                }
            }
            let fresh = a.push_relabel(0, n as u32 - 1);
            let reused = b.push_relabel_into(0, n as u32 - 1, &mut prw);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn push_relabel_fuzz_matches_dinic() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut prw = PrWorkspace::new();
        for seed in 0..400u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.random_range(2..10usize);
            let m = rng.random_range(0..26usize);
            let mut f1 = FlowNetwork::new(n);
            let mut arcs = Vec::new();
            for _ in 0..m {
                let u = rng.random_range(0..n) as u32;
                let v = rng.random_range(0..n) as u32;
                if u == v {
                    continue;
                }
                let c = rng.random_range(1..5u32);
                f1.add_arc(u, v, c);
                arcs.push((u, v, c));
            }
            let mut f2 = f1.clone();
            let t = n as u32 - 1;
            let dinic = f1.max_flow(0, t, None);
            let pr = f2.push_relabel_into(0, t, &mut prw);
            assert_eq!(dinic, pr, "seed {seed} n {n} arcs {arcs:?}");
        }
    }

    #[test]
    fn kernel_dispatch_agrees_on_disjoint_paths() {
        let g = diamond();
        let mut fw = FlowWorkspace::new();
        for kernel in [FlowKernel::Auto, FlowKernel::Dinic, FlowKernel::PushRelabel] {
            let r = vertex_disjoint_paths_into(
                &g,
                &[v(0)],
                &[v(3)],
                |_| true,
                |_| true,
                DisjointOptions {
                    kernel,
                    ..Default::default()
                },
                &mut fw,
            );
            assert_eq!(r.count, 1, "{kernel:?}");
            assert_eq!(r.paths.len(), 1, "{kernel:?}");
            assert_eq!(r.paths[0].first(), Some(&v(0)));
            assert_eq!(r.paths[0].last(), Some(&v(3)));
        }
    }

    #[test]
    fn kernel_resolution_rules() {
        // limit forces Dinic whatever was asked
        for k in [FlowKernel::Auto, FlowKernel::Dinic, FlowKernel::PushRelabel] {
            assert_eq!(k.resolve(10, 1000, Some(1)), FlowKernel::Dinic);
        }
        // explicit kernels stick without a limit
        assert_eq!(FlowKernel::Dinic.resolve(10, 1000, None), FlowKernel::Dinic);
        assert_eq!(
            FlowKernel::PushRelabel.resolve(10, 10, None),
            FlowKernel::PushRelabel
        );
        // Auto follows the density model
        assert_eq!(FlowKernel::Auto.resolve(100, 100, None), FlowKernel::Dinic);
        assert_eq!(
            FlowKernel::Auto.resolve(100, 100 * PR_DENSITY, None),
            FlowKernel::PushRelabel
        );
    }

    #[test]
    fn source_equals_sink_trivial_path() {
        let mut g = DiGraph::new();
        g.add_vertices(1);
        let r = vertex_disjoint_paths(
            &g,
            &[v(0)],
            &[v(0)],
            |_| true,
            |_| true,
            DisjointOptions::default(),
        );
        assert_eq!(r.count, 1);
        assert_eq!(r.paths, vec![vec![v(0)]]);
    }
}
