//! Dinic's maximum-flow algorithm and vertex-disjoint path extraction.
//!
//! Vertex-disjoint paths are the currency of the paper: nonblocking,
//! rearrangeable and superconcentrator properties (§2) are all statements
//! about the existence of vertex-disjoint input→output path families, and
//! Menger's theorem (used in Lemma 3) converts their absence into vertex
//! cuts. We reduce vertex-disjointness to edge capacities by the standard
//! **vertex splitting** transform: each vertex `v` becomes `v_in → v_out`
//! with capacity 1, and each original edge `(u, w)` becomes
//! `u_out → w_in`.
//!
//! Dinic runs in O(E·√V) on unit-capacity networks, which is what every
//! use in this workspace is.

use crate::ids::{EdgeId, VertexId};
use crate::workspace::TraversalWorkspace;
use crate::Digraph;
use std::collections::VecDeque;

/// A flow arc in the residual network.
#[derive(Clone, Debug)]
struct Arc {
    to: u32,
    /// Index of the reverse arc in `arcs`.
    rev: u32,
    cap: u32,
}

/// Max-flow problem builder/solver (Dinic).
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    first: Vec<Vec<u32>>, // arc indices per node
    arcs: Vec<Arc>,
}

impl FlowNetwork {
    /// Creates a flow network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            first: vec![Vec::new(); n],
            arcs: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.first.len()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> u32 {
        self.first.push(Vec::new());
        (self.first.len() - 1) as u32
    }

    /// Clears the network down to `n` isolated nodes while keeping every
    /// allocation (arc list and per-node adjacency capacity). Monte Carlo
    /// loops rebuild the same-shaped flow problem thousands of times;
    /// after the first trial a `reset` + rebuild allocates nothing.
    pub fn reset(&mut self, n: usize) {
        self.arcs.clear();
        if self.first.len() > n {
            self.first.truncate(n);
        }
        for f in &mut self.first {
            f.clear();
        }
        if self.first.len() < n {
            self.first.resize_with(n, Vec::new);
        }
    }

    /// Adds a directed arc `u → v` with capacity `cap`; returns the arc
    /// index (its residual twin is `index + 1`).
    pub fn add_arc(&mut self, u: u32, v: u32, cap: u32) -> u32 {
        let idx = self.arcs.len() as u32;
        let rev = idx + 1;
        self.arcs.push(Arc { to: v, rev, cap });
        self.arcs.push(Arc {
            to: u,
            rev: idx,
            cap: 0,
        });
        self.first[u as usize].push(idx);
        self.first[v as usize].push(rev);
        idx
    }

    /// Flow currently pushed through arc `idx` (i.e. residual capacity of
    /// its twin).
    pub fn flow_on(&self, idx: u32) -> u32 {
        self.arcs[self.arcs[idx as usize].rev as usize].cap
    }

    /// Computes the maximum `s → t` flow, optionally stopping once `limit`
    /// units have been pushed (useful for "are there at least r disjoint
    /// paths?" questions).
    pub fn max_flow(&mut self, s: u32, t: u32, limit: Option<u32>) -> u32 {
        let mut ws = TraversalWorkspace::new();
        self.max_flow_into(s, t, limit, &mut ws)
    }

    /// [`Self::max_flow`] borrowing Dinic's level and arc-cursor buffers
    /// from a reusable [`TraversalWorkspace`] (zero allocations once the
    /// workspace has grown to the node count). Results are identical.
    pub fn max_flow_into(
        &mut self,
        s: u32,
        t: u32,
        limit: Option<u32>,
        ws: &mut TraversalWorkspace,
    ) -> u32 {
        assert_ne!(s, t, "source equals sink");
        let n = self.num_nodes();
        let limit = limit.unwrap_or(u32::MAX);
        let mut flow = 0u32;
        // Borrow the workspace's buffers: `dist` is the level array,
        // `parent` the DFS arc cursor, `queue` the BFS queue. Dinic
        // phases touch nearly every node, so plain per-phase fills beat
        // the epoch trick here (one load per level check in the DFS
        // instead of stamp + level); zero allocation is preserved
        // because the buffers live in the reusable workspace.
        ws.begin(n);
        while flow < limit {
            // BFS: build level graph.
            ws.dist[..n].fill(u32::MAX);
            ws.dist[s as usize] = 0;
            ws.queue.clear();
            ws.queue.push(VertexId(s));
            let mut head = 0;
            while head < ws.queue.len() {
                let u = ws.queue[head].0;
                head += 1;
                let du = ws.dist[u as usize];
                for &ai in &self.first[u as usize] {
                    let a = &self.arcs[ai as usize];
                    if a.cap > 0 && ws.dist[a.to as usize] == u32::MAX {
                        ws.dist[a.to as usize] = du + 1;
                        ws.queue.push(VertexId(a.to));
                    }
                }
            }
            if ws.dist[t as usize] == u32::MAX {
                break;
            }
            // DFS blocking flow.
            ws.parent[..n].fill(0);
            loop {
                let pushed = self.dfs(s, t, limit - flow, ws);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
                if flow >= limit {
                    break;
                }
            }
        }
        flow
    }

    fn dfs(&mut self, u: u32, t: u32, up_to: u32, ws: &mut TraversalWorkspace) -> u32 {
        if u == t {
            return up_to;
        }
        while (ws.parent[u as usize] as usize) < self.first[u as usize].len() {
            let ai = self.first[u as usize][ws.parent[u as usize] as usize];
            let (to, cap) = {
                let a = &self.arcs[ai as usize];
                (a.to, a.cap)
            };
            if cap > 0 && ws.dist[to as usize] == ws.dist[u as usize] + 1 {
                let pushed = self.dfs(to, t, up_to.min(cap), ws);
                if pushed > 0 {
                    self.arcs[ai as usize].cap -= pushed;
                    let rev = self.arcs[ai as usize].rev;
                    self.arcs[rev as usize].cap += pushed;
                    return pushed;
                }
            }
            ws.parent[u as usize] += 1;
        }
        0
    }

    /// Nodes reachable from `s` in the residual graph — the source side of
    /// a minimum cut after [`Self::max_flow`] has run.
    pub fn min_cut_source_side(&self, s: u32) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes()];
        let mut q = VecDeque::new();
        seen[s as usize] = true;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ai in &self.first[u as usize] {
                let a = &self.arcs[ai as usize];
                if a.cap > 0 && !seen[a.to as usize] {
                    seen[a.to as usize] = true;
                    q.push_back(a.to);
                }
            }
        }
        seen
    }
}

/// Result of a vertex-disjoint path computation.
#[derive(Clone, Debug)]
pub struct DisjointPaths {
    /// Number of vertex-disjoint paths found (the max-flow value).
    pub count: u32,
    /// The paths, each a sequence of original vertex ids from a source to
    /// a sink.
    pub paths: Vec<Vec<VertexId>>,
}

/// Options for [`vertex_disjoint_paths`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DisjointOptions {
    /// Stop as soon as this many paths are found.
    pub limit: Option<u32>,
    /// If `true`, only count the flow; skip path extraction.
    pub count_only: bool,
}

/// Reusable state for repeated vertex-disjoint-path queries: the flow
/// network (arc pool + adjacency), the Dinic traversal workspace and the
/// arc-index scratch tables. After the first call on a given graph shape,
/// [`vertex_disjoint_paths_into`] performs no heap allocation (path
/// extraction aside).
#[derive(Clone, Debug, Default)]
pub struct FlowWorkspace {
    fnet: FlowNetwork,
    ws: TraversalWorkspace,
    sink_arc: Vec<u32>,
    source_arc: Vec<u32>,
    graph_arc: Vec<u32>,
    next_vertex: Vec<VertexId>,
}

impl FlowWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Maximum family of vertex-disjoint directed paths from `sources` to
/// `sinks`, using only vertices with `vertex_ok` and edges with `edge_ok`.
///
/// Sources and sinks are themselves capacity-1 (each source starts at most
/// one path), matching the paper's definitions where paths must be
/// vertex-disjoint *including* endpoints. A vertex listed in both
/// `sources` and `sinks` yields a trivial length-0 path.
pub fn vertex_disjoint_paths<G: Digraph>(
    g: &G,
    sources: &[VertexId],
    sinks: &[VertexId],
    edge_ok: impl FnMut(EdgeId) -> bool,
    vertex_ok: impl FnMut(VertexId) -> bool,
    opts: DisjointOptions,
) -> DisjointPaths {
    let mut fw = FlowWorkspace::new();
    vertex_disjoint_paths_into(g, sources, sinks, edge_ok, vertex_ok, opts, &mut fw)
}

/// [`vertex_disjoint_paths`] borrowing all scratch state from a reusable
/// [`FlowWorkspace`] — the Monte Carlo hot path. Results are identical.
#[allow(clippy::too_many_arguments)]
pub fn vertex_disjoint_paths_into<G: Digraph>(
    g: &G,
    sources: &[VertexId],
    sinks: &[VertexId],
    mut edge_ok: impl FnMut(EdgeId) -> bool,
    mut vertex_ok: impl FnMut(VertexId) -> bool,
    opts: DisjointOptions,
    fw: &mut FlowWorkspace,
) -> DisjointPaths {
    let n = g.num_vertices();
    // Node layout: v_in = 2v, v_out = 2v+1, super-source = 2n, super-sink = 2n+1.
    let fnet = &mut fw.fnet;
    fnet.reset(2 * n + 2);
    let (ss, tt) = ((2 * n) as u32, (2 * n + 1) as u32);
    // split arcs enforce vertex capacity 1
    for vid in 0..n {
        let v = VertexId::from(vid);
        if vertex_ok(v) {
            fnet.add_arc(2 * vid as u32, 2 * vid as u32 + 1, 1);
        }
    }
    let sink_arc = &mut fw.sink_arc;
    sink_arc.clear();
    sink_arc.resize(n, u32::MAX);
    for &t in sinks {
        if sink_arc[t.index()] == u32::MAX {
            sink_arc[t.index()] = fnet.add_arc(2 * t.index() as u32 + 1, tt, 1);
        }
    }
    let source_arc = &mut fw.source_arc;
    source_arc.clear();
    source_arc.resize(n, u32::MAX);
    for &s in sources {
        if source_arc[s.index()] == u32::MAX {
            source_arc[s.index()] = fnet.add_arc(ss, 2 * s.index() as u32, 1);
        }
    }
    // graph arcs: u_out -> w_in
    let graph_arc = &mut fw.graph_arc;
    graph_arc.clear();
    graph_arc.resize(g.num_edges(), u32::MAX);
    for (eid, arc) in graph_arc.iter_mut().enumerate() {
        let e = EdgeId::from(eid);
        if !edge_ok(e) {
            continue;
        }
        let (t, h) = g.endpoints(e);
        *arc = fnet.add_arc(2 * t.index() as u32 + 1, 2 * h.index() as u32, 1);
    }

    let count = fnet.max_flow_into(ss, tt, opts.limit, &mut fw.ws);
    if opts.count_only {
        return DisjointPaths {
            count,
            paths: Vec::new(),
        };
    }

    // Extract paths by walking saturated graph arcs from each used source.
    // Unit vertex capacity ⇒ every vertex has at most one saturated
    // outgoing graph arc, so the walk is deterministic.
    let next_vertex = &mut fw.next_vertex;
    next_vertex.clear();
    next_vertex.resize(n, VertexId::NONE);
    for (eid, &ai) in graph_arc.iter().enumerate() {
        if ai != u32::MAX && fnet.flow_on(ai) > 0 {
            let (t, h) = g.endpoints(EdgeId::from(eid));
            debug_assert!(next_vertex[t.index()].is_none(), "vertex capacity violated");
            next_vertex[t.index()] = h;
        }
    }
    let mut paths = Vec::with_capacity(count as usize);
    for &s in sources {
        let sa = source_arc[s.index()];
        if sa == u32::MAX || fnet.flow_on(sa) == 0 {
            continue;
        }
        source_arc[s.index()] = u32::MAX; // don't start the same path twice
        let mut path = vec![s];
        let mut cur = s;
        loop {
            let sk = sink_arc[cur.index()];
            if sk != u32::MAX && fnet.flow_on(sk) > 0 {
                break; // the flow unit through `cur` terminates here
            }
            let nxt = next_vertex[cur.index()];
            assert!(
                !nxt.is_none() && path.len() <= n,
                "flow decomposition failed (non-DAG input?)"
            );
            next_vertex[cur.index()] = VertexId::NONE; // consume
            path.push(nxt);
            cur = nxt;
        }
        paths.push(path);
    }
    debug_assert_eq!(paths.len(), count as usize);
    DisjointPaths { count, paths }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::v;
    use crate::DiGraph;

    #[test]
    fn simple_max_flow() {
        // classic 4-node example
        let mut f = FlowNetwork::new(4);
        f.add_arc(0, 1, 2);
        f.add_arc(0, 2, 1);
        f.add_arc(1, 2, 1);
        f.add_arc(1, 3, 1);
        f.add_arc(2, 3, 2);
        assert_eq!(f.max_flow(0, 3, None), 3);
    }

    #[test]
    fn max_flow_respects_limit() {
        let mut f = FlowNetwork::new(2);
        for _ in 0..5 {
            f.add_arc(0, 1, 1);
        }
        assert_eq!(f.max_flow(0, 1, Some(3)), 3);
    }

    #[test]
    fn min_cut_matches_flow() {
        let mut f = FlowNetwork::new(4);
        let a = f.add_arc(0, 1, 3);
        let b = f.add_arc(1, 2, 1);
        let c = f.add_arc(2, 3, 3);
        let flow = f.max_flow(0, 3, None);
        assert_eq!(flow, 1);
        let side = f.min_cut_source_side(0);
        assert!(side[0] && side[1] && !side[2] && !side[3]);
        assert_eq!(f.flow_on(a), 1);
        assert_eq!(f.flow_on(b), 1);
        assert_eq!(f.flow_on(c), 1);
    }

    fn diamond() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(0), v(2));
        g.add_edge(v(1), v(3));
        g.add_edge(v(2), v(3));
        g
    }

    #[test]
    fn disjoint_paths_diamond() {
        let g = diamond();
        // 0 and 3 are both terminals: one path 0..3, vertex-disjointness
        // allows only one since both paths share 0 and 3.
        let r = vertex_disjoint_paths(
            &g,
            &[v(0)],
            &[v(3)],
            |_| true,
            |_| true,
            DisjointOptions::default(),
        );
        assert_eq!(r.count, 1);
        assert_eq!(r.paths.len(), 1);
        let p = &r.paths[0];
        assert_eq!(p.first(), Some(&v(0)));
        assert_eq!(p.last(), Some(&v(3)));
    }

    #[test]
    fn disjoint_paths_parallel_chains() {
        // two disjoint chains: 0->2->4, 1->3->5
        let mut g = DiGraph::new();
        g.add_vertices(6);
        g.add_edge(v(0), v(2));
        g.add_edge(v(2), v(4));
        g.add_edge(v(1), v(3));
        g.add_edge(v(3), v(5));
        let r = vertex_disjoint_paths(
            &g,
            &[v(0), v(1)],
            &[v(4), v(5)],
            |_| true,
            |_| true,
            DisjointOptions::default(),
        );
        assert_eq!(r.count, 2);
        assert_eq!(r.paths.len(), 2);
        // verify vertex-disjointness
        let mut seen = std::collections::HashSet::new();
        for p in &r.paths {
            for u in p {
                assert!(seen.insert(*u), "vertex {u:?} reused");
            }
        }
    }

    #[test]
    fn bottleneck_vertex_limits_count() {
        // 0 -> 2, 1 -> 2, 2 -> 3, 2 -> 4: all paths pass through 2
        let mut g = DiGraph::new();
        g.add_vertices(5);
        g.add_edge(v(0), v(2));
        g.add_edge(v(1), v(2));
        g.add_edge(v(2), v(3));
        g.add_edge(v(2), v(4));
        let r = vertex_disjoint_paths(
            &g,
            &[v(0), v(1)],
            &[v(3), v(4)],
            |_| true,
            |_| true,
            DisjointOptions::default(),
        );
        assert_eq!(r.count, 1, "vertex 2 is a 1-cut");
    }

    #[test]
    fn filters_apply() {
        let g = diamond();
        // forbid vertex 1: path must go through 2
        let r = vertex_disjoint_paths(
            &g,
            &[v(0)],
            &[v(3)],
            |_| true,
            |x| x != v(1),
            DisjointOptions::default(),
        );
        assert_eq!(r.count, 1);
        assert!(r.paths[0].contains(&v(2)));
        // forbid both middle vertices: no path
        let r = vertex_disjoint_paths(
            &g,
            &[v(0)],
            &[v(3)],
            |_| true,
            |x| x != v(1) && x != v(2),
            DisjointOptions::default(),
        );
        assert_eq!(r.count, 0);
    }

    #[test]
    fn count_only_skips_paths() {
        let g = diamond();
        let r = vertex_disjoint_paths(
            &g,
            &[v(0)],
            &[v(3)],
            |_| true,
            |_| true,
            DisjointOptions {
                count_only: true,
                ..Default::default()
            },
        );
        assert_eq!(r.count, 1);
        assert!(r.paths.is_empty());
    }

    #[test]
    fn limit_stops_early() {
        let mut g = DiGraph::new();
        g.add_vertices(8);
        for i in 0..4 {
            g.add_edge(v(i), v(i + 4));
        }
        let sources: Vec<_> = (0..4).map(v).collect();
        let sinks: Vec<_> = (4..8).map(v).collect();
        let r = vertex_disjoint_paths(
            &g,
            &sources,
            &sinks,
            |_| true,
            |_| true,
            DisjointOptions {
                limit: Some(2),
                count_only: true,
            },
        );
        assert_eq!(r.count, 2);
    }

    #[test]
    fn reset_reuses_network_allocation() {
        let mut f = FlowNetwork::new(4);
        f.add_arc(0, 1, 2);
        f.add_arc(1, 3, 2);
        assert_eq!(f.max_flow(0, 3, None), 2);
        // shrink to a fresh 2-node problem
        f.reset(2);
        assert_eq!(f.num_nodes(), 2);
        f.add_arc(0, 1, 5);
        assert_eq!(f.max_flow(0, 1, None), 5);
        // grow again
        f.reset(3);
        f.add_arc(0, 1, 1);
        f.add_arc(1, 2, 3);
        assert_eq!(f.max_flow(0, 2, None), 1);
    }

    #[test]
    fn workspace_reuse_matches_fresh_calls() {
        let g = diamond();
        let mut fw = FlowWorkspace::new();
        for (vetoed, expect) in [(None, 1u32), (Some(v(1)), 1), (Some(v(3)), 0)] {
            let fresh = vertex_disjoint_paths(
                &g,
                &[v(0)],
                &[v(3)],
                |_| true,
                |x| Some(x) != vetoed,
                DisjointOptions::default(),
            );
            let reused = vertex_disjoint_paths_into(
                &g,
                &[v(0)],
                &[v(3)],
                |_| true,
                |x| Some(x) != vetoed,
                DisjointOptions::default(),
                &mut fw,
            );
            assert_eq!(fresh.count, expect);
            assert_eq!(fresh.count, reused.count);
            assert_eq!(fresh.paths, reused.paths);
        }
    }

    #[test]
    fn source_equals_sink_trivial_path() {
        let mut g = DiGraph::new();
        g.add_vertices(1);
        let r = vertex_disjoint_paths(
            &g,
            &[v(0)],
            &[v(0)],
            |_| true,
            |_| true,
            DisjointOptions::default(),
        );
        assert_eq!(r.count, 1);
        assert_eq!(r.paths, vec![vec![v(0)]]);
    }
}
