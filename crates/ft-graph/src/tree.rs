//! Undirected tree/forest utilities for the §5 lower-bound machinery.
//!
//! Lemma 1 speaks of trees "in which every internal node has degree at
//! least 3"; its proof first replaces each internal node of degree `d > 3`
//! by a small degree-3 tree. Lemma 2 builds a forest of path segments and
//! contracts every *stretch* (maximal chain of degree-2 vertices) to a
//! single edge. Both transformations live here; direction of edges is
//! ignored throughout (trees come from undirected reasoning).

use crate::digraph::DiGraph;
use crate::ids::{EdgeId, VertexId};
use crate::traversal::{bfs, Direction};

/// Undirected adjacency list: for each vertex, the incident `(edge, other
/// endpoint)` pairs (self-loops appear once).
pub fn undirected_adjacency(g: &DiGraph) -> Vec<Vec<(EdgeId, VertexId)>> {
    let mut adj = vec![Vec::new(); g.num_vertices()];
    for (e, t, h) in g.edges() {
        adj[t.index()].push((e, h));
        if t != h {
            adj[h.index()].push((e, t));
        }
    }
    adj
}

/// Degree-1 vertices (leaves of a tree/forest). Isolated vertices are not
/// leaves.
pub fn leaves(g: &DiGraph) -> Vec<VertexId> {
    g.vertices().filter(|&u| g.degree(u) == 1).collect()
}

/// Internal (non-leaf, non-isolated) vertices.
pub fn internal_nodes(g: &DiGraph) -> Vec<VertexId> {
    g.vertices().filter(|&u| g.degree(u) >= 2).collect()
}

/// Whether the graph, viewed undirected, is a forest (no cycles).
pub fn is_forest(g: &DiGraph) -> bool {
    // A graph is a forest iff m = n - (number of components).
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut components = 0usize;
    for u in g.vertices() {
        if !seen[u.index()] {
            components += 1;
            let b = bfs(g, &[u], Direction::Undirected, |_| true, |_| true);
            for &w in &b.order {
                seen[w.index()] = true;
            }
        }
    }
    g.num_edges() == n - components
}

/// Whether the graph, viewed undirected, is a single tree.
pub fn is_tree(g: &DiGraph) -> bool {
    if g.num_vertices() == 0 {
        return false;
    }
    let b = bfs(g, &[VertexId(0)], Direction::Undirected, |_| true, |_| true);
    b.order.len() == g.num_vertices() && g.num_edges() == g.num_vertices() - 1
}

/// Whether every internal node has degree ≥ 3 — Lemma 1's hypothesis.
pub fn min_internal_degree_3(g: &DiGraph) -> bool {
    g.vertices().all(|u| {
        let d = g.degree(u);
        d <= 1 || d >= 3
    })
}

/// The degree-reduction step of Lemma 1's proof: every internal node of
/// degree `d > 3` is replaced by a chain of `d − 2` new degree-3 nodes.
/// Returns the new tree and `origin`, mapping each new vertex to the
/// original vertex it came from (leaves map to themselves).
///
/// Edge-disjoint leaf paths found in the reduced tree map to edge-disjoint
/// paths of no greater length in the original (contract the chains back).
pub fn reduce_to_degree_3(g: &DiGraph) -> (DiGraph, Vec<VertexId>) {
    let adj = undirected_adjacency(g);
    let mut out = DiGraph::new();
    let mut origin: Vec<VertexId> = Vec::new();
    // chain_nodes[v] = the new vertices representing original v, in order;
    // incident edge k of v attaches to chain slot min(k, d-3)… we assign:
    // node 0 gets incident edges {0,1}, node i gets edge i+1, last node
    // gets the final two edges. Simpler: distribute so each chain node has
    // at most 3 total degree (2 from chain links at interior).
    let mut slot_of: Vec<Vec<u32>> = Vec::with_capacity(g.num_vertices());
    for u in g.vertices() {
        let d = adj[u.index()].len();
        let k = if d > 3 { d - 2 } else { 1 };
        let first = out.add_vertices(k);
        for i in 0..k {
            origin.push(u);
            if i > 0 {
                out.add_edge(
                    VertexId::from(first.index() + i - 1),
                    VertexId::from(first.index() + i),
                );
            }
        }
        // slot assignment: chain interior nodes take 1 external edge each,
        // the two end nodes take 2 each (k≥2 case); k==1 takes all.
        let mut slots = Vec::with_capacity(d);
        if k == 1 {
            slots.extend(std::iter::repeat_n(first.0, d));
        } else {
            slots.push(first.0);
            slots.push(first.0);
            for i in 1..k - 1 {
                slots.push(first.0 + i as u32);
            }
            slots.push(first.0 + (k - 1) as u32);
            slots.push(first.0 + (k - 1) as u32);
        }
        debug_assert_eq!(slots.len(), d);
        slot_of.push(slots);
    }
    // connect original edges: each edge appears in both endpoint adjacency
    // lists; attach by each endpoint's local incidence index.
    let mut local_index = vec![0usize; g.num_vertices()];
    let mut new_end: Vec<[u32; 2]> = vec![[u32::MAX; 2]; g.num_edges()];
    for u in g.vertices() {
        for &(e, _) in &adj[u.index()] {
            let li = local_index[u.index()];
            local_index[u.index()] += 1;
            let slot = slot_of[u.index()][li];
            let ends = &mut new_end[e.index()];
            if ends[0] == u32::MAX {
                ends[0] = slot;
            } else {
                ends[1] = slot;
            }
        }
    }
    for ends in &new_end {
        out.add_edge(VertexId(ends[0]), VertexId(ends[1]));
    }
    (out, origin)
}

/// A contracted forest: stretches (maximal degree-2 chains) collapsed to
/// single edges.
#[derive(Clone, Debug)]
pub struct ContractedForest {
    /// The contracted graph; vertex ids index into `vertex_origin`.
    pub graph: DiGraph,
    /// For each contracted vertex, the original vertex it represents.
    pub vertex_origin: Vec<VertexId>,
    /// For each contracted edge, the original edges of its stretch, in
    /// order from the lower-id endpoint.
    pub edge_paths: Vec<Vec<EdgeId>>,
}

/// Contracts every stretch of the forest `g` (undirected view). Kept
/// vertices are exactly those with degree ≠ 2 (leaves, branch nodes,
/// isolated vertices).
///
/// # Panics
/// Panics if `g` is not a forest (a degree-2 cycle has no kept vertex).
pub fn contract_stretches(g: &DiGraph) -> ContractedForest {
    assert!(is_forest(g), "contract_stretches requires a forest");
    let adj = undirected_adjacency(g);
    let n = g.num_vertices();
    let mut new_id = vec![u32::MAX; n];
    let mut vertex_origin = Vec::new();
    let mut graph = DiGraph::new();
    for u in g.vertices() {
        if adj[u.index()].len() != 2 {
            new_id[u.index()] = graph.add_vertex().0;
            vertex_origin.push(u);
        }
    }
    let mut edge_paths = Vec::new();
    let mut used = vec![false; g.num_edges()];
    for u in g.vertices() {
        if new_id[u.index()] == u32::MAX {
            continue;
        }
        for &(e0, mut cur) in &adj[u.index()] {
            if used[e0.index()] {
                continue;
            }
            // walk the stretch starting along e0
            let mut stretch = vec![e0];
            used[e0.index()] = true;
            let mut prev_edge = e0;
            while new_id[cur.index()] == u32::MAX {
                // degree-2 vertex: take the other incident edge
                let &(enext, wnext) = adj[cur.index()]
                    .iter()
                    .find(|&&(e, _)| e != prev_edge)
                    .expect("degree-2 vertex must have a second edge");
                stretch.push(enext);
                used[enext.index()] = true;
                prev_edge = enext;
                cur = wnext;
            }
            graph.add_edge(VertexId(new_id[u.index()]), VertexId(new_id[cur.index()]));
            edge_paths.push(stretch);
        }
    }
    ContractedForest {
        graph,
        vertex_origin,
        edge_paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_lemma1_tree, random_tree, rng};
    use crate::ids::v;

    #[test]
    fn leaves_and_internals() {
        // star with 3 leaves
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(0), v(2));
        g.add_edge(v(0), v(3));
        assert_eq!(leaves(&g), vec![v(1), v(2), v(3)]);
        assert_eq!(internal_nodes(&g), vec![v(0)]);
        assert!(is_tree(&g));
        assert!(is_forest(&g));
        assert!(min_internal_degree_3(&g));
    }

    #[test]
    fn path_fails_min_degree() {
        let mut g = DiGraph::new();
        g.add_vertices(3);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        assert!(!min_internal_degree_3(&g));
        assert!(is_tree(&g));
    }

    #[test]
    fn forest_detection() {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(2), v(3));
        assert!(is_forest(&g));
        assert!(!is_tree(&g), "two components");
        g.add_edge(v(1), v(0)); // parallel edge = undirected cycle
        assert!(!is_forest(&g));
    }

    #[test]
    fn reduce_degree_3_star() {
        // star with 5 leaves: center degree 5 → chain of 3 new nodes
        let mut g = DiGraph::new();
        g.add_vertices(6);
        for i in 1..=5 {
            g.add_edge(v(0), v(i));
        }
        let (h, origin) = reduce_to_degree_3(&g);
        assert!(min_internal_degree_3(&h));
        assert!(is_tree(&h));
        assert_eq!(leaves(&h).len(), 5);
        // every leaf's origin is an original leaf
        for leaf in leaves(&h) {
            assert_ne!(origin[leaf.index()], v(0));
        }
        // degrees all ≤ 3
        for u in h.vertices() {
            assert!(h.degree(u) <= 3);
        }
    }

    #[test]
    fn reduce_degree_3_on_random_lemma1_trees() {
        let mut r = rng(11);
        for _ in 0..10 {
            let g = random_lemma1_tree(&mut r, 30);
            let l = leaves(&g).len();
            let (h, origin) = reduce_to_degree_3(&g);
            assert!(is_tree(&h), "reduction preserves tree-ness");
            assert!(min_internal_degree_3(&h));
            assert_eq!(leaves(&h).len(), l, "leaf count preserved");
            for u in h.vertices() {
                assert!(h.degree(u) <= 3);
                assert!(origin[u.index()].index() < g.num_vertices());
            }
        }
    }

    #[test]
    fn contract_path_to_single_edge() {
        // path 0-1-2-3: ends kept, middle contracted
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.add_edge(v(2), v(3));
        let c = contract_stretches(&g);
        assert_eq!(c.graph.num_vertices(), 2);
        assert_eq!(c.graph.num_edges(), 1);
        assert_eq!(c.edge_paths[0].len(), 3);
        assert_eq!(c.vertex_origin, vec![v(0), v(3)]);
    }

    #[test]
    fn contract_keeps_branch_nodes() {
        // Y with elongated arms: center 0; arms 0-1-2, 0-3, 0-4-5-6
        let mut g = DiGraph::new();
        g.add_vertices(7);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.add_edge(v(0), v(3));
        g.add_edge(v(0), v(4));
        g.add_edge(v(4), v(5));
        g.add_edge(v(5), v(6));
        let c = contract_stretches(&g);
        // kept: 0 (deg 3), 2, 3, 6 (leaves)
        assert_eq!(c.graph.num_vertices(), 4);
        assert_eq!(c.graph.num_edges(), 3);
        let total: usize = c.edge_paths.iter().map(|p| p.len()).sum();
        assert_eq!(total, g.num_edges(), "stretches partition the edges");
        assert!(min_internal_degree_3(&c.graph));
    }

    #[test]
    fn contract_random_trees_partitions_edges() {
        let mut r = rng(12);
        for _ in 0..10 {
            let g = random_tree(&mut r, 40);
            let c = contract_stretches(&g);
            let total: usize = c.edge_paths.iter().map(|p| p.len()).sum();
            assert_eq!(total, g.num_edges());
            assert!(is_forest(&c.graph));
            // contracted graph has no degree-2 vertices (except possibly
            // where two stretches meet a kept vertex — by construction none)
            for u in c.graph.vertices() {
                assert_ne!(c.graph.degree(u), 2, "degree-2 vertex survived");
            }
        }
    }

    #[test]
    fn contract_isolated_and_empty() {
        let mut g = DiGraph::new();
        g.add_vertices(2); // two isolated vertices
        let c = contract_stretches(&g);
        assert_eq!(c.graph.num_vertices(), 2);
        assert_eq!(c.graph.num_edges(), 0);
        let g = DiGraph::new();
        let c = contract_stretches(&g);
        assert_eq!(c.graph.num_vertices(), 0);
    }
}
