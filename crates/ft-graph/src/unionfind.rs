//! Union–find (disjoint set union) with path halving and union by size.
//!
//! Closed switch failures contract the two endpoints of an edge into a
//! single electrical node (§2 of the paper: "two vertices of the edge
//! contract to one"). A failure instance therefore induces a quotient of
//! the vertex set, which is exactly a union–find structure; the paper's
//! *shorting* events (Lemma 2, Lemma 7 — two terminals becoming one node)
//! are queries against it.

/// Disjoint-set forest over `0..len`.
///
/// Entries are epoch-stamped: an element whose stamp does not match the
/// current epoch is implicitly a singleton (its own root, size 1), so
/// [`UnionFind::reset`] is O(1) instead of O(n) — Monte Carlo trial
/// loops at the paper's tiny ε do a handful of unions per trial and
/// must not pay a full re-initialisation each time.
#[derive(Clone, Debug)]
pub struct UnionFind {
    /// Parent pointer; valid only when stamped with the current epoch
    /// (roots point at themselves).
    parent: Vec<u32>,
    /// Component size; valid only at stamped roots.
    size: Vec<u32>,
    /// `parent[x]`/`size[x]` are live iff `stamp[x] == epoch`.
    stamp: Vec<u32>,
    epoch: u32,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: vec![0; len],
            size: vec![0; len],
            stamp: vec![0; len],
            epoch: 1,
            components: len,
        }
    }

    /// Current parent of `x` (`x` itself while unstamped).
    #[inline(always)]
    fn load(&self, x: u32) -> u32 {
        if self.stamp[x as usize] == self.epoch {
            self.parent[x as usize]
        } else {
            x
        }
    }

    /// Writes `parent[x] = p`, stamping the entry live.
    #[inline(always)]
    fn store(&mut self, x: u32, p: u32) {
        self.stamp[x as usize] = self.epoch;
        self.parent[x as usize] = p;
    }

    /// Size of the set rooted at stamped-or-implicit root `r`.
    #[inline(always)]
    fn root_size(&self, r: u32) -> u32 {
        if self.stamp[r as usize] == self.epoch {
            self.size[r as usize]
        } else {
            1
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.load(x);
            if p == x {
                return x;
            }
            let gp = self.load(p);
            // path halving: skip over p (a no-op when p is the root)
            self.store(x, gp);
            x = gp;
        }
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (mut sa, mut sb) = (self.root_size(ra), self.root_size(rb));
        if sa < sb {
            std::mem::swap(&mut ra, &mut rb);
            std::mem::swap(&mut sa, &mut sb);
        }
        // rb stops being a root (its stale size is never read again)
        self.store(rb, ra);
        self.store(ra, ra);
        self.size[ra as usize] = sa + sb;
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.root_size(r) as usize
    }

    /// Compacts the quotient: returns `(class_of, num_classes)` where
    /// `class_of[x]` is a dense index in `0..num_classes`, equal for
    /// elements in the same set. Used to build contracted graphs.
    pub fn quotient(&mut self) -> (Vec<u32>, usize) {
        let n = self.len();
        let mut class_of = vec![u32::MAX; n];
        let mut next = 0u32;
        for x in 0..n as u32 {
            let r = self.find(x);
            if class_of[r as usize] == u32::MAX {
                class_of[r as usize] = next;
                next += 1;
            }
            class_of[x as usize] = class_of[r as usize];
        }
        (class_of, next as usize)
    }

    /// Resets every element to a singleton without reallocating —
    /// Monte Carlo loops reuse one structure across trials. O(1): the
    /// epoch bump invalidates every stamped entry (O(n) only on epoch
    /// wrap-around, once per 2³² resets).
    pub fn reset(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.components = self.parent.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rng;
    use rand::Rng;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.component_size(i), 1);
        }
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert_eq!(uf.num_components(), 3);
        assert_eq!(uf.component_size(1), 2);
        uf.union(2, 3);
        uf.union(0, 3);
        assert_eq!(uf.num_components(), 1);
        assert_eq!(uf.component_size(0), 4);
    }

    #[test]
    fn quotient_dense() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(2, 4);
        uf.union(1, 5);
        let (class_of, k) = uf.quotient();
        assert_eq!(k, 3);
        assert_eq!(class_of[0], class_of[2]);
        assert_eq!(class_of[2], class_of[4]);
        assert_eq!(class_of[1], class_of[5]);
        assert_ne!(class_of[0], class_of[1]);
        assert_ne!(class_of[0], class_of[3]);
        assert!(class_of.iter().all(|&c| (c as usize) < k));
    }

    #[test]
    fn reset_restores_singletons() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.reset();
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.same(0, 1));
    }

    #[test]
    fn empty() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.quotient().1, 0);
    }

    /// Reusing one structure across many reset cycles must behave like a
    /// fresh structure every time (the epoch-stamp invariant).
    #[test]
    fn reset_cycles_match_fresh_structures() {
        let mut r = rng(0xE90C);
        let n = 24;
        let mut reused = UnionFind::new(n);
        for _ in 0..50 {
            reused.reset();
            let mut fresh = UnionFind::new(n);
            for _ in 0..r.random_range(0..30usize) {
                let a = r.random_range(0..n) as u32;
                let b = r.random_range(0..n) as u32;
                assert_eq!(fresh.union(a, b), reused.union(a, b));
            }
            assert_eq!(fresh.num_components(), reused.num_components());
            for x in 0..n as u32 {
                assert_eq!(fresh.component_size(x), reused.component_size(x));
                for y in 0..n as u32 {
                    assert_eq!(fresh.same(x, y), reused.same(x, y));
                }
            }
            assert_eq!(fresh.quotient(), reused.quotient());
        }
    }

    /// Cross-check against naive connectivity on random union sequences.
    #[test]
    fn matches_naive_connectivity() {
        let mut r = rng(0x0F0F);
        for _ in 0..20 {
            let n = r.random_range(2..30usize);
            let ops = r.random_range(0..40usize);
            let mut uf = UnionFind::new(n);
            // naive: adjacency + BFS
            let mut adj = vec![Vec::new(); n];
            for _ in 0..ops {
                let a = r.random_range(0..n);
                let b = r.random_range(0..n);
                uf.union(a as u32, b as u32);
                adj[a].push(b);
                adj[b].push(a);
            }
            let reach = |s: usize| {
                let mut seen = vec![false; n];
                let mut stack = vec![s];
                seen[s] = true;
                while let Some(u) = stack.pop() {
                    for &w in &adj[u] {
                        if !seen[w] {
                            seen[w] = true;
                            stack.push(w);
                        }
                    }
                }
                seen
            };
            for a in 0..n {
                let seen = reach(a);
                for (b, &sb) in seen.iter().enumerate() {
                    assert_eq!(uf.same(a as u32, b as u32), sb, "n={n} a={a} b={b}");
                }
            }
        }
    }
}
