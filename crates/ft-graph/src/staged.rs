//! Staged networks: digraphs with terminals and stage (level) structure.
//!
//! Every network in the paper is *staged*: vertices are arranged in
//! stages 0..w, inputs live on stage 0, outputs on the last stage, and
//! edges point from a stage to a strictly later one (in the constructions,
//! always the adjacent one). [`StagedNetwork`] carries that structure and
//! the input/output terminal lists; it is the common currency between the
//! classical networks (Beneš, Clos, grids) and the fault-tolerant
//! construction 𝒩 of §6.

use crate::csr::Csr;
use crate::digraph::DiGraph;
use crate::ids::{EdgeId, VertexId};
use crate::traversal;
use crate::Digraph;
use std::ops::Range;
use std::sync::OnceLock;

/// A directed, staged network with distinguished input/output terminals.
#[derive(Clone, Debug)]
pub struct StagedNetwork {
    graph: DiGraph,
    /// Contiguous vertex-id range of each stage.
    stages: Vec<Range<u32>>,
    inputs: Vec<VertexId>,
    outputs: Vec<VertexId>,
    /// Lazily built CSR snapshot shared by all traversal-heavy callers.
    csr: OnceLock<Csr>,
}

impl StagedNetwork {
    /// The underlying digraph.
    #[inline]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// A frozen [`Csr`] snapshot of the graph, built on first use and
    /// cached. Monte Carlo hot paths (routing, access, certification)
    /// traverse this instead of the cache-hostile `Vec<Vec>` builder
    /// adjacency; ids are identical to [`Self::graph`].
    pub fn csr(&self) -> &Csr {
        self.csr.get_or_init(|| Csr::from_digraph(&self.graph))
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The vertex-id range of stage `i`.
    pub fn stage_range(&self, i: usize) -> Range<u32> {
        self.stages[i].clone()
    }

    /// Vertices of stage `i`.
    pub fn stage_vertices(&self, i: usize) -> impl ExactSizeIterator<Item = VertexId> + '_ {
        self.stages[i].clone().map(VertexId)
    }

    /// The stage containing vertex `u`.
    ///
    /// Stage ranges are contiguous but — after [`Self::mirror`] — not
    /// necessarily in ascending id order, so this binary-searches a
    /// sorted view built on the fly from the (at most two) monotone runs.
    pub fn stage_of(&self, u: VertexId) -> usize {
        let cmp = |r: &Range<u32>| {
            if u.0 < r.start {
                std::cmp::Ordering::Greater
            } else if u.0 >= r.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        };
        // Ascending order (fresh networks) or descending (mirrors).
        let ascending = self.stages.len() < 2 || self.stages[0].start <= self.stages[1].start;
        let found = if ascending {
            self.stages.binary_search_by(cmp)
        } else {
            self.stages.binary_search_by(|r| cmp(r).reverse())
        };
        match found {
            Ok(i) => i,
            Err(_) => panic!("vertex {u:?} not in any stage"),
        }
    }

    /// Input terminals (on stage 0).
    pub fn inputs(&self) -> &[VertexId] {
        &self.inputs
    }

    /// Output terminals (on the last stage).
    pub fn outputs(&self) -> &[VertexId] {
        &self.outputs
    }

    /// Network **size** in the paper's sense: the number of switches
    /// (edges).
    pub fn size(&self) -> usize {
        self.graph.num_edges()
    }

    /// Network **depth** in the paper's sense: the largest number of edges
    /// on any input → output path.
    pub fn depth(&self) -> u32 {
        traversal::dag_depth_between(&self.graph, &self.inputs, &self.outputs).unwrap_or(0)
    }

    /// The **mirror image** of the network (§6): inputs and outputs
    /// exchanged and every edge reversed. Stage `i` becomes stage
    /// `w−1−i`; vertex ids are preserved.
    pub fn mirror(&self) -> StagedNetwork {
        let mut stages = self.stages.clone();
        stages.reverse();
        StagedNetwork {
            graph: self.graph.reversed(),
            stages,
            inputs: self.outputs.clone(),
            outputs: self.inputs.clone(),
            csr: OnceLock::new(),
        }
    }

    /// Validates staging invariants: every edge goes from some stage to a
    /// strictly later one; inputs are in stage 0; outputs in the last
    /// stage. Returns a human-readable violation if any.
    pub fn validate(&self) -> Result<(), String> {
        let total: u32 = self.stages.iter().map(|r| r.end - r.start).sum();
        if total as usize != self.graph.num_vertices() {
            return Err(format!(
                "stages cover {total} vertices, graph has {}",
                self.graph.num_vertices()
            ));
        }
        for w in self.stages.windows(2) {
            if w[0].end != w[1].start && w[1].end != w[0].start {
                return Err("stages not contiguous".into());
            }
        }
        for (e, t, h) in self.graph.edges() {
            let (st, sh) = (self.stage_of(t), self.stage_of(h));
            if st >= sh {
                return Err(format!("edge {e:?} goes {st} -> {sh} (not forward)"));
            }
        }
        for &i in &self.inputs {
            if self.stage_of(i) != 0 {
                return Err(format!("input {i:?} not in stage 0"));
            }
        }
        for &o in &self.outputs {
            if self.stage_of(o) != self.num_stages() - 1 {
                return Err(format!("output {o:?} not in last stage"));
            }
        }
        Ok(())
    }
}

impl Digraph for StagedNetwork {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }
    #[inline]
    fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
    #[inline]
    fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.graph.endpoints(e)
    }
    #[inline]
    fn out_edge_slice(&self, v: VertexId) -> &[EdgeId] {
        self.graph.out_edges(v)
    }
    #[inline]
    fn in_edge_slice(&self, v: VertexId) -> &[EdgeId] {
        self.graph.in_edges(v)
    }
}

/// Builder for [`StagedNetwork`].
#[derive(Clone, Debug, Default)]
pub struct StagedBuilder {
    graph: DiGraph,
    stages: Vec<Range<u32>>,
    inputs: Vec<VertexId>,
    outputs: Vec<VertexId>,
}

impl StagedBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage of `count` vertices; returns its vertex-id range.
    pub fn add_stage(&mut self, count: usize) -> Range<u32> {
        let first = self.graph.add_vertices(count);
        let range = first.0..(first.0 + count as u32);
        self.stages.push(range.clone());
        range
    }

    /// Adds a switch `tail → head`.
    ///
    /// Stage ordering is validated at [`Self::finish`] time, not here.
    pub fn add_edge(&mut self, tail: VertexId, head: VertexId) -> EdgeId {
        self.graph.add_edge(tail, head)
    }

    /// Declares the input terminals (must be stage-0 vertices).
    pub fn set_inputs(&mut self, inputs: Vec<VertexId>) {
        self.inputs = inputs;
    }

    /// Declares the output terminals (must be last-stage vertices).
    pub fn set_outputs(&mut self, outputs: Vec<VertexId>) {
        self.outputs = outputs;
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Finalizes and validates the network.
    ///
    /// # Panics
    /// Panics if the staging invariants are violated (this is a
    /// construction bug, not an input condition).
    pub fn finish(self) -> StagedNetwork {
        let net = self.finish_unvalidated();
        if let Err(e) = net.validate() {
            panic!("invalid staged network: {e}");
        }
        net
    }

    /// Finalizes without validation (for very large paper-exact networks
    /// where the O(E) validation pass is separately covered by tests).
    pub fn finish_unvalidated(self) -> StagedNetwork {
        StagedNetwork {
            graph: self.graph,
            stages: self.stages,
            inputs: self.inputs,
            outputs: self.outputs,
            csr: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::v;

    /// Two-stage complete bipartite (crossbar) 2×2.
    fn crossbar() -> StagedNetwork {
        let mut b = StagedBuilder::new();
        let ins = b.add_stage(2);
        let outs = b.add_stage(2);
        for i in ins.clone() {
            for o in outs.clone() {
                b.add_edge(VertexId(i), VertexId(o));
            }
        }
        b.set_inputs(ins.map(VertexId).collect());
        b.set_outputs(outs.map(VertexId).collect());
        b.finish()
    }

    #[test]
    fn crossbar_shape() {
        let net = crossbar();
        assert_eq!(net.num_stages(), 2);
        assert_eq!(net.size(), 4);
        assert_eq!(net.depth(), 1);
        assert_eq!(net.inputs().len(), 2);
        assert_eq!(net.outputs().len(), 2);
        assert_eq!(net.stage_of(v(0)), 0);
        assert_eq!(net.stage_of(v(3)), 1);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn cached_csr_matches_graph() {
        let net = crossbar();
        let c = net.csr();
        assert_eq!(c.num_vertices(), net.graph().num_vertices());
        assert_eq!(c.num_edges(), net.graph().num_edges());
        // second call returns the same cached snapshot
        assert!(std::ptr::eq(c, net.csr()));
        for e in net.graph().edge_ids() {
            assert_eq!(c.endpoints(e), net.graph().endpoints(e));
        }
    }

    #[test]
    fn stage_vertices_iterate() {
        let net = crossbar();
        let s0: Vec<_> = net.stage_vertices(0).collect();
        assert_eq!(s0, vec![v(0), v(1)]);
        let s1: Vec<_> = net.stage_vertices(1).collect();
        assert_eq!(s1, vec![v(2), v(3)]);
    }

    #[test]
    fn mirror_swaps_terminals() {
        let net = crossbar();
        let m = net.mirror();
        assert_eq!(m.inputs(), net.outputs());
        assert_eq!(m.outputs(), net.inputs());
        assert_eq!(m.size(), net.size());
        assert_eq!(m.depth(), 1);
        assert!(m.validate().is_ok());
        // edge direction reversed
        assert!(m.graph().has_edge(v(2), v(0)));
        assert!(!m.graph().has_edge(v(0), v(2)));
    }

    #[test]
    #[should_panic(expected = "not forward")]
    fn backward_edge_rejected() {
        let mut b = StagedBuilder::new();
        let s0 = b.add_stage(1);
        let s1 = b.add_stage(1);
        b.add_edge(VertexId(s1.start), VertexId(s0.start));
        b.set_inputs(vec![VertexId(s0.start)]);
        b.set_outputs(vec![VertexId(s1.start)]);
        b.finish();
    }

    #[test]
    #[should_panic(expected = "not in stage 0")]
    fn misplaced_input_rejected() {
        let mut b = StagedBuilder::new();
        let _s0 = b.add_stage(1);
        let s1 = b.add_stage(1);
        b.set_inputs(vec![VertexId(s1.start)]);
        b.set_outputs(vec![VertexId(s1.start)]);
        b.finish();
    }

    #[test]
    fn skip_stage_edges_allowed() {
        // an edge jumping over a stage is still "forward"
        let mut b = StagedBuilder::new();
        let s0 = b.add_stage(1);
        let _s1 = b.add_stage(1);
        let s2 = b.add_stage(1);
        b.add_edge(VertexId(s0.start), VertexId(s2.start));
        b.set_inputs(vec![VertexId(s0.start)]);
        b.set_outputs(vec![VertexId(s2.start)]);
        let net = b.finish();
        assert_eq!(net.depth(), 1);
        assert_eq!(net.num_stages(), 3);
    }

    #[test]
    fn depth_between_terminals_only() {
        // long chain off to the side should not count: depth is measured
        // input → output
        let mut b = StagedBuilder::new();
        let s0 = b.add_stage(2);
        let s1 = b.add_stage(2);
        let s2 = b.add_stage(2);
        // terminal path: v0 -> v2 -> v4 (depth 2)
        b.add_edge(VertexId(s0.start), VertexId(s1.start));
        b.add_edge(VertexId(s1.start), VertexId(s2.start));
        // side path among non-terminals: v1 -> v3, v3 -> v5
        b.add_edge(VertexId(s0.start + 1), VertexId(s1.start + 1));
        b.add_edge(VertexId(s1.start + 1), VertexId(s2.start + 1));
        b.set_inputs(vec![VertexId(s0.start)]);
        b.set_outputs(vec![VertexId(s2.start)]);
        let net = b.finish();
        assert_eq!(net.depth(), 2);
    }
}
