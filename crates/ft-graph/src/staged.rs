//! Staged networks: digraphs with terminals and stage (level) structure.
//!
//! Every network in the paper is *staged*: vertices are arranged in
//! stages 0..w, inputs live on stage 0, outputs on the last stage, and
//! edges point from a stage to a strictly later one (in the constructions,
//! always the adjacent one). [`StagedNetwork`] carries that structure and
//! the input/output terminal lists; it is the common currency between the
//! classical networks (Beneš, Clos, grids) and the fault-tolerant
//! construction 𝒩 of §6.

use crate::csr::Csr;
use crate::digraph::DiGraph;
use crate::ids::{EdgeId, VertexId};
use crate::traversal;
use crate::Digraph;
use std::ops::Range;
use std::sync::OnceLock;

/// A directed, staged network with distinguished input/output terminals.
#[derive(Clone, Debug)]
pub struct StagedNetwork {
    graph: DiGraph,
    /// Contiguous vertex-id range of each stage.
    stages: Vec<Range<u32>>,
    inputs: Vec<VertexId>,
    outputs: Vec<VertexId>,
    /// Lazily built CSR snapshot shared by all traversal-heavy callers.
    csr: OnceLock<Csr>,
    /// Lazily built per-vertex stage table + unit-staged flag.
    staging: OnceLock<(Vec<u32>, bool)>,
    /// Lazily computed backward-level budget for the bidirectional
    /// point-to-point search (see [`Self::backward_budget`]).
    bwd_budget: OnceLock<u32>,
    /// Lazily chosen max-flow kernel for disjoint-path queries on this
    /// topology (see [`Self::flow_kernel`]).
    flow_kernel: OnceLock<crate::maxflow::FlowKernel>,
}

impl StagedNetwork {
    /// The underlying digraph.
    #[inline]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// A frozen [`Csr`] snapshot of the graph, built on first use and
    /// cached. Monte Carlo hot paths (routing, access, certification)
    /// traverse this instead of the cache-hostile `Vec<Vec>` builder
    /// adjacency; ids are identical to [`Self::graph`].
    pub fn csr(&self) -> &Csr {
        self.csr.get_or_init(|| Csr::from_digraph(&self.graph))
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The vertex-id range of stage `i`.
    pub fn stage_range(&self, i: usize) -> Range<u32> {
        self.stages[i].clone()
    }

    /// Vertices of stage `i`.
    pub fn stage_vertices(&self, i: usize) -> impl ExactSizeIterator<Item = VertexId> + '_ {
        self.stages[i].clone().map(VertexId)
    }

    /// The stage containing vertex `u`.
    ///
    /// Stage ranges are contiguous but — after [`Self::mirror`] — not
    /// necessarily in ascending id order, so this binary-searches a
    /// sorted view built on the fly from the (at most two) monotone runs.
    ///
    /// # Panics
    /// Panics if `u` lies outside every stage range. The stages of a
    /// built network partition `0..size()`, so this can only happen
    /// with a vertex id from a *different* network — a caller bug, not
    /// a recoverable condition, which is why it stays a panic rather
    /// than a `Result`.
    pub fn stage_of(&self, u: VertexId) -> usize {
        let cmp = |r: &Range<u32>| {
            if u.0 < r.start {
                std::cmp::Ordering::Greater
            } else if u.0 >= r.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        };
        // Ascending order (fresh networks) or descending (mirrors).
        let ascending = self.stages.len() < 2 || self.stages[0].start <= self.stages[1].start;
        let found = if ascending {
            self.stages.binary_search_by(cmp)
        } else {
            self.stages.binary_search_by(|r| cmp(r).reverse())
        };
        match found {
            Ok(i) => i,
            Err(_) => panic!("vertex {u:?} not in any stage"),
        }
    }

    /// Flat per-vertex stage table: `stage_table()[v.index()]` equals
    /// [`Self::stage_of`]`(v)` as a `u32`. Built on first use and
    /// cached; hot paths (the router's bidirectional search, the
    /// simulation engine's per-stage occupancy accounting) index this
    /// instead of binary-searching the stage ranges per vertex.
    pub fn stage_table(&self) -> &[u32] {
        &self.staging().0
    }

    /// Whether every switch joins *adjacent* stages
    /// (`stage(head) == stage(tail) + 1` for every edge). All of the
    /// paper's constructions are unit-staged; [`StagedBuilder`] also
    /// admits stage-skipping edges, for which this returns `false`.
    ///
    /// Unit-stagedness is what licenses the stage-aware bidirectional
    /// path search ([`crate::traversal::bibfs_into`]): in a unit-staged
    /// network a vertex at stage `s` can reach a last-stage target only
    /// through exactly `L − s` hops, so a backward cone computed level
    /// by level is *complete* per stage and can prune the forward
    /// search without changing which path it finds.
    pub fn is_unit_staged(&self) -> bool {
        self.staging().1
    }

    /// Backward-level budget for the bidirectional point-to-point
    /// search ([`crate::traversal::bibfs_into`]) on this topology,
    /// computed once and cached.
    ///
    /// The budget is a *pure function of the network* — derived from a
    /// cost model evaluated on the all-idle topology, never from any
    /// router's busy state — so every search uses the same value, and
    /// it cannot change search results anyway (only work; exactness
    /// holds for every budget). The model measures, per stage, the
    /// forward flood cost from a representative input (Σ out-degree)
    /// and the backward cone cost/benefit from a representative output
    /// (Σ in-degree to grow the cone, Σ out-degree as the cone-pruned
    /// forward cost), then picks the meet stage minimising the total.
    /// Because the model ignores early exit and busy-state shrinkage —
    /// both of which erode marginal pruning gains — backward levels are
    /// spent only when the modelled win is decisive (≥ a third):
    /// fabrics with narrow output cones (Clos egress groups, butterfly
    /// sub-trees) get a deep meet, while expander-like fabrics whose
    /// cones saturate a stage in a hop or two (the paper's 𝒩 at ν = 1)
    /// get 0, i.e. an early-exit forward search.
    pub fn backward_budget(&self) -> u32 {
        *self.bwd_budget.get_or_init(|| {
            let (Some(&input), Some(&output)) = (self.inputs.first(), self.outputs.first()) else {
                return 0;
            };
            let csr = self.csr();
            let stage_tab = self.stage_table();
            let ns = self.num_stages();
            let s0 = stage_tab[input.index()] as usize;
            let sl = stage_tab[output.index()] as usize;
            if sl <= s0 {
                return 0;
            }
            // Per-stage scan costs of the two structural floods.
            let mut ws = crate::workspace::TraversalWorkspace::new();
            let mut fcost = vec![0u64; ns];
            traversal::bfs_into(
                csr,
                &[input],
                traversal::Direction::Forward,
                |_| true,
                |_| true,
                &mut ws,
            );
            for &v in ws.order() {
                fcost[stage_tab[v.index()] as usize] += csr.out_degree(v) as u64;
            }
            let (mut bin, mut bout) = (vec![0u64; ns], vec![0u64; ns]);
            traversal::bfs_into(
                csr,
                &[output],
                traversal::Direction::Backward,
                |_| true,
                |_| true,
                &mut ws,
            );
            for &v in ws.order() {
                let k = stage_tab[v.index()] as usize;
                bin[k] += csr.in_degree(v) as u64;
                bout[k] += csr.out_degree(v) as u64;
            }
            // Meet stage minimising: unpruned forward below the meet +
            // cone-pruned forward above it + cone growth.
            let (mut best_m, mut best) = (sl, u64::MAX);
            let mut at_sl = 0;
            for m in (s0 + 1)..=sl {
                let unpruned: u64 = fcost[s0..m].iter().sum();
                let pruned: u64 = bout[m..sl].iter().sum();
                let backward: u64 = bin[m + 1..=sl].iter().sum();
                let total = unpruned + pruned + backward;
                if total < best {
                    best = total;
                    best_m = m;
                }
                if m == sl {
                    at_sl = total;
                }
            }
            if 3 * best > 2 * at_sl {
                best_m = sl;
            }
            (sl - best_m) as u32
        })
    }

    /// The max-flow kernel disjoint-path queries on this topology should
    /// run, computed once from the same static cost-model discipline as
    /// [`Self::backward_budget`] — a pure function of the network, never
    /// of any query's busy state, so every caller agrees and the choice
    /// cannot change results (the kernels are equivalent; only work
    /// differs).
    ///
    /// The model mirrors [`crate::maxflow::FlowKernel::resolve`] on the
    /// vertex-split flow instance every disjoint-path query builds:
    /// `2V + 2` flow nodes and `V + E + terminals` forward arcs. Dense
    /// fabrics (the ν ≥ 2 𝒩 repair flows, high-degree expanders) resolve
    /// to push-relabel; sparse ones (Beneš, butterflies, Clos at small
    /// `n`) keep Dinic.
    pub fn flow_kernel(&self) -> crate::maxflow::FlowKernel {
        *self.flow_kernel.get_or_init(|| {
            let nodes = 2 * self.graph.num_vertices() + 2;
            let arcs = self.graph.num_vertices()
                + self.graph.num_edges()
                + self.inputs.len()
                + self.outputs.len();
            crate::maxflow::FlowKernel::Auto.resolve(nodes, arcs, None)
        })
    }

    fn staging(&self) -> &(Vec<u32>, bool) {
        self.staging.get_or_init(|| {
            let mut table = vec![0u32; self.graph.num_vertices()];
            for (s, range) in self.stages.iter().enumerate() {
                for v in range.clone() {
                    table[v as usize] = s as u32;
                }
            }
            let unit = self
                .graph
                .edges()
                .all(|(_, t, h)| table[h.index()] == table[t.index()] + 1);
            (table, unit)
        })
    }

    /// Input terminals (on stage 0).
    pub fn inputs(&self) -> &[VertexId] {
        &self.inputs
    }

    /// Output terminals (on the last stage).
    pub fn outputs(&self) -> &[VertexId] {
        &self.outputs
    }

    /// Network **size** in the paper's sense: the number of switches
    /// (edges).
    pub fn size(&self) -> usize {
        self.graph.num_edges()
    }

    /// Network **depth** in the paper's sense: the largest number of edges
    /// on any input → output path.
    pub fn depth(&self) -> u32 {
        traversal::dag_depth_between(&self.graph, &self.inputs, &self.outputs).unwrap_or(0)
    }

    /// The **mirror image** of the network (§6): inputs and outputs
    /// exchanged and every edge reversed. Stage `i` becomes stage
    /// `w−1−i`; vertex ids are preserved.
    pub fn mirror(&self) -> StagedNetwork {
        let mut stages = self.stages.clone();
        stages.reverse();
        StagedNetwork {
            graph: self.graph.reversed(),
            stages,
            inputs: self.outputs.clone(),
            outputs: self.inputs.clone(),
            csr: OnceLock::new(),
            staging: OnceLock::new(),
            bwd_budget: OnceLock::new(),
            flow_kernel: OnceLock::new(),
        }
    }

    /// Validates staging invariants: every edge goes from some stage to a
    /// strictly later one; inputs are in stage 0; outputs in the last
    /// stage. Returns a human-readable violation if any.
    pub fn validate(&self) -> Result<(), String> {
        let total: u32 = self.stages.iter().map(|r| r.end - r.start).sum();
        if total as usize != self.graph.num_vertices() {
            return Err(format!(
                "stages cover {total} vertices, graph has {}",
                self.graph.num_vertices()
            ));
        }
        for w in self.stages.windows(2) {
            if w[0].end != w[1].start && w[1].end != w[0].start {
                return Err("stages not contiguous".into());
            }
        }
        for (e, t, h) in self.graph.edges() {
            let (st, sh) = (self.stage_of(t), self.stage_of(h));
            if st >= sh {
                return Err(format!("edge {e:?} goes {st} -> {sh} (not forward)"));
            }
        }
        for &i in &self.inputs {
            if self.stage_of(i) != 0 {
                return Err(format!("input {i:?} not in stage 0"));
            }
        }
        for &o in &self.outputs {
            if self.stage_of(o) != self.num_stages() - 1 {
                return Err(format!("output {o:?} not in last stage"));
            }
        }
        Ok(())
    }
}

impl Digraph for StagedNetwork {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }
    #[inline]
    fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
    #[inline]
    fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.graph.endpoints(e)
    }
    #[inline]
    fn out_edge_slice(&self, v: VertexId) -> &[EdgeId] {
        self.graph.out_edges(v)
    }
    #[inline]
    fn in_edge_slice(&self, v: VertexId) -> &[EdgeId] {
        self.graph.in_edges(v)
    }
}

/// Builder for [`StagedNetwork`].
#[derive(Clone, Debug, Default)]
pub struct StagedBuilder {
    graph: DiGraph,
    stages: Vec<Range<u32>>,
    inputs: Vec<VertexId>,
    outputs: Vec<VertexId>,
}

impl StagedBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage of `count` vertices; returns its vertex-id range.
    pub fn add_stage(&mut self, count: usize) -> Range<u32> {
        let first = self.graph.add_vertices(count);
        let range = first.0..(first.0 + count as u32);
        self.stages.push(range.clone());
        range
    }

    /// Adds a switch `tail → head`.
    ///
    /// Stage ordering is validated at [`Self::finish`] time, not here.
    pub fn add_edge(&mut self, tail: VertexId, head: VertexId) -> EdgeId {
        self.graph.add_edge(tail, head)
    }

    /// Declares the input terminals (must be stage-0 vertices).
    pub fn set_inputs(&mut self, inputs: Vec<VertexId>) {
        self.inputs = inputs;
    }

    /// Declares the output terminals (must be last-stage vertices).
    pub fn set_outputs(&mut self, outputs: Vec<VertexId>) {
        self.outputs = outputs;
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Finalizes and validates the network.
    ///
    /// # Panics
    /// Panics if the staging invariants are violated (this is a
    /// construction bug, not an input condition).
    pub fn finish(self) -> StagedNetwork {
        let net = self.finish_unvalidated();
        if let Err(e) = net.validate() {
            panic!("invalid staged network: {e}");
        }
        net
    }

    /// Finalizes without validation (for very large paper-exact networks
    /// where the O(E) validation pass is separately covered by tests).
    pub fn finish_unvalidated(self) -> StagedNetwork {
        StagedNetwork {
            graph: self.graph,
            stages: self.stages,
            inputs: self.inputs,
            outputs: self.outputs,
            csr: OnceLock::new(),
            staging: OnceLock::new(),
            bwd_budget: OnceLock::new(),
            flow_kernel: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::v;

    /// Two-stage complete bipartite (crossbar) 2×2.
    fn crossbar() -> StagedNetwork {
        let mut b = StagedBuilder::new();
        let ins = b.add_stage(2);
        let outs = b.add_stage(2);
        for i in ins.clone() {
            for o in outs.clone() {
                b.add_edge(VertexId(i), VertexId(o));
            }
        }
        b.set_inputs(ins.map(VertexId).collect());
        b.set_outputs(outs.map(VertexId).collect());
        b.finish()
    }

    #[test]
    fn crossbar_shape() {
        let net = crossbar();
        assert_eq!(net.num_stages(), 2);
        assert_eq!(net.size(), 4);
        assert_eq!(net.depth(), 1);
        assert_eq!(net.inputs().len(), 2);
        assert_eq!(net.outputs().len(), 2);
        assert_eq!(net.stage_of(v(0)), 0);
        assert_eq!(net.stage_of(v(3)), 1);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn cached_csr_matches_graph() {
        let net = crossbar();
        let c = net.csr();
        assert_eq!(c.num_vertices(), net.graph().num_vertices());
        assert_eq!(c.num_edges(), net.graph().num_edges());
        // second call returns the same cached snapshot
        assert!(std::ptr::eq(c, net.csr()));
        for e in net.graph().edge_ids() {
            assert_eq!(c.endpoints(e), net.graph().endpoints(e));
        }
    }

    #[test]
    fn stage_vertices_iterate() {
        let net = crossbar();
        let s0: Vec<_> = net.stage_vertices(0).collect();
        assert_eq!(s0, vec![v(0), v(1)]);
        let s1: Vec<_> = net.stage_vertices(1).collect();
        assert_eq!(s1, vec![v(2), v(3)]);
    }

    #[test]
    fn mirror_swaps_terminals() {
        let net = crossbar();
        let m = net.mirror();
        assert_eq!(m.inputs(), net.outputs());
        assert_eq!(m.outputs(), net.inputs());
        assert_eq!(m.size(), net.size());
        assert_eq!(m.depth(), 1);
        assert!(m.validate().is_ok());
        // edge direction reversed
        assert!(m.graph().has_edge(v(2), v(0)));
        assert!(!m.graph().has_edge(v(0), v(2)));
    }

    #[test]
    #[should_panic(expected = "not forward")]
    fn backward_edge_rejected() {
        let mut b = StagedBuilder::new();
        let s0 = b.add_stage(1);
        let s1 = b.add_stage(1);
        b.add_edge(VertexId(s1.start), VertexId(s0.start));
        b.set_inputs(vec![VertexId(s0.start)]);
        b.set_outputs(vec![VertexId(s1.start)]);
        b.finish();
    }

    #[test]
    #[should_panic(expected = "not in stage 0")]
    fn misplaced_input_rejected() {
        let mut b = StagedBuilder::new();
        let _s0 = b.add_stage(1);
        let s1 = b.add_stage(1);
        b.set_inputs(vec![VertexId(s1.start)]);
        b.set_outputs(vec![VertexId(s1.start)]);
        b.finish();
    }

    #[test]
    fn stage_table_matches_stage_of_and_unit_flag() {
        let net = crossbar();
        for (u, &s) in net.stage_table().iter().enumerate() {
            assert_eq!(s as usize, net.stage_of(v(u as u32)));
        }
        assert!(net.is_unit_staged());
        // mirrors keep both properties (stage ranges reversed)
        let m = net.mirror();
        for (u, &s) in m.stage_table().iter().enumerate() {
            assert_eq!(s as usize, m.stage_of(v(u as u32)));
        }
        assert!(m.is_unit_staged());
    }

    #[test]
    fn flow_kernel_choice_is_cached_and_matches_the_cost_model() {
        let net = crossbar();
        let expect = crate::maxflow::FlowKernel::Auto.resolve(
            2 * net.graph().num_vertices() + 2,
            net.graph().num_vertices() + net.graph().num_edges() + 4,
            None,
        );
        assert_eq!(net.flow_kernel(), expect);
        // a 2×2 crossbar's split instance is sparse: Dinic
        assert_eq!(net.flow_kernel(), crate::maxflow::FlowKernel::Dinic);
        // mirrors recompute (and agree — the model is direction-blind)
        assert_eq!(net.mirror().flow_kernel(), net.flow_kernel());
    }

    #[test]
    fn skip_stage_edges_allowed() {
        // an edge jumping over a stage is still "forward"
        let mut b = StagedBuilder::new();
        let s0 = b.add_stage(1);
        let _s1 = b.add_stage(1);
        let s2 = b.add_stage(1);
        b.add_edge(VertexId(s0.start), VertexId(s2.start));
        b.set_inputs(vec![VertexId(s0.start)]);
        b.set_outputs(vec![VertexId(s2.start)]);
        let net = b.finish();
        assert_eq!(net.depth(), 1);
        assert_eq!(net.num_stages(), 3);
        assert!(!net.is_unit_staged(), "skip edge breaks unit staging");
    }

    #[test]
    fn depth_between_terminals_only() {
        // long chain off to the side should not count: depth is measured
        // input → output
        let mut b = StagedBuilder::new();
        let s0 = b.add_stage(2);
        let s1 = b.add_stage(2);
        let s2 = b.add_stage(2);
        // terminal path: v0 -> v2 -> v4 (depth 2)
        b.add_edge(VertexId(s0.start), VertexId(s1.start));
        b.add_edge(VertexId(s1.start), VertexId(s2.start));
        // side path among non-terminals: v1 -> v3, v3 -> v5
        b.add_edge(VertexId(s0.start + 1), VertexId(s1.start + 1));
        b.add_edge(VertexId(s1.start + 1), VertexId(s2.start + 1));
        b.set_inputs(vec![VertexId(s0.start)]);
        b.set_outputs(vec![VertexId(s2.start)]);
        let net = b.finish();
        assert_eq!(net.depth(), 2);
    }
}
