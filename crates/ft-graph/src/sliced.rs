//! Lane-parallel (bit-sliced) reachability over one topology.
//!
//! Monte Carlo reliability experiments evaluate the *same* graph under
//! many independent failure instances. The scalar pipeline runs one
//! [`crate::traversal::bfs_into`] per instance; this module transposes
//! the problem: **64 instances ride in the 64 bits of a machine word**,
//! and one fixpoint sweep answers reachability for all of them at once.
//!
//! Per vertex the workspace holds a single `u64` — bit *i* set means
//! "vertex reached in lane *i*" — and an edge contributes
//! `reached[tail] & edge_lanes(e) & vertex_lanes(head)` to its head:
//! propagation is pure AND/OR word algebra, so the per-edge cost is a
//! few ALU ops *for all 64 trials together* instead of a branchy
//! visit per trial. Lanes are fully independent; the result is the
//! per-lane reachable set a scalar BFS with that lane's filters would
//! compute (pinned by proptests in `ft-graph/tests/proptests.rs`).
//!
//! The sweep is a worklist fixpoint, not a level-order BFS: a vertex
//! re-enters the queue when *new lanes* arrive, which on a staged DAG
//! degenerates to the usual stage-by-stage frontier walk. Only
//! *membership* is computed — there are no per-lane distances or parent
//! edges, because the Monte Carlo consumers (open/short verdicts, pair
//! blocking) need verdict bits only. Lanes that need a full per-instance
//! answer (an actual path, disjoint-path counts) fall back to the scalar
//! kernels on an unpacked instance — see
//! `ft_failure::montecarlo::mc_sliced_event_probability_parallel`.
//!
//! Buffers are epoch-stamped exactly like
//! [`TraversalWorkspace`](crate::workspace::TraversalWorkspace): a
//! reset is O(1), a sweep costs O(vertices
//! touched × incident edges), and one workspace serves domains of
//! different sizes back to back.

use crate::ids::{EdgeId, VertexId};
use crate::traversal::Direction;
use crate::workspace::KernelStats;
use crate::Digraph;

/// Number of Monte Carlo lanes carried per machine word.
pub const LANES: usize = 64;

/// Reusable buffers for lane-parallel reachability sweeps.
///
/// After [`sliced_reach_into`] the workspace *is* the result: query it
/// with [`reached_lanes`](Self::reached_lanes) /
/// [`reached`](Self::reached). The result stays valid until the next
/// sweep that borrows the workspace.
#[derive(Clone, Debug, Default)]
pub struct SlicedWorkspace {
    /// Current epoch; entry `i` of `reached`/`gate` is live iff the
    /// matching stamp equals it.
    epoch: u32,
    stamp: Vec<u32>,
    /// Per-vertex lane word: bit `i` set ⇔ reached in lane `i`.
    reached: Vec<u64>,
    /// Cached `vertex_lanes` gate, computed once per touched vertex.
    gate_stamp: Vec<u32>,
    gate: Vec<u64>,
    /// In-queue stamp (equals `epoch` while the vertex waits in the
    /// worklist; demoted on pop so new lanes can re-enqueue it).
    inq: Vec<u32>,
    queue: Vec<VertexId>,
    /// Deterministic work counters (resets, worklist pops, lane bits).
    stats: KernelStats,
}

impl SlicedWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new sweep over a domain of `n` vertices: grows buffers
    /// if needed and invalidates every previous stamp in O(1) (O(n)
    /// only on epoch wrap-around, once per 2³² sweeps).
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.reached.resize(n, 0);
            self.gate_stamp.resize(n, 0);
            self.gate.resize(n, 0);
            self.inq.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.gate_stamp.fill(0);
            self.inq.fill(0);
            self.epoch = 1;
        }
        self.stats.epoch_resets += 1;
        self.queue.clear();
    }

    /// The workspace's accumulated [`KernelStats`] (sweeps started,
    /// worklist pops, lane bits decided).
    #[inline]
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Zeroes the accumulated [`KernelStats`].
    pub fn reset_stats(&mut self) {
        self.stats = KernelStats::default();
    }

    /// Lane word of `v` after the last sweep: bit `i` set ⇔ `v` was
    /// reached in lane `i`.
    #[inline]
    pub fn reached_lanes(&self, v: VertexId) -> u64 {
        if self.stamp[v.index()] == self.epoch {
            self.reached[v.index()]
        } else {
            0
        }
    }

    /// Whether `v` was reached in lane `lane` by the last sweep.
    #[inline]
    pub fn reached(&self, v: VertexId, lane: usize) -> bool {
        debug_assert!(lane < LANES);
        (self.reached_lanes(v) >> lane) & 1 != 0
    }

    #[inline(always)]
    fn gate_of(&mut self, v: VertexId, vertex_lanes: &mut impl FnMut(VertexId) -> u64) -> u64 {
        let i = v.index();
        if self.gate_stamp[i] == self.epoch {
            self.gate[i]
        } else {
            let g = vertex_lanes(v);
            self.gate_stamp[i] = self.epoch;
            self.gate[i] = g;
            g
        }
    }

    /// Merges `add` lanes into `w`'s reached word, enqueueing `w` if it
    /// gained lanes and is not already waiting.
    #[inline(always)]
    fn absorb(&mut self, w: VertexId, add: u64) {
        let i = w.index();
        let cur = if self.stamp[i] == self.epoch {
            self.reached[i]
        } else {
            0
        };
        let new = add & !cur;
        if new == 0 {
            return;
        }
        self.stats.sliced_lane_decisions += u64::from(new.count_ones());
        self.stamp[i] = self.epoch;
        self.reached[i] = cur | new;
        if self.inq[i] != self.epoch {
            self.inq[i] = self.epoch;
            self.queue.push(w);
        }
    }
}

/// Lane-parallel reachability: computes, for each of the 64 lanes, the
/// set of vertices reachable from that lane's sources through edges and
/// vertices enabled in that lane.
///
/// * `sources` — `(vertex, lanes)` pairs: vertex `v` is a source in
///   exactly the lanes set in the word (different lanes may start from
///   different vertices — the pair-blocking estimator exploits this).
///   Sources are gated by `vertex_lanes` like everything else.
/// * `edge_lanes(e)` — lanes in which edge `e` is traversable (e.g. the
///   complement of the open-failure plane, or the closed plane alone
///   for shorting checks). Must be pure: it may be consulted several
///   times per edge, in an unspecified order.
/// * `vertex_lanes(v)` — lanes in which vertex `v` may be visited
///   (e.g. packed alive masks). Consulted **once** per touched vertex
///   per sweep (the workspace caches it), so it may be moderately
///   expensive; it must still be pure.
///
/// Direction semantics match [`crate::traversal::bfs_into`]:
/// `Forward` follows tail → head, `Backward` head → tail, `Undirected`
/// ignores orientation. The verdict for lane `i` equals the scalar
/// BFS reachable-set under filters `edge_ok = bit i of edge_lanes`,
/// `vertex_ok = bit i of vertex_lanes` — the transpose-equivalence
/// contract the proptests pin. Only membership is produced; no
/// distances, parents or discovery order.
pub fn sliced_reach_into<G: Digraph>(
    g: &G,
    sources: &[(VertexId, u64)],
    dir: Direction,
    mut edge_lanes: impl FnMut(EdgeId) -> u64,
    mut vertex_lanes: impl FnMut(VertexId) -> u64,
    ws: &mut SlicedWorkspace,
) {
    ws.begin(g.num_vertices());
    for &(s, lanes) in sources {
        if lanes == 0 {
            continue;
        }
        let gate = ws.gate_of(s, &mut vertex_lanes);
        ws.absorb(s, lanes & gate);
    }
    let mut head = 0;
    while head < ws.queue.len() {
        let u = ws.queue[head];
        head += 1;
        ws.stats.sliced_pops += 1;
        // demote the in-queue stamp so late-arriving lanes re-enqueue
        ws.inq[u.index()] = ws.epoch.wrapping_sub(1);
        let ru = ws.reached[u.index()];
        let sides: [(&[EdgeId], Option<&[VertexId]>); 2] = match dir {
            Direction::Forward => [(g.out_edge_slice(u), g.out_head_slice(u)), (&[], None)],
            Direction::Backward => [(g.in_edge_slice(u), g.in_tail_slice(u)), (&[], None)],
            Direction::Undirected => [
                (g.out_edge_slice(u), g.out_head_slice(u)),
                (g.in_edge_slice(u), g.in_tail_slice(u)),
            ],
        };
        for (edges, others) in sides {
            match others {
                // CSR fast path: far endpoint off the parallel slice.
                Some(others) => {
                    for (&e, &w) in edges.iter().zip(others) {
                        let m = ru & edge_lanes(e);
                        if m == 0 {
                            continue;
                        }
                        let add = m & ws.gate_of(w, &mut vertex_lanes);
                        if add != 0 {
                            ws.absorb(w, add);
                        }
                    }
                }
                None => {
                    for &e in edges {
                        let m = ru & edge_lanes(e);
                        if m == 0 {
                            continue;
                        }
                        let w = g.other_endpoint(e, u);
                        let add = m & ws.gate_of(w, &mut vertex_lanes);
                        if add != 0 {
                            ws.absorb(w, add);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{e, v};
    use crate::traversal::{bfs_into, Direction};
    use crate::{Csr, DiGraph, TraversalWorkspace};

    fn diamond() -> Csr {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(0), v(2));
        g.add_edge(v(1), v(3));
        g.add_edge(v(2), v(3));
        Csr::from_digraph(&g)
    }

    /// Scalar reference for one lane.
    fn scalar_reach(
        g: &Csr,
        sources: &[(VertexId, u64)],
        dir: Direction,
        edge_lanes: impl Fn(EdgeId) -> u64,
        vertex_lanes: impl Fn(VertexId) -> u64,
        lane: usize,
    ) -> Vec<bool> {
        let srcs: Vec<VertexId> = sources
            .iter()
            .filter(|&&(_, l)| (l >> lane) & 1 != 0)
            .map(|&(s, _)| s)
            .collect();
        let mut ws = TraversalWorkspace::new();
        bfs_into(
            g,
            &srcs,
            dir,
            |e| (edge_lanes(e) >> lane) & 1 != 0,
            |u| (vertex_lanes(u) >> lane) & 1 != 0,
            &mut ws,
        );
        (0..g.num_vertices())
            .map(|u| ws.reached(v(u as u32)))
            .collect()
    }

    #[test]
    fn all_lanes_unfiltered_reach_everything() {
        let g = diamond();
        let mut ws = SlicedWorkspace::new();
        sliced_reach_into(
            &g,
            &[(v(0), !0)],
            Direction::Forward,
            |_| !0,
            |_| !0,
            &mut ws,
        );
        for u in 0..4 {
            assert_eq!(ws.reached_lanes(v(u)), !0, "vertex {u}");
        }
        assert!(ws.reached(v(3), 0) && ws.reached(v(3), 63));
    }

    #[test]
    fn per_lane_edge_filters_diverge() {
        let g = diamond();
        // lane 0: all edges; lane 1: top path only; lane 2: no edges
        let el = |x: EdgeId| -> u64 {
            let top = x == e(0) || x == e(2);
            1 | ((top as u64) << 1)
        };
        let mut ws = SlicedWorkspace::new();
        sliced_reach_into(
            &g,
            &[(v(0), 0b111)],
            Direction::Forward,
            el,
            |_| !0,
            &mut ws,
        );
        assert_eq!(ws.reached_lanes(v(0)), 0b111);
        assert_eq!(ws.reached_lanes(v(1)), 0b011);
        assert_eq!(ws.reached_lanes(v(2)), 0b001);
        assert_eq!(ws.reached_lanes(v(3)), 0b011);
        for lane in 0..3 {
            let want = scalar_reach(&g, &[(v(0), 0b111)], Direction::Forward, el, |_| !0, lane);
            for u in 0..4u32 {
                assert_eq!(
                    ws.reached(v(u), lane),
                    want[u as usize],
                    "lane {lane} v {u}"
                );
            }
        }
    }

    #[test]
    fn vertex_gates_and_per_lane_sources() {
        let g = diamond();
        // lane 0 starts at v0, lane 1 starts at v1; v2 is dead in lane 0
        let sources = [(v(0), 0b01), (v(1), 0b10)];
        let vl = |u: VertexId| -> u64 {
            if u == v(2) {
                0b10
            } else {
                !0
            }
        };
        let mut ws = SlicedWorkspace::new();
        sliced_reach_into(&g, &sources, Direction::Forward, |_| !0, vl, &mut ws);
        assert_eq!(ws.reached_lanes(v(0)), 0b01);
        assert_eq!(ws.reached_lanes(v(1)), 0b11);
        assert_eq!(ws.reached_lanes(v(2)), 0b00); // dead lane 0; unreachable lane 1
        assert_eq!(ws.reached_lanes(v(3)), 0b11);
        for lane in 0..2 {
            let want = scalar_reach(&g, &sources, Direction::Forward, |_| !0, vl, lane);
            for u in 0..4u32 {
                assert_eq!(
                    ws.reached(v(u), lane),
                    want[u as usize],
                    "lane {lane} v {u}"
                );
            }
        }
    }

    #[test]
    fn backward_and_undirected_match_scalar() {
        let g = diamond();
        let el = |x: EdgeId| -> u64 {
            if x == e(3) {
                0b01
            } else {
                !0
            }
        };
        for dir in [Direction::Backward, Direction::Undirected] {
            let mut ws = SlicedWorkspace::new();
            sliced_reach_into(&g, &[(v(3), 0b11)], dir, el, |_| !0, &mut ws);
            for lane in 0..2 {
                let want = scalar_reach(&g, &[(v(3), 0b11)], dir, el, |_| !0, lane);
                for u in 0..4u32 {
                    assert_eq!(
                        ws.reached(v(u), lane),
                        want[u as usize],
                        "{dir:?} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn epoch_reset_invalidates_previous_sweep() {
        let g = diamond();
        let mut ws = SlicedWorkspace::new();
        sliced_reach_into(
            &g,
            &[(v(0), !0)],
            Direction::Forward,
            |_| !0,
            |_| !0,
            &mut ws,
        );
        assert_eq!(ws.reached_lanes(v(3)), !0);
        sliced_reach_into(
            &g,
            &[(v(3), 1)],
            Direction::Forward,
            |_| !0,
            |_| !0,
            &mut ws,
        );
        assert_eq!(ws.reached_lanes(v(0)), 0);
        assert_eq!(ws.reached_lanes(v(3)), 1);
    }

    #[test]
    fn source_gated_by_vertex_lanes() {
        let g = diamond();
        let mut ws = SlicedWorkspace::new();
        sliced_reach_into(
            &g,
            &[(v(0), !0)],
            Direction::Forward,
            |_| !0,
            |u| if u == v(0) { 0 } else { !0 },
            &mut ws,
        );
        for u in 0..4 {
            assert_eq!(ws.reached_lanes(v(u)), 0, "vertex {u}");
        }
    }

    #[test]
    fn lanes_arriving_late_requeue_a_popped_vertex() {
        // path 0→1→2 plus a long detour 0→3→4→1 open only in lane 1:
        // vertex 1 is popped with lane 0 first, lane 1 arrives later and
        // must still propagate to 2.
        let mut g = DiGraph::new();
        g.add_vertices(5);
        g.add_edge(v(0), v(1)); // e0 lane 0 only
        g.add_edge(v(1), v(2)); // e1 both
        g.add_edge(v(0), v(3)); // e2 lane 1 only
        g.add_edge(v(3), v(4)); // e3 lane 1 only
        g.add_edge(v(4), v(1)); // e4 lane 1 only
        let c = Csr::from_digraph(&g);
        let el = |x: EdgeId| -> u64 {
            match x.index() {
                0 => 0b01,
                1 => 0b11,
                _ => 0b10,
            }
        };
        let mut ws = SlicedWorkspace::new();
        sliced_reach_into(&c, &[(v(0), 0b11)], Direction::Forward, el, |_| !0, &mut ws);
        assert_eq!(ws.reached_lanes(v(1)), 0b11);
        assert_eq!(ws.reached_lanes(v(2)), 0b11);
        assert_eq!(ws.reached_lanes(v(4)), 0b10);
    }
}
