//! Frozen compressed-sparse-row (CSR) snapshot of a digraph.
//!
//! Monte Carlo experiments traverse the same topology millions of times
//! with different failure instances; [`Csr`] stores adjacency in two flat
//! arrays (out- and in-) so BFS over a 10⁷-edge network touches contiguous
//! memory instead of chasing one heap allocation per vertex.

use crate::digraph::DiGraph;
use crate::ids::{EdgeId, VertexId};
use crate::Digraph;

/// Immutable CSR adjacency (both directions) for a [`DiGraph`].
#[derive(Clone, Debug)]
pub struct Csr {
    /// `out_start[v]..out_start[v+1]` indexes `out_list`.
    out_start: Vec<u32>,
    /// Edge ids leaving each vertex, grouped by tail.
    out_list: Vec<EdgeId>,
    /// Heads of the edges in `out_list`, parallel to it — BFS reads the
    /// neighbour directly instead of chasing `edges[e]`.
    out_head: Vec<VertexId>,
    in_start: Vec<u32>,
    in_list: Vec<EdgeId>,
    /// Tails of the edges in `in_list`, parallel to it.
    in_tail: Vec<VertexId>,
    /// `(tail, head)` per edge, shared with the builder graph.
    edges: Vec<(VertexId, VertexId)>,
}

impl Csr {
    /// Freezes `g` into CSR form. Edge and vertex ids are preserved.
    ///
    /// # Panics
    /// Panics if the graph has `u32::MAX` or more edges or vertices: the
    /// CSR offsets are `u32`, and a larger graph would silently truncate
    /// (the id sentinels [`EdgeId::NONE`]/[`VertexId::NONE`] also reserve
    /// `u32::MAX`).
    pub fn from_digraph(g: &DiGraph) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        assert!(
            m < u32::MAX as usize,
            "Csr::from_digraph: {m} edges overflow the u32 CSR offsets \
             (max {} edges)",
            u32::MAX - 1
        );
        assert!(
            n < u32::MAX as usize,
            "Csr::from_digraph: {n} vertices overflow the u32 vertex ids \
             (max {} vertices)",
            u32::MAX - 1
        );
        let mut out_start = vec![0u32; n + 1];
        let mut in_start = vec![0u32; n + 1];
        let mut edges = Vec::with_capacity(m);
        for (_, t, h) in g.edges() {
            out_start[t.index() + 1] += 1;
            in_start[h.index() + 1] += 1;
            edges.push((t, h));
        }
        for i in 0..n {
            out_start[i + 1] += out_start[i];
            in_start[i + 1] += in_start[i];
        }
        let mut out_list = vec![EdgeId::NONE; m];
        let mut out_head = vec![VertexId::NONE; m];
        let mut in_list = vec![EdgeId::NONE; m];
        let mut in_tail = vec![VertexId::NONE; m];
        let mut out_fill = out_start.clone();
        let mut in_fill = in_start.clone();
        for (e, &(t, h)) in edges.iter().enumerate() {
            let e = EdgeId::from(e);
            let oi = out_fill[t.index()] as usize;
            out_list[oi] = e;
            out_head[oi] = h;
            out_fill[t.index()] += 1;
            let ii = in_fill[h.index()] as usize;
            in_list[ii] = e;
            in_tail[ii] = t;
            in_fill[h.index()] += 1;
        }
        Csr {
            out_start,
            out_list,
            out_head,
            in_start,
            in_list,
            in_tail,
            edges,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_start.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `(tail, head)` of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.index()]
    }

    /// Tail of edge `e`.
    #[inline]
    pub fn tail(&self, e: EdgeId) -> VertexId {
        self.edges[e.index()].0
    }

    /// Head of edge `e`.
    #[inline]
    pub fn head(&self, e: EdgeId) -> VertexId {
        self.edges[e.index()].1
    }

    /// Edges leaving `v`.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        let lo = self.out_start[v.index()] as usize;
        let hi = self.out_start[v.index() + 1] as usize;
        &self.out_list[lo..hi]
    }

    /// Edges entering `v`.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        let lo = self.in_start[v.index()] as usize;
        let hi = self.in_start[v.index() + 1] as usize;
        &self.in_list[lo..hi]
    }

    /// Heads of the edges leaving `v`, parallel to [`Self::out_edges`].
    #[inline]
    pub fn out_heads(&self, v: VertexId) -> &[VertexId] {
        let lo = self.out_start[v.index()] as usize;
        let hi = self.out_start[v.index() + 1] as usize;
        &self.out_head[lo..hi]
    }

    /// Tails of the edges entering `v`, parallel to [`Self::in_edges`].
    #[inline]
    pub fn in_tails(&self, v: VertexId) -> &[VertexId] {
        let lo = self.in_start[v.index()] as usize;
        let hi = self.in_start[v.index() + 1] as usize;
        &self.in_tail[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_edges(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_edges(v).len()
    }

    /// Total (undirected) degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> + '_ {
        (0..self.num_vertices()).map(VertexId::from)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.num_edges()).map(EdgeId::from)
    }
}

impl From<&DiGraph> for Csr {
    fn from(g: &DiGraph) -> Self {
        Csr::from_digraph(g)
    }
}

impl Digraph for Csr {
    #[inline]
    fn num_vertices(&self) -> usize {
        Csr::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        Csr::num_edges(self)
    }

    #[inline]
    fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        Csr::endpoints(self, e)
    }

    #[inline]
    fn out_edge_slice(&self, v: VertexId) -> &[EdgeId] {
        Csr::out_edges(self, v)
    }

    #[inline]
    fn in_edge_slice(&self, v: VertexId) -> &[EdgeId] {
        Csr::in_edges(self, v)
    }

    #[inline]
    fn out_head_slice(&self, v: VertexId) -> Option<&[VertexId]> {
        Some(Csr::out_heads(self, v))
    }

    #[inline]
    fn in_tail_slice(&self, v: VertexId) -> Option<&[VertexId]> {
        Some(Csr::in_tails(self, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rng;
    use crate::ids::v;
    use rand::Rng;

    fn diamond() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(0), v(2));
        g.add_edge(v(1), v(3));
        g.add_edge(v(2), v(3));
        g
    }

    #[test]
    fn csr_matches_digraph_on_diamond() {
        let g = diamond();
        let c = Csr::from_digraph(&g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        for u in g.vertices() {
            let mut a: Vec<_> = g.out_edges(u).to_vec();
            let mut b: Vec<_> = c.out_edges(u).to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b, "out edges of {u:?}");
            let mut a: Vec<_> = g.in_edges(u).to_vec();
            let mut b: Vec<_> = c.in_edges(u).to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b, "in edges of {u:?}");
        }
        for e in g.edge_ids() {
            assert_eq!(g.endpoints(e), c.endpoints(e));
        }
    }

    #[test]
    fn csr_matches_digraph_on_random_graphs() {
        let mut r = rng(0xC5A0);
        for _ in 0..20 {
            let n = r.random_range(1..40usize);
            let m = r.random_range(0..120usize);
            let mut g = DiGraph::new();
            g.add_vertices(n);
            for _ in 0..m {
                let a = VertexId::from(r.random_range(0..n));
                let b = VertexId::from(r.random_range(0..n));
                g.add_edge(a, b);
            }
            let c = Csr::from_digraph(&g);
            for u in g.vertices() {
                assert_eq!(c.out_degree(u), g.out_degree(u));
                assert_eq!(c.in_degree(u), g.in_degree(u));
            }
            let deg_sum: usize = c.vertices().map(|u| c.out_degree(u)).sum();
            assert_eq!(deg_sum, m);
        }
    }

    #[test]
    fn empty_and_isolated() {
        let g = DiGraph::new();
        let c = Csr::from_digraph(&g);
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.num_edges(), 0);

        let mut g = DiGraph::new();
        g.add_vertices(3);
        let c = Csr::from_digraph(&g);
        assert_eq!(c.num_vertices(), 3);
        assert!(c.out_edges(v(1)).is_empty());
        assert!(c.in_edges(v(1)).is_empty());
    }
}
