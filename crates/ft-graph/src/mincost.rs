//! Successive-shortest-path min-cost flow with Johnson potentials.
//!
//! The second half of the flow-kernel portfolio: where [`crate::maxflow`]
//! answers *how many* disjoint circuits exist, this module answers *which*
//! assignment of circuits disturbs the fabric least. The post-storm mass
//! reroute (`ft-networks::CircuitRouter`) phrases minimal-disruption
//! recovery as a min-cost flow — every switch occupied by a replacement
//! circuit costs one unit — and plans placements out-of-band on a
//! [`CostFlowNetwork`] before touching live router state.
//!
//! The solver is the classical successive-shortest-path algorithm:
//! repeatedly augment along a cheapest residual `s → t` path found by
//! Dijkstra on *reduced* costs `c(u,v) + π(u) − π(v)`. Potentials `π`
//! start at zero (all arc costs are required nonnegative) and are updated
//! after every search, which keeps reduced costs nonnegative across
//! augmentations **and across changing source/sink pairs** — the property
//! the router's per-victim batch replanning relies on. Ties in the
//! Dijkstra heap break on node id, so plans are deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Unreachable marker for Dijkstra distances.
const INF: i64 = i64::MAX;

/// No-parent marker for augmenting-path extraction.
const NO_ARC: u32 = u32::MAX;

/// A residual arc with a cost per unit of flow.
#[derive(Clone, Debug)]
struct CostArc {
    to: u32,
    /// Index of the reverse arc in `arcs`.
    rev: u32,
    cap: u32,
    cost: i64,
}

/// Min-cost flow problem builder/solver (successive shortest paths).
///
/// Mirrors [`crate::maxflow::FlowNetwork`]'s residual representation:
/// [`Self::add_arc`] stores the arc and its zero-capacity, negated-cost
/// twin at adjacent indices, and [`Self::reset`] rebuilds the same-shaped
/// problem without allocating.
#[derive(Clone, Debug, Default)]
pub struct CostFlowNetwork {
    first: Vec<Vec<u32>>, // arc indices per node
    arcs: Vec<CostArc>,
}

impl CostFlowNetwork {
    /// Creates a cost-flow network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        CostFlowNetwork {
            first: vec![Vec::new(); n],
            arcs: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.first.len()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> u32 {
        self.first.push(Vec::new());
        (self.first.len() - 1) as u32
    }

    /// Clears the network down to `n` isolated nodes while keeping every
    /// allocation (the batch-reroute planner rebuilds per storm).
    pub fn reset(&mut self, n: usize) {
        self.arcs.clear();
        if self.first.len() > n {
            self.first.truncate(n);
        }
        for f in &mut self.first {
            f.clear();
        }
        if self.first.len() < n {
            self.first.resize_with(n, Vec::new);
        }
    }

    /// Adds a directed arc `u → v` with capacity `cap` and nonnegative
    /// per-unit cost; returns the arc index (its residual twin, with the
    /// negated cost, is `index + 1`).
    pub fn add_arc(&mut self, u: u32, v: u32, cap: u32, cost: i64) -> u32 {
        assert!(cost >= 0, "arc costs must be nonnegative, got {cost}");
        let idx = self.arcs.len() as u32;
        let rev = idx + 1;
        self.arcs.push(CostArc {
            to: v,
            rev,
            cap,
            cost,
        });
        self.arcs.push(CostArc {
            to: u,
            rev: idx,
            cap: 0,
            cost: -cost,
        });
        self.first[u as usize].push(idx);
        self.first[v as usize].push(rev);
        idx
    }

    /// Flow currently pushed through arc `idx` (residual capacity of its
    /// twin).
    pub fn flow_on(&self, idx: u32) -> u32 {
        self.arcs[self.arcs[idx as usize].rev as usize].cap
    }

    /// Freezes arc `idx`: zeroes the residual capacity of the arc *and*
    /// its twin, so no later augmentation can use it forward or rip its
    /// flow back out. The batch-reroute planner freezes the split arcs
    /// of every placed circuit to keep per-pair plans pairing-safe —
    /// successive single-commodity augmentations may otherwise repack
    /// earlier flow onto different terminal pairs.
    pub fn freeze_arc(&mut self, idx: u32) {
        let rev = self.arcs[idx as usize].rev as usize;
        self.arcs[idx as usize].cap = 0;
        self.arcs[rev].cap = 0;
    }

    /// The tail of arc `idx` (the twin's head).
    pub fn arc_from(&self, idx: u32) -> u32 {
        self.arcs[self.arcs[idx as usize].rev as usize].to
    }

    /// The head of arc `idx`.
    pub fn arc_to(&self, idx: u32) -> u32 {
        self.arcs[idx as usize].to
    }
}

/// Flow value and total cost returned by [`min_cost_flow_into`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinCostFlow {
    /// Units of flow pushed.
    pub flow: u32,
    /// Total cost of the flow (minimum over all flows of this value).
    pub value: i64,
}

/// Reusable buffers for the successive-shortest-path solver: node
/// potentials (persistent across augmentations within one
/// [`McfWorkspace::begin`] epoch), Dijkstra distances/parents/settled
/// flags and the priority queue.
#[derive(Clone, Debug, Default)]
pub struct McfWorkspace {
    pot: Vec<i64>,
    dist: Vec<i64>,
    parent: Vec<u32>,
    done: Vec<bool>,
    heap: BinaryHeap<Reverse<(i64, u32)>>,
}

impl McfWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a planning epoch on an `n`-node network: zeroes the
    /// potentials (valid because all arc costs are nonnegative) and
    /// sizes the scratch buffers. Call once per [`CostFlowNetwork`]
    /// build; successive [`augment_unit_into`] calls — even with
    /// different source/sink pairs — then keep the potentials valid.
    pub fn begin(&mut self, n: usize) {
        self.pot.clear();
        self.pot.resize(n, 0);
        self.dist.clear();
        self.dist.resize(n, INF);
        self.parent.clear();
        self.parent.resize(n, NO_ARC);
        self.done.clear();
        self.done.resize(n, false);
        self.heap.clear();
    }
}

/// One cheapest-path search: Dijkstra from `s` on reduced costs. Fills
/// `ws.dist`/`ws.parent` and returns `true` iff `t` was reached. Stops
/// as soon as `t` is settled (remaining labels stay unsettled, which the
/// potential update accounts for).
fn dijkstra(net: &CostFlowNetwork, s: u32, t: u32, ws: &mut McfWorkspace) -> bool {
    let n = net.num_nodes();
    ws.dist[..n].fill(INF);
    ws.done[..n].fill(false);
    ws.parent[..n].fill(NO_ARC);
    ws.heap.clear();
    ws.dist[s as usize] = 0;
    ws.heap.push(Reverse((0, s)));
    while let Some(Reverse((d, u))) = ws.heap.pop() {
        if ws.done[u as usize] {
            continue;
        }
        ws.done[u as usize] = true;
        if u == t {
            return true;
        }
        for &ai in &net.first[u as usize] {
            let a = &net.arcs[ai as usize];
            if a.cap == 0 || ws.done[a.to as usize] {
                continue;
            }
            let rc = a.cost + ws.pot[u as usize] - ws.pot[a.to as usize];
            debug_assert!(rc >= 0, "reduced cost went negative");
            let nd = d + rc;
            if nd < ws.dist[a.to as usize] {
                ws.dist[a.to as usize] = nd;
                ws.parent[a.to as usize] = ai;
                ws.heap.push(Reverse((nd, a.to)));
            }
        }
    }
    false
}

/// Updates potentials after a successful search to `t`: `π(v) += min(d(v),
/// d(t))`, the standard rule that keeps every residual reduced cost
/// nonnegative after augmenting along the found path.
fn update_potentials(n: usize, t: u32, ws: &mut McfWorkspace) {
    let dt = ws.dist[t as usize];
    for v in 0..n {
        ws.pot[v] += ws.dist[v].min(dt);
    }
}

/// Pushes one cheapest augmenting unit `s → t` and returns its true
/// (unreduced) cost, or `None` when `t` is unreachable in the residual.
///
/// [`McfWorkspace::begin`] must have been called for this network build;
/// after that, calls may freely change `(s, t)` between augmentations —
/// the potential update keeps reduced costs valid — which is exactly the
/// shape of the router's per-victim storm replanning. The augmenting
/// path's arcs are left in `arcs_out` (in `s → t` order) so the caller
/// can read placements or [`CostFlowNetwork::freeze_arc`] them.
pub fn augment_unit_into(
    net: &mut CostFlowNetwork,
    s: u32,
    t: u32,
    ws: &mut McfWorkspace,
    arcs_out: &mut Vec<u32>,
) -> Option<i64> {
    assert_ne!(s, t, "source equals sink");
    let n = net.num_nodes();
    if !dijkstra(net, s, t, ws) {
        return None;
    }
    update_potentials(n, t, ws);
    arcs_out.clear();
    let mut cost = 0i64;
    let mut v = t;
    while v != s {
        let ai = ws.parent[v as usize];
        debug_assert_ne!(ai, NO_ARC);
        arcs_out.push(ai);
        cost += net.arcs[ai as usize].cost;
        v = net.arc_from(ai);
    }
    arcs_out.reverse();
    for &ai in arcs_out.iter() {
        let rev = net.arcs[ai as usize].rev as usize;
        net.arcs[ai as usize].cap -= 1;
        net.arcs[rev].cap += 1;
    }
    Some(cost)
}

/// Computes a minimum-cost `s → t` flow of value `min(max flow, limit)`
/// by successive shortest paths, borrowing all scratch state from a
/// reusable [`McfWorkspace`].
///
/// Because every augmentation follows a cheapest path under valid
/// potentials, each intermediate flow is minimum-cost for its value —
/// so with `limit = Some(k)` the result is the cheapest flow of value
/// `min(max flow, k)`, and with `None` the cheapest maximum flow.
pub fn min_cost_flow_into(
    net: &mut CostFlowNetwork,
    s: u32,
    t: u32,
    limit: Option<u32>,
    ws: &mut McfWorkspace,
) -> MinCostFlow {
    assert_ne!(s, t, "source equals sink");
    let n = net.num_nodes();
    ws.begin(n);
    let limit = limit.unwrap_or(u32::MAX);
    let mut out = MinCostFlow::default();
    let mut path = Vec::new();
    while out.flow < limit {
        // Unit-step augmentation: every instance in this workspace is
        // unit-capacity (vertex-split circuits), so bottleneck batching
        // would never push more than one unit anyway.
        match augment_unit_into(net, s, t, ws, &mut path) {
            Some(cost) => {
                out.flow += 1;
                out.value += cost;
            }
            None => break,
        }
    }
    out
}

/// Convenience wrapper allocating a fresh workspace.
pub fn min_cost_flow(net: &mut CostFlowNetwork, s: u32, t: u32, limit: Option<u32>) -> MinCostFlow {
    let mut ws = McfWorkspace::new();
    min_cost_flow_into(net, s, t, limit, &mut ws)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheapest_path_wins_before_expensive_one() {
        // two disjoint s→t chains: cost 1 and cost 5, capacity 1 each
        let mut net = CostFlowNetwork::new(4);
        net.add_arc(0, 1, 1, 1);
        net.add_arc(1, 3, 1, 0);
        net.add_arc(0, 2, 1, 5);
        net.add_arc(2, 3, 1, 0);
        let r = min_cost_flow(&mut net, 0, 3, Some(1));
        assert_eq!(r, MinCostFlow { flow: 1, value: 1 });
        // second unit must take the expensive chain
        let mut net2 = CostFlowNetwork::new(4);
        net2.add_arc(0, 1, 1, 1);
        net2.add_arc(1, 3, 1, 0);
        net2.add_arc(0, 2, 1, 5);
        net2.add_arc(2, 3, 1, 0);
        let r = min_cost_flow(&mut net2, 0, 3, None);
        assert_eq!(r, MinCostFlow { flow: 2, value: 6 });
    }

    #[test]
    fn augmentation_reroutes_through_residual_arcs() {
        // Classic repacking instance: the greedy cheapest first path
        // (0→1→2→3, cost 2) blocks both remaining chains unless the
        // second augmentation undoes the middle arc via its residual.
        let mut net = CostFlowNetwork::new(4);
        net.add_arc(0, 1, 1, 1);
        net.add_arc(1, 2, 1, 0);
        net.add_arc(2, 3, 1, 1);
        net.add_arc(0, 2, 1, 2);
        net.add_arc(1, 3, 1, 2);
        let r = min_cost_flow(&mut net, 0, 3, None);
        assert_eq!(r.flow, 2);
        // optimum pairs 0→1→3 with 0→2→3: cost (1+2) + (2+1) = 6
        assert_eq!(r.value, 6);
    }

    #[test]
    fn freeze_arc_blocks_both_directions() {
        let mut net = CostFlowNetwork::new(3);
        let a = net.add_arc(0, 1, 1, 0);
        net.add_arc(1, 2, 1, 0);
        let mut ws = McfWorkspace::new();
        ws.begin(3);
        let mut path = Vec::new();
        assert!(augment_unit_into(&mut net, 0, 2, &mut ws, &mut path).is_some());
        assert_eq!(net.flow_on(a), 1);
        net.freeze_arc(a);
        // the unit through `a` can be neither extended nor ripped out
        assert!(augment_unit_into(&mut net, 0, 2, &mut ws, &mut path).is_none());
        assert!(augment_unit_into(&mut net, 1, 0, &mut ws, &mut path).is_none());
    }

    #[test]
    fn changing_pairs_keep_potentials_valid() {
        // a 2×2 bipartite instance planned one pair at a time, the way
        // the router replans a storm batch
        let mut net = CostFlowNetwork::new(4);
        net.add_arc(0, 2, 1, 1);
        net.add_arc(0, 3, 1, 3);
        net.add_arc(1, 2, 1, 2);
        net.add_arc(1, 3, 1, 1);
        let mut ws = McfWorkspace::new();
        ws.begin(4);
        let mut path = Vec::new();
        let c0 = augment_unit_into(&mut net, 0, 2, &mut ws, &mut path).unwrap();
        assert_eq!(c0, 1);
        assert_eq!(path.len(), 1);
        let c1 = augment_unit_into(&mut net, 1, 3, &mut ws, &mut path).unwrap();
        assert_eq!(c1, 1);
        // a third pair still routes over the remaining expensive arc,
        // with potentials carried over from the earlier pairs
        let c2 = augment_unit_into(&mut net, 0, 3, &mut ws, &mut path).unwrap();
        assert_eq!(c2, 3);
        // 0's arcs are now all saturated: no further unit can leave it
        assert!(augment_unit_into(&mut net, 0, 1, &mut ws, &mut path).is_none());
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut net = CostFlowNetwork::new(3);
        net.add_arc(0, 1, 2, 1);
        net.add_arc(1, 2, 2, 1);
        assert_eq!(
            min_cost_flow(&mut net, 0, 2, None),
            MinCostFlow { flow: 2, value: 4 }
        );
        net.reset(2);
        assert_eq!(net.num_nodes(), 2);
        net.add_arc(0, 1, 3, 2);
        assert_eq!(
            min_cost_flow(&mut net, 0, 1, None),
            MinCostFlow { flow: 3, value: 6 }
        );
    }

    #[test]
    fn arc_endpoint_accessors() {
        let mut net = CostFlowNetwork::new(3);
        let a = net.add_arc(1, 2, 1, 0);
        assert_eq!(net.arc_from(a), 1);
        assert_eq!(net.arc_to(a), 2);
        assert_eq!(net.add_node(), 3);
        assert_eq!(net.num_nodes(), 4);
    }
}
