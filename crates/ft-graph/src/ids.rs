//! Typed indices for vertices and edges.
//!
//! Networks in this workspace routinely reach tens of millions of edges
//! (the paper-exact construction at `ν = 3` already has ~7·10⁷ edges), so
//! indices are `u32` newtypes rather than `usize`: half the memory of
//! `usize` on 64-bit targets, and the type distinction prevents mixing
//! vertex and edge indices in flow/matching code where both are juggled.

use std::fmt;

/// Index of a vertex in a [`crate::DiGraph`] or [`crate::Csr`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

/// Index of a directed edge (a *switch* in the paper's terminology).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl VertexId {
    /// Sentinel used by traversal code for "no vertex".
    pub const NONE: VertexId = VertexId(u32::MAX);

    /// The index as a `usize`, for slice indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the [`VertexId::NONE`] sentinel.
    #[inline(always)]
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }
}

impl EdgeId {
    /// Sentinel used by traversal code for "no edge".
    pub const NONE: EdgeId = EdgeId(u32::MAX);

    /// The index as a `usize`, for slice indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the [`EdgeId::NONE`] sentinel.
    #[inline(always)]
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }
}

impl From<usize> for VertexId {
    #[inline(always)]
    fn from(i: usize) -> Self {
        debug_assert!(i < u32::MAX as usize, "vertex index overflows u32");
        VertexId(i as u32)
    }
}

impl From<usize> for EdgeId {
    #[inline(always)]
    fn from(i: usize) -> Self {
        debug_assert!(i < u32::MAX as usize, "edge index overflows u32");
        EdgeId(i as u32)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "v#none")
        } else {
            write!(f, "v{}", self.0)
        }
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "e#none")
        } else {
            write!(f, "e{}", self.0)
        }
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Convenience constructor, mainly for tests: `v(3)` instead of `VertexId(3)`.
#[inline(always)]
pub fn v(i: u32) -> VertexId {
    VertexId(i)
}

/// Convenience constructor, mainly for tests: `e(3)` instead of `EdgeId(3)`.
#[inline(always)]
pub fn e(i: u32) -> EdgeId {
    EdgeId(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let id = VertexId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(id, v(42));
        assert!(!id.is_none());
    }

    #[test]
    fn edge_id_roundtrip() {
        let id = EdgeId::from(7usize);
        assert_eq!(id.index(), 7);
        assert_eq!(id, e(7));
        assert!(!id.is_none());
    }

    #[test]
    fn sentinels_are_none() {
        assert!(VertexId::NONE.is_none());
        assert!(EdgeId::NONE.is_none());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", v(5)), "v5");
        assert_eq!(format!("{:?}", e(9)), "e9");
        assert_eq!(format!("{:?}", VertexId::NONE), "v#none");
        assert_eq!(format!("{}", e(1)), "e1");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(v(1) < v(2));
        assert!(e(0) < e(10));
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
        // Option<VertexId> would be 8 bytes; the NONE sentinel keeps
        // parent arrays at 4 bytes per entry.
    }
}
