//! Growable directed multigraph.
//!
//! [`DiGraph`] is the mutable builder representation used while a network
//! is being constructed (stage by stage, expander by expander). Once built,
//! hot algorithms should convert it to a [`crate::Csr`] snapshot; the
//! builder keeps per-vertex `Vec`s which are convenient but cache-hostile.
//!
//! Self-loops and parallel edges are permitted: the paper's model treats
//! each *switch* (edge) as an independently failing component, so two
//! parallel switches between the same pair of links are meaningful (they
//! fail independently).

use crate::ids::{EdgeId, VertexId};
use crate::Digraph;

/// A growable directed multigraph with O(1) vertex/edge insertion.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
    /// `edges[e] = (tail, head)`; edge `e` points tail → head.
    edges: Vec<(VertexId, VertexId)>,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity reserved for `n` vertices and
    /// `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        DiGraph {
            out_edges: Vec::with_capacity(n),
            in_edges: Vec::with_capacity(n),
            edges: Vec::with_capacity(m),
        }
    }

    /// Adds an isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::from(self.out_edges.len());
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds `count` isolated vertices, returning the id of the first; the
    /// ids are contiguous `first..first+count`.
    pub fn add_vertices(&mut self, count: usize) -> VertexId {
        let first = VertexId::from(self.out_edges.len());
        self.out_edges
            .resize_with(self.out_edges.len() + count, Vec::new);
        self.in_edges
            .resize_with(self.in_edges.len() + count, Vec::new);
        first
    }

    /// Adds a directed edge (switch) `tail → head` and returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, tail: VertexId, head: VertexId) -> EdgeId {
        assert!(
            tail.index() < self.out_edges.len() && head.index() < self.out_edges.len(),
            "edge endpoint out of range: {tail:?} -> {head:?} with {} vertices",
            self.out_edges.len()
        );
        let id = EdgeId::from(self.edges.len());
        self.edges.push((tail, head));
        self.out_edges[tail.index()].push(id);
        self.in_edges[head.index()].push(id);
        id
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_edges.len()
    }

    /// Number of edges (switches). The paper calls this the **size** of the
    /// network.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The `(tail, head)` pair of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.index()]
    }

    /// Tail (source endpoint) of edge `e`.
    #[inline]
    pub fn tail(&self, e: EdgeId) -> VertexId {
        self.edges[e.index()].0
    }

    /// Head (target endpoint) of edge `e`.
    #[inline]
    pub fn head(&self, e: EdgeId) -> VertexId {
        self.edges[e.index()].1
    }

    /// Out-edges of `v` in insertion order.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.out_edges[v.index()]
    }

    /// In-edges of `v` in insertion order.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.in_edges[v.index()]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_edges[v.index()].len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_edges[v.index()].len()
    }

    /// Total degree (in + out) of `v`. In the paper's undirected distance
    /// arguments (§5) this is the degree that matters.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> + '_ {
        (0..self.num_vertices()).map(VertexId::from)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.num_edges()).map(EdgeId::from)
    }

    /// Iterator over `(EdgeId, tail, head)` triples.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(t, h))| (EdgeId::from(i), t, h))
    }

    /// Returns `true` if there is at least one edge `tail → head`.
    pub fn has_edge(&self, tail: VertexId, head: VertexId) -> bool {
        self.out_edges[tail.index()]
            .iter()
            .any(|&e| self.head(e) == head)
    }

    /// Builds the subgraph induced by keeping exactly the edges for which
    /// `keep_edge` returns true and all vertices. Vertex ids are preserved;
    /// edge ids are renumbered (the returned map gives, for each new edge,
    /// the original [`EdgeId`]).
    pub fn filter_edges(
        &self,
        mut keep_edge: impl FnMut(EdgeId) -> bool,
    ) -> (DiGraph, Vec<EdgeId>) {
        let mut g = DiGraph::with_capacity(self.num_vertices(), self.num_edges());
        g.add_vertices(self.num_vertices());
        let mut orig = Vec::new();
        for (e, t, h) in self.edges() {
            if keep_edge(e) {
                g.add_edge(t, h);
                orig.push(e);
            }
        }
        (g, orig)
    }

    /// Reverses every edge and swaps nothing else. Combined with swapping
    /// the input/output roles of the terminals this yields the paper's
    /// **mirror image** of a network (§6).
    pub fn reversed(&self) -> DiGraph {
        let mut g = DiGraph::with_capacity(self.num_vertices(), self.num_edges());
        g.add_vertices(self.num_vertices());
        for (_, t, h) in self.edges() {
            g.add_edge(h, t);
        }
        g
    }
}

impl Digraph for DiGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        DiGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        DiGraph::num_edges(self)
    }

    #[inline]
    fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        DiGraph::endpoints(self, e)
    }

    #[inline]
    fn out_edge_slice(&self, v: VertexId) -> &[EdgeId] {
        DiGraph::out_edges(self, v)
    }

    #[inline]
    fn in_edge_slice(&self, v: VertexId) -> &[EdgeId] {
        DiGraph::in_edges(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{e, v};

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(0), v(2));
        g.add_edge(v(1), v(3));
        g.add_edge(v(2), v(3));
        g
    }

    #[test]
    fn build_diamond() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(v(0)), 2);
        assert_eq!(g.in_degree(v(3)), 2);
        assert_eq!(g.degree(v(1)), 2);
        assert_eq!(g.endpoints(e(0)), (v(0), v(1)));
        assert!(g.has_edge(v(0), v(2)));
        assert!(!g.has_edge(v(2), v(0)));
    }

    #[test]
    fn add_vertices_contiguous() {
        let mut g = DiGraph::new();
        let first = g.add_vertices(5);
        assert_eq!(first, v(0));
        let next = g.add_vertices(3);
        assert_eq!(next, v(5));
        assert_eq!(g.num_vertices(), 8);
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g = DiGraph::new();
        g.add_vertices(2);
        let e1 = g.add_edge(v(0), v(1));
        let e2 = g.add_edge(v(0), v(1));
        let e3 = g.add_edge(v(1), v(1));
        assert_ne!(e1, e2);
        assert_eq!(g.out_degree(v(0)), 2);
        assert_eq!(g.in_degree(v(1)), 3);
        assert_eq!(g.endpoints(e3), (v(1), v(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_out_of_range_panics() {
        let mut g = DiGraph::new();
        g.add_vertex();
        g.add_edge(v(0), v(1));
    }

    #[test]
    fn filter_edges_renumbers() {
        let g = diamond();
        // keep only edges out of vertex 0
        let (f, orig) = g.filter_edges(|e| g.tail(e) == v(0));
        assert_eq!(f.num_vertices(), 4);
        assert_eq!(f.num_edges(), 2);
        assert_eq!(orig, vec![e(0), e(1)]);
        assert!(f.has_edge(v(0), v(1)));
        assert!(!f.has_edge(v(1), v(3)));
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.num_edges(), 4);
        assert!(r.has_edge(v(1), v(0)));
        assert!(r.has_edge(v(3), v(2)));
        assert!(!r.has_edge(v(0), v(1)));
        // reversing twice restores the edge relation
        let rr = r.reversed();
        for (_, t, h) in g.edges() {
            assert!(rr.has_edge(t, h));
        }
    }

    #[test]
    fn iterators_cover_everything() {
        let g = diamond();
        assert_eq!(g.vertices().count(), 4);
        assert_eq!(g.edge_ids().count(), 4);
        let sum_out: usize = g.vertices().map(|u| g.out_degree(u)).sum();
        assert_eq!(sum_out, g.num_edges());
        let sum_in: usize = g.vertices().map(|u| g.in_degree(u)).sum();
        assert_eq!(sum_in, g.num_edges());
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.vertices().count(), 0);
    }
}
