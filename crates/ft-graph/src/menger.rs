//! Menger-style vertex-disjoint connectivity queries.
//!
//! Thin layer over [`crate::maxflow`] phrased in the vocabulary of §2:
//! a digraph with `n` inputs and `n` outputs is an *n-superconcentrator*
//! iff for every `r ≤ n` and every pair of `r`-subsets `(S, T)` there are
//! `r` vertex-disjoint `S → T` paths. Menger converts the quantifier over
//! subsets into a single max-flow fact: it suffices that **the whole
//! input set** flows to **the whole output set** at value `n` minus any
//! adversarial removals — in practice we check subsets directly, because
//! the failure experiments sample subsets anyway.

use crate::ids::{EdgeId, VertexId};
use crate::maxflow::{vertex_disjoint_paths_into, DisjointOptions, FlowKernel, FlowWorkspace};
use crate::Digraph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

/// Maximum number of vertex-disjoint paths from `sources` to `sinks`.
pub fn max_disjoint_paths<G: Digraph>(g: &G, sources: &[VertexId], sinks: &[VertexId]) -> u32 {
    max_disjoint_paths_into(g, sources, sinks, &mut FlowWorkspace::new())
}

/// [`max_disjoint_paths`] with a caller-owned [`FlowWorkspace`] — use in
/// trial loops so repeated queries allocate nothing. Runs the kernel the
/// static cost model picks for the instance; callers holding a
/// [`crate::StagedNetwork`] can pin the cached per-topology choice via
/// [`max_disjoint_paths_with_kernel_into`].
pub fn max_disjoint_paths_into<G: Digraph>(
    g: &G,
    sources: &[VertexId],
    sinks: &[VertexId],
    fw: &mut FlowWorkspace,
) -> u32 {
    max_disjoint_paths_with_kernel_into(g, sources, sinks, FlowKernel::Auto, fw)
}

/// [`max_disjoint_paths_into`] with an explicit max-flow kernel — the
/// §3/§4 verification loops pass `StagedNetwork::flow_kernel()` here so
/// every query on a topology reuses its one cached cost-model decision.
pub fn max_disjoint_paths_with_kernel_into<G: Digraph>(
    g: &G,
    sources: &[VertexId],
    sinks: &[VertexId],
    kernel: FlowKernel,
    fw: &mut FlowWorkspace,
) -> u32 {
    vertex_disjoint_paths_into(
        g,
        sources,
        sinks,
        |_| true,
        |_| true,
        DisjointOptions {
            count_only: true,
            limit: None,
            kernel,
        },
        fw,
    )
    .count
}

/// Whether `r = |S| = |T|` vertex-disjoint paths join `S` to `T`.
pub fn fully_linkable<G: Digraph>(g: &G, s: &[VertexId], t: &[VertexId]) -> bool {
    fully_linkable_into(g, s, t, &mut FlowWorkspace::new())
}

/// [`fully_linkable`] with a caller-owned [`FlowWorkspace`] — use in
/// trial loops so repeated queries allocate nothing.
pub fn fully_linkable_into<G: Digraph>(
    g: &G,
    s: &[VertexId],
    t: &[VertexId],
    fw: &mut FlowWorkspace,
) -> bool {
    assert_eq!(s.len(), t.len(), "subset sizes differ");
    let r = s.len() as u32;
    vertex_disjoint_paths_into(
        g,
        s,
        t,
        |_| true,
        |_| true,
        DisjointOptions {
            count_only: true,
            limit: Some(r),
            // Early-stop queries always resolve to Dinic (push-relabel
            // has no cheap `limit` cutoff), so Auto is exact here.
            kernel: FlowKernel::Auto,
        },
        fw,
    )
    .count
        == r
}

/// Exhaustively verifies the superconcentrator property for **every**
/// `r ≤ n` and every pair of `r`-subsets. Exponential in `n`; intended
/// for `n ≤ ~8` in tests. Returns the first violated `(S, T)` pair if any.
pub fn verify_superconcentrator_exhaustive<G: Digraph>(
    g: &G,
    inputs: &[VertexId],
    outputs: &[VertexId],
) -> Option<(Vec<VertexId>, Vec<VertexId>)> {
    assert_eq!(inputs.len(), outputs.len());
    let n = inputs.len();
    let mut fw = FlowWorkspace::new();
    for r in 1..=n {
        let mut s_sel = subsets_of_size(n, r);
        let t_sel = subsets_of_size(n, r);
        for s_mask in s_sel.drain(..) {
            let s: Vec<VertexId> = pick(inputs, s_mask);
            for &t_mask in &t_sel {
                let t: Vec<VertexId> = pick(outputs, t_mask);
                if !fully_linkable_into(g, &s, &t, &mut fw) {
                    return Some((s, t));
                }
            }
        }
    }
    None
}

/// Randomized superconcentrator check: samples `trials` random `(r, S, T)`
/// combinations. Returns the first violation found.
pub fn verify_superconcentrator_sampled<G: Digraph>(
    g: &G,
    inputs: &[VertexId],
    outputs: &[VertexId],
    trials: usize,
    rng: &mut SmallRng,
) -> Option<(Vec<VertexId>, Vec<VertexId>)> {
    use rand::Rng;
    assert_eq!(inputs.len(), outputs.len());
    let n = inputs.len();
    if n == 0 {
        return None;
    }
    let mut src = inputs.to_vec();
    let mut dst = outputs.to_vec();
    let mut fw = FlowWorkspace::new();
    for _ in 0..trials {
        let r = rng.random_range(1..=n);
        src.shuffle(rng);
        dst.shuffle(rng);
        let s = &src[..r];
        let t = &dst[..r];
        if !fully_linkable_into(g, s, t, &mut fw) {
            return Some((s.to_vec(), t.to_vec()));
        }
    }
    None
}

/// A minimum vertex cut separating `sources` from `sinks`: a set of
/// vertices (never including a source — matching Lemma 3, where the idle
/// input ι itself is not in any cut set considered; sinks may be cut)
/// whose removal destroys every directed source → sink path. Returns the
/// cut vertices, or an empty vector when sources and sinks are already
/// disconnected.
///
/// # Panics
/// Panics (inside the flow kernel) if some source reaches some sink through an
/// uncuttable corridor — impossible here since every non-source vertex is
/// cuttable; a direct source → sink edge is cut at the sink.
pub fn min_vertex_cut<G: Digraph>(
    g: &G,
    sources: &[VertexId],
    sinks: &[VertexId],
    vertex_ok: impl FnMut(VertexId) -> bool,
) -> Vec<VertexId> {
    // Run flow with split nodes and read the cut from the residual:
    // a split arc (v_in → v_out) crossing the cut corresponds to cut vertex v.
    use crate::maxflow::FlowNetwork;
    const INF: u32 = u32::MAX / 4;
    let n = g.num_vertices();
    let mut vertex_ok = vertex_ok;
    let mut is_source = vec![false; n];
    for &s in sources {
        is_source[s.index()] = true;
    }
    assert!(
        sinks.iter().all(|t| !is_source[t.index()]),
        "min_vertex_cut: a vertex cannot be both source and sink"
    );
    let mut fnet = FlowNetwork::new(2 * n + 2);
    let (ss, tt) = ((2 * n) as u32, (2 * n + 1) as u32);
    let mut split_arc = vec![u32::MAX; n];
    for vid in 0..n {
        if vertex_ok(VertexId::from(vid)) {
            let cap = if is_source[vid] { INF } else { 1 };
            let arc = fnet.add_arc(2 * vid as u32, 2 * vid as u32 + 1, cap);
            if !is_source[vid] {
                split_arc[vid] = arc;
            }
        }
    }
    for &t in sinks {
        fnet.add_arc(2 * t.index() as u32 + 1, tt, INF);
    }
    for &s in sources {
        fnet.add_arc(ss, 2 * s.index() as u32, INF);
    }
    for eid in 0..g.num_edges() {
        let (t, h) = g.endpoints(EdgeId::from(eid));
        fnet.add_arc(2 * t.index() as u32 + 1, 2 * h.index() as u32, INF);
    }
    // Both kernels terminate with a valid max-flow residual, so the cut
    // read below is kernel-independent; let the cost model pick.
    match FlowKernel::Auto.resolve(fnet.num_nodes(), fnet.num_arcs(), None) {
        FlowKernel::PushRelabel => {
            fnet.push_relabel(ss, tt);
        }
        _ => {
            fnet.max_flow(ss, tt, None);
        }
    }
    let side = fnet.min_cut_source_side(ss);
    let mut cut = Vec::new();
    for vid in 0..n {
        if split_arc[vid] != u32::MAX && side[2 * vid] && !side[2 * vid + 1] {
            cut.push(VertexId::from(vid));
        }
    }
    cut
}

fn subsets_of_size(n: usize, r: usize) -> Vec<u64> {
    assert!(n <= 20, "exhaustive verification limited to n ≤ 20");
    let mut out = Vec::new();
    for mask in 0..(1u64 << n) {
        if mask.count_ones() as usize == r {
            out.push(mask);
        }
    }
    out
}

fn pick(items: &[VertexId], mask: u64) -> Vec<VertexId> {
    items
        .iter()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, &v)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::rng;
    use crate::ids::v;
    use crate::DiGraph;

    /// Complete bipartite K_{2,2} with 2 inputs, 2 outputs: a crossbar,
    /// trivially a 2-superconcentrator.
    fn crossbar2() -> (DiGraph, Vec<VertexId>, Vec<VertexId>) {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        for i in 0..2 {
            for o in 2..4 {
                g.add_edge(v(i), v(o));
            }
        }
        (g, vec![v(0), v(1)], vec![v(2), v(3)])
    }

    #[test]
    fn crossbar_is_superconcentrator() {
        let (g, ins, outs) = crossbar2();
        assert_eq!(max_disjoint_paths(&g, &ins, &outs), 2);
        assert!(fully_linkable(&g, &ins, &outs));
        assert!(verify_superconcentrator_exhaustive(&g, &ins, &outs).is_none());
    }

    #[test]
    fn broken_crossbar_fails() {
        // remove one edge: input 0 can only reach output 2
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(2));
        g.add_edge(v(1), v(2));
        g.add_edge(v(1), v(3));
        let ins = vec![v(0), v(1)];
        let outs = vec![v(2), v(3)];
        let viol = verify_superconcentrator_exhaustive(&g, &ins, &outs);
        assert!(viol.is_some());
        let (s, t) = viol.unwrap();
        // the violation is S={0}, T={3}
        assert_eq!(s, vec![v(0)]);
        assert_eq!(t, vec![v(3)]);
    }

    #[test]
    fn sampled_check_agrees() {
        let (g, ins, outs) = crossbar2();
        let mut r = rng(7);
        assert!(verify_superconcentrator_sampled(&g, &ins, &outs, 50, &mut r).is_none());
    }

    #[test]
    fn sampled_check_finds_violation_eventually() {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(2)); // only edge; inputs {0,1}, outputs {2,3}
        let ins = vec![v(0), v(1)];
        let outs = vec![v(2), v(3)];
        let mut r = rng(8);
        assert!(verify_superconcentrator_sampled(&g, &ins, &outs, 200, &mut r).is_some());
    }

    #[test]
    fn min_cut_is_the_bottleneck() {
        // 0 -> 2 -> 3, 1 -> 2: vertex 2 is the bottleneck
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(2));
        g.add_edge(v(1), v(2));
        g.add_edge(v(2), v(3));
        let cut = min_vertex_cut(&g, &[v(0), v(1)], &[v(3)], |_| true);
        assert_eq!(cut, vec![v(2)]);
    }

    #[test]
    fn min_cut_respects_vertex_filter() {
        // two parallel middles 1 and 2; if 1 is already dead the cut is {2}
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(0), v(2));
        g.add_edge(v(1), v(3));
        g.add_edge(v(2), v(3));
        let cut = min_vertex_cut(&g, &[v(0)], &[v(3)], |x| x != v(1));
        assert_eq!(cut, vec![v(2)]);
    }

    #[test]
    fn empty_terminal_sets() {
        let (g, _, _) = crossbar2();
        assert_eq!(max_disjoint_paths(&g, &[], &[]), 0);
        assert!(verify_superconcentrator_exhaustive(&g, &[], &[]).is_none());
    }
}
