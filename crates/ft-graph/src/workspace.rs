//! Reusable traversal workspace with epoch-based clearing.
//!
//! Monte Carlo experiments run the same traversal kernels millions of
//! times over one topology. Allocating `dist`/`parent`/`queue` vectors
//! per trial dominates small-graph trials and trashes the allocator on
//! big ones, and even a reused buffer pays an O(n) clear per trial if it
//! is reset with `fill`. [`TraversalWorkspace`] solves both: buffers are
//! allocated once and *logically* cleared by bumping an epoch counter —
//! an entry is valid only if its stamp equals the current epoch — so a
//! reset costs O(1) and a whole trial costs O(vertices touched).
//!
//! The workspace is shared by the `_into` entry points of
//! [`crate::traversal::bfs_into`], [`crate::maxflow`] (Dinic levels and
//! iterator state) and, through [`crate::maxflow::FlowWorkspace`], the
//! Menger helpers. One workspace may serve domains of different sizes
//! back to back (e.g. a graph with `n` vertices and its split flow
//! network with `2n + 2` nodes): `TraversalWorkspace::begin` grows the
//! buffers on demand and never shrinks them.

use crate::ids::{EdgeId, VertexId};
use crate::traversal::UNREACHED;
use crate::Digraph;
use std::ops::Range;

/// Per-kernel work counters, accumulated by the traversal workspaces.
///
/// These are *deterministic* cost measures (they count algorithmic
/// steps, not wall-clock), so they can feed reproducible reports: the
/// same run always pops the same frontiers. Counters accumulate across
/// traversals until [`TraversalWorkspace::reset_stats`] /
/// [`crate::sliced::SlicedWorkspace::reset_stats`]; readers that want a
/// per-operation delta snapshot before and after.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Epoch-stamped workspace resets (`begin` calls): one per
    /// traversal started, the O(1)-clear discipline's unit of work.
    pub epoch_resets: u64,
    /// Vertices popped off the bidirectional route search's frontiers
    /// ([`crate::traversal::bibfs_into`], both cones) — the dominant
    /// cost of a `connect` attempt.
    pub bibfs_pops: u64,
    /// Worklist pops of the 64-lane sliced reachability sweep.
    pub sliced_pops: u64,
    /// Lane bits newly decided by sliced frontier absorption.
    pub sliced_lane_decisions: u64,
}

impl KernelStats {
    /// Folds another counter set into this one.
    #[inline]
    pub fn merge(&mut self, other: &KernelStats) {
        self.epoch_resets += other.epoch_resets;
        self.bibfs_pops += other.bibfs_pops;
        self.sliced_pops += other.sliced_pops;
        self.sliced_lane_decisions += other.sliced_lane_decisions;
    }
}

/// Reusable buffers for BFS-shaped traversals, cleared in O(touched).
///
/// After a traversal (`bfs_into` and friends) the workspace *is* the
/// result: query it with [`reached`](Self::reached),
/// [`dist`](Self::dist), [`parent_edge`](Self::parent_edge),
/// [`order`](Self::order) and [`path_to`](Self::path_to). The result
/// stays valid until the next traversal that borrows the workspace.
#[derive(Clone, Debug, Default)]
pub struct TraversalWorkspace {
    /// Current epoch; an entry `i` is live iff `stamp[i] == epoch`.
    epoch: u32,
    stamp: Vec<u32>,
    /// BFS distance / Dinic level of each touched entry.
    pub(crate) dist: Vec<u32>,
    /// BFS parent edge bits / Dinic per-node arc cursor.
    pub(crate) parent: Vec<u32>,
    /// FIFO queue; after a BFS this is the discovery order.
    pub(crate) queue: Vec<VertexId>,
    /// Deterministic work counters (resets, bibfs frontier pops).
    pub(crate) stats: KernelStats,
}

impl TraversalWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new traversal over a domain of `n` entries: grows the
    /// buffers if needed and invalidates every previous stamp in O(1)
    /// (O(n) only on epoch wrap-around, once per 2³² traversals).
    pub(crate) fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0);
            self.parent.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.stats.epoch_resets += 1;
        self.queue.clear();
    }

    /// The workspace's accumulated [`KernelStats`].
    #[inline]
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Zeroes the accumulated [`KernelStats`].
    pub fn reset_stats(&mut self) {
        self.stats = KernelStats::default();
    }

    /// Whether entry `i` has been touched in the current traversal.
    #[inline(always)]
    pub(crate) fn is_touched(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    /// Marks entry `i` touched in the current traversal.
    #[inline(always)]
    pub(crate) fn touch(&mut self, i: usize) {
        self.stamp[i] = self.epoch;
    }

    /// Whether `v` was reached by the last traversal.
    #[inline]
    pub fn reached(&self, v: VertexId) -> bool {
        self.is_touched(v.index())
    }

    /// Distance of `v` from the sources of the last traversal, or
    /// [`UNREACHED`] if it was not reached.
    #[inline]
    pub fn dist(&self, v: VertexId) -> u32 {
        if self.is_touched(v.index()) {
            self.dist[v.index()]
        } else {
            UNREACHED
        }
    }

    /// Edge by which `v` was discovered ([`EdgeId::NONE`] for sources
    /// and unreached vertices).
    #[inline]
    pub fn parent_edge(&self, v: VertexId) -> EdgeId {
        if self.is_touched(v.index()) {
            EdgeId(self.parent[v.index()])
        } else {
            EdgeId::NONE
        }
    }

    /// Vertices reached by the last traversal, in discovery order.
    #[inline]
    pub fn order(&self) -> &[VertexId] {
        &self.queue
    }

    /// Number of vertices reached by the last traversal.
    #[inline]
    pub fn num_reached(&self) -> usize {
        self.queue.len()
    }

    /// How many reached vertices have ids in `range` — O(reached), not
    /// O(|range|), so counting boundary-stage access in a huge network
    /// costs only the vertices the walk actually touched.
    pub fn count_reached_in(&self, range: Range<u32>) -> usize {
        self.queue.iter().filter(|v| range.contains(&v.0)).count()
    }

    /// Reconstructs a path from some source of the last traversal to `v`
    /// (inclusive), following parent edges backwards. Returns `None` if
    /// `v` was not reached. `g` must be the graph the traversal ran on.
    pub fn path_to(&self, g: &impl Digraph, v: VertexId) -> Option<Vec<VertexId>> {
        let mut path = Vec::new();
        self.path_to_into(g, v, &mut path).then_some(path)
    }

    /// Buffer-reusing form of [`Self::path_to`]: writes the path into
    /// `out` (cleared first) and returns whether `v` was reached. The
    /// circuit router's connect hot path recycles session path buffers
    /// through this instead of allocating a fresh `Vec` per circuit.
    pub fn path_to_into(&self, g: &impl Digraph, v: VertexId, out: &mut Vec<VertexId>) -> bool {
        out.clear();
        if !self.reached(v) {
            return false;
        }
        out.push(v);
        let mut cur = v;
        loop {
            let e = self.parent_edge(cur);
            if e.is_none() {
                break;
            }
            cur = g.other_endpoint(e, cur);
            out.push(cur);
        }
        out.reverse();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::v;
    use crate::traversal::{bfs_into, Direction};
    use crate::DiGraph;

    fn chain(n: usize) -> DiGraph {
        let mut g = DiGraph::new();
        g.add_vertices(n);
        for i in 0..n - 1 {
            g.add_edge(v(i as u32), v(i as u32 + 1));
        }
        g
    }

    #[test]
    fn epoch_reset_invalidates_previous_run() {
        let g = chain(4);
        let mut ws = TraversalWorkspace::new();
        bfs_into(&g, &[v(0)], Direction::Forward, |_| true, |_| true, &mut ws);
        assert!(ws.reached(v(3)));
        // second run from the far end: old reachability must be gone
        bfs_into(&g, &[v(3)], Direction::Forward, |_| true, |_| true, &mut ws);
        assert!(ws.reached(v(3)));
        assert!(!ws.reached(v(0)));
        assert_eq!(ws.dist(v(0)), UNREACHED);
        assert_eq!(ws.parent_edge(v(0)), EdgeId::NONE);
    }

    #[test]
    fn grows_across_domains() {
        let small = chain(3);
        let big = chain(50);
        let mut ws = TraversalWorkspace::new();
        bfs_into(
            &small,
            &[v(0)],
            Direction::Forward,
            |_| true,
            |_| true,
            &mut ws,
        );
        assert_eq!(ws.num_reached(), 3);
        bfs_into(
            &big,
            &[v(0)],
            Direction::Forward,
            |_| true,
            |_| true,
            &mut ws,
        );
        assert_eq!(ws.num_reached(), 50);
        assert_eq!(ws.dist(v(49)), 49);
    }

    #[test]
    fn count_reached_in_range() {
        let g = chain(10);
        let mut ws = TraversalWorkspace::new();
        bfs_into(&g, &[v(4)], Direction::Forward, |_| true, |_| true, &mut ws);
        assert_eq!(ws.count_reached_in(0..10), 6);
        assert_eq!(ws.count_reached_in(0..4), 0);
        assert_eq!(ws.count_reached_in(8..10), 2);
    }

    #[test]
    fn path_reconstruction() {
        let g = chain(5);
        let mut ws = TraversalWorkspace::new();
        bfs_into(&g, &[v(0)], Direction::Forward, |_| true, |_| true, &mut ws);
        let p = ws.path_to(&g, v(4)).unwrap();
        assert_eq!(p, vec![v(0), v(1), v(2), v(3), v(4)]);
        bfs_into(&g, &[v(2)], Direction::Forward, |_| true, |_| true, &mut ws);
        assert!(ws.path_to(&g, v(0)).is_none());
    }
}
