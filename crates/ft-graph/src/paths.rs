//! Path values and disjointness checks.
//!
//! Routing code across the workspace passes around vertex sequences; this
//! module gives them a validated type and the disjointness predicates the
//! paper's definitions (§2) are phrased in.

use crate::ids::VertexId;
use crate::Digraph;
use std::collections::HashSet;

/// A directed path, stored as its vertex sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    vertices: Vec<VertexId>,
}

impl Path {
    /// Wraps a vertex sequence, validating that consecutive vertices are
    /// joined by an edge of `g` and that no vertex repeats.
    pub fn new<G: Digraph>(g: &G, vertices: Vec<VertexId>) -> Result<Self, PathError> {
        if vertices.is_empty() {
            return Err(PathError::Empty);
        }
        let mut seen = HashSet::with_capacity(vertices.len());
        for &u in &vertices {
            if !seen.insert(u) {
                return Err(PathError::RepeatedVertex(u));
            }
        }
        for w in vertices.windows(2) {
            let (a, b) = (w[0], w[1]);
            let ok = g.out_edge_slice(a).iter().any(|&e| g.edge_head(e) == b);
            if !ok {
                return Err(PathError::MissingEdge(a, b));
            }
        }
        Ok(Path { vertices })
    }

    /// Wraps a vertex sequence without validation (for hot paths that
    /// construct provably valid sequences).
    pub fn new_unchecked(vertices: Vec<VertexId>) -> Self {
        Path { vertices }
    }

    /// First vertex.
    pub fn source(&self) -> VertexId {
        self.vertices[0]
    }

    /// Last vertex.
    pub fn sink(&self) -> VertexId {
        *self.vertices.last().unwrap()
    }

    /// Number of edges (vertices − 1).
    pub fn len(&self) -> usize {
        self.vertices.len() - 1
    }

    /// Whether the path is a single vertex.
    pub fn is_empty(&self) -> bool {
        self.vertices.len() == 1
    }

    /// The vertex sequence.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }
}

/// Why a vertex sequence is not a valid path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// No vertices at all.
    Empty,
    /// A vertex occurs twice.
    RepeatedVertex(VertexId),
    /// Two consecutive vertices have no connecting edge.
    MissingEdge(VertexId, VertexId),
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::Empty => write!(f, "empty vertex sequence"),
            PathError::RepeatedVertex(v) => write!(f, "vertex {v} repeats"),
            PathError::MissingEdge(a, b) => write!(f, "no edge {a} -> {b}"),
        }
    }
}

impl std::error::Error for PathError {}

/// Whether a family of vertex sequences is pairwise vertex-disjoint
/// (including endpoints — the paper's requirement in all three network
/// definitions).
pub fn are_vertex_disjoint<'a>(paths: impl IntoIterator<Item = &'a [VertexId]>) -> bool {
    let mut seen = HashSet::new();
    for p in paths {
        for &u in p {
            if !seen.insert(u) {
                return false;
            }
        }
    }
    true
}

/// Whether a family of paths is pairwise *edge*-disjoint, given the edge
/// sequences implied by consecutive vertex pairs. Vertices may repeat
/// across paths. Used by the Lemma 1 machinery, which wants edge-disjoint
/// (not vertex-disjoint) leaf-to-leaf paths. Treats edges as undirected
/// vertex pairs, matching the paper's undirected tree setting.
pub fn are_edge_disjoint<'a>(paths: impl IntoIterator<Item = &'a [VertexId]>) -> bool {
    let mut seen: HashSet<(VertexId, VertexId)> = HashSet::new();
    for p in paths {
        for w in p.windows(2) {
            let key = if w[0] < w[1] {
                (w[0], w[1])
            } else {
                (w[1], w[0])
            };
            if !seen.insert(key) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::v;
    use crate::DiGraph;

    fn chain() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.add_edge(v(2), v(3));
        g
    }

    #[test]
    fn valid_path() {
        let g = chain();
        let p = Path::new(&g, vec![v(0), v(1), v(2)]).unwrap();
        assert_eq!(p.source(), v(0));
        assert_eq!(p.sink(), v(2));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn trivial_path() {
        let g = chain();
        let p = Path::new(&g, vec![v(2)]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.source(), p.sink());
    }

    #[test]
    fn invalid_paths() {
        let g = chain();
        assert_eq!(Path::new(&g, vec![]).unwrap_err(), PathError::Empty);
        assert_eq!(
            Path::new(&g, vec![v(0), v(2)]).unwrap_err(),
            PathError::MissingEdge(v(0), v(2))
        );
        assert_eq!(
            Path::new(&g, vec![v(0), v(1), v(0)]).unwrap_err(),
            PathError::RepeatedVertex(v(0))
        );
        // direction matters
        assert!(Path::new(&g, vec![v(1), v(0)]).is_err());
    }

    #[test]
    fn vertex_disjointness() {
        let a = [v(0), v(1)];
        let b = [v(2), v(3)];
        let c = [v(1), v(4)];
        assert!(are_vertex_disjoint([&a[..], &b[..]]));
        assert!(!are_vertex_disjoint([&a[..], &c[..]]));
        assert!(are_vertex_disjoint(std::iter::empty::<&[VertexId]>()));
    }

    #[test]
    fn edge_disjointness_allows_shared_vertices() {
        let a = [v(0), v(1), v(2)];
        let b = [v(3), v(1), v(4)]; // shares vertex 1 but no edge
        assert!(are_edge_disjoint([&a[..], &b[..]]));
        let c = [v(2), v(1), v(5)]; // uses edge {1,2} reversed
        assert!(!are_edge_disjoint([&a[..], &c[..]]));
    }
}
