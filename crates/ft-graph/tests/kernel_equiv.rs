//! Differential tests over the flow-kernel portfolio.
//!
//! The portfolio is also the oracle: on every instance the kernels can
//! all express, they must agree — FIFO push-relabel, Dinic, and (on
//! unit-capacity bipartite instances) Hopcroft–Karp. Agreement alone
//! can hide a shared bug, so every flow each kernel returns is also
//! checked by an independent feasibility audit (capacity, conservation,
//! integrality) that never consults either kernel's internals; and the
//! min-cost kernel is held to brute-force enumeration on small
//! instances, plus the portfolio-level bound the reroute planner relies
//! on: a min-cost flow never costs more than the flow Dinic happens to
//! find at the same value.

use ft_graph::gen;
use ft_graph::ids::VertexId;
use ft_graph::matching::hopcroft_karp;
use ft_graph::maxflow::{
    vertex_disjoint_paths_into, DisjointOptions, FlowKernel, FlowNetwork, FlowWorkspace,
    PrWorkspace,
};
use ft_graph::mincost::{min_cost_flow, CostFlowNetwork};
use ft_graph::paths::are_vertex_disjoint;
use ft_graph::staged::{StagedBuilder, StagedNetwork};
use proptest::prelude::*;
use rand::Rng;

/// An arc as the test added it: `(u, v, cap, index)`. The feasibility
/// audit works off this record, never off kernel state.
type ArcRec = (u32, u32, u32, u32);

/// A random capacitated instance: node count, arc records, and the
/// network itself (plus parallel cost labels for the min-cost checks).
fn random_instance(
    r: &mut rand::rngs::SmallRng,
    max_n: usize,
    max_m: usize,
) -> (FlowNetwork, Vec<ArcRec>, u32, u32) {
    let n = r.random_range(2..=max_n);
    let m = r.random_range(0..=max_m);
    let mut net = FlowNetwork::new(n);
    let mut arcs = Vec::with_capacity(m);
    for _ in 0..m {
        let u = r.random_range(0..n) as u32;
        let mut v = r.random_range(0..n) as u32;
        if u == v {
            v = (v + 1) % n as u32;
        }
        let cap = r.random_range(1..=4u32);
        let idx = net.add_arc(u, v, cap);
        arcs.push((u, v, cap, idx));
    }
    let s = 0u32;
    let t = (n - 1) as u32;
    (net, arcs, s, t)
}

/// Independent audit of the flow a kernel left in `net`: every arc
/// within capacity, conservation at every interior node, and the net
/// outflow of `s` equal to both the claimed value and the net inflow of
/// `t`. Works purely from the arc records and `flow_on`.
fn audit_flow(net: &FlowNetwork, arcs: &[ArcRec], s: u32, t: u32, claimed: u64) {
    let n = net.num_nodes();
    let mut net_out = vec![0i64; n];
    for &(u, v, cap, idx) in arcs {
        let f = net.flow_on(idx);
        assert!(f <= cap, "arc {u}->{v}: flow {f} exceeds cap {cap}");
        net_out[u as usize] += f as i64;
        net_out[v as usize] -= f as i64;
    }
    for w in 0..n as u32 {
        if w == s || w == t {
            continue;
        }
        assert_eq!(net_out[w as usize], 0, "conservation violated at {w}");
    }
    assert_eq!(
        net_out[s as usize], claimed as i64,
        "source outflow != value"
    );
    assert_eq!(
        net_out[t as usize],
        -(claimed as i64),
        "sink inflow != value"
    );
}

/// A random staged network: `widths` gives the stage sizes, each
/// consecutive-stage switch present with probability 0.6.
fn random_staged(r: &mut rand::rngs::SmallRng, widths: &[usize]) -> StagedNetwork {
    let mut b = StagedBuilder::new();
    let ranges: Vec<_> = widths.iter().map(|&w| b.add_stage(w)).collect();
    for w in ranges.windows(2) {
        for t in w[0].clone() {
            for h in w[1].clone() {
                if r.random_bool(0.6) {
                    b.add_edge(VertexId(t), VertexId(h));
                }
            }
        }
    }
    b.set_inputs(ranges[0].clone().map(VertexId).collect());
    b.set_outputs(ranges[ranges.len() - 1].clone().map(VertexId).collect());
    b.finish()
}

/// Runs one kernel over a staged instance and returns (count, paths).
fn disjoint_with(
    net: &StagedNetwork,
    s: &[VertexId],
    t: &[VertexId],
    idle: &[bool],
    kernel: FlowKernel,
    fw: &mut FlowWorkspace,
) -> (u32, Vec<Vec<VertexId>>) {
    let r = vertex_disjoint_paths_into(
        net.graph(),
        s,
        t,
        |_| true,
        |v| idle[v.index()],
        DisjointOptions {
            count_only: false,
            limit: None,
            kernel,
        },
        fw,
    );
    (r.count, r.paths)
}

proptest! {
    /// The headline differential: random staged networks × random idle
    /// masks × random source/sink cuts. Dinic and push-relabel must
    /// return the same disjoint-path count, and each kernel's extracted
    /// paths must independently check out (disjoint, idle-respecting,
    /// real directed paths from a chosen source to a chosen sink).
    #[test]
    fn kernels_agree_on_staged_networks_under_idle_masks(
        seed in 0u64..2000,
        widths in proptest::collection::vec(1usize..6, 2..6),
    ) {
        let mut r = gen::rng(seed);
        let net = random_staged(&mut r, &widths);
        let n = net.graph().num_vertices();
        let idle: Vec<bool> = (0..n).map(|_| r.random_bool(0.75)).collect();
        // random source/sink cuts: shuffle and take a random prefix
        let mut src = net.inputs().to_vec();
        let mut dst = net.outputs().to_vec();
        use rand::seq::SliceRandom;
        src.shuffle(&mut r);
        dst.shuffle(&mut r);
        let s = &src[..r.random_range(1..=src.len())];
        let t = &dst[..r.random_range(1..=dst.len())];
        // ONE workspace reused across both kernels and all cases: the
        // equivalence must survive whatever the other kernel left behind.
        let mut fw = FlowWorkspace::new();
        let (cd, pd) = disjoint_with(&net, s, t, &idle, FlowKernel::Dinic, &mut fw);
        let (cp, pp) = disjoint_with(&net, s, t, &idle, FlowKernel::PushRelabel, &mut fw);
        prop_assert_eq!(cd, cp, "Dinic {} != push-relabel {}", cd, cp);
        for (label, count, paths) in [("dinic", cd, &pd), ("push-relabel", cp, &pp)] {
            prop_assert_eq!(paths.len(), count as usize, "{}", label);
            prop_assert!(are_vertex_disjoint(paths.iter().map(|p| p.as_slice())));
            for p in paths {
                prop_assert!(s.contains(&p[0]), "{}: bad start", label);
                prop_assert!(t.contains(p.last().unwrap()), "{}: bad end", label);
                for &v in p {
                    prop_assert!(idle[v.index()], "{}: path crosses busy vertex", label);
                }
                for w in p.windows(2) {
                    prop_assert!(net.graph().has_edge(w[0], w[1]), "{}: missing edge", label);
                }
            }
        }
    }

    /// Unit-capacity bipartite instances admit a third, structurally
    /// different oracle: Hopcroft–Karp. On 2-stage networks under idle
    /// masks, matching size, Dinic, and push-relabel must all coincide.
    #[test]
    fn hopcroft_karp_agrees_on_bipartite_instances(
        seed in 0u64..2000,
        left in 1usize..7,
        right in 1usize..7,
    ) {
        let mut r = gen::rng(seed);
        let net = random_staged(&mut r, &[left, right]);
        let n = net.graph().num_vertices();
        let idle: Vec<bool> = (0..n).map(|_| r.random_bool(0.75)).collect();
        // the bipartite adjacency over idle vertices only
        let live_left: Vec<VertexId> =
            net.inputs().iter().copied().filter(|v| idle[v.index()]).collect();
        let live_right: Vec<VertexId> =
            net.outputs().iter().copied().filter(|v| idle[v.index()]).collect();
        let rpos = |v: VertexId| live_right.iter().position(|&x| x == v).map(|p| p as u32);
        let adj: Vec<Vec<u32>> = live_left
            .iter()
            .map(|&l| {
                net.graph()
                    .out_edges(l)
                    .iter()
                    .filter_map(|&e| rpos(net.graph().endpoints(e).1))
                    .collect()
            })
            .collect();
        let m = hopcroft_karp(&adj, live_right.len());
        let mut fw = FlowWorkspace::new();
        let (cd, _) = disjoint_with(
            &net, net.inputs(), net.outputs(), &idle, FlowKernel::Dinic, &mut fw);
        let (cp, _) = disjoint_with(
            &net, net.inputs(), net.outputs(), &idle, FlowKernel::PushRelabel, &mut fw);
        prop_assert_eq!(m.size as u32, cd, "matching != dinic");
        prop_assert_eq!(m.size as u32, cp, "matching != push-relabel");
    }

    /// On arbitrary-capacity random instances both kernels must return
    /// the same value AND each must leave a flow that survives the
    /// independent feasibility audit.
    #[test]
    fn both_kernels_leave_audited_maximum_flows(seed in 0u64..3000) {
        let mut r = gen::rng(seed);
        let (mut net, arcs, s, t) = random_instance(&mut r, 9, 24);
        let dinic = {
            let mut d = net.clone();
            let v = d.max_flow(s, t, None) as u64;
            audit_flow(&d, &arcs, s, t, v);
            v
        };
        let mut prw = PrWorkspace::new();
        let pr = net.push_relabel_into(s, t, &mut prw) as u64;
        audit_flow(&net, &arcs, s, t, pr);
        prop_assert_eq!(dinic, pr);
    }

    /// Min-cost flow vs brute force: on small instances, enumerate every
    /// integral flow assignment, find the true maximum value and the
    /// cheapest flow of that value, and demand the kernel match both —
    /// and that its residual passes the same feasibility audit.
    #[test]
    fn min_cost_flow_matches_brute_force(seed in 0u64..1500) {
        let mut r = gen::rng(seed);
        let n = r.random_range(2..=5usize);
        let m = r.random_range(0..=7usize);
        let mut net = CostFlowNetwork::new(n);
        let mut arcs: Vec<(u32, u32, u32, i64, u32)> = Vec::with_capacity(m);
        for _ in 0..m {
            let u = r.random_range(0..n) as u32;
            let mut v = r.random_range(0..n) as u32;
            if u == v {
                v = (v + 1) % n as u32;
            }
            let cap = r.random_range(1..=2u32);
            let cost = r.random_range(0..=4i64);
            let idx = net.add_arc(u, v, cap, cost);
            arcs.push((u, v, cap, cost, idx));
        }
        let (s, t) = (0u32, (n - 1) as u32);
        // brute force: every per-arc flow in 0..=cap, keep conserving
        // assignments, track (max value, min cost at max value)
        let mut best_value = 0i64;
        let mut best_cost = 0i64;
        let total: usize = arcs.iter().map(|a| a.2 as usize + 1).product();
        for code in 0..total {
            let mut rem = code;
            let mut net_out = vec![0i64; n];
            let mut cost = 0i64;
            for &(u, v, cap, c, _) in &arcs {
                let f = (rem % (cap as usize + 1)) as i64;
                rem /= cap as usize + 1;
                net_out[u as usize] += f;
                net_out[v as usize] -= f;
                cost += f * c;
            }
            if (0..n).any(|w| w != s as usize && w != t as usize && net_out[w] != 0) {
                continue;
            }
            let value = net_out[s as usize];
            if value > best_value || (value == best_value && cost < best_cost) {
                best_value = value;
                best_cost = cost;
            }
        }
        let got = min_cost_flow(&mut net, s, t, None);
        prop_assert_eq!(got.flow as i64, best_value, "flow value not maximum");
        prop_assert_eq!(got.value, best_cost, "cost not minimal");
        // independent audit of what the kernel left behind
        let mut net_out = vec![0i64; n];
        let mut cost = 0i64;
        for &(u, v, cap, c, idx) in &arcs {
            let f = net.flow_on(idx);
            prop_assert!(f <= cap);
            net_out[u as usize] += f as i64;
            net_out[v as usize] -= f as i64;
            cost += f as i64 * c;
        }
        for (w, &flux) in net_out.iter().enumerate() {
            if w != s as usize && w != t as usize {
                prop_assert_eq!(flux, 0);
            }
        }
        prop_assert_eq!(net_out[s as usize], got.flow as i64);
        prop_assert_eq!(cost, got.value);
    }

    /// The minimal-disruption bound the reroute planner rests on: under
    /// any nonnegative cost labelling, the min-cost kernel's flow at
    /// value F costs no more than the flow Dinic happens to find at the
    /// same value F. (The engine-level statement — mincost reroutes
    /// never move more circuits than greedy — is pinned in ft-sim; this
    /// is its kernel-level core.)
    #[test]
    fn mincost_never_costs_more_than_dinics_flow(seed in 0u64..1500) {
        let mut r = gen::rng(seed);
        let (mut fnet, arcs, s, t) = random_instance(&mut r, 8, 18);
        let costs: Vec<i64> = arcs.iter().map(|_| r.random_range(0..=5i64)).collect();
        let value = fnet.max_flow(s, t, None);
        let dinic_cost: i64 = arcs
            .iter()
            .zip(&costs)
            .map(|(&(_, _, _, idx), &c)| fnet.flow_on(idx) as i64 * c)
            .sum();
        let mut cnet = CostFlowNetwork::new(fnet.num_nodes());
        for (&(u, v, cap, _), &c) in arcs.iter().zip(&costs) {
            cnet.add_arc(u, v, cap, c);
        }
        let got = min_cost_flow(&mut cnet, s, t, None);
        prop_assert_eq!(got.flow, value, "kernels disagree on max-flow value");
        prop_assert!(
            got.value <= dinic_cost,
            "min-cost {} exceeds Dinic's incidental cost {}",
            got.value,
            dinic_cost
        );
    }
}
