//! Property-based tests for the graph kernel invariants.

use ft_graph::gen;
use ft_graph::ids::VertexId;
use ft_graph::matching::{hopcroft_karp, hopcroft_karp_into, MatchingWorkspace};
use ft_graph::maxflow::{
    vertex_disjoint_paths, vertex_disjoint_paths_into, DisjointOptions, FlowNetwork,
};
use ft_graph::menger::max_disjoint_paths;
use ft_graph::paths::are_vertex_disjoint;
use ft_graph::sliced::{sliced_reach_into, SlicedWorkspace, LANES};
use ft_graph::staged::StagedBuilder;
use ft_graph::traversal::{
    bfs, bfs_forward, bfs_into, bibfs_into, dag_depth, is_acyclic, topo_order, Direction,
};
use ft_graph::tree::{
    contract_stretches, is_forest, leaves, min_internal_degree_3, reduce_to_degree_3,
};
use ft_graph::{Csr, DiGraph, FlowWorkspace, TraversalWorkspace};
use proptest::prelude::*;

/// Strategy: a random DAG described by (n, edge list of (a, b) with a < b).
fn dag_strategy() -> impl Strategy<Value = DiGraph> {
    (2usize..24).prop_flat_map(|n| {
        let edge = (0..n - 1).prop_flat_map(move |a| (Just(a), a + 1..n));
        proptest::collection::vec(edge, 0..80).prop_map(move |edges| {
            let mut g = DiGraph::new();
            g.add_vertices(n);
            for (a, b) in edges {
                g.add_edge(VertexId::from(a), VertexId::from(b));
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn dags_are_acyclic_and_topo_sorted(g in dag_strategy()) {
        prop_assert!(is_acyclic(&g));
        let order = topo_order(&g).unwrap();
        let mut pos = vec![0usize; g.num_vertices()];
        for (i, u) in order.iter().enumerate() {
            pos[u.index()] = i;
        }
        for (_, t, h) in g.edges() {
            prop_assert!(pos[t.index()] < pos[h.index()]);
        }
    }

    #[test]
    fn csr_preserves_adjacency(g in dag_strategy()) {
        let c = Csr::from_digraph(&g);
        prop_assert_eq!(c.num_vertices(), g.num_vertices());
        prop_assert_eq!(c.num_edges(), g.num_edges());
        for u in g.vertices() {
            let mut a: Vec<_> = g.out_edges(u).to_vec();
            let mut b: Vec<_> = c.out_edges(u).to_vec();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
        // BFS agrees between representations
        let bg = bfs_forward(&g, VertexId(0));
        let bc = bfs_forward(&c, VertexId(0));
        prop_assert_eq!(bg.dist, bc.dist);
    }

    #[test]
    fn depth_is_max_bfs_layer_on_trees(seed in 0u64..500, n in 2usize..40) {
        // On a tree all root->leaf paths are unique, so DAG depth from the
        // root equals the max BFS distance.
        let mut r = gen::rng(seed);
        let g = gen::random_tree(&mut r, n);
        let b = bfs_forward(&g, VertexId(0));
        let max_d = b.dist.iter().filter(|&&d| d != u32::MAX).max().copied().unwrap();
        prop_assert_eq!(dag_depth(&g), max_d);
    }

    #[test]
    fn disjoint_paths_are_disjoint_and_count_matches(g in dag_strategy()) {
        let n = g.num_vertices();
        let sources: Vec<_> = (0..n / 2).map(VertexId::from).collect();
        let sinks: Vec<_> = (n / 2..n).map(VertexId::from).collect();
        let r = vertex_disjoint_paths(&g, &sources, &sinks, |_| true, |_| true,
            DisjointOptions::default());
        prop_assert_eq!(r.paths.len(), r.count as usize);
        prop_assert!(are_vertex_disjoint(r.paths.iter().map(|p| p.as_slice())));
        // every path is a real directed path from a source to a sink
        for p in &r.paths {
            prop_assert!(sources.contains(&p[0]));
            prop_assert!(sinks.contains(p.last().unwrap()));
            for w in p.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
        // count-only agrees
        prop_assert_eq!(max_disjoint_paths(&g, &sources, &sinks), r.count);
    }

    #[test]
    fn matching_equals_flow(seed in 0u64..500) {
        let mut r = gen::rng(seed);
        use rand::Rng;
        let left = r.random_range(1..12usize);
        let right = r.random_range(1..12usize);
        let deg = r.random_range(0..=right.min(5));
        let adj = gen::random_bipartite_adjacency(&mut r, left, right, deg);
        let m = hopcroft_karp(&adj, right);
        let mut f = FlowNetwork::new(left + right + 2);
        let s = (left + right) as u32;
        let t = s + 1;
        for (l, nbrs) in adj.iter().enumerate() {
            f.add_arc(s, l as u32, 1);
            for &rr in nbrs {
                f.add_arc(l as u32, left as u32 + rr, 1);
            }
        }
        for rr in 0..right {
            f.add_arc((left + rr) as u32, t, 1);
        }
        prop_assert_eq!(m.size as u32, f.max_flow(s, t, None));
    }

    #[test]
    fn lemma1_trees_survive_reduction(seed in 0u64..300, l in 3usize..60) {
        let mut r = gen::rng(seed);
        let g = gen::random_lemma1_tree(&mut r, l);
        prop_assert!(min_internal_degree_3(&g));
        let (h, origin) = reduce_to_degree_3(&g);
        prop_assert!(min_internal_degree_3(&h));
        prop_assert_eq!(leaves(&h).len(), leaves(&g).len());
        prop_assert_eq!(origin.len(), h.num_vertices());
        for u in h.vertices() {
            prop_assert!(h.degree(u) <= 3);
        }
    }

    #[test]
    fn stretch_contraction_partitions_edges(seed in 0u64..300, n in 1usize..50) {
        let mut r = gen::rng(seed);
        let g = gen::random_tree(&mut r, n);
        prop_assert!(is_forest(&g));
        let c = contract_stretches(&g);
        let total: usize = c.edge_paths.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, g.num_edges());
        prop_assert!(is_forest(&c.graph));
        // each stretch is a connected original path: consecutive edges share a vertex
        for stretch in &c.edge_paths {
            for w in stretch.windows(2) {
                let (a1, b1) = g.endpoints(w[0]);
                let (a2, b2) = g.endpoints(w[1]);
                prop_assert!(a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2);
            }
        }
    }

    #[test]
    fn bfs_into_matches_allocating_bfs(g in dag_strategy(), seed in 0u64..1000) {
        use rand::Rng;
        let mut r = gen::rng(seed);
        let n = g.num_vertices();
        let src = VertexId::from(r.random_range(0..n));
        let src2 = VertexId::from(r.random_range(0..n));
        let banned_v = VertexId::from(r.random_range(0..n));
        let banned_e = r.random_range(0..g.num_edges().max(1)) as u32;
        let c = Csr::from_digraph(&g);
        // ONE workspace reused across all six runs: equivalence must hold
        // regardless of what a previous traversal left in the buffers.
        let mut ws = TraversalWorkspace::new();
        for dir in [Direction::Forward, Direction::Backward, Direction::Undirected] {
            let reference = bfs(
                &g, &[src, src2], dir,
                |e| e.0 != banned_e,
                |v| v != banned_v,
            );
            // unfiltered run first to plant stale state in the workspace
            bfs_into(&g, &[src2], Direction::Forward, |_| true, |_| true, &mut ws);
            // run over the CSR snapshot: representation must not matter
            bfs_into(&c, &[src, src2], dir, |e| e.0 != banned_e, |v| v != banned_v, &mut ws);
            for u in 0..n {
                let u = VertexId::from(u);
                prop_assert_eq!(reference.dist[u.index()], ws.dist(u));
                prop_assert_eq!(reference.parent_edge[u.index()], ws.parent_edge(u));
            }
            prop_assert_eq!(&reference.order, ws.order());
        }
    }

    #[test]
    fn disjoint_paths_into_matches_allocating(g in dag_strategy()) {
        let n = g.num_vertices();
        let sources: Vec<_> = (0..n / 2).map(VertexId::from).collect();
        let sinks: Vec<_> = (n / 2..n).map(VertexId::from).collect();
        let mut fw = FlowWorkspace::new();
        // repeated queries through one workspace, against fresh calls
        for banned in [None, Some(VertexId::from(n / 2))] {
            let fresh = vertex_disjoint_paths(&g, &sources, &sinks, |_| true,
                |v| Some(v) != banned, DisjointOptions::default());
            let reused = vertex_disjoint_paths_into(&g, &sources, &sinks, |_| true,
                |v| Some(v) != banned, DisjointOptions::default(), &mut fw);
            prop_assert_eq!(fresh.count, reused.count);
            prop_assert_eq!(&fresh.paths, &reused.paths);
        }
    }

    #[test]
    fn hopcroft_karp_into_matches_allocating(seed in 0u64..500) {
        let mut r = gen::rng(seed);
        use rand::Rng;
        let mut ws = MatchingWorkspace::new();
        for _ in 0..3 {
            let left = r.random_range(1..12usize);
            let right = r.random_range(1..12usize);
            let deg = r.random_range(0..=right.min(5));
            let adj = gen::random_bipartite_adjacency(&mut r, left, right, deg);
            let m = hopcroft_karp(&adj, right);
            let size = hopcroft_karp_into(&adj, right, &mut ws);
            prop_assert_eq!(m.size, size);
            prop_assert_eq!(&m.pair_left, &ws.pair_left);
            prop_assert_eq!(&m.pair_right, &ws.pair_right);
        }
    }

    #[test]
    fn min_cut_disconnects(g in dag_strategy()) {
        let n = g.num_vertices();
        let sources = [VertexId(0)];
        let sinks = [VertexId::from(n - 1)];
        let cut = ft_graph::menger::min_vertex_cut(&g, &sources, &sinks, |_| true);
        // removing the cut really disconnects source from sink
        let mask: std::collections::HashSet<_> = cut.iter().copied().collect();
        let b = ft_graph::traversal::bfs(
            &g,
            &sources,
            ft_graph::traversal::Direction::Forward,
            |_| true,
            |v| !mask.contains(&v),
        );
        prop_assert!(!b.reached(sinks[0]), "cut {:?} fails to disconnect", cut);
        // and the cut size matches Menger: max #internally-disjoint paths
        // (sources/sinks uncuttable here, so compare against flow where
        // only interior vertices are capacity-limited) — at minimum the
        // number of fully vertex-disjoint paths cannot exceed the cut size + 1
        let k = max_disjoint_paths(&g, &sources, &sinks);
        prop_assert!(k <= cut.len() as u32 + 1);
    }

    /// The lane-parallel reachability kernel must be the exact transpose
    /// of 64 scalar BFS runs: for every lane, membership under that
    /// lane's edge/vertex filter bits equals `bfs_into` under the same
    /// scalar filters — on every direction, with per-lane sources, and
    /// through a reused workspace.
    #[test]
    fn sliced_reach_matches_per_lane_bfs(g in dag_strategy(), seed in 0u64..1000) {
        use rand::Rng;
        let mut r = gen::rng(seed);
        let n = g.num_vertices();
        let m = g.num_edges();
        let c = Csr::from_digraph(&g);
        // random per-lane filters and sources, dense enough to differ
        let edge_words: Vec<u64> = (0..m).map(|_| r.random()).collect();
        let vertex_words: Vec<u64> = (0..n).map(|_| r.random()).collect();
        let s1 = VertexId::from(r.random_range(0..n));
        let s2 = VertexId::from(r.random_range(0..n));
        let sources = [(s1, r.random::<u64>()), (s2, r.random::<u64>())];
        let mut sws = SlicedWorkspace::new();
        let mut ws = TraversalWorkspace::new();
        for dir in [Direction::Forward, Direction::Backward, Direction::Undirected] {
            // stale-state run first: equivalence must survive reuse
            sliced_reach_into(&c, &[(s2, !0)], Direction::Forward, |_| !0, |_| !0, &mut sws);
            sliced_reach_into(
                &c, &sources, dir,
                |e| edge_words[e.index()],
                |v| vertex_words[v.index()],
                &mut sws,
            );
            for lane in 0..LANES {
                let srcs: Vec<VertexId> = sources.iter()
                    .filter(|&&(_, l)| (l >> lane) & 1 != 0)
                    .map(|&(s, _)| s)
                    .collect();
                bfs_into(
                    &c, &srcs, dir,
                    |e| (edge_words[e.index()] >> lane) & 1 != 0,
                    |v| (vertex_words[v.index()] >> lane) & 1 != 0,
                    &mut ws,
                );
                for u in 0..n {
                    let u = VertexId::from(u);
                    prop_assert_eq!(
                        sws.reached(u, lane), ws.reached(u),
                        "{:?} lane {} vertex {:?}", dir, lane, u
                    );
                }
            }
        }
    }

    /// Same transpose equivalence on the shape the Monte Carlo pipeline
    /// actually runs: staged networks under per-lane idle masks, sources
    /// at the input terminals.
    #[test]
    fn sliced_reach_matches_per_lane_bfs_on_staged_networks(
        seed in 0u64..1000,
        widths in proptest::collection::vec(1usize..6, 2..6),
    ) {
        use rand::Rng;
        let mut r = gen::rng(seed);
        let mut b = StagedBuilder::new();
        let ranges: Vec<_> = widths.iter().map(|&w| b.add_stage(w)).collect();
        for w in ranges.windows(2) {
            for t in w[0].clone() {
                for h in w[1].clone() {
                    if r.random_bool(0.6) {
                        b.add_edge(VertexId(t), VertexId(h));
                    }
                }
            }
        }
        b.set_inputs(ranges[0].clone().map(VertexId).collect());
        b.set_outputs(ranges[ranges.len() - 1].clone().map(VertexId).collect());
        let net = b.finish();
        let csr = net.csr();
        let n = csr.num_vertices();
        // per-lane idle masks (biased alive, like repair masks at small ε)
        let idle_words: Vec<u64> = (0..n).map(|_| r.random::<u64>() | r.random::<u64>()).collect();
        let sources: Vec<(VertexId, u64)> =
            net.inputs().iter().map(|&s| (s, r.random())).collect();
        let mut sws = SlicedWorkspace::new();
        let mut ws = TraversalWorkspace::new();
        sliced_reach_into(
            csr, &sources, Direction::Forward,
            |_| !0,
            |v| idle_words[v.index()],
            &mut sws,
        );
        for lane in 0..LANES {
            let srcs: Vec<VertexId> = sources.iter()
                .filter(|&&(_, l)| (l >> lane) & 1 != 0)
                .map(|&(s, _)| s)
                .collect();
            bfs_into(
                csr, &srcs, Direction::Forward,
                |_| true,
                |v| (idle_words[v.index()] >> lane) & 1 != 0,
                &mut ws,
            );
            for &out in net.outputs() {
                prop_assert_eq!(
                    sws.reached(out, lane), ws.reached(out),
                    "lane {} output {:?}", lane, out
                );
            }
        }
    }

    /// The bidirectional stage-aware search must be *bit-identical* to a
    /// full forward BFS: same reachability verdict and the same path
    /// (same vertices, same tie-breaks) for every terminal pair, under
    /// arbitrary idle masks. The simulation engine's pinned event
    /// fingerprints rely on this equivalence.
    #[test]
    fn bibfs_matches_forward_bfs_exactly(
        seed in 0u64..1000,
        widths in proptest::collection::vec(1usize..6, 2..6),
    ) {
        use rand::Rng;
        let mut r = gen::rng(seed);
        let mut b = StagedBuilder::new();
        let ranges: Vec<_> = widths.iter().map(|&w| b.add_stage(w)).collect();
        for w in ranges.windows(2) {
            for t in w[0].clone() {
                for h in w[1].clone() {
                    if r.random_bool(0.6) {
                        b.add_edge(VertexId(t), VertexId(h));
                    }
                    if r.random_bool(0.1) {
                        // parallel switches stress the tie-break rules
                        b.add_edge(VertexId(t), VertexId(h));
                    }
                }
            }
        }
        b.set_inputs(ranges[0].clone().map(VertexId).collect());
        b.set_outputs(ranges[ranges.len() - 1].clone().map(VertexId).collect());
        let net = b.finish();
        prop_assume!(net.is_unit_staged());
        let n = net.graph().num_vertices();
        let idle: Vec<bool> = (0..n).map(|_| r.random_bool(0.8)).collect();
        let csr = net.csr();
        let stage_of = net.stage_table();
        let (mut reference, mut fwd, mut bwd) = (
            TraversalWorkspace::new(),
            TraversalWorkspace::new(),
            TraversalWorkspace::new(),
        );
        for &src in net.inputs() {
            for &dst in net.outputs() {
                if !idle[src.index()] || !idle[dst.index()] {
                    continue;
                }
                bfs_into(csr, &[src], Direction::Forward, |_| true,
                         |v| idle[v.index()], &mut reference);
                let want = reference.path_to(csr, dst);
                // exactness must hold under EVERY backward budget
                for budget in [0u32, 1, 2, u32::MAX] {
                    // CSR fast path (parallel head slices)
                    let got = bibfs_into(csr, src, dst, stage_of, budget,
                                         |v| idle[v.index()], &mut fwd, &mut bwd);
                    prop_assert_eq!(got, want.is_some());
                    if got {
                        prop_assert_eq!(fwd.path_to(csr, dst), want.clone());
                    }
                    // generic fallback (no head slices on StagedNetwork)
                    let got2 = bibfs_into(&net, src, dst, stage_of, budget,
                                          |v| idle[v.index()], &mut fwd, &mut bwd);
                    prop_assert_eq!(got2, want.is_some());
                    if got2 {
                        prop_assert_eq!(fwd.path_to(&net, dst), want.clone());
                    }
                }
            }
        }
    }
}
