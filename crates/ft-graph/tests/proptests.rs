//! Property-based tests for the graph kernel invariants.

use ft_graph::gen;
use ft_graph::ids::VertexId;
use ft_graph::matching::hopcroft_karp;
use ft_graph::maxflow::{vertex_disjoint_paths, DisjointOptions, FlowNetwork};
use ft_graph::menger::max_disjoint_paths;
use ft_graph::paths::are_vertex_disjoint;
use ft_graph::traversal::{bfs_forward, dag_depth, is_acyclic, topo_order};
use ft_graph::tree::{
    contract_stretches, is_forest, leaves, min_internal_degree_3, reduce_to_degree_3,
};
use ft_graph::{Csr, DiGraph};
use proptest::prelude::*;

/// Strategy: a random DAG described by (n, edge list of (a, b) with a < b).
fn dag_strategy() -> impl Strategy<Value = DiGraph> {
    (2usize..24).prop_flat_map(|n| {
        let edge = (0..n - 1).prop_flat_map(move |a| (Just(a), a + 1..n));
        proptest::collection::vec(edge, 0..80).prop_map(move |edges| {
            let mut g = DiGraph::new();
            g.add_vertices(n);
            for (a, b) in edges {
                g.add_edge(VertexId::from(a), VertexId::from(b));
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn dags_are_acyclic_and_topo_sorted(g in dag_strategy()) {
        prop_assert!(is_acyclic(&g));
        let order = topo_order(&g).unwrap();
        let mut pos = vec![0usize; g.num_vertices()];
        for (i, u) in order.iter().enumerate() {
            pos[u.index()] = i;
        }
        for (_, t, h) in g.edges() {
            prop_assert!(pos[t.index()] < pos[h.index()]);
        }
    }

    #[test]
    fn csr_preserves_adjacency(g in dag_strategy()) {
        let c = Csr::from_digraph(&g);
        prop_assert_eq!(c.num_vertices(), g.num_vertices());
        prop_assert_eq!(c.num_edges(), g.num_edges());
        for u in g.vertices() {
            let mut a: Vec<_> = g.out_edges(u).to_vec();
            let mut b: Vec<_> = c.out_edges(u).to_vec();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
        // BFS agrees between representations
        let bg = bfs_forward(&g, VertexId(0));
        let bc = bfs_forward(&c, VertexId(0));
        prop_assert_eq!(bg.dist, bc.dist);
    }

    #[test]
    fn depth_is_max_bfs_layer_on_trees(seed in 0u64..500, n in 2usize..40) {
        // On a tree all root->leaf paths are unique, so DAG depth from the
        // root equals the max BFS distance.
        let mut r = gen::rng(seed);
        let g = gen::random_tree(&mut r, n);
        let b = bfs_forward(&g, VertexId(0));
        let max_d = b.dist.iter().filter(|&&d| d != u32::MAX).max().copied().unwrap();
        prop_assert_eq!(dag_depth(&g), max_d);
    }

    #[test]
    fn disjoint_paths_are_disjoint_and_count_matches(g in dag_strategy()) {
        let n = g.num_vertices();
        let sources: Vec<_> = (0..n / 2).map(VertexId::from).collect();
        let sinks: Vec<_> = (n / 2..n).map(VertexId::from).collect();
        let r = vertex_disjoint_paths(&g, &sources, &sinks, |_| true, |_| true,
            DisjointOptions::default());
        prop_assert_eq!(r.paths.len(), r.count as usize);
        prop_assert!(are_vertex_disjoint(r.paths.iter().map(|p| p.as_slice())));
        // every path is a real directed path from a source to a sink
        for p in &r.paths {
            prop_assert!(sources.contains(&p[0]));
            prop_assert!(sinks.contains(p.last().unwrap()));
            for w in p.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
        // count-only agrees
        prop_assert_eq!(max_disjoint_paths(&g, &sources, &sinks), r.count);
    }

    #[test]
    fn matching_equals_flow(seed in 0u64..500) {
        let mut r = gen::rng(seed);
        use rand::Rng;
        let left = r.random_range(1..12usize);
        let right = r.random_range(1..12usize);
        let deg = r.random_range(0..=right.min(5));
        let adj = gen::random_bipartite_adjacency(&mut r, left, right, deg);
        let m = hopcroft_karp(&adj, right);
        let mut f = FlowNetwork::new(left + right + 2);
        let s = (left + right) as u32;
        let t = s + 1;
        for (l, nbrs) in adj.iter().enumerate() {
            f.add_arc(s, l as u32, 1);
            for &rr in nbrs {
                f.add_arc(l as u32, left as u32 + rr, 1);
            }
        }
        for rr in 0..right {
            f.add_arc((left + rr) as u32, t, 1);
        }
        prop_assert_eq!(m.size as u32, f.max_flow(s, t, None));
    }

    #[test]
    fn lemma1_trees_survive_reduction(seed in 0u64..300, l in 3usize..60) {
        let mut r = gen::rng(seed);
        let g = gen::random_lemma1_tree(&mut r, l);
        prop_assert!(min_internal_degree_3(&g));
        let (h, origin) = reduce_to_degree_3(&g);
        prop_assert!(min_internal_degree_3(&h));
        prop_assert_eq!(leaves(&h).len(), leaves(&g).len());
        prop_assert_eq!(origin.len(), h.num_vertices());
        for u in h.vertices() {
            prop_assert!(h.degree(u) <= 3);
        }
    }

    #[test]
    fn stretch_contraction_partitions_edges(seed in 0u64..300, n in 1usize..50) {
        let mut r = gen::rng(seed);
        let g = gen::random_tree(&mut r, n);
        prop_assert!(is_forest(&g));
        let c = contract_stretches(&g);
        let total: usize = c.edge_paths.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, g.num_edges());
        prop_assert!(is_forest(&c.graph));
        // each stretch is a connected original path: consecutive edges share a vertex
        for stretch in &c.edge_paths {
            for w in stretch.windows(2) {
                let (a1, b1) = g.endpoints(w[0]);
                let (a2, b2) = g.endpoints(w[1]);
                prop_assert!(a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2);
            }
        }
    }

    #[test]
    fn min_cut_disconnects(g in dag_strategy()) {
        let n = g.num_vertices();
        let sources = [VertexId(0)];
        let sinks = [VertexId::from(n - 1)];
        let cut = ft_graph::menger::min_vertex_cut(&g, &sources, &sinks, |_| true);
        // removing the cut really disconnects source from sink
        let mask: std::collections::HashSet<_> = cut.iter().copied().collect();
        let b = ft_graph::traversal::bfs(
            &g,
            &sources,
            ft_graph::traversal::Direction::Forward,
            |_| true,
            |v| !mask.contains(&v),
        );
        prop_assert!(!b.reached(sinks[0]), "cut {:?} fails to disconnect", cut);
        // and the cut size matches Menger: max #internally-disjoint paths
        // (sources/sinks uncuttable here, so compare against flow where
        // only interior vertices are capacity-limited) — at minimum the
        // number of fully vertex-disjoint paths cannot exceed the cut size + 1
        let k = max_disjoint_paths(&g, &sources, &sinks);
        prop_assert!(k <= cut.len() as u32 + 1);
    }
}
