//! Property-based tests for the classical network cast.

use ft_graph::gen::{random_permutation, rng};
use ft_graph::paths::are_vertex_disjoint;
use ft_networks::grid::grid_size;
use ft_networks::{Benes, Butterfly, CircuitRouter, Clos, DirectedGrid, Multibutterfly};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The looping algorithm routes EVERY permutation on a Beneš with
    /// vertex-disjoint paths of the right endpoints.
    #[test]
    fn benes_looping_routes_all(k in 1u32..5, seed in 0u64..50_000) {
        let b = Benes::new(k);
        let n = b.terminals();
        let perm = random_permutation(&mut rng(seed), n);
        let paths = b.route_permutation(&perm);
        prop_assert_eq!(paths.len(), n);
        let views: Vec<&[ft_graph::VertexId]> =
            paths.iter().map(|p| p.as_slice()).collect();
        prop_assert!(are_vertex_disjoint(views.iter().copied()));
        for (i, p) in paths.iter().enumerate() {
            prop_assert_eq!(p[0], b.net.inputs()[i]);
            prop_assert_eq!(*p.last().unwrap(), b.net.outputs()[perm[i] as usize]);
            // consecutive vertices joined by edges
            for w in p.windows(2) {
                prop_assert!(b.net.graph().has_edge(w[0], w[1]));
            }
        }
    }

    /// Slepian–Duguid routing on a rearrangeable Clos: every
    /// permutation, disjoint paths.
    #[test]
    fn clos_rearrangeable_routes_all(g in 2usize..5, r_ in 2usize..5, seed in 0u64..50_000) {
        let c = Clos::rearrangeable(g, r_);
        let n = c.terminals();
        let perm = random_permutation(&mut rng(seed), n);
        let paths = c.route_permutation(&perm);
        prop_assert_eq!(paths.len(), n);
        let views: Vec<&[ft_graph::VertexId]> =
            paths.iter().map(|p| p.as_slice()).collect();
        prop_assert!(are_vertex_disjoint(views.iter().copied()));
    }

    /// Butterfly unique paths: correct endpoints, valid edges, length
    /// k+1 switches.
    #[test]
    fn butterfly_unique_paths(k in 1u32..6, seed in 0u64..50_000) {
        let bf = Butterfly::new(k);
        let n = 1u32 << k;
        let mut r = rng(seed);
        use rand::Rng;
        let x = r.random_range(0..n);
        let y = r.random_range(0..n);
        let p = bf.unique_path(x, y);
        prop_assert_eq!(p.len() as u32, k + 1);
        prop_assert_eq!(p[0], bf.net.inputs()[x as usize]);
        prop_assert_eq!(*p.last().unwrap(), bf.net.outputs()[y as usize]);
        for w in p.windows(2) {
            prop_assert!(bf.net.graph().has_edge(w[0], w[1]));
        }
    }

    /// Grid census formula and degree structure.
    #[test]
    fn grid_shape(l in 1usize..40, w in 1usize..20) {
        let g = DirectedGrid::new(l, w);
        prop_assert_eq!(g.size(), grid_size(l, w));
        prop_assert_eq!(g.net.depth() as usize, w - 1);
        // interior out-degree ≤ 2, bottom row 1 (for w ≥ 2)
        if w >= 2 && l >= 2 {
            prop_assert_eq!(g.net.graph().out_degree(g.at(l - 1, 0)), 1);
            prop_assert_eq!(g.net.graph().out_degree(g.at(0, 0)), 2);
        }
    }

    /// Router bookkeeping: connect marks exactly the path busy;
    /// disconnect releases exactly it.
    #[test]
    fn router_busy_bookkeeping(seed in 0u64..50_000) {
        let b = Benes::new(2);
        let mut router = CircuitRouter::new(&b.net);
        let mut r = rng(seed);
        use rand::Rng;
        let i = r.random_range(0..4usize);
        let o = r.random_range(0..4usize);
        let id = router.connect(b.net.inputs()[i], b.net.outputs()[o]).unwrap();
        let path: Vec<_> = router.session_path(id).unwrap().to_vec();
        for &v in &path {
            prop_assert!(!router.is_idle(v));
        }
        router.disconnect(id);
        for &v in &path {
            prop_assert!(router.is_idle(v));
        }
        prop_assert_eq!(router.active_sessions(), 0);
    }

    /// Multibutterfly structure: stage widths constant, out-degrees
    /// bounded by 2d, every output reachable from every input.
    #[test]
    fn multibutterfly_structure(k in 2u32..5, d in 1usize..4, seed in 0u64..10_000) {
        let mut r = rng(seed);
        let mb = Multibutterfly::new(k, d, &mut r);
        let n = mb.terminals();
        prop_assert_eq!(mb.net.num_stages() as u32, k + 1);
        for s in 0..mb.net.num_stages() {
            prop_assert_eq!(mb.net.stage_range(s).len(), n);
        }
        for v in mb.net.stage_vertices(0) {
            prop_assert!(mb.net.graph().out_degree(v) <= 2 * d);
        }
        // reachability input 0 → all outputs
        let bfs = ft_graph::traversal::bfs_forward(mb.net.graph(), mb.net.inputs()[0]);
        for &o in mb.net.outputs() {
            prop_assert!(bfs.reached(o), "output {o:?} unreachable");
        }
    }

    /// Strict Clos by theorem: m ≥ 2n−1 profiles report strictness.
    #[test]
    fn clos_strictness_theorem(n in 2usize..6, r_ in 2usize..5) {
        let strict = Clos::strictly_nonblocking(n, r_);
        prop_assert!(strict.is_strict_by_theorem());
        let rearr = Clos::rearrangeable(n, r_);
        prop_assert!(!rearr.is_strict_by_theorem() || n == 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Router state invariant under random connect / disconnect /
    /// double-disconnect / vertex-kill / revive sequences:
    ///
    /// * `idle[v] == alive[v] && (no live session path contains v)`;
    /// * live session paths are pairwise vertex-disjoint;
    /// * the live-session census matches external bookkeeping;
    /// * the slot table never exceeds peak concurrency.
    #[test]
    fn router_invariant_under_random_ops(seed in 0u64..20_000, steps in 30usize..120) {
        use ft_networks::{RouteError, SessionId};
        use rand::Rng;
        let c = Clos::strictly_nonblocking(2, 3); // 6 terminals
        let net = &c.net;
        let nv = net.graph().num_vertices();
        let n = c.terminals();
        let terminal: Vec<bool> = {
            let mut t = vec![false; nv];
            for &v in net.inputs().iter().chain(net.outputs()) {
                t[v.index()] = true;
            }
            t
        };
        let mut router = CircuitRouter::new(net);
        let mut r = rng(seed);
        let mut live: Vec<SessionId> = Vec::new();
        let mut stale: Vec<SessionId> = Vec::new();
        let mut alive = vec![true; nv];
        let mut peak = 0usize;
        for _ in 0..steps {
            match r.random_range(0..6u32) {
                0..=2 => {
                    // connect a random pair (may legitimately fail)
                    let i = r.random_range(0..n);
                    let o = r.random_range(0..n);
                    match router.connect(net.inputs()[i], net.outputs()[o]) {
                        Ok(id) => live.push(id),
                        Err(RouteError::Blocked(_, _))
                        | Err(RouteError::InputUnavailable(_))
                        | Err(RouteError::OutputUnavailable(_)) => {}
                    }
                }
                3 => {
                    // disconnect a live session, or replay a stale id
                    if !live.is_empty() && (stale.is_empty() || r.random_bool(0.7)) {
                        let k = r.random_range(0..live.len());
                        let id = live.swap_remove(k);
                        prop_assert!(router.disconnect(id));
                        stale.push(id);
                    } else if !stale.is_empty() {
                        // double-disconnect of an id no live call holds
                        // must be a no-op unless the slot was reused by
                        // a *current* live session
                        let id = stale[r.random_range(0..stale.len())];
                        if !live.contains(&id) {
                            router.disconnect(id);
                            // note: may return true if slot reused —
                            // the ABA the engine guards with tokens;
                            // remove it from live bookkeeping if so
                            prop_assert!(router.session_path(id).is_none());
                        }
                    }
                }
                4 => {
                    // kill a random internal vertex
                    let v = ft_graph::VertexId::from(r.random_range(0..nv));
                    if !terminal[v.index()] {
                        alive[v.index()] = false;
                        let killed = router.set_alive_mask(&alive);
                        for id in killed {
                            let k = live.iter().position(|&x| x == id);
                            prop_assert!(k.is_some(), "killed unknown session");
                            live.swap_remove(k.unwrap());
                            stale.push(id);
                        }
                    }
                }
                _ => {
                    // full repair
                    alive.iter_mut().for_each(|a| *a = true);
                    let killed = router.set_alive_mask(&alive);
                    prop_assert!(killed.is_empty());
                }
            }
            peak = peak.max(live.len());
            // ---- invariant check ----
            prop_assert_eq!(router.active_sessions(), live.len());
            prop_assert!(router.session_slots() <= peak.max(1));
            let mut on_path = vec![false; nv];
            let mut paths: Vec<&[ft_graph::VertexId]> = Vec::new();
            for &id in &live {
                let p = router.session_path(id);
                prop_assert!(p.is_some(), "live session lost its path");
                paths.push(p.unwrap());
            }
            prop_assert!(
                ft_graph::paths::are_vertex_disjoint(paths.iter().copied()),
                "live paths overlap"
            );
            for p in &paths {
                for &v in *p {
                    on_path[v.index()] = true;
                    prop_assert!(alive[v.index()], "session crosses dead vertex");
                }
            }
            for v in 0..nv {
                let expect = alive[v] && !on_path[v];
                prop_assert_eq!(
                    router.is_idle(ft_graph::VertexId::from(v)),
                    expect,
                    "idle[{}] mismatch (alive {}, on_path {})",
                    v, alive[v], on_path[v]
                );
                prop_assert_eq!(router.is_alive(ft_graph::VertexId::from(v)), alive[v]);
            }
        }
    }
}
