//! Beneš rearrangeable networks and the looping algorithm.
//!
//! Beneš \[B\] 1964 — the paper's citation for rearrangeable networks of
//! size O(n log n) and depth O(log n), the fault-free optimum that
//! Theorem 1 proves *cannot* be made fault-tolerant without a log² n
//! size factor. For `N = 2^k` terminals the network has `2k` link
//! stages; switch column `c` pairs links differing in bit `b(c)`
//! (`b(c) = k−1−c` for `c < k`, `b(c) = c−k+1` for `c ≥ k`), giving
//! `2N(2k−1)` switches and depth `2k − 1`… in the link model each column
//! contributes `2N` single-pole switches.
//!
//! [`Benes::route_permutation`] implements the classical **looping
//! algorithm**: 2-colour the cycles of the input/output pairing
//! multigraph to split the permutation across the two middle
//! subnetworks, and recurse.

use ft_graph::{StagedBuilder, StagedNetwork, VertexId};

/// A Beneš network on `N = 2^k` terminals.
#[derive(Clone, Debug)]
pub struct Benes {
    /// log₂ of the terminal count.
    pub k: u32,
    /// The staged network (`2k` link stages for k ≥ 1).
    pub net: StagedNetwork,
}

/// The bit exchanged by switch column `c` of a `2^k`-terminal Beneš.
pub fn column_bit(k: u32, c: u32) -> u32 {
    assert!(c < 2 * k - 1);
    if c < k {
        k - 1 - c
    } else {
        c - k + 1
    }
}

impl Benes {
    /// Builds the Beneš network for `N = 2^k`, `k ≥ 1`.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1, "Beneš needs at least 2 terminals");
        let n = 1usize << k;
        let stages = 2 * k as usize; // link stages
        let mut b = StagedBuilder::new();
        let mut ranges = Vec::with_capacity(stages);
        for _ in 0..stages {
            ranges.push(b.add_stage(n));
        }
        for c in 0..(2 * k - 1) as usize {
            let bit = 1u32 << column_bit(k, c as u32);
            for x in 0..n as u32 {
                let from = VertexId(ranges[c].start + x);
                b.add_edge(from, VertexId(ranges[c + 1].start + x));
                b.add_edge(from, VertexId(ranges[c + 1].start + (x ^ bit)));
            }
        }
        b.set_inputs(ranges[0].clone().map(VertexId).collect());
        b.set_outputs(ranges[stages - 1].clone().map(VertexId).collect());
        Benes { k, net: b.finish() }
    }

    /// Number of terminals `N = 2^k`.
    pub fn terminals(&self) -> usize {
        1usize << self.k
    }

    /// Switch-count formula `2N(2k − 1)`.
    pub fn expected_size(&self) -> usize {
        2 * self.terminals() * (2 * self.k as usize - 1)
    }

    /// Routes `perm` with the looping algorithm. Returns, for each input
    /// `x`, the vertex path (one link per stage) from input `x` to
    /// output `perm[x]`. Paths are vertex-disjoint.
    pub fn route_permutation(&self, perm: &[u32]) -> Vec<Vec<VertexId>> {
        let n = self.terminals();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut seen = vec![false; n];
        for &y in perm {
            assert!(!seen[y as usize], "not a permutation");
            seen[y as usize] = true;
        }
        // recursive looping on link indices
        let link_paths = loop_route(self.k, perm);
        // convert to global vertex ids
        link_paths
            .into_iter()
            .map(|links| {
                links
                    .into_iter()
                    .enumerate()
                    .map(|(stage, link)| VertexId(self.net.stage_range(stage).start + link))
                    .collect()
            })
            .collect()
    }
}

/// Looping recursion: returns, for each input `x` of a `2^k` Beneš, the
/// link index used at each of the `2k` link stages.
fn loop_route(k: u32, perm: &[u32]) -> Vec<Vec<u32>> {
    let n = 1usize << k;
    if k == 1 {
        // single 2×2 column, stages 0 and 1: direct links
        return (0..n).map(|x| vec![x as u32, perm[x]]).collect();
    }
    let half = n / 2;
    // 2-colour the pairing multigraph: vertices = input switches (x mod
    // half) and output switches (y mod half); edges = calls.
    // Walk cycles, alternating colours.
    let mut color = vec![u8::MAX; n]; // colour per call (indexed by input x)
                                      // in_calls[i] = the two inputs on input switch i; out_call[j] = the two
                                      // inputs whose outputs land on output switch j
    let mut out_calls = vec![[u32::MAX; 2]; half];
    for x in 0..n as u32 {
        let j = (perm[x as usize] as usize) % half;
        if out_calls[j][0] == u32::MAX {
            out_calls[j][0] = x;
        } else {
            out_calls[j][1] = x;
        }
    }
    for start in 0..n as u32 {
        if color[start as usize] != u8::MAX {
            continue;
        }
        // walk the cycle: colour call, hop to sibling on the output
        // switch (must differ), then to sibling on the input switch.
        let mut x = start;
        let mut c = 0u8;
        loop {
            color[x as usize] = c;
            // sibling on output switch gets the other colour
            let j = (perm[x as usize] as usize) % half;
            let sib_out = if out_calls[j][0] == x {
                out_calls[j][1]
            } else {
                out_calls[j][0]
            };
            if sib_out == u32::MAX {
                break; // unreachable for full permutations (degree 2)
            }
            if color[sib_out as usize] == u8::MAX {
                color[sib_out as usize] = 1 - c;
            }
            // sibling on input switch of sib_out continues with colour c… wait:
            // alternate: that sibling must take the colour opposite to sib_out.
            let sib_in = sib_out ^ half as u32;
            if color[sib_in as usize] != u8::MAX {
                break; // cycle closed
            }
            x = sib_in;
            c = 1 - color[sib_out as usize];
        }
    }
    // build sub-permutations
    let mut sub_perm = [vec![0u32; half], vec![0u32; half]];
    for x in 0..n as u32 {
        let u = color[x as usize] as usize;
        let i = (x as usize) % half;
        let j = (perm[x as usize] as usize) % half;
        sub_perm[u][i] = j as u32;
    }
    let sub_paths = [
        loop_route(k - 1, &sub_perm[0]),
        loop_route(k - 1, &sub_perm[1]),
    ];
    // assemble: input x uses subnetwork u at sub-input x mod half, whose
    // sub-path gives links at stages 1..2k-1 (sub stage s ↦ stage s+1,
    // link = u*half + sub_link)
    (0..n)
        .map(|x| {
            let u = color[x] as usize;
            let i = x % half;
            let y = perm[x];
            let mut path = Vec::with_capacity(2 * k as usize);
            path.push(x as u32);
            for &sub_link in &sub_paths[u][i] {
                path.push((u * half) as u32 + sub_link);
            }
            path.push(y);
            path
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::{random_permutation, rng};
    use ft_graph::paths::are_vertex_disjoint;

    #[test]
    fn shape() {
        for k in 1..=4 {
            let b = Benes::new(k);
            assert_eq!(b.net.size(), b.expected_size(), "k={k}");
            assert_eq!(b.net.depth(), 2 * k - 1, "k={k}");
            assert_eq!(b.terminals(), 1 << k);
        }
    }

    #[test]
    fn column_bits_classic_4x4() {
        // N=4: columns exchange bits 1, 0, 1
        assert_eq!(column_bit(2, 0), 1);
        assert_eq!(column_bit(2, 1), 0);
        assert_eq!(column_bit(2, 2), 1);
    }

    fn check_routing(b: &Benes, perm: &[u32]) {
        let paths = b.route_permutation(perm);
        assert_eq!(paths.len(), b.terminals());
        for (x, path) in paths.iter().enumerate() {
            assert_eq!(path.len(), 2 * b.k as usize, "path length");
            assert_eq!(path[0], b.net.inputs()[x]);
            assert_eq!(*path.last().unwrap(), b.net.outputs()[perm[x] as usize]);
            for w in path.windows(2) {
                assert!(
                    b.net.graph().has_edge(w[0], w[1]),
                    "x={x}: no edge {:?}->{:?} (perm {perm:?})",
                    w[0],
                    w[1]
                );
            }
        }
        assert!(
            are_vertex_disjoint(paths.iter().map(|p| p.as_slice())),
            "paths collide for {perm:?}"
        );
    }

    #[test]
    fn routes_all_permutations_of_4() {
        // exhaustive rearrangeability check at N=4
        let b = Benes::new(2);
        let mut perm = [0u32, 1, 2, 3];
        permute_all(&mut perm, 0, &mut |p| check_routing(&b, p));
    }

    fn permute_all(arr: &mut [u32], i: usize, f: &mut impl FnMut(&[u32])) {
        if i == arr.len() {
            f(arr);
            return;
        }
        for j in i..arr.len() {
            arr.swap(i, j);
            permute_all(arr, i + 1, f);
            arr.swap(i, j);
        }
    }

    #[test]
    fn routes_all_permutations_of_2() {
        let b = Benes::new(1);
        check_routing(&b, &[0, 1]);
        check_routing(&b, &[1, 0]);
    }

    #[test]
    fn routes_random_permutations_large() {
        let mut r = rng(21);
        for k in 3..=6 {
            let b = Benes::new(k);
            for _ in 0..10 {
                let perm = random_permutation(&mut r, b.terminals());
                check_routing(&b, &perm);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutation() {
        let b = Benes::new(2);
        b.route_permutation(&[0, 0, 1, 2]);
    }
}
