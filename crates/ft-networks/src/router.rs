//! Greedy circuit-switching router.
//!
//! §4's third observation: because the fault-tolerant construction
//! contains a *strictly* nonblocking network, "routing can be performed
//! by a greedy application of a standard path-finding algorithm" — plain
//! BFS over idle vertices, no rearrangement, no cleverness. The router
//! maintains busy marks for established circuits, supports an external
//! liveness mask (the repair procedure's surviving vertices), and serves
//! connect/disconnect churn.

use ft_graph::ids::VertexId;
use ft_graph::traversal::{bfs_into, Direction};
use ft_graph::workspace::TraversalWorkspace;
use ft_graph::StagedNetwork;

/// Why a connection attempt failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The input terminal is already carrying a circuit (or dead).
    InputUnavailable(VertexId),
    /// The output terminal is already carrying a circuit (or dead).
    OutputUnavailable(VertexId),
    /// No idle path exists — the network is *blocked* for this pair.
    Blocked(VertexId, VertexId),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::InputUnavailable(v) => write!(f, "input {v} unavailable"),
            RouteError::OutputUnavailable(v) => write!(f, "output {v} unavailable"),
            RouteError::Blocked(a, b) => write!(f, "no idle path {a} -> {b}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Handle to an established circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SessionId(pub u32);

/// Greedy circuit router over a staged network.
///
/// Path searches run over the network's cached CSR snapshot with a
/// router-owned [`TraversalWorkspace`], so a `connect` allocates only
/// the path it establishes.
#[derive(Clone, Debug)]
pub struct CircuitRouter<'a> {
    net: &'a StagedNetwork,
    /// Vertices usable at all (repair mask); true = usable.
    alive: Vec<bool>,
    /// `alive[v] && !busy[v]`, maintained incrementally so the BFS
    /// filter reads one array instead of two.
    idle: Vec<bool>,
    sessions: Vec<Option<Vec<VertexId>>>,
    ws: TraversalWorkspace,
}

impl<'a> CircuitRouter<'a> {
    /// Router over a fully healthy network.
    pub fn new(net: &'a StagedNetwork) -> Self {
        let n = net.graph().num_vertices();
        CircuitRouter {
            net,
            alive: vec![true; n],
            idle: vec![true; n],
            sessions: Vec::new(),
            ws: TraversalWorkspace::new(),
        }
    }

    /// Router restricted to `alive` vertices (the §4 repaired network).
    pub fn with_alive_mask(net: &'a StagedNetwork, alive: Vec<bool>) -> Self {
        assert_eq!(alive.len(), net.graph().num_vertices());
        CircuitRouter {
            idle: alive.clone(),
            net,
            alive,
            sessions: Vec::new(),
            ws: TraversalWorkspace::new(),
        }
    }

    /// Whether `v` is idle (alive and not carrying a circuit).
    pub fn is_idle(&self, v: VertexId) -> bool {
        self.idle[v.index()]
    }

    /// Number of live sessions.
    pub fn active_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_some()).count()
    }

    /// The path held by a session.
    pub fn session_path(&self, id: SessionId) -> Option<&[VertexId]> {
        self.sessions.get(id.0 as usize).and_then(|s| s.as_deref())
    }

    /// Attempts to connect `input → output` greedily (BFS over idle
    /// vertices, shortest idle path). On success the path's vertices
    /// become busy.
    pub fn connect(&mut self, input: VertexId, output: VertexId) -> Result<SessionId, RouteError> {
        if !self.is_idle(input) {
            return Err(RouteError::InputUnavailable(input));
        }
        if !self.is_idle(output) {
            return Err(RouteError::OutputUnavailable(output));
        }
        let csr = self.net.csr();
        let idle = &self.idle;
        bfs_into(
            csr,
            &[input],
            Direction::Forward,
            |_| true,
            |v| idle[v.index()],
            &mut self.ws,
        );
        let Some(path) = self.ws.path_to(csr, output) else {
            return Err(RouteError::Blocked(input, output));
        };
        for &v in &path {
            self.idle[v.index()] = false;
        }
        let id = SessionId(self.sessions.len() as u32);
        self.sessions.push(Some(path));
        Ok(id)
    }

    /// Releases a session's circuit.
    ///
    /// # Panics
    /// Panics if the session does not exist or was already disconnected.
    pub fn disconnect(&mut self, id: SessionId) {
        let path = self.sessions[id.0 as usize]
            .take()
            .expect("session already disconnected");
        for v in path {
            self.idle[v.index()] = self.alive[v.index()];
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &StagedNetwork {
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clos::Clos;
    use crate::crossbar::crossbar;
    use ft_graph::gen::rng;
    use rand::Rng;

    #[test]
    fn crossbar_connects_all_pairs() {
        let net = crossbar(3);
        let mut router = CircuitRouter::new(&net);
        let mut ids = Vec::new();
        for i in 0..3 {
            let id = router
                .connect(net.inputs()[i], net.outputs()[(i + 1) % 3])
                .unwrap();
            ids.push(id);
        }
        assert_eq!(router.active_sessions(), 3);
        // everything busy now
        let err = router.connect(net.inputs()[0], net.outputs()[0]);
        assert_eq!(err, Err(RouteError::InputUnavailable(net.inputs()[0])));
        router.disconnect(ids[0]);
        assert_eq!(router.active_sessions(), 2);
        // freed pair reconnects
        router.connect(net.inputs()[0], net.outputs()[1]).unwrap();
    }

    #[test]
    fn strict_clos_never_blocks_under_churn() {
        // Clos' theorem: m = 2n−1 suffices for greedy routing. Hammer a
        // small strict Clos with random churn; a block is a bug (either
        // in the router or the construction).
        let c = Clos::strictly_nonblocking(2, 3); // m=3, 6 terminals
        let net = &c.net;
        let n = c.terminals();
        let mut router = CircuitRouter::new(net);
        let mut r = rng(42);
        // call state per input: Option<(session, output)>
        let mut call: Vec<Option<SessionId>> = vec![None; n];
        let mut out_busy = vec![false; n];
        let mut out_of: Vec<usize> = vec![usize::MAX; n];
        for _ in 0..2000 {
            let i = r.random_range(0..n);
            match call[i] {
                Some(id) => {
                    router.disconnect(id);
                    out_busy[out_of[i]] = false;
                    call[i] = None;
                }
                None => {
                    // pick a random idle output
                    let free: Vec<usize> = (0..n).filter(|&o| !out_busy[o]).collect();
                    if free.is_empty() {
                        continue;
                    }
                    let o = free[r.random_range(0..free.len())];
                    let id = router
                        .connect(net.inputs()[i], net.outputs()[o])
                        .unwrap_or_else(|e| panic!("strict Clos blocked: {e}"));
                    call[i] = Some(id);
                    out_busy[o] = true;
                    out_of[i] = o;
                }
            }
        }
    }

    #[test]
    fn rearrangeable_clos_blocks_eventually() {
        // m = n Clos is rearrangeable but NOT strictly nonblocking: the
        // greedy router must hit a Blocked error under adversarial churn.
        let c = Clos::rearrangeable(2, 2); // m=2, 4 terminals
        let net = &c.net;
        let n = c.terminals();
        let mut blocked_seen = false;
        let mut r = rng(7);
        'outer: for _ in 0..200 {
            let mut router = CircuitRouter::new(net);
            let mut live: Vec<(SessionId, usize, usize)> = Vec::new();
            for _step in 0..100 {
                let connect = live.is_empty() || r.random_bool(0.6);
                if connect {
                    let ins: Vec<usize> = (0..n)
                        .filter(|&i| router.is_idle(net.inputs()[i]))
                        .collect();
                    let outs: Vec<usize> = (0..n)
                        .filter(|&o| router.is_idle(net.outputs()[o]))
                        .collect();
                    if ins.is_empty() || outs.is_empty() {
                        continue;
                    }
                    let i = ins[r.random_range(0..ins.len())];
                    let o = outs[r.random_range(0..outs.len())];
                    match router.connect(net.inputs()[i], net.outputs()[o]) {
                        Ok(id) => live.push((id, i, o)),
                        Err(RouteError::Blocked(_, _)) => {
                            blocked_seen = true;
                            break 'outer;
                        }
                        Err(e) => panic!("unexpected error {e}"),
                    }
                } else {
                    let idx = r.random_range(0..live.len());
                    let (id, _, _) = live.swap_remove(idx);
                    router.disconnect(id);
                }
            }
        }
        assert!(
            blocked_seen,
            "rearrangeable Clos never blocked greedy routing — suspicious"
        );
    }

    #[test]
    fn alive_mask_restricts_routing() {
        let net = crossbar(2);
        // kill output 0
        let mut alive = vec![true; net.graph().num_vertices()];
        alive[net.outputs()[0].index()] = false;
        let mut router = CircuitRouter::with_alive_mask(&net, alive);
        let err = router.connect(net.inputs()[0], net.outputs()[0]);
        assert!(matches!(err, Err(RouteError::OutputUnavailable(_))));
        router.connect(net.inputs()[0], net.outputs()[1]).unwrap();
    }

    #[test]
    #[should_panic(expected = "already disconnected")]
    fn double_disconnect_panics() {
        let net = crossbar(2);
        let mut router = CircuitRouter::new(&net);
        let id = router.connect(net.inputs()[0], net.outputs()[0]).unwrap();
        router.disconnect(id);
        router.disconnect(id);
    }
}
