//! Greedy circuit-switching router.
//!
//! §4's third observation: because the fault-tolerant construction
//! contains a *strictly* nonblocking network, "routing can be performed
//! by a greedy application of a standard path-finding algorithm" — plain
//! BFS over idle vertices, no rearrangement, no cleverness. The router
//! maintains busy marks for established circuits, supports an external
//! liveness mask (the repair procedure's surviving vertices), and serves
//! connect/disconnect churn.

use ft_graph::ids::VertexId;
use ft_graph::mincost::augment_unit_into;
use ft_graph::traversal::{bfs_into, bibfs_into, Direction};
use ft_graph::workspace::TraversalWorkspace;
use ft_graph::{CostFlowNetwork, McfWorkspace, StagedNetwork};

/// `owner` sentinel: the vertex carries no circuit.
const NO_OWNER: u32 = u32::MAX;

/// Why a connection attempt failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The input terminal is already carrying a circuit (or dead).
    InputUnavailable(VertexId),
    /// The output terminal is already carrying a circuit (or dead).
    OutputUnavailable(VertexId),
    /// No idle path exists — the network is *blocked* for this pair.
    Blocked(VertexId, VertexId),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::InputUnavailable(v) => write!(f, "input {v} unavailable"),
            RouteError::OutputUnavailable(v) => write!(f, "output {v} unavailable"),
            RouteError::Blocked(a, b) => write!(f, "no idle path {a} -> {b}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Handle to an established circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SessionId(pub u32);

/// Greedy circuit router over a staged network.
///
/// Path searches run over the network's cached CSR snapshot with
/// router-owned [`TraversalWorkspace`]s. On unit-staged networks (all
/// of the paper's constructions) `connect` uses the bidirectional
/// stage-aware kernel [`bibfs_into`], which meets in the middle instead
/// of flooding the whole fabric yet returns the *bit-identical* path a
/// full forward BFS would — the deterministic simulation depends on
/// that. Session path buffers are pooled and reused, so steady-state
/// connect/disconnect churn allocates nothing.
///
/// Because circuits are vertex-disjoint, each vertex carries at most
/// one live session; the router maintains that vertex → session index
/// (`owner`), which makes a fault at vertex `v` an O(path) operation
/// ([`Self::kill_vertex_into`]) instead of a scan over every live
/// session.
///
/// Released session slots go on a free list and are reused by later
/// `connect`s, so `sessions` stays bounded by the *peak* number of
/// concurrent circuits under arbitrarily long churn. A [`SessionId`] is
/// therefore only meaningful while its session is live: holding a stale
/// id after `disconnect` (or a fault kill) and using it later may
/// address a different circuit that reused the slot — callers that
/// outlive their sessions (the simulation engine) must revalidate.
#[derive(Clone, Debug)]
pub struct CircuitRouter<'a> {
    net: &'a StagedNetwork,
    /// The network's CSR snapshot, resolved once at construction so
    /// `connect` skips the per-call `OnceLock` loads.
    csr: &'a ft_graph::Csr,
    /// Cached per-vertex stage table (same reasoning).
    stage_tab: &'a [u32],
    /// Whether the network is unit-staged (bidirectional search legal).
    unit_staged: bool,
    /// Vertices usable at all (repair mask); true = usable.
    alive: Vec<bool>,
    /// `alive[v] && !busy[v]`, maintained incrementally so the BFS
    /// filter reads one array instead of two.
    idle: Vec<bool>,
    /// Session slot whose circuit crosses each vertex ([`NO_OWNER`] if
    /// none). Live paths are vertex-disjoint, so one slot suffices.
    owner: Vec<u32>,
    sessions: Vec<Option<Vec<VertexId>>>,
    /// Released slots in `sessions`, reused before growing the table.
    free: Vec<u32>,
    /// Cleared path buffers recycled across sessions.
    spare: Vec<Vec<VertexId>>,
    /// Backward-level budget for the bidirectional search — the
    /// network's cached structural analysis
    /// ([`StagedNetwork::backward_budget`]).
    bwd_budget: u32,
    ws: TraversalWorkspace,
    /// Backward-cone workspace of the bidirectional search.
    ws_b: TraversalWorkspace,
}

impl<'a> CircuitRouter<'a> {
    /// Router over a fully healthy network.
    pub fn new(net: &'a StagedNetwork) -> Self {
        let n = net.graph().num_vertices();
        CircuitRouter {
            net,
            csr: net.csr(),
            stage_tab: net.stage_table(),
            unit_staged: net.is_unit_staged(),
            alive: vec![true; n],
            idle: vec![true; n],
            owner: vec![NO_OWNER; n],
            sessions: Vec::new(),
            free: Vec::new(),
            spare: Vec::new(),
            bwd_budget: net.backward_budget(),
            ws: TraversalWorkspace::new(),
            ws_b: TraversalWorkspace::new(),
        }
    }

    /// Router restricted to `alive` vertices (the §4 repaired network).
    pub fn with_alive_mask(net: &'a StagedNetwork, alive: Vec<bool>) -> Self {
        assert_eq!(alive.len(), net.graph().num_vertices());
        CircuitRouter {
            idle: alive.clone(),
            owner: vec![NO_OWNER; alive.len()],
            csr: net.csr(),
            stage_tab: net.stage_table(),
            unit_staged: net.is_unit_staged(),
            net,
            alive,
            sessions: Vec::new(),
            free: Vec::new(),
            spare: Vec::new(),
            bwd_budget: net.backward_budget(),
            ws: TraversalWorkspace::new(),
            ws_b: TraversalWorkspace::new(),
        }
    }

    /// Whether `v` is idle (alive and not carrying a circuit).
    pub fn is_idle(&self, v: VertexId) -> bool {
        self.idle[v.index()]
    }

    /// Whether `v` is alive (usable under the current repair mask).
    pub fn is_alive(&self, v: VertexId) -> bool {
        self.alive[v.index()]
    }

    /// Number of live sessions.
    pub fn active_sessions(&self) -> usize {
        self.sessions.len() - self.free.len()
    }

    /// Capacity of the session table (live slots + free-listed slots).
    /// Bounded by the peak concurrent session count, not by the total
    /// number of connects ever served.
    pub fn session_slots(&self) -> usize {
        self.sessions.len()
    }

    /// The path held by a session.
    pub fn session_path(&self, id: SessionId) -> Option<&[VertexId]> {
        self.sessions.get(id.0 as usize).and_then(|s| s.as_deref())
    }

    /// Accumulated per-kernel work counters of the router's search
    /// workspaces (both cones of the bidirectional search). Counters are
    /// deterministic functions of the connect/disconnect history, so
    /// they may feed byte-reproducible reports; deltas around a single
    /// `connect` measure that attempt's search effort.
    #[inline]
    pub fn kernel_stats(&self) -> ft_graph::KernelStats {
        let mut s = self.ws.stats();
        s.merge(&self.ws_b.stats());
        s
    }

    /// Attempts to connect `input → output` greedily (BFS over idle
    /// vertices, shortest idle path). On success the path's vertices
    /// become busy.
    ///
    /// On unit-staged networks the search is the bidirectional
    /// stage-aware kernel; its result (path and verdict) is bit-equal
    /// to the full forward BFS it replaces, so routing decisions — and
    /// with them the simulation's pinned event fingerprints — are
    /// unchanged.
    pub fn connect(&mut self, input: VertexId, output: VertexId) -> Result<SessionId, RouteError> {
        if !self.is_idle(input) {
            return Err(RouteError::InputUnavailable(input));
        }
        if !self.is_idle(output) {
            return Err(RouteError::OutputUnavailable(output));
        }
        let csr = self.csr;
        let reached = if self.unit_staged {
            let budget = self.bwd_budget;
            let idle = &self.idle;
            bibfs_into(
                csr,
                input,
                output,
                self.stage_tab,
                budget,
                |v| idle[v.index()],
                &mut self.ws,
                &mut self.ws_b,
            )
        } else {
            let idle = &self.idle;
            // Stage-skipping networks (possible via `StagedBuilder`,
            // absent from the paper's constructions) keep the plain
            // forward flood.
            bfs_into(
                csr,
                &[input],
                Direction::Forward,
                |_| true,
                |v| idle[v.index()],
                &mut self.ws,
            );
            self.ws.reached(output)
        };
        if !reached {
            return Err(RouteError::Blocked(input, output));
        }
        let mut path = self.spare.pop().unwrap_or_default();
        let ok = self.ws.path_to_into(csr, output, &mut path);
        debug_assert!(ok, "reached target must reconstruct");
        Ok(self.commit_path(path))
    }

    /// Marks a found idle path busy and registers it as a session —
    /// the shared tail of [`Self::connect`] and [`Self::mincost_place`].
    fn commit_path(&mut self, path: Vec<VertexId>) -> SessionId {
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.sessions[slot as usize].is_none());
                slot
            }
            None => {
                self.sessions.push(None);
                (self.sessions.len() - 1) as u32
            }
        };
        for &v in &path {
            self.idle[v.index()] = false;
            self.owner[v.index()] = slot;
        }
        self.sessions[slot as usize] = Some(path);
        SessionId(slot)
    }

    /// Snapshots the idle fabric into `batch`'s min-cost-flow network:
    /// every idle vertex becomes a unit-capacity split arc of cost 1
    /// (cost = fabric vertices occupied) and every switch whose two
    /// endpoints are idle becomes a free unit arc between the splits.
    /// Subsequent [`Self::mincost_place`] calls place circuits on this
    /// snapshot; rebuild it whenever the idle set changes outside those
    /// calls. Allocation-free once `batch` has grown to the fabric size.
    pub fn begin_mincost_batch(&self, batch: &mut MincostBatch) {
        let n = self.alive.len();
        batch.net.reset(2 * n);
        for v in 0..n {
            if self.idle[v] {
                let a = batch.net.add_arc(2 * v as u32, 2 * v as u32 + 1, 1, 1);
                debug_assert_eq!(a % 2, 0);
            }
        }
        for e in 0..self.csr.num_edges() {
            let (t, h) = self.csr.endpoints(ft_graph::EdgeId::from(e));
            if self.idle[t.index()] && self.idle[h.index()] {
                batch
                    .net
                    .add_arc(2 * t.index() as u32 + 1, 2 * h.index() as u32, 1, 0);
            }
        }
        batch.ws.begin(2 * n);
    }

    /// Attempts to place `input → output` on the batch snapshot by one
    /// min-cost augmentation. On success the placement is *executed*:
    /// the circuit is committed exactly as [`Self::connect`] would
    /// (same slot, owner and idle bookkeeping) and its arcs are frozen
    /// in the snapshot so later placements in the batch can never
    /// repack it. On failure nothing changes — neither the fabric nor
    /// the snapshot — which is the mode's minimal-disruption guarantee.
    pub fn mincost_place(
        &mut self,
        batch: &mut MincostBatch,
        input: VertexId,
        output: VertexId,
    ) -> Result<SessionId, RouteError> {
        if !self.is_idle(input) {
            return Err(RouteError::InputUnavailable(input));
        }
        if !self.is_idle(output) {
            return Err(RouteError::OutputUnavailable(output));
        }
        let s = 2 * input.index() as u32;
        let t = 2 * output.index() as u32 + 1;
        if augment_unit_into(&mut batch.net, s, t, &mut batch.ws, &mut batch.arcs).is_none() {
            return Err(RouteError::Blocked(input, output));
        }
        let mut path = self.spare.pop().unwrap_or_default();
        for &ai in &batch.arcs {
            let from = batch.net.arc_from(ai);
            if from.is_multiple_of(2) && batch.net.arc_to(ai) == from + 1 {
                path.push(VertexId::from(from as usize / 2));
            }
            // Freeze the whole placed path — split AND switch arcs — so
            // no later augmentation can thread residual reversals of
            // this circuit (which would fabricate paths that cross a
            // vertex without occupying it).
            batch.net.freeze_arc(ai);
        }
        debug_assert_eq!(path.first(), Some(&input));
        debug_assert_eq!(path.last(), Some(&output));
        Ok(self.commit_path(path))
    }

    /// Releases slot `slot`'s circuit, restoring idleness along its
    /// path, invoking `visit` on every path vertex, and recycling the
    /// path buffer. Returns whether a live circuit was torn down.
    fn release_slot(&mut self, slot: usize, mut visit: impl FnMut(VertexId)) -> bool {
        let Some(entry) = self.sessions.get_mut(slot) else {
            return false;
        };
        let Some(mut path) = entry.take() else {
            return false;
        };
        for &v in &path {
            self.owner[v.index()] = NO_OWNER;
            self.idle[v.index()] = self.alive[v.index()];
            visit(v);
        }
        path.clear();
        self.spare.push(path);
        self.free.push(slot as u32);
        true
    }

    /// Releases a session's circuit. Returns whether a live circuit was
    /// actually torn down: disconnecting an unknown or
    /// already-disconnected session is a checked no-op yielding `false`.
    pub fn disconnect(&mut self, id: SessionId) -> bool {
        self.release_slot(id.0 as usize, |_| {})
    }

    /// Like [`Self::disconnect`], additionally invoking `visit` on each
    /// vertex of the released path — callers that mirror per-vertex
    /// occupancy (the simulation's per-stage counters) fold their
    /// bookkeeping into the single release walk instead of re-reading
    /// the path first.
    pub fn disconnect_visit(&mut self, id: SessionId, visit: impl FnMut(VertexId)) -> bool {
        self.release_slot(id.0 as usize, visit)
    }

    /// The `(input, output)` terminal pair of a live session — the
    /// first and last vertices of its path. `None` for unknown or
    /// already-released sessions.
    pub fn session_endpoints(&self, id: SessionId) -> Option<(VertexId, VertexId)> {
        let path = self.session_path(id)?;
        Some((*path.first()?, *path.last()?))
    }

    /// Drains the router: tears down every live circuit and returns
    /// the released sessions as `(id, input, output)` triples in
    /// ascending slot order (deterministic regardless of connect
    /// history). This is the first half of a graceful topology swap —
    /// the caller re-establishes ("migrates") the returned endpoint
    /// pairs on a router over the replacement network and drops the
    /// pairs that no longer route there.
    pub fn drain(&mut self) -> Vec<(SessionId, VertexId, VertexId)> {
        let mut out = Vec::with_capacity(self.active_sessions());
        for slot in 0..self.sessions.len() {
            let id = SessionId(slot as u32);
            if let Some((input, output)) = self.session_endpoints(id) {
                out.push((id, input, output));
                let released = self.release_slot(slot, |_| {});
                debug_assert!(released);
            }
        }
        out
    }

    /// The live session whose circuit crosses `v`, if any — O(1) via
    /// the vertex → session index.
    #[inline]
    pub fn session_through(&self, v: VertexId) -> Option<SessionId> {
        let ow = self.owner[v.index()];
        (ow != NO_OWNER).then_some(SessionId(ow))
    }

    /// Kills every live session whose path crosses vertex `v` (a switch
    /// endpoint that just failed). Freed vertices become idle again;
    /// the killed sessions' slots return to the free list. Returns the
    /// killed ids (at most one — circuits are vertex-disjoint).
    pub fn kill_sessions_through(&mut self, v: VertexId) -> Vec<SessionId> {
        let mut killed = Vec::new();
        if let Some(id) = self.session_through(v) {
            self.release_slot(id.0 as usize, |_| {});
            killed.push(id);
        }
        killed
    }

    /// Marks `v` newly dead under the repair mask: kills the at most
    /// one circuit crossing it (appending the killed id to `killed`, a
    /// caller-owned reusable buffer) and withdraws `v` from routing.
    /// O(killed path length) — the incremental counterpart of
    /// [`Self::set_alive_mask`] for a single-vertex delta.
    pub fn kill_vertex_into(&mut self, v: VertexId, killed: &mut Vec<SessionId>) {
        if let Some(id) = self.session_through(v) {
            self.release_slot(id.0 as usize, |_| {});
            killed.push(id);
        }
        self.alive[v.index()] = false;
        self.idle[v.index()] = false;
    }

    /// Marks `v` alive again after repair — the incremental counterpart
    /// of [`Self::set_alive_mask`] for a single-vertex delta. O(1).
    pub fn revive_vertex(&mut self, v: VertexId) {
        debug_assert_eq!(
            self.owner[v.index()],
            NO_OWNER,
            "a dead vertex cannot carry a circuit"
        );
        self.alive[v.index()] = true;
        self.idle[v.index()] = true;
    }

    /// Replaces the repair mask wholesale (the set of usable vertices
    /// changed arbitrarily), killing every live session that crosses a
    /// now-dead vertex and recomputing idleness. Returns the killed ids
    /// in ascending slot order. O(V + live sessions); event-driven
    /// callers with single-switch deltas should prefer
    /// [`Self::kill_vertex_into`] / [`Self::revive_vertex`], which keep
    /// identical state at O(1) per event.
    pub fn set_alive_mask(&mut self, alive: &[bool]) -> Vec<SessionId> {
        assert_eq!(alive.len(), self.alive.len(), "alive mask length mismatch");
        self.alive.copy_from_slice(alive);
        let mut killed = Vec::new();
        for slot in 0..self.sessions.len() {
            let crosses = self.sessions[slot]
                .as_ref()
                .is_some_and(|path| path.iter().any(|&u| !alive[u.index()]));
            if crosses {
                self.release_slot(slot, |_| {});
                killed.push(SessionId(slot as u32));
            }
        }
        // Re-derive idleness for every vertex whose aliveness may have
        // flipped; the owner index makes this a single O(V) pass.
        for v in 0..self.alive.len() {
            self.idle[v] = self.alive[v] && self.owner[v] == NO_OWNER;
        }
        killed
    }

    /// The underlying network.
    pub fn network(&self) -> &StagedNetwork {
        self.net
    }
}

/// Reusable state for one min-cost placement wave
/// ([`CircuitRouter::begin_mincost_batch`] /
/// [`CircuitRouter::mincost_place`]): the idle-fabric cost network, the
/// successive-shortest-path workspace, and the per-augmentation arc
/// buffer. Own one per simulation and rebuild it each wave — the
/// buffers grow to the fabric size once and are then reused.
#[derive(Clone, Debug, Default)]
pub struct MincostBatch {
    net: CostFlowNetwork,
    ws: McfWorkspace,
    arcs: Vec<u32>,
}

impl MincostBatch {
    /// An empty batch; sized lazily by the first
    /// [`CircuitRouter::begin_mincost_batch`].
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clos::Clos;
    use crate::crossbar::crossbar;
    use ft_graph::gen::rng;
    use rand::Rng;

    #[test]
    fn crossbar_connects_all_pairs() {
        let net = crossbar(3);
        let mut router = CircuitRouter::new(&net);
        let mut ids = Vec::new();
        for i in 0..3 {
            let id = router
                .connect(net.inputs()[i], net.outputs()[(i + 1) % 3])
                .unwrap();
            ids.push(id);
        }
        assert_eq!(router.active_sessions(), 3);
        // everything busy now
        let err = router.connect(net.inputs()[0], net.outputs()[0]);
        assert_eq!(err, Err(RouteError::InputUnavailable(net.inputs()[0])));
        router.disconnect(ids[0]);
        assert_eq!(router.active_sessions(), 2);
        // freed pair reconnects
        router.connect(net.inputs()[0], net.outputs()[1]).unwrap();
    }

    #[test]
    fn strict_clos_never_blocks_under_churn() {
        // Clos' theorem: m = 2n−1 suffices for greedy routing. Hammer a
        // small strict Clos with random churn; a block is a bug (either
        // in the router or the construction).
        let c = Clos::strictly_nonblocking(2, 3); // m=3, 6 terminals
        let net = &c.net;
        let n = c.terminals();
        let mut router = CircuitRouter::new(net);
        let mut r = rng(42);
        // call state per input: Option<(session, output)>
        let mut call: Vec<Option<SessionId>> = vec![None; n];
        let mut out_busy = vec![false; n];
        let mut out_of: Vec<usize> = vec![usize::MAX; n];
        for _ in 0..2000 {
            let i = r.random_range(0..n);
            match call[i] {
                Some(id) => {
                    router.disconnect(id);
                    out_busy[out_of[i]] = false;
                    call[i] = None;
                }
                None => {
                    // pick a random idle output
                    let free: Vec<usize> = (0..n).filter(|&o| !out_busy[o]).collect();
                    if free.is_empty() {
                        continue;
                    }
                    let o = free[r.random_range(0..free.len())];
                    let id = router
                        .connect(net.inputs()[i], net.outputs()[o])
                        .unwrap_or_else(|e| panic!("strict Clos blocked: {e}"));
                    call[i] = Some(id);
                    out_busy[o] = true;
                    out_of[i] = o;
                }
            }
        }
    }

    #[test]
    fn rearrangeable_clos_blocks_eventually() {
        // m = n Clos is rearrangeable but NOT strictly nonblocking: the
        // greedy router must hit a Blocked error under adversarial churn.
        let c = Clos::rearrangeable(2, 2); // m=2, 4 terminals
        let net = &c.net;
        let n = c.terminals();
        let mut blocked_seen = false;
        let mut r = rng(7);
        'outer: for _ in 0..200 {
            let mut router = CircuitRouter::new(net);
            let mut live: Vec<(SessionId, usize, usize)> = Vec::new();
            for _step in 0..100 {
                let connect = live.is_empty() || r.random_bool(0.6);
                if connect {
                    let ins: Vec<usize> = (0..n)
                        .filter(|&i| router.is_idle(net.inputs()[i]))
                        .collect();
                    let outs: Vec<usize> = (0..n)
                        .filter(|&o| router.is_idle(net.outputs()[o]))
                        .collect();
                    if ins.is_empty() || outs.is_empty() {
                        continue;
                    }
                    let i = ins[r.random_range(0..ins.len())];
                    let o = outs[r.random_range(0..outs.len())];
                    match router.connect(net.inputs()[i], net.outputs()[o]) {
                        Ok(id) => live.push((id, i, o)),
                        Err(RouteError::Blocked(_, _)) => {
                            blocked_seen = true;
                            break 'outer;
                        }
                        Err(e) => panic!("unexpected error {e}"),
                    }
                } else {
                    let idx = r.random_range(0..live.len());
                    let (id, _, _) = live.swap_remove(idx);
                    router.disconnect(id);
                }
            }
        }
        assert!(
            blocked_seen,
            "rearrangeable Clos never blocked greedy routing — suspicious"
        );
    }

    #[test]
    fn alive_mask_restricts_routing() {
        let net = crossbar(2);
        // kill output 0
        let mut alive = vec![true; net.graph().num_vertices()];
        alive[net.outputs()[0].index()] = false;
        let mut router = CircuitRouter::with_alive_mask(&net, alive);
        let err = router.connect(net.inputs()[0], net.outputs()[0]);
        assert!(matches!(err, Err(RouteError::OutputUnavailable(_))));
        router.connect(net.inputs()[0], net.outputs()[1]).unwrap();
    }

    #[test]
    fn double_disconnect_is_checked_noop() {
        let net = crossbar(2);
        let mut router = CircuitRouter::new(&net);
        let id = router.connect(net.inputs()[0], net.outputs()[0]).unwrap();
        assert!(router.disconnect(id));
        // second teardown: no-op, reported as such
        assert!(!router.disconnect(id));
        // unknown session ids are also a checked no-op
        assert!(!router.disconnect(SessionId(999)));
        assert_eq!(router.active_sessions(), 0);
        // the network is fully released — the pair reconnects
        router.connect(net.inputs()[0], net.outputs()[0]).unwrap();
    }

    #[test]
    fn session_table_stays_bounded_under_long_churn() {
        // Regression for unbounded session growth: churn way more than
        // 2x the terminal count through the router; the slot table must
        // stay at the peak concurrency, not the total connect count.
        let c = Clos::strictly_nonblocking(2, 3); // 6 terminals
        let net = &c.net;
        let n = c.terminals();
        let mut router = CircuitRouter::new(net);
        let mut r = rng(17);
        let mut live: Vec<SessionId> = Vec::new();
        let mut connects = 0usize;
        while connects < 4 * n {
            if live.len() < n && (live.is_empty() || r.random_bool(0.5)) {
                let i = (0..n).find(|&i| router.is_idle(net.inputs()[i]));
                let o = (0..n).find(|&o| router.is_idle(net.outputs()[o]));
                if let (Some(i), Some(o)) = (i, o) {
                    live.push(router.connect(net.inputs()[i], net.outputs()[o]).unwrap());
                    connects += 1;
                }
            } else {
                let k = r.random_range(0..live.len());
                assert!(router.disconnect(live.swap_remove(k)));
            }
        }
        assert!(connects >= 2 * n);
        assert!(
            router.session_slots() <= n,
            "session table grew to {} slots for {} terminals ({} connects)",
            router.session_slots(),
            n,
            connects
        );
    }

    #[test]
    fn mincost_place_matches_connect_bookkeeping() {
        let c = Clos::strictly_nonblocking(2, 3);
        let net = &c.net;
        let mut greedy = CircuitRouter::new(net);
        let mut planned = CircuitRouter::new(net);
        let mut batch = MincostBatch::new();
        planned.begin_mincost_batch(&mut batch);
        for i in 0..c.terminals() {
            let (input, output) = (net.inputs()[i], net.outputs()[i]);
            let g = greedy.connect(input, output).unwrap();
            let m = planned.mincost_place(&mut batch, input, output).unwrap();
            let gp = greedy.session_path(g).unwrap();
            let mp = planned.session_path(m).unwrap();
            assert_eq!(mp.first(), Some(&input));
            assert_eq!(mp.last(), Some(&output));
            // unit-staged fabric: minimal vertex cost == shortest path
            assert_eq!(gp.len(), mp.len(), "pair {i}");
        }
        assert_eq!(planned.active_sessions(), greedy.active_sessions());
        // the committed circuits tear down through the normal path
        assert!(planned.disconnect(SessionId(0)));
        assert!(planned.is_idle(net.inputs()[0]));
        planned.connect(net.inputs()[0], net.outputs()[0]).unwrap();
    }

    #[test]
    fn mincost_blocked_probe_leaves_fabric_untouched() {
        // The butterfly is not a superconcentrator: some second pair
        // cannot be added vertex-disjointly. A failed mincost probe
        // must leave both fabric and snapshot exactly as they were.
        let b = crate::butterfly::Butterfly::new(2);
        let net = &b.net;
        let mut blocked_seen = false;
        for i1 in 0..4 {
            for i2 in 0..4 {
                for o1 in 0..4 {
                    for o2 in 0..4 {
                        if i1 == i2 || o1 == o2 {
                            continue;
                        }
                        let mut router = CircuitRouter::new(net);
                        let mut batch = MincostBatch::new();
                        router.begin_mincost_batch(&mut batch);
                        router
                            .mincost_place(&mut batch, net.inputs()[i1], net.outputs()[o1])
                            .unwrap();
                        match router.mincost_place(&mut batch, net.inputs()[i2], net.outputs()[o2])
                        {
                            Ok(_) => {}
                            Err(RouteError::Blocked(a, z)) => {
                                blocked_seen = true;
                                assert_eq!(router.active_sessions(), 1);
                                assert!(router.is_idle(a) && router.is_idle(z));
                                // fabric untouched: the pair that was
                                // placed still connects after a retry of
                                // the blocked pair through `connect`
                                assert!(matches!(
                                    router.connect(net.inputs()[i2], net.outputs()[o2]),
                                    Err(RouteError::Blocked(_, _))
                                ));
                            }
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                }
            }
        }
        assert!(blocked_seen, "butterfly unexpectedly superconcentrates");
    }

    #[test]
    fn kill_sessions_through_vertex_frees_path() {
        let net = crossbar(3);
        let mut router = CircuitRouter::new(&net);
        let a = router.connect(net.inputs()[0], net.outputs()[0]).unwrap();
        let b = router.connect(net.inputs()[1], net.outputs()[1]).unwrap();
        let killed = router.kill_sessions_through(net.inputs()[0]);
        assert_eq!(killed, vec![a]);
        assert_eq!(router.active_sessions(), 1);
        assert!(router.session_path(a).is_none());
        assert!(router.session_path(b).is_some());
        // the killed path's vertices are idle again
        assert!(router.is_idle(net.inputs()[0]));
        assert!(router.is_idle(net.outputs()[0]));
        router.connect(net.inputs()[0], net.outputs()[0]).unwrap();
    }

    #[test]
    fn set_alive_mask_kills_crossing_sessions_and_restores() {
        let c = Clos::strictly_nonblocking(2, 2); // 4 terminals
        let net = &c.net;
        let mut router = CircuitRouter::new(net);
        let mut ids = Vec::new();
        for i in 0..4 {
            ids.push(router.connect(net.inputs()[i], net.outputs()[i]).unwrap());
        }
        // kill the internal vertices of session 0's path
        let path: Vec<_> = router.session_path(ids[0]).unwrap().to_vec();
        let mut alive = vec![true; net.graph().num_vertices()];
        for &v in &path[1..path.len() - 1] {
            alive[v.index()] = false;
        }
        let killed = router.set_alive_mask(&alive);
        assert_eq!(killed, vec![ids[0]]);
        assert_eq!(router.active_sessions(), 3);
        // endpoints idle again, dead internals are not idle
        assert!(router.is_idle(net.inputs()[0]));
        assert!(!router.is_idle(path[1]));
        assert!(!router.is_alive(path[1]));
        // full repair: revive everything; the pair reconnects
        let revived = router.set_alive_mask(&vec![true; net.graph().num_vertices()]);
        assert!(revived.is_empty());
        router.connect(net.inputs()[0], net.outputs()[0]).unwrap();
    }

    #[test]
    fn session_endpoints_are_the_connected_pair() {
        let c = Clos::strictly_nonblocking(2, 2);
        let net = &c.net;
        let mut router = CircuitRouter::new(net);
        let id = router.connect(net.inputs()[1], net.outputs()[0]).unwrap();
        assert_eq!(
            router.session_endpoints(id),
            Some((net.inputs()[1], net.outputs()[0]))
        );
        router.disconnect(id);
        assert_eq!(router.session_endpoints(id), None);
    }

    #[test]
    fn drain_releases_everything_in_slot_order_and_migrates() {
        let c = Clos::strictly_nonblocking(2, 2); // 4 terminals
        let net = &c.net;
        let mut router = CircuitRouter::new(net);
        let mut ids = Vec::new();
        // connect out of terminal order so slot order != connect order
        for i in [2usize, 0, 3, 1] {
            ids.push(router.connect(net.inputs()[i], net.outputs()[i]).unwrap());
        }
        router.disconnect(ids[1]); // free a slot (and the 0→0 pair)
        let reconnected = router.connect(net.inputs()[0], net.outputs()[0]).unwrap();
        assert_eq!(reconnected, ids[1], "free list must reuse the slot");
        let drained = router.drain();
        assert_eq!(router.active_sessions(), 0);
        assert_eq!(drained.len(), 4);
        // ascending slot order, each triple carrying its endpoint pair
        for w in drained.windows(2) {
            assert!(w[0].0 .0 < w[1].0 .0);
        }
        assert_eq!(drained[1], (ids[1], net.inputs()[0], net.outputs()[0]));
        // the second half of a topology swap: re-establish every pair
        // on a fresh router (here over the same network)
        let mut next = CircuitRouter::new(net);
        for &(_, input, output) in &drained {
            next.connect(input, output).unwrap();
        }
        assert_eq!(next.active_sessions(), 4);
    }
}
