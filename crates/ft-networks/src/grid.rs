//! `(l, w)`-directed grids — the paper's Fig. 4.
//!
//! A directed grid has `w` stages of `l` vertices; vertex `(i, j)` (row
//! `i`, stage `j`) has edges to `(i, j+1)` and `(i+1, j+1)`. §6 uses
//! `(64·4^γ, ν)`-directed grids to interface each input/output to the
//! truncated recursive network: the grid behaves as a Moore–Shannon
//! hammock, so an idle input keeps *access* to a majority of the grid's
//! last stage despite faults (Lemma 3).
//!
//! Note on the paper's notation: the definition in §6 says "(l, w)" with
//! `w` stages and `l` vertices per stage, and Fig. 4 is called a
//! `(4, 8)`-directed grid (4 rows × 8 stages). Lemma 3's proof makes the
//! grids attached to terminals `64·4^γ` rows × `ν` stages.

use ft_graph::{StagedBuilder, StagedNetwork, VertexId};

/// A directed grid with its dimensions.
#[derive(Clone, Debug)]
pub struct DirectedGrid {
    /// Rows `l`.
    pub rows: usize,
    /// Stages `w`.
    pub stages: usize,
    /// The staged network: inputs = first stage, outputs = last stage.
    pub net: StagedNetwork,
}

impl DirectedGrid {
    /// Builds the `(l, w)`-directed grid.
    pub fn new(rows: usize, stages: usize) -> Self {
        assert!(rows >= 1 && stages >= 1, "grid needs l, w ≥ 1");
        let mut b = StagedBuilder::new();
        let mut ranges = Vec::with_capacity(stages);
        for _ in 0..stages {
            ranges.push(b.add_stage(rows));
        }
        for j in 0..stages - 1 {
            for i in 0..rows {
                let from = VertexId(ranges[j].start + i as u32);
                b.add_edge(from, VertexId(ranges[j + 1].start + i as u32));
                if i + 1 < rows {
                    b.add_edge(from, VertexId(ranges[j + 1].start + i as u32 + 1));
                }
            }
        }
        b.set_inputs(ranges[0].clone().map(VertexId).collect());
        b.set_outputs(ranges[stages - 1].clone().map(VertexId).collect());
        DirectedGrid {
            rows,
            stages,
            net: b.finish(),
        }
    }

    /// Vertex at `(row, stage)`.
    pub fn at(&self, row: usize, stage: usize) -> VertexId {
        assert!(row < self.rows && stage < self.stages);
        VertexId(self.net.stage_range(stage).start + row as u32)
    }

    /// Number of switches: `(2l − 1)(w − 1)`.
    pub fn size(&self) -> usize {
        self.net.size()
    }
}

/// Edge count formula for an `(l, w)` grid.
pub fn grid_size(l: usize, w: usize) -> usize {
    if w == 0 {
        return 0;
    }
    (2 * l - 1) * (w - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::traversal::{bfs_forward, dag_depth};

    #[test]
    fn fig4_shape() {
        // the paper's Fig. 4: a (4, 8)-directed grid
        let g = DirectedGrid::new(4, 8);
        assert_eq!(g.net.num_stages(), 8);
        assert_eq!(g.net.inputs().len(), 4);
        assert_eq!(g.net.outputs().len(), 4);
        assert_eq!(g.size(), grid_size(4, 8));
        assert_eq!(g.size(), 7 * 7);
        assert_eq!(g.net.depth(), 7);
        assert_eq!(dag_depth(g.net.graph()), 7);
    }

    #[test]
    fn edge_pattern() {
        let g = DirectedGrid::new(3, 3);
        // (0,0) -> (0,1) and (1,1)
        assert!(g.net.graph().has_edge(g.at(0, 0), g.at(0, 1)));
        assert!(g.net.graph().has_edge(g.at(0, 0), g.at(1, 1)));
        assert!(!g.net.graph().has_edge(g.at(0, 0), g.at(2, 1)));
        // bottom row has no diagonal
        assert!(g.net.graph().has_edge(g.at(2, 0), g.at(2, 1)));
        assert_eq!(g.net.graph().out_degree(g.at(2, 0)), 1);
        // interior degrees: out 2, in 2
        assert_eq!(g.net.graph().out_degree(g.at(1, 1)), 2);
        assert_eq!(g.net.graph().in_degree(g.at(1, 1)), 2);
    }

    #[test]
    fn row_zero_reaches_everything_downstream() {
        // from (0,0) every row is reachable at a late enough stage
        let g = DirectedGrid::new(5, 10);
        let b = bfs_forward(g.net.graph(), g.at(0, 0));
        for i in 0..5 {
            assert!(b.reached(g.at(i, 9)), "row {i} unreachable");
        }
        // but (1,0) can never reach row 0 (edges only go down)
        let b = bfs_forward(g.net.graph(), g.at(1, 0));
        assert!(!b.reached(g.at(0, 9)));
    }

    #[test]
    fn single_stage_grid() {
        let g = DirectedGrid::new(3, 1);
        assert_eq!(g.size(), 0);
        assert_eq!(g.net.depth(), 0);
        assert_eq!(g.net.inputs(), g.net.outputs());
    }

    #[test]
    fn single_row_grid_is_a_path() {
        let g = DirectedGrid::new(1, 5);
        assert_eq!(g.size(), 4);
        assert_eq!(g.net.depth(), 4);
    }
}
