//! The butterfly network.
//!
//! `k`-dimensional butterfly: `k+1` link stages of `N = 2^k` links;
//! column `c` exchanges bit `k−1−c`. The unique-path property (exactly
//! one input→output path per pair) makes it the textbook interconnect —
//! and maximally fragile: one open failure on a path's switch severs
//! every pair using it, which is why Leighton & Maggs \[LM\] moved to
//! *multi*butterflies for fault tolerance. Here it serves as a baseline
//! in the fault experiments.

use ft_graph::{StagedBuilder, StagedNetwork, VertexId};

/// A `k`-dimensional butterfly on `N = 2^k` terminals.
#[derive(Clone, Debug)]
pub struct Butterfly {
    /// Dimension.
    pub k: u32,
    /// The staged network (`k+1` link stages).
    pub net: StagedNetwork,
}

impl Butterfly {
    /// Builds the butterfly.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1);
        let n = 1usize << k;
        let mut b = StagedBuilder::new();
        let mut ranges = Vec::with_capacity(k as usize + 1);
        for _ in 0..=k {
            ranges.push(b.add_stage(n));
        }
        for c in 0..k {
            let bit = 1u32 << (k - 1 - c);
            for x in 0..n as u32 {
                let from = VertexId(ranges[c as usize].start + x);
                b.add_edge(from, VertexId(ranges[c as usize + 1].start + x));
                b.add_edge(from, VertexId(ranges[c as usize + 1].start + (x ^ bit)));
            }
        }
        b.set_inputs(ranges[0].clone().map(VertexId).collect());
        b.set_outputs(ranges[k as usize].clone().map(VertexId).collect());
        Butterfly { k, net: b.finish() }
    }

    /// Terminal count `N = 2^k`.
    pub fn terminals(&self) -> usize {
        1usize << self.k
    }

    /// Switch-count formula `2Nk`.
    pub fn expected_size(&self) -> usize {
        2 * self.terminals() * self.k as usize
    }

    /// The unique path from input `x` to output `y` (greedy bit fixing).
    pub fn unique_path(&self, x: u32, y: u32) -> Vec<VertexId> {
        let k = self.k;
        let n = 1u32 << k;
        assert!(x < n && y < n);
        let mut path = Vec::with_capacity(k as usize + 1);
        let mut cur = x;
        path.push(VertexId(self.net.stage_range(0).start + cur));
        for c in 0..k {
            let bit = 1u32 << (k - 1 - c);
            // after column c the bit k-1-c must match y
            if (cur ^ y) & bit != 0 {
                cur ^= bit;
            }
            path.push(VertexId(self.net.stage_range(c as usize + 1).start + cur));
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::maxflow::{vertex_disjoint_paths, DisjointOptions};

    #[test]
    fn shape() {
        for k in 1..=5 {
            let b = Butterfly::new(k);
            assert_eq!(b.net.size(), b.expected_size());
            assert_eq!(b.net.depth(), k);
            assert_eq!(b.net.num_stages(), k as usize + 1);
        }
    }

    #[test]
    fn unique_paths_are_valid() {
        let b = Butterfly::new(3);
        for x in 0..8u32 {
            for y in 0..8u32 {
                let p = b.unique_path(x, y);
                assert_eq!(p.len(), 4);
                assert_eq!(p[0], b.net.inputs()[x as usize]);
                assert_eq!(p[3], b.net.outputs()[y as usize]);
                for w in p.windows(2) {
                    assert!(b.net.graph().has_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn butterfly_is_not_a_superconcentrator() {
        // two inputs that collide in the first column cannot both reach
        // certain output pairs disjointly: find some violation with flow
        let b = Butterfly::new(2);
        // inputs 0 and 2 merge toward outputs {0, 2}? try all 2-subsets
        let ins = b.net.inputs();
        let outs = b.net.outputs();
        let mut found_violation = false;
        for i1 in 0..4 {
            for i2 in i1 + 1..4 {
                for o1 in 0..4 {
                    for o2 in o1 + 1..4 {
                        let r = vertex_disjoint_paths(
                            b.net.graph(),
                            &[ins[i1], ins[i2]],
                            &[outs[o1], outs[o2]],
                            |_| true,
                            |_| true,
                            DisjointOptions {
                                count_only: true,
                                ..DisjointOptions::default()
                            },
                        );
                        if r.count < 2 {
                            found_violation = true;
                        }
                    }
                }
            }
        }
        assert!(
            found_violation,
            "butterfly unexpectedly superconcentrates at N=4"
        );
    }
}
