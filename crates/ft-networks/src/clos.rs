//! Three-stage Clos networks `C(m, n, r)`.
//!
//! Clos \[Cl\] 1953 — the paper's opening citation for nonblocking
//! networks. `C(m, n, r)` has `r` input crossbars (`n × m`), `m` middle
//! crossbars (`r × r`) and `r` output crossbars (`m × n`), serving
//! `N = n·r` terminals with `2nmr + mr²` switches and depth 3.
//!
//! * `m ≥ 2n − 1` ⇒ **strictly nonblocking** (Clos' theorem): greedy
//!   routing never blocks;
//! * `m ≥ n` ⇒ **rearrangeable** (Slepian–Duguid): every permutation is
//!   routable, via edge colouring of the middle-stage demand multigraph.

use ft_graph::matching::regular_bipartite_edge_coloring;
use ft_graph::{StagedBuilder, StagedNetwork, VertexId};

/// A three-stage Clos network with its parameters.
#[derive(Clone, Debug)]
pub struct Clos {
    /// Middle-stage crossbar count.
    pub m: usize,
    /// Inputs per input crossbar.
    pub n: usize,
    /// Number of input (and output) crossbars.
    pub r: usize,
    /// The staged network (4 link stages, depth 3).
    pub net: StagedNetwork,
}

impl Clos {
    /// Builds `C(m, n, r)`.
    pub fn new(m: usize, n: usize, r: usize) -> Self {
        assert!(m >= 1 && n >= 1 && r >= 1);
        let mut b = StagedBuilder::new();
        let s0 = b.add_stage(n * r); // input terminals
        let s1 = b.add_stage(r * m); // links input-crossbar -> middle
        let s2 = b.add_stage(m * r); // links middle -> output-crossbar
        let s3 = b.add_stage(n * r); // output terminals
                                     // input crossbars: crossbar i joins inputs i*n..(i+1)*n to links (i, j)
        let l1 = |i: usize, j: usize| VertexId(s1.start + (i * m + j) as u32);
        let l2 = |j: usize, k: usize| VertexId(s2.start + (j * r + k) as u32);
        for i in 0..r {
            for a in 0..n {
                let inp = VertexId(s0.start + (i * n + a) as u32);
                for j in 0..m {
                    b.add_edge(inp, l1(i, j));
                }
            }
        }
        // middle crossbars: crossbar j joins links (i, j) to links (j, k)
        for j in 0..m {
            for i in 0..r {
                for k in 0..r {
                    b.add_edge(l1(i, j), l2(j, k));
                }
            }
        }
        // output crossbars: crossbar k joins links (j, k) to outputs k*n..(k+1)*n
        for k in 0..r {
            for j in 0..m {
                for a in 0..n {
                    let out = VertexId(s3.start + (k * n + a) as u32);
                    b.add_edge(l2(j, k), out);
                }
            }
        }
        b.set_inputs(s0.map(VertexId).collect());
        b.set_outputs(s3.map(VertexId).collect());
        Clos {
            m,
            n,
            r,
            net: b.finish(),
        }
    }

    /// Strictly nonblocking Clos for `N = n·r` terminals: `m = 2n − 1`.
    pub fn strictly_nonblocking(n: usize, r: usize) -> Self {
        Clos::new(2 * n - 1, n, r)
    }

    /// Rearrangeable Clos: `m = n`.
    pub fn rearrangeable(n: usize, r: usize) -> Self {
        Clos::new(n, n, r)
    }

    /// Number of terminals per side.
    pub fn terminals(&self) -> usize {
        self.n * self.r
    }

    /// Switch-count formula `2nmr + mr²`.
    pub fn expected_size(&self) -> usize {
        2 * self.n * self.m * self.r + self.m * self.r * self.r
    }

    /// Whether Clos' strict nonblocking condition `m ≥ 2n − 1` holds.
    pub fn is_strict_by_theorem(&self) -> bool {
        self.m >= 2 * self.n - 1
    }

    /// Routes a permutation by Slepian–Duguid middle-stage assignment
    /// (edge colouring). Requires `m ≥ n`. Returns, for each input
    /// terminal `x`, its path `[input, l1, l2, output]` as vertex ids.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..n·r` or `m < n`.
    pub fn route_permutation(&self, perm: &[u32]) -> Vec<Vec<VertexId>> {
        let nn = self.terminals();
        assert_eq!(perm.len(), nn, "permutation length mismatch");
        assert!(self.m >= self.n, "rearrangeability needs m ≥ n");
        let mut seen = vec![false; nn];
        for &y in perm {
            assert!(!seen[y as usize], "not a permutation");
            seen[y as usize] = true;
        }
        // demand multigraph: input crossbar i -> output crossbar k, one
        // edge per call; n-regular bipartite on r + r vertices
        let mut demand: Vec<Vec<u32>> = vec![Vec::with_capacity(self.n); self.r];
        // remember which call each demand edge position corresponds to
        let mut call_of: Vec<Vec<u32>> = vec![Vec::with_capacity(self.n); self.r];
        for x in 0..nn as u32 {
            let i = x as usize / self.n;
            let k = perm[x as usize] as usize / self.n;
            demand[i].push(k as u32);
            call_of[i].push(x);
        }
        // pad to m-regular with dummy edges when m > n: add m-n dummy
        // edges per crossbar forming permutations (i -> i shifted)
        let extra = self.m - self.n;
        for i in 0..self.r {
            for s in 0..extra {
                demand[i].push(((i + s) % self.r) as u32);
                call_of[i].push(u32::MAX); // dummy
            }
        }
        let colors = regular_bipartite_edge_coloring(&demand, self.r);
        // colors[i][c] = output crossbar matched to input crossbar i in
        // round c; align rounds back to concrete calls: for each i, the
        // colouring consumed demand[i] as a multiset — rebuild assignment
        // by matching multiset entries round by round.
        let mut paths: Vec<Vec<VertexId>> = vec![Vec::new(); nn];
        let s1 = self.net.stage_range(1);
        let s2 = self.net.stage_range(2);
        let s3 = self.net.stage_range(3);
        for i in 0..self.r {
            // for round c, colors[i][c] is some k; pick an unused call
            // (i -> k) to ride middle crossbar c
            let mut remaining: Vec<(u32, u32)> = demand[i]
                .iter()
                .copied()
                .zip(call_of[i].iter().copied())
                .collect();
            for (c, &k) in colors[i].iter().enumerate() {
                let pos = remaining
                    .iter()
                    .position(|&(kk, _)| kk == k)
                    .expect("colour must match a demand edge");
                let (_, call) = remaining.swap_remove(pos);
                if call == u32::MAX {
                    continue; // dummy edge
                }
                let x = call as usize;
                let y = perm[x] as usize;
                let l1v = VertexId(s1.start + (i * self.m + c) as u32);
                let l2v = VertexId(s2.start + (c * self.r + y / self.n) as u32);
                paths[x] = vec![
                    self.net.inputs()[x],
                    l1v,
                    l2v,
                    VertexId(s3.start + y as u32),
                ];
            }
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::{random_permutation, rng};
    use ft_graph::paths::are_vertex_disjoint;

    #[test]
    fn size_and_depth() {
        let c = Clos::new(3, 2, 4);
        assert_eq!(c.net.size(), c.expected_size());
        assert_eq!(c.net.depth(), 3);
        assert_eq!(c.terminals(), 8);
        assert_eq!(c.net.inputs().len(), 8);
    }

    #[test]
    fn strict_constructor() {
        let c = Clos::strictly_nonblocking(3, 4);
        assert_eq!(c.m, 5);
        assert!(c.is_strict_by_theorem());
        let c = Clos::rearrangeable(3, 4);
        assert_eq!(c.m, 3);
        assert!(!c.is_strict_by_theorem());
    }

    fn check_perm_routing(c: &Clos, perm: &[u32]) {
        let paths = c.route_permutation(perm);
        assert_eq!(paths.len(), c.terminals());
        for (x, path) in paths.iter().enumerate() {
            assert_eq!(path.len(), 4, "input {x} path wrong length");
            assert_eq!(path[0], c.net.inputs()[x]);
            assert_eq!(path[3], c.net.outputs()[perm[x] as usize]);
            // consecutive edges exist
            for w in path.windows(2) {
                assert!(
                    c.net.graph().has_edge(w[0], w[1]),
                    "missing edge {:?} -> {:?}",
                    w[0],
                    w[1]
                );
            }
        }
        assert!(
            are_vertex_disjoint(paths.iter().map(|p| p.as_slice())),
            "paths collide"
        );
    }

    #[test]
    fn routes_identity_and_reverse() {
        let c = Clos::rearrangeable(2, 3);
        let n = c.terminals();
        let ident: Vec<u32> = (0..n as u32).collect();
        check_perm_routing(&c, &ident);
        let rev: Vec<u32> = (0..n as u32).rev().collect();
        check_perm_routing(&c, &rev);
    }

    #[test]
    fn routes_random_permutations_rearrangeable() {
        let mut r = rng(10);
        for _ in 0..20 {
            let c = Clos::rearrangeable(3, 4);
            let perm = random_permutation(&mut r, c.terminals());
            check_perm_routing(&c, &perm);
        }
    }

    #[test]
    fn routes_with_extra_middles() {
        // m > n exercises the dummy-edge padding
        let mut r = rng(11);
        let c = Clos::new(5, 3, 3);
        for _ in 0..10 {
            let perm = random_permutation(&mut r, c.terminals());
            check_perm_routing(&c, &perm);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutation() {
        let c = Clos::rearrangeable(2, 2);
        c.route_permutation(&[0, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "m ≥ n")]
    fn rejects_underprovisioned() {
        let c = Clos::new(1, 2, 2);
        let ident: Vec<u32> = (0..4).collect();
        c.route_permutation(&ident);
    }
}
