//! # ft-networks — classical circuit-switching networks and routing
//!
//! The §2 cast of Pippenger & Lin, built as staged link-graphs (vertices
//! are links, edges are single-pole single-throw switches):
//!
//! * [`mod@crossbar`] — the `n²`-switch trivial nonblocking network;
//! * [`clos`] — three-stage Clos `C(m, n, r)`: strictly nonblocking at
//!   `m ≥ 2n−1` (greedy-routable), rearrangeable at `m ≥ n`
//!   (Slepian–Duguid edge-colouring router);
//! * [`benes`] — the O(n log n) rearrangeable optimum with the looping
//!   algorithm;
//! * [`butterfly`] — the unique-path baseline;
//! * [`multibutterfly`] — splitter networks over sampled expanders
//!   (Upfal, Leighton–Maggs), the fault-tolerant routing tradition the
//!   paper builds on;
//! * [`grid`] — `(l, w)`-directed grids (the paper's Fig. 4);
//! * [`router`] — the greedy circuit-switching router of §4;
//! * [`verify`] — rearrangeability / strict-nonblocking /
//!   superconcentrator verification harnesses.

#![warn(missing_docs)]

pub mod benes;
pub mod butterfly;
pub mod clos;
pub mod crossbar;
pub mod grid;
pub mod multibutterfly;
pub mod router;
pub mod verify;

pub use benes::Benes;
pub use butterfly::Butterfly;
pub use clos::Clos;
pub use crossbar::crossbar;
pub use grid::DirectedGrid;
pub use multibutterfly::Multibutterfly;
pub use router::{CircuitRouter, MincostBatch, RouteError, SessionId};
