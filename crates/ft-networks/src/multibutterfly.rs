//! Multibutterfly networks (Upfal; Leighton & Maggs).
//!
//! The paper cites Leighton & Maggs \[LM\] — "expanders might be
//! practical: fast algorithms for routing around faults on
//! multibutterflies" — as the routing-around-faults tradition its
//! construction descends from, and the reproduction notes flag the
//! absence of any open-source multibutterfly router. A `d`-multibutterfly
//! replaces each butterfly column's deterministic exchange with
//! *splitters*: in stage `j`, each block of `M = N/2^j` links feeds the
//! upper and lower half-blocks of the next stage through degree-`d`
//! expanders, so every link has `d` choices per direction instead of 1.
//!
//! Routing is greedy: a circuit heading for output `y` must exit stage
//! `j` in the half-block matching bit `j` of `y`; any idle neighbour in
//! that half works. Expansion guarantees (Leighton–Maggs) that faults
//! or congestion cannot block more than a small fraction of circuits.

use ft_graph::gen::random_bipartite_adjacency;
use ft_graph::{StagedBuilder, StagedNetwork, VertexId};
use rand::rngs::SmallRng;

/// A multibutterfly on `N = 2^k` terminals with splitter degree `d`.
#[derive(Clone, Debug)]
pub struct Multibutterfly {
    /// Dimension (stages − 1).
    pub k: u32,
    /// Splitter degree (edges per link per direction).
    pub d: usize,
    /// The staged network (`k+1` link stages).
    pub net: StagedNetwork,
}

impl Multibutterfly {
    /// Builds a random `d`-multibutterfly (splitters are random
    /// left-regular bipartite graphs — the expander-based construction
    /// of Upfal/Leighton–Maggs with sampled expanders).
    pub fn new(k: u32, d: usize, rng: &mut SmallRng) -> Self {
        assert!(k >= 1 && d >= 1);
        let n = 1usize << k;
        let mut b = StagedBuilder::new();
        let mut ranges = Vec::with_capacity(k as usize + 1);
        for _ in 0..=k {
            ranges.push(b.add_stage(n));
        }
        for j in 0..k as usize {
            let block = n >> j; // links per block at stage j
            let half = block / 2;
            let deg = d.min(half);
            for blk in 0..(1usize << j) {
                let base = blk * block;
                let next_base = blk * block; // same index range next stage
                                             // two splitters: to upper half [0, half) and lower [half, block)
                for (target, offset) in [(0usize, 0usize), (1, half)] {
                    let _ = target;
                    let adj = random_bipartite_adjacency(rng, block, half, deg);
                    for (src, nbrs) in adj.iter().enumerate() {
                        let from = VertexId(ranges[j].start + (base + src) as u32);
                        for &t in nbrs {
                            let to = VertexId(
                                ranges[j + 1].start + (next_base + offset + t as usize) as u32,
                            );
                            b.add_edge(from, to);
                        }
                    }
                }
            }
        }
        b.set_inputs(ranges[0].clone().map(VertexId).collect());
        b.set_outputs(ranges[k as usize].clone().map(VertexId).collect());
        Multibutterfly {
            k,
            d,
            net: b.finish(),
        }
    }

    /// Builds a random `d`-multibutterfly from a bare seed — the
    /// sweep-friendly constructor: a `(k, d, seed)` triple names the
    /// fabric completely, so parameter grids (the `ftexp` runner) can
    /// rebuild the identical splitter wiring in every cell and cache
    /// results under a content hash of the spec alone.
    pub fn seeded(k: u32, d: usize, seed: u64) -> Self {
        Multibutterfly::new(k, d, &mut ft_graph::gen::rng(seed))
    }

    /// Terminal count.
    pub fn terminals(&self) -> usize {
        1usize << self.k
    }

    /// The half-block (0 = upper, 1 = lower) a circuit for output `y`
    /// must enter when leaving stage `j`.
    pub fn required_half(&self, y: u32, j: u32) -> u32 {
        (y >> (self.k - 1 - j)) & 1
    }

    /// Whether `link` (an index within stage `j+1`) lies in the correct
    /// half-block for output `y` given the block structure at stage `j+1`.
    pub fn on_route(&self, y: u32, stage: u32, link: u32) -> bool {
        // after `stage` hops the top `stage` bits of the link index must
        // agree with y's top bits
        if stage == 0 {
            return true;
        }
        let shift = self.k - stage;
        (link >> shift) == (y >> shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::rng;
    use ft_graph::traversal::{bfs, Direction};

    #[test]
    fn shape() {
        let mut r = rng(1);
        let mb = Multibutterfly::new(3, 2, &mut r);
        assert_eq!(mb.net.num_stages(), 4);
        assert_eq!(mb.terminals(), 8);
        // each link has up to 2d out-edges (d per half)
        for v in mb.net.stage_vertices(0) {
            assert!(mb.net.graph().out_degree(v) <= 4);
            assert!(mb.net.graph().out_degree(v) >= 2);
        }
    }

    #[test]
    fn splitters_respect_halves() {
        let mut r = rng(2);
        let mb = Multibutterfly::new(3, 2, &mut r);
        // stage-0 edges from link x land in [0,4) (upper) or [4,8) (lower)
        // — both reachable; stage structure: top bit of stage-1 link is
        // the half selector
        let g = mb.net.graph();
        for x in 0..8u32 {
            let from = mb.net.inputs()[x as usize];
            let mut upper = 0;
            let mut lower = 0;
            for &e in g.out_edges(from) {
                let to = g.head(e);
                let link = to.0 - mb.net.stage_range(1).start;
                if link < 4 {
                    upper += 1;
                } else {
                    lower += 1;
                }
            }
            assert_eq!(upper, 2, "input {x}");
            assert_eq!(lower, 2, "input {x}");
        }
    }

    #[test]
    fn every_output_reachable_through_correct_halves() {
        let mut r = rng(3);
        let mb = Multibutterfly::new(4, 2, &mut r);
        let g = mb.net.graph();
        // on-route reachability: restrict BFS to links on route for y
        for y in [0u32, 5, 15] {
            for x in [0u32, 7, 12] {
                let b = bfs(
                    g,
                    &[mb.net.inputs()[x as usize]],
                    Direction::Forward,
                    |_| true,
                    |v| {
                        let stage = mb.net.stage_of(v) as u32;
                        let link = v.0 - mb.net.stage_range(stage as usize).start;
                        mb.on_route(y, stage, link)
                    },
                );
                assert!(
                    b.reached(mb.net.outputs()[y as usize]),
                    "x={x} cannot reach y={y} on-route"
                );
            }
        }
    }

    #[test]
    fn required_half_matches_bits() {
        let mut r = rng(4);
        let mb = Multibutterfly::new(3, 1, &mut r);
        // y = 0b101: halves from stage 0,1,2 are 1, 0, 1
        assert_eq!(mb.required_half(0b101, 0), 1);
        assert_eq!(mb.required_half(0b101, 1), 0);
        assert_eq!(mb.required_half(0b101, 2), 1);
    }
}
