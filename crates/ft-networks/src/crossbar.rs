//! The `n × n` crossbar: one switch per input/output pair.
//!
//! The trivial strictly nonblocking network — `n²` switches, depth 1.
//! It anchors the baselines: maximal size, minimal depth, and (as the
//! experiments show) *still* not fault-tolerant, because a single open
//! failure on the unique `(i, o)` switch severs that pair, and a single
//! closed failure shorts an input to an output permanently.

use ft_graph::{StagedBuilder, StagedNetwork, VertexId};

/// Builds the `n × n` crossbar as a 2-stage network.
pub fn crossbar(n: usize) -> StagedNetwork {
    assert!(n >= 1);
    let mut b = StagedBuilder::new();
    let ins = b.add_stage(n);
    let outs = b.add_stage(n);
    for i in ins.clone() {
        for o in outs.clone() {
            b.add_edge(VertexId(i), VertexId(o));
        }
    }
    b.set_inputs(ins.map(VertexId).collect());
    b.set_outputs(outs.map(VertexId).collect());
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::menger::verify_superconcentrator_exhaustive;

    #[test]
    fn shape() {
        let x = crossbar(4);
        assert_eq!(x.size(), 16);
        assert_eq!(x.depth(), 1);
        assert_eq!(x.inputs().len(), 4);
        assert_eq!(x.outputs().len(), 4);
    }

    #[test]
    fn crossbar_is_superconcentrator() {
        let x = crossbar(3);
        assert!(verify_superconcentrator_exhaustive(&x, x.inputs(), x.outputs()).is_none());
    }

    #[test]
    fn unit_crossbar() {
        let x = crossbar(1);
        assert_eq!(x.size(), 1);
        assert_eq!(x.depth(), 1);
    }
}
