//! Verifying the §2 network properties on arbitrary staged networks.
//!
//! * **rearrangeable**: every permutation routes as vertex-disjoint
//!   paths. Checking one permutation on an arbitrary DAG is already
//!   NP-hard in general, so the generic checker is a backtracking search
//!   with a node budget — exact for the small networks in tests, while
//!   Beneš/Clos have polynomial special-case routers in their modules.
//! * **strictly nonblocking**: *any* greedy-reachable call pattern can
//!   always be extended. Verified exhaustively for tiny networks by
//!   exploring the full game tree, and refuted probabilistically by
//!   randomized churn adversaries elsewhere.
//! * **superconcentrator**: delegated to `ft_graph::menger`.

use ft_graph::ids::VertexId;
use ft_graph::StagedNetwork;

/// Attempts to route the permutation `perm` (inputs\[i\] → outputs[perm\[i\]])
/// as vertex-disjoint paths by backtracking over BFS-shortest choices.
/// `budget` bounds the number of search nodes; `None` on exhaustion or
/// genuine unroutability.
pub fn route_permutation_backtracking(
    net: &StagedNetwork,
    perm: &[u32],
    budget: &mut u64,
) -> Option<Vec<Vec<VertexId>>> {
    let n = net.inputs().len();
    assert_eq!(perm.len(), n);
    let mut used = vec![false; net.graph().num_vertices()];
    let mut paths: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    if backtrack(net, perm, 0, &mut used, &mut paths, budget) {
        Some(paths)
    } else {
        None
    }
}

fn backtrack(
    net: &StagedNetwork,
    perm: &[u32],
    i: usize,
    used: &mut Vec<bool>,
    paths: &mut Vec<Vec<VertexId>>,
    budget: &mut u64,
) -> bool {
    if i == perm.len() {
        return true;
    }
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let input = net.inputs()[i];
    let output = net.outputs()[perm[i] as usize];
    // enumerate candidate paths lazily: DFS over stages, preferring
    // lexicographic order; to bound work we enumerate up to 64 distinct
    // paths per level via iterative deepening on the first branch.
    let mut candidates = Vec::new();
    collect_paths(
        net,
        input,
        output,
        used,
        &mut vec![input],
        &mut candidates,
        64,
    );
    for path in candidates {
        for &v in &path {
            used[v.index()] = true;
        }
        paths.push(path.clone());
        if backtrack(net, perm, i + 1, used, paths, budget) {
            return true;
        }
        paths.pop();
        for &v in &path {
            used[v.index()] = false;
        }
        if *budget == 0 {
            return false;
        }
    }
    false
}

fn collect_paths(
    net: &StagedNetwork,
    cur: VertexId,
    target: VertexId,
    used: &[bool],
    prefix: &mut Vec<VertexId>,
    out: &mut Vec<Vec<VertexId>>,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    if cur == target {
        out.push(prefix.clone());
        return;
    }
    for &e in net.graph().out_edges(cur) {
        let w = net.graph().head(e);
        if used[w.index()] && w != target {
            continue;
        }
        if used[w.index()] {
            continue;
        }
        prefix.push(w);
        collect_paths(net, w, target, used, prefix, out, limit);
        prefix.pop();
        if out.len() >= limit {
            return;
        }
    }
}

/// Exhaustively verifies rearrangeability by routing **every**
/// permutation. Factorial: keep `n ≤ 6`.
pub fn verify_rearrangeable_exhaustive(net: &StagedNetwork) -> Result<(), Vec<u32>> {
    let n = net.inputs().len();
    assert!(n <= 6, "exhaustive rearrangeability limited to n ≤ 6");
    let mut perm: Vec<u32> = (0..n as u32).collect();
    fn rec(net: &StagedNetwork, perm: &mut Vec<u32>, i: usize) -> Result<(), Vec<u32>> {
        if i == perm.len() {
            let mut budget = 1_000_000u64;
            return if route_permutation_backtracking(net, perm, &mut budget).is_some() {
                Ok(())
            } else {
                Err(perm.clone())
            };
        }
        for j in i..perm.len() {
            perm.swap(i, j);
            rec(net, perm, i + 1)?;
            perm.swap(i, j);
        }
        Ok(())
    }
    rec(net, &mut perm, 0)
}

/// Witness of a blocking configuration: the established `(input, output)`
/// calls plus the idle pair that could not be connected.
pub type BlockingWitness = (Vec<(usize, usize)>, usize, usize);

/// State of the exhaustive nonblocking game: which inputs are connected
/// to which outputs.
///
/// Explores every reachable configuration of calls where each call was
/// established while vertex-disjoint from the others; at each state,
/// every idle (input, output) pair must admit an idle path. Returns a
/// witness `(calls, input, output)` on violation. Exponential: tiny
/// networks only.
pub fn verify_strictly_nonblocking_exhaustive(
    net: &StagedNetwork,
    max_states: usize,
) -> Result<(), BlockingWitness> {
    use std::collections::HashSet;
    let n_in = net.inputs().len();
    let n_out = net.outputs().len();
    // state = sorted list of (input, output) pairs currently connected;
    // the adversary may realise ANY vertex-disjoint routing of them, so a
    // state is "safe" only if for every routing realisation... The paper's
    // strict nonblocking definition quantifies over the established
    // vertex-disjoint path set. We must therefore track path sets, not
    // just pairs. To stay finite we enumerate path-set states.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct State(Vec<Vec<u32>>); // sorted set of paths (vertex id lists)

    let mut seen: HashSet<State> = HashSet::new();
    let mut stack = vec![State(Vec::new())];
    let mut states = 0usize;
    while let Some(state) = stack.pop() {
        if !seen.insert(state.clone()) {
            continue;
        }
        states += 1;
        assert!(
            states <= max_states,
            "nonblocking game exceeded {max_states} states"
        );
        let mut used = vec![false; net.graph().num_vertices()];
        let mut busy_in = vec![false; n_in];
        let mut busy_out = vec![false; n_out];
        for p in &state.0 {
            for &v in p {
                used[v as usize] = true;
            }
        }
        for (i, &vin) in net.inputs().iter().enumerate() {
            busy_in[i] = used[vin.index()];
        }
        for (o, &vout) in net.outputs().iter().enumerate() {
            busy_out[o] = used[vout.index()];
        }
        // every idle pair must be connectable; and each successful
        // connection (every minimal idle path, to cover adversarial
        // routing) spawns successor states
        for (i, _) in busy_in.iter().enumerate().filter(|(_, &b)| !b) {
            for (o, _) in busy_out.iter().enumerate().filter(|(_, &b)| !b) {
                // find all idle paths (bounded) — adversary may pick any
                let mut cands = Vec::new();
                let mut prefix = vec![net.inputs()[i]];
                collect_paths(
                    net,
                    net.inputs()[i],
                    net.outputs()[o],
                    &used,
                    &mut prefix,
                    &mut cands,
                    16,
                );
                if cands.is_empty() {
                    let calls: Vec<(usize, usize)> = state
                        .0
                        .iter()
                        .map(|p| {
                            let first = VertexId(p[0]);
                            let last = VertexId(*p.last().unwrap());
                            (
                                net.inputs().iter().position(|&v| v == first).unwrap(),
                                net.outputs().iter().position(|&v| v == last).unwrap(),
                            )
                        })
                        .collect();
                    return Err((calls, i, o));
                }
                for cand in cands {
                    let mut next = state.0.clone();
                    next.push(cand.iter().map(|v| v.0).collect());
                    next.sort();
                    stack.push(State(next));
                }
            }
        }
    }
    Ok(())
}

/// Convenience re-export: sampled superconcentrator check.
pub fn verify_superconcentrator_sampled(
    net: &StagedNetwork,
    trials: usize,
    rng: &mut rand::rngs::SmallRng,
) -> Option<(Vec<VertexId>, Vec<VertexId>)> {
    ft_graph::menger::verify_superconcentrator_sampled(
        net.graph(),
        net.inputs(),
        net.outputs(),
        trials,
        rng,
    )
}

/// Blocked-pair search by randomized churn: returns true if a greedy
/// router ever failed to connect an idle pair (evidence the network is
/// not strictly nonblocking; for strictly nonblocking networks this
/// never returns true).
pub fn churn_finds_blocking(
    net: &StagedNetwork,
    rounds: usize,
    steps_per_round: usize,
    rng: &mut rand::rngs::SmallRng,
) -> bool {
    use crate::router::{CircuitRouter, RouteError};
    use rand::Rng;
    let n_in = net.inputs().len();
    let n_out = net.outputs().len();
    for _ in 0..rounds {
        let mut router = CircuitRouter::new(net);
        let mut live = Vec::new();
        for _ in 0..steps_per_round {
            let connect = live.is_empty() || rng.random_bool(0.6);
            if connect {
                let ins: Vec<usize> = (0..n_in)
                    .filter(|&i| router.is_idle(net.inputs()[i]))
                    .collect();
                let outs: Vec<usize> = (0..n_out)
                    .filter(|&o| router.is_idle(net.outputs()[o]))
                    .collect();
                if ins.is_empty() || outs.is_empty() {
                    continue;
                }
                let i = ins[rng.random_range(0..ins.len())];
                let o = outs[rng.random_range(0..outs.len())];
                match router.connect(net.inputs()[i], net.outputs()[o]) {
                    Ok(id) => live.push(id),
                    Err(RouteError::Blocked(_, _)) => return true,
                    Err(e) => panic!("unexpected routing error: {e}"),
                }
            } else {
                let idx = rng.random_range(0..live.len());
                let id = live.swap_remove(idx);
                router.disconnect(id);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benes::Benes;
    use crate::clos::Clos;
    use crate::crossbar::crossbar;
    use ft_graph::gen::rng;

    #[test]
    fn crossbar_routes_any_permutation() {
        let net = crossbar(4);
        let mut budget = 10_000u64;
        let paths =
            route_permutation_backtracking(&net, &[2, 0, 3, 1], &mut budget).expect("routable");
        assert_eq!(paths.len(), 4);
        assert!(ft_graph::paths::are_vertex_disjoint(
            paths.iter().map(|p| p.as_slice())
        ));
    }

    #[test]
    fn crossbar_exhaustively_rearrangeable() {
        let net = crossbar(4);
        assert!(verify_rearrangeable_exhaustive(&net).is_ok());
    }

    #[test]
    fn benes4_exhaustively_rearrangeable_via_backtracking() {
        let b = Benes::new(2);
        assert!(verify_rearrangeable_exhaustive(&b.net).is_ok());
    }

    #[test]
    fn broken_network_fails_rearrangeability() {
        // 2 inputs, 1 shared middle, 2 outputs: identity unroutable
        let mut builder = ft_graph::StagedBuilder::new();
        let s0 = builder.add_stage(2);
        let s1 = builder.add_stage(1);
        let s2 = builder.add_stage(2);
        for i in s0.clone() {
            builder.add_edge(VertexId(i), VertexId(s1.start));
        }
        for o in s2.clone() {
            builder.add_edge(VertexId(s1.start), VertexId(o));
        }
        builder.set_inputs(s0.map(VertexId).collect());
        builder.set_outputs(s2.map(VertexId).collect());
        let net = builder.finish();
        let viol = verify_rearrangeable_exhaustive(&net);
        assert!(viol.is_err());
    }

    #[test]
    fn crossbar_is_strictly_nonblocking_exhaustive() {
        let net = crossbar(2);
        assert!(verify_strictly_nonblocking_exhaustive(&net, 100_000).is_ok());
        let net = crossbar(3);
        assert!(verify_strictly_nonblocking_exhaustive(&net, 2_000_000).is_ok());
    }

    #[test]
    fn benes_is_not_strictly_nonblocking() {
        // Beneš N=4 is rearrangeable but not strictly nonblocking: the
        // exhaustive game must find a blocking witness
        let b = Benes::new(2);
        let res = verify_strictly_nonblocking_exhaustive(&b.net, 5_000_000);
        assert!(res.is_err(), "Beneš should have a blocking state");
        let (calls, i, o) = res.unwrap_err();
        assert!(!calls.is_empty());
        assert!(i < 4 && o < 4);
    }

    #[test]
    fn churn_blocks_benes_but_not_crossbar() {
        let mut r = rng(31);
        let b = Benes::new(2);
        assert!(churn_finds_blocking(&b.net, 100, 60, &mut r));
        let x = crossbar(4);
        assert!(!churn_finds_blocking(&x, 50, 60, &mut r));
    }

    #[test]
    fn strict_clos_survives_churn() {
        let c = Clos::strictly_nonblocking(2, 2);
        let mut r = rng(32);
        assert!(!churn_finds_blocking(&c.net, 50, 80, &mut r));
    }

    #[test]
    fn sampled_superconcentrator_checks() {
        let mut r = rng(33);
        let x = crossbar(4);
        assert!(verify_superconcentrator_sampled(&x, 100, &mut r).is_none());
        let b = Benes::new(2);
        assert!(
            verify_superconcentrator_sampled(&b.net, 200, &mut r).is_none(),
            "Beneš is rearrangeable hence a superconcentrator"
        );
    }
}
