//! The §5 lower-bound machinery, implemented constructively.
//!
//! Theorem 1 proves that every `(¼, ½)`-n-superconcentrator has size
//! `Ω(n (log n)²)` and depth `Ω(log n)`. The proof machinery is fully
//! algorithmic and this module executes it on concrete networks:
//!
//! * [`lemma1_short_paths`] — Lemma 1 / Corollary 1 (Figs. 1–3): a
//!   forest with `l` leaves and internal degree ≥ 3 contains ≥ `l/42`
//!   edge-disjoint leaf-to-leaf paths of length ≤ 3. The
//!   implementation follows the proof: reduce to degree 3, identify
//!   *good* leaves (another leaf within distance 3), build a maximal
//!   edge-disjoint family greedily.
//! * [`proximity_forest`] + [`short_terminal_paths`] — Lemma 2: when
//!   many inputs are close together, a forest of initial path segments
//!   plus stretch contraction plus Lemma 1 produces `≥ n/84`
//!   edge-disjoint input-to-input paths of length `≤ 3j`; if all edges
//!   of one path close-fail, two inputs short.
//! * [`zone_audit`] — Theorem 1: around each *good* input (far from
//!   every other input), the edge zones `B_h(v)` at distance `h` must
//!   each contain `Ω(log n)` edges, else open failures isolate the
//!   input; summing disjoint balls gives the size bound.

use ft_graph::distance::{edge_zones, nearest_other_terminal};
use ft_graph::ids::{EdgeId, VertexId};
use ft_graph::traversal::{bfs, Direction};
use ft_graph::tree::{
    contract_stretches, is_forest, leaves, min_internal_degree_3, reduce_to_degree_3,
    undirected_adjacency,
};
use ft_graph::{DiGraph, Digraph, UnionFind};

/// A leaf-to-leaf path found by Lemma 1: endpoints in the original
/// graph plus the original edges traversed (≤ 3 after contraction of
/// the degree-reduction chains).
#[derive(Clone, Debug)]
pub struct LeafPath {
    /// The two leaf endpoints.
    pub ends: (VertexId, VertexId),
    /// Original edges on the path (length ≥ 1).
    pub edges: Vec<EdgeId>,
}

/// Result of running the Lemma 1 algorithm.
#[derive(Clone, Debug)]
pub struct Lemma1Result {
    /// Number of leaves `l` of the input forest.
    pub num_leaves: usize,
    /// Leaves with another leaf within distance 3 (in the degree-3
    /// reduction) — the proof's *good* leaves.
    pub good_leaves: usize,
    /// The edge-disjoint short leaf-to-leaf paths found.
    pub paths: Vec<LeafPath>,
}

impl Lemma1Result {
    /// The paper's guaranteed ratio: `42·paths ≥ leaves`.
    pub fn meets_l_over_42(&self) -> bool {
        42 * self.paths.len() >= self.num_leaves
    }

    /// Measured ratio `paths/leaves` (the Remark conjectures `l/4` is
    /// achievable).
    pub fn ratio(&self) -> f64 {
        if self.num_leaves == 0 {
            0.0
        } else {
            self.paths.len() as f64 / self.num_leaves as f64
        }
    }
}

/// Runs Lemma 1 (tree) / Corollary 1 (forest): finds a maximal family
/// of edge-disjoint leaf-to-leaf paths of length ≤ 3 following the
/// proof's charging scheme.
///
/// # Panics
/// Panics unless `g` (viewed undirected) is a forest whose internal
/// nodes all have degree ≥ 3.
pub fn lemma1_short_paths(g: &DiGraph) -> Lemma1Result {
    assert!(is_forest(g), "Lemma 1 requires a forest");
    assert!(
        min_internal_degree_3(g),
        "Lemma 1 requires internal degree ≥ 3"
    );
    let (h, origin) = reduce_to_degree_3(g);
    // In the reduction, chain edges were added first; the original
    // edges occupy the last `g.num_edges()` ids in order.
    let orig_offset = h.num_edges() - g.num_edges();
    let to_orig = |e: EdgeId| -> Option<EdgeId> {
        (e.index() >= orig_offset).then(|| EdgeId::from(e.index() - orig_offset))
    };
    let adj = undirected_adjacency(&h);
    let hl = leaves(&h);
    let num_leaves = hl.len();
    let is_leaf: Vec<bool> = {
        let mut m = vec![false; h.num_vertices()];
        for &u in &hl {
            m[u.index()] = true;
        }
        m
    };
    // good leaves: another leaf within distance ≤ 3
    let near_leaf = |u: VertexId, skip: VertexId| -> bool {
        // depth-3 DFS is tiny (degree ≤ 3)
        let mut stack = vec![(u, 0u32, EdgeId(u32::MAX))];
        while let Some((x, d, via)) = stack.pop() {
            if x != u && x != skip && is_leaf[x.index()] {
                return true;
            }
            if d == 3 {
                continue;
            }
            for &(e, w) in &adj[x.index()] {
                if e != via {
                    stack.push((w, d + 1, e));
                }
            }
        }
        false
    };
    let good: Vec<VertexId> = hl.iter().copied().filter(|&u| near_leaf(u, u)).collect();
    let good_mask: Vec<bool> = {
        let mut m = vec![false; h.num_vertices()];
        for &u in &good {
            m[u.index()] = true;
        }
        m
    };
    // greedy maximal family of edge-disjoint ≤3-paths between good
    // leaves (one pass is maximal: availability only shrinks)
    let mut used = vec![false; h.num_edges()];
    let mut paths = Vec::new();
    for &start in &good {
        // the leaf's only edge must be free
        if adj[start.index()].iter().any(|&(e, _)| used[e.index()]) {
            continue;
        }
        // DFS for a ≤3-edge path of unused edges to another good leaf
        let found = find_short_path(&adj, &good_mask, &used, start);
        if let Some(edge_seq) = found {
            for &e in &edge_seq {
                used[e.index()] = true;
            }
            // map back to original edges (drop chain edges)
            let orig_edges: Vec<EdgeId> = edge_seq.iter().filter_map(|&e| to_orig(e)).collect();
            let end = path_endpoint(&h, start, &edge_seq);
            paths.push(LeafPath {
                ends: (origin[start.index()], origin[end.index()]),
                edges: orig_edges,
            });
        }
    }
    Lemma1Result {
        num_leaves,
        good_leaves: good.len(),
        paths,
    }
}

/// Search for an unused-edge path of length ≤ 3 from `start` to
/// another good leaf. Iterative deepening (depth 1, then 2, then 3)
/// so the shortest available path is preferred — a plain DFS would
/// happily burn three edges where one suffices, starving later leaves.
fn find_short_path(
    adj: &[Vec<(EdgeId, VertexId)>],
    good: &[bool],
    used: &[bool],
    start: VertexId,
) -> Option<Vec<EdgeId>> {
    fn rec(
        adj: &[Vec<(EdgeId, VertexId)>],
        good: &[bool],
        used: &[bool],
        start: VertexId,
        at: VertexId,
        limit: u32,
        trail: &mut Vec<EdgeId>,
    ) -> bool {
        if at != start && good[at.index()] && !trail.is_empty() {
            // only accept at exactly the target depth (shorter hits
            // were found by an earlier iteration)
            return trail.len() as u32 == limit;
        }
        if trail.len() as u32 == limit {
            return false;
        }
        for &(e, w) in &adj[at.index()] {
            if used[e.index()] || trail.contains(&e) {
                continue;
            }
            trail.push(e);
            if rec(adj, good, used, start, w, limit, trail) {
                return true;
            }
            trail.pop();
        }
        false
    }
    for limit in 1..=3 {
        let mut trail = Vec::new();
        if rec(adj, good, used, start, start, limit, &mut trail) {
            return Some(trail);
        }
    }
    None
}

/// Walks `edges` from `start` and returns the far endpoint.
fn path_endpoint(g: &DiGraph, start: VertexId, edges: &[EdgeId]) -> VertexId {
    let mut at = start;
    for &e in edges {
        at = g.other_endpoint(e, at);
    }
    at
}

/// Result of the Lemma 2 forest construction.
#[derive(Clone, Debug)]
pub struct ProximityForest {
    /// The forest, on the same vertex ids as the host network.
    pub forest: DiGraph,
    /// For each forest edge, the host edge it copies.
    pub host_edge: Vec<EdgeId>,
    /// Terminals whose nearest-other-terminal path contributed at
    /// least one edge.
    pub participating: usize,
    /// Terminals skipped because no other terminal lies within `max_j`.
    pub isolated: usize,
}

/// Lemma 2's forest: for each terminal `v` (in order) take the
/// shortest undirected path `r(v)` to the nearest other terminal (if
/// within `max_j` edges) and add its longest initial segment that is
/// edge-disjoint from — and keeps a forest with — what was added
/// before.
pub fn proximity_forest<G: Digraph>(g: &G, terminals: &[VertexId], max_j: u32) -> ProximityForest {
    let mut is_term = vec![false; g.num_vertices()];
    for &t in terminals {
        is_term[t.index()] = true;
    }
    let mut forest = DiGraph::new();
    forest.add_vertices(g.num_vertices());
    let mut host_edge = Vec::new();
    let mut in_forest = std::collections::HashSet::new();
    let mut uf = UnionFind::new(g.num_vertices());
    let mut participating = 0;
    let mut isolated = 0;
    for &v in terminals {
        // BFS (undirected) until another terminal is reached
        let b = bfs(g, &[v], Direction::Undirected, |_| true, |_| true);
        let mut nearest: Option<VertexId> = None;
        for &u in &b.order {
            if u != v && is_term[u.index()] {
                nearest = Some(u);
                break;
            }
        }
        let Some(target) = nearest else {
            isolated += 1;
            continue;
        };
        let Some(path) = b.path_to(g, target) else {
            isolated += 1;
            continue;
        };
        if path.len() as u32 - 1 > max_j {
            isolated += 1;
            continue;
        }
        // longest initial segment that stays edge-disjoint and acyclic
        let mut added = false;
        for w in path.windows(2) {
            let (a, c) = (w[0], w[1]);
            // identify the host edge (either direction)
            let e = g
                .out_edge_slice(a)
                .iter()
                .chain(g.in_edge_slice(a))
                .copied()
                .find(|&e| g.other_endpoint(e, a) == c)
                .expect("path edge must exist");
            if in_forest.contains(&e) || uf.same(a.0, c.0) {
                break;
            }
            in_forest.insert(e);
            uf.union(a.0, c.0);
            forest.add_edge(a, c);
            host_edge.push(e);
            added = true;
        }
        if added {
            participating += 1;
        }
    }
    ProximityForest {
        forest,
        host_edge,
        participating,
        isolated,
    }
}

/// A short terminal-to-terminal path produced by the Lemma 2 pipeline.
#[derive(Clone, Debug)]
pub struct TerminalPath {
    /// Endpoints (vertices of the host network — leaves of the
    /// contracted forest, usually terminals).
    pub ends: (VertexId, VertexId),
    /// Host edges on the path (≤ 3j of them).
    pub host_edges: Vec<EdgeId>,
}

/// Result of the full Lemma 2 pipeline.
#[derive(Clone, Debug)]
pub struct Lemma2Result {
    /// The forest statistics.
    pub forest_leaves: usize,
    /// Edge-disjoint short paths found (the paper guarantees
    /// ≥ participating/84 when `max_j` is below the Lemma 2 threshold).
    pub paths: Vec<TerminalPath>,
    /// Maximum host-edge length over the found paths.
    pub max_len: usize,
}

/// Runs the Lemma 2 pipeline on a network: proximity forest → stretch
/// contraction → Lemma 1 → expansion back to host edges. The returned
/// paths are edge-disjoint in the host network; if every edge of any
/// single path close-fails, two terminals short.
pub fn short_terminal_paths<G: Digraph>(g: &G, terminals: &[VertexId], max_j: u32) -> Lemma2Result {
    let pf = proximity_forest(g, terminals, max_j);
    let c = contract_stretches(&pf.forest);
    // drop isolated vertices implicitly: lemma1 works on the forest
    let l1 = lemma1_short_paths(&c.graph);
    let mut paths = Vec::new();
    let mut max_len = 0;
    for p in &l1.paths {
        // expand contracted edges back through their stretches; the
        // contracted edges of `c.graph` are indexed like c.edge_paths
        let mut host_edges = Vec::new();
        for &ce in &p.edges {
            for &fe in &c.edge_paths[ce.index()] {
                host_edges.push(pf.host_edge[fe.index()]);
            }
        }
        max_len = max_len.max(host_edges.len());
        paths.push(TerminalPath {
            ends: (
                c.vertex_origin[p.ends.0.index()],
                c.vertex_origin[p.ends.1.index()],
            ),
            host_edges,
        });
    }
    Lemma2Result {
        forest_leaves: l1.num_leaves,
        paths,
        max_len,
    }
}

/// Theorem 1's audit of a network's neighbourhood structure.
#[derive(Clone, Debug)]
pub struct ZoneAudit {
    /// Number of terminals audited.
    pub n: usize,
    /// Distance threshold used for *good* terminals
    /// (`⌊log₂(n)/8⌋`, min 1).
    pub distance_threshold: u32,
    /// Terminals at distance ≥ threshold from every other terminal.
    pub good_terminals: usize,
    /// Zone radius `⌊log₂(n)/16⌋` (min 1).
    pub h_max: u32,
    /// Minimum over good terminals of the smallest zone `|B_h(v)|`,
    /// `1 ≤ h ≤ h_max`. `None` when no terminal is good.
    pub min_zone_edges: Option<usize>,
    /// Mean over good terminals of their smallest zone.
    pub mean_min_zone: f64,
    /// Total edges in the (disjoint) balls of good terminals — a lower
    /// bound on network size when the threshold is ≥ 2·h_max.
    pub ball_edges_total: usize,
}

/// The paper's good-input distance threshold for `n` terminals.
pub fn good_distance_threshold(n: usize) -> u32 {
    (((n as f64).log2() / 8.0).floor() as u32).max(1)
}

/// The paper's zone radius for `n` terminals.
pub fn zone_radius(n: usize) -> u32 {
    (((n as f64).log2() / 16.0).floor() as u32).max(1)
}

/// Audits the Theorem 1 quantities on a network with the paper's
/// thresholds; see [`zone_audit_with`] for explicit ones.
pub fn zone_audit<G: Digraph>(g: &G, terminals: &[VertexId]) -> ZoneAudit {
    let n = terminals.len();
    zone_audit_with(g, terminals, good_distance_threshold(n), zone_radius(n))
}

/// Audits the Theorem 1 quantities on a network: which terminals are
/// good (nearest other terminal at distance ≥ `threshold`), and how
/// many edges each distance-zone `B_h(v)`, `1 ≤ h ≤ h_max`, holds.
pub fn zone_audit_with<G: Digraph>(
    g: &G,
    terminals: &[VertexId],
    threshold: u32,
    h_max: u32,
) -> ZoneAudit {
    let n = terminals.len();
    let nearest = nearest_other_terminal(g, terminals);
    let mut good_terminals = 0;
    let mut min_zone: Option<usize> = None;
    let mut sum_min_zone = 0usize;
    let mut ball_total = 0usize;
    for (i, &t) in terminals.iter().enumerate() {
        if nearest[i] < threshold {
            continue;
        }
        good_terminals += 1;
        // zones[h−1] lists the edges at distance exactly h, 1 ≤ h ≤ h_max
        let zones = edge_zones(g, t, h_max);
        let mut v_min = usize::MAX;
        for zone in zones.iter() {
            v_min = v_min.min(zone.len());
            ball_total += zone.len();
        }
        if v_min == usize::MAX {
            v_min = 0;
        }
        sum_min_zone += v_min;
        min_zone = Some(min_zone.map_or(v_min, |m| m.min(v_min)));
    }
    ZoneAudit {
        n,
        distance_threshold: threshold,
        good_terminals,
        h_max,
        min_zone_edges: min_zone,
        mean_min_zone: if good_terminals == 0 {
            0.0
        } else {
            sum_min_zone as f64 / good_terminals as f64
        },
        ball_edges_total: ball_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_graph::gen::{caterpillar_tree, complete_dary_tree, random_lemma1_tree, rng};
    use ft_graph::ids::v;

    #[test]
    fn lemma1_on_single_edge() {
        let mut g = DiGraph::new();
        g.add_vertices(2);
        g.add_edge(v(0), v(1));
        let r = lemma1_short_paths(&g);
        assert_eq!(r.num_leaves, 2);
        assert_eq!(r.paths.len(), 1);
        assert!(r.meets_l_over_42());
        assert_eq!(r.paths[0].edges.len(), 1);
    }

    #[test]
    fn lemma1_on_star() {
        // star with 6 leaves: 3 disjoint paths through the center? No —
        // paths must be edge-disjoint: leaf-center-leaf uses 2 edges,
        // so 3 paths exactly.
        let mut g = DiGraph::new();
        g.add_vertices(7);
        for i in 1..=6 {
            g.add_edge(v(0), v(i));
        }
        let r = lemma1_short_paths(&g);
        assert_eq!(r.num_leaves, 6);
        assert_eq!(r.good_leaves, 6);
        assert_eq!(r.paths.len(), 3);
        for p in &r.paths {
            assert!(p.edges.len() <= 3);
            assert_ne!(p.ends.0, p.ends.1);
        }
    }

    #[test]
    fn lemma1_paths_edge_disjoint_and_short() {
        let mut r = rng(31);
        for _ in 0..20 {
            let g = random_lemma1_tree(&mut r, 64);
            let res = lemma1_short_paths(&g);
            assert!(res.meets_l_over_42(), "{res:?}");
            let mut used = std::collections::HashSet::new();
            for p in &res.paths {
                assert!(!p.edges.is_empty() && p.edges.len() <= 3);
                for &e in &p.edges {
                    assert!(used.insert(e), "edge reused across paths");
                }
            }
        }
    }

    #[test]
    fn lemma1_on_ternary_tree_beats_quarter() {
        // complete ternary trees are leaf-dense: the measured ratio
        // should beat even the conjectured l/4
        let g = complete_dary_tree(3, 4);
        let r = lemma1_short_paths(&g);
        assert!(r.ratio() >= 0.25, "ratio {}", r.ratio());
    }

    #[test]
    fn lemma1_on_caterpillar() {
        let g = caterpillar_tree(10, 3);
        let r = lemma1_short_paths(&g);
        assert!(r.meets_l_over_42());
        assert!(r.paths.len() >= r.num_leaves / 6, "caterpillars are easy");
    }

    #[test]
    #[should_panic(expected = "internal degree")]
    fn lemma1_rejects_paths() {
        let mut g = DiGraph::new();
        g.add_vertices(3);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        lemma1_short_paths(&g);
    }

    #[test]
    fn proximity_forest_on_shared_hub() {
        // 4 terminals all adjacent to one hub: forest = star subset,
        // every terminal within distance 2 of another
        let mut g = DiGraph::new();
        g.add_vertices(5);
        for i in 1..=4 {
            g.add_edge(v(i), v(0));
        }
        let terms = [v(1), v(2), v(3), v(4)];
        let pf = proximity_forest(&g, &terms, 4);
        assert!(is_forest(&pf.forest));
        assert_eq!(pf.isolated, 0);
        assert!(pf.participating >= 3);
        let r = short_terminal_paths(&g, &terms, 4);
        assert!(!r.paths.is_empty());
        assert!(r.max_len <= 3 * 4);
        // the found paths join distinct terminals
        for p in &r.paths {
            assert_ne!(p.ends.0, p.ends.1);
        }
    }

    #[test]
    fn proximity_forest_respects_max_j() {
        // two terminals far apart: nothing within j = 1
        let mut g = DiGraph::new();
        g.add_vertices(4);
        g.add_edge(v(0), v(2));
        g.add_edge(v(2), v(3));
        g.add_edge(v(3), v(1));
        let pf = proximity_forest(&g, &[v(0), v(1)], 1);
        assert_eq!(pf.participating, 0);
        assert_eq!(pf.isolated, 2);
    }

    #[test]
    fn lemma2_paths_are_edge_disjoint() {
        // grid-ish host: terminals on a cycle with chords
        let mut g = DiGraph::new();
        g.add_vertices(12);
        for i in 0..12 {
            g.add_edge(v(i as u32), v(((i + 1) % 12) as u32));
        }
        let terms: Vec<VertexId> = (0..6).map(|i| v(2 * i)).collect();
        let r = short_terminal_paths(&g, &terms, 4);
        let mut used = std::collections::HashSet::new();
        for p in &r.paths {
            for &e in &p.host_edges {
                assert!(used.insert(e), "host edge reused");
            }
        }
    }

    #[test]
    fn zone_audit_thresholds() {
        assert_eq!(good_distance_threshold(256), 1);
        assert_eq!(good_distance_threshold(1 << 16), 2);
        assert_eq!(zone_radius(1 << 16), 1);
        assert_eq!(zone_radius(1 << 20), 1);
        assert_eq!(zone_radius(1 << 32), 2);
    }

    #[test]
    fn zone_audit_on_disjoint_paths() {
        // two long disjoint paths: terminals at the far ends are good,
        // every zone has exactly 1 edge
        let mut g = DiGraph::new();
        g.add_vertices(12);
        for i in 0..5 {
            g.add_edge(v(i), v(i + 1));
            g.add_edge(v(6 + i), v(7 + i));
        }
        let audit = zone_audit(&g, &[v(0), v(6)]);
        assert_eq!(audit.n, 2);
        assert_eq!(audit.good_terminals, 2);
        assert_eq!(audit.min_zone_edges, Some(1));
        assert!(audit.ball_edges_total >= 2);
    }

    #[test]
    fn zone_audit_adjacent_terminals_not_good() {
        let mut g = DiGraph::new();
        g.add_vertices(2);
        g.add_edge(v(0), v(1));
        // explicit threshold 2: adjacent terminals are not good
        let audit = zone_audit_with(&g, &[v(0), v(1)], 2, 1);
        assert_eq!(audit.good_terminals, 0);
        assert_eq!(audit.min_zone_edges, None);
        // the paper's threshold degenerates to 1 at n = 2 — both good
        let audit = zone_audit(&g, &[v(0), v(1)]);
        assert_eq!(audit.good_terminals, 2);
    }
}
