//! The fault-tolerant nonblocking network 𝒩 of §6 (Fig. 5).
//!
//! For `n = 4^ν` terminals the paper assembles 𝒩 from three layers:
//!
//! 1. **Input grids** Φ₁ … Φₙ: one `(l, ν)`-directed grid per input
//!    (`l = 64·4^γ` rows, ν stages), with the input fanned out to every
//!    row of the grid's first stage. Grids are Moore–Shannon hammocks:
//!    they preserve *access* to a majority of their last stage under
//!    faults (Lemma 3).
//! 2. **The truncated recursive network 𝓜**: the middle `2ν + 1` stages
//!    of a `[P82]`-style recursive nonblocking network scaled up by
//!    `4^γ`. Stage `ν+k` is partitioned into `4^{ν−k}` groups of
//!    `64·4^{γ+k}` vertices; between consecutive stages every vertex has
//!    ten out-edges into its parent group (a union of ten random
//!    permutations per parent block), giving ten in-edges per vertex —
//!    the paper's census `1280·ν·4^{ν+γ}` middle switches. The right
//!    half mirrors the left.
//! 3. **Output grids** Ψ₁ … Ψₙ: mirror images of the input grids,
//!    collecting each grid's last stage into the output terminal.
//!
//! The result has `4ν + 1` stages (depth `4ν` switches), inputs on
//! stage 0, outputs on stage `4ν`, and every internal stage of width
//! `64·4^{ν+γ}`.
//!
//! ## Reconciling the paper's expander description
//!
//! §6 describes the middle gaps as disjoint
//! `(32·4^i, 33.07·4^i, 64·4^i)`-expanding graphs "with each vertex on
//! stage i having ten out-edges", while Lemma 6 routes through "four
//! expanding graphs" from each child group into the four quarters of its
//! parent group. Ten out-edges per vertex **and** four degree-10 graphs
//! per child cannot both hold; the paper's own edge census
//! (`1280ν·4^{ν+γ}` = 10 out-edges per middle vertex) settles the
//! degree. We therefore wire each parent block as a union of
//! `degree` random permutations over the whole block — every vertex
//! gets exactly `degree` out- and in-edges spread across all four
//! quarters, which is exactly what Lemma 6's induction consumes (an
//! accessed majority of one child reaches well over half of the parent
//! group; see [`crate::access`]). The per-(child, quarter) induced
//! subgraphs are then sparse expanders in the paper's `(c, c′, t)`
//! family, verified empirically in `ft-expander`.

use crate::params::Params;
use ft_graph::gen::random_permutation;
use ft_graph::{StagedBuilder, StagedNetwork, VertexId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Which side of the network a grid belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Input grids Φⱼ (stages `1 ..= ν`).
    Input,
    /// Output grids Ψⱼ (stages `3ν ..= 4ν−1`).
    Output,
}

/// Classification of a stage of 𝒩.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// Stage 0: the `n` input terminals.
    Inputs,
    /// Stages `1 .. ν`: interior of the input grids.
    InputGrid,
    /// Stages `ν ..= 3ν`: the truncated recursive middle 𝓜 (stage `ν`
    /// doubles as the input grids' last stage, `3ν` as the output
    /// grids' first stage).
    Middle,
    /// Stages `3ν+1 .. 4ν`: interior of the output grids.
    OutputGrid,
    /// Stage `4ν`: the `n` output terminals.
    Outputs,
}

/// Edge census of a built network, split by layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Census {
    /// Switches adjacent to input/output terminals (`2·n·l`).
    pub terminal: usize,
    /// Switches inside the 2n directed grids (`2n·(2l−1)(ν−1)`).
    pub grid: usize,
    /// Switches in 𝓜 (`2ν · d · F·4^{ν+γ}`).
    pub middle: usize,
}

impl Census {
    /// Total number of switches.
    pub fn total(&self) -> usize {
        self.terminal + self.grid + self.middle
    }
}

/// The assembled fault-tolerant network 𝒩 with its geometry bookkeeping.
#[derive(Clone, Debug)]
pub struct FtNetwork {
    params: Params,
    net: StagedNetwork,
    /// Internal stage width `W = F·4^{ν+γ}`.
    width: usize,
    /// Grid rows `l = F·4^γ`.
    rows: usize,
    census: Census,
}

impl FtNetwork {
    /// Builds 𝒩 for the given parameters.
    ///
    /// Deterministic for a fixed [`Params`] (including its seed).
    pub fn build(params: Params) -> FtNetwork {
        Builder::new(params).build()
    }

    /// Construction parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The underlying staged network.
    pub fn net(&self) -> &StagedNetwork {
        &self.net
    }

    /// Cached CSR snapshot of the network graph (built lazily on first
    /// use) — the representation every Monte Carlo hot path traverses.
    pub fn csr(&self) -> &ft_graph::Csr {
        self.net.csr()
    }

    /// Number of terminals per side, `n = 4^ν`.
    pub fn n(&self) -> usize {
        self.params.n()
    }

    /// Internal stage width `W = F·4^{ν+γ}`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid rows `l = F·4^γ`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Measured edge census by layer.
    pub fn census(&self) -> Census {
        self.census
    }

    /// Total number of stages, `4ν + 1`.
    pub fn num_stages(&self) -> usize {
        self.params.num_stages()
    }

    /// The `j`-th input terminal.
    pub fn input(&self, j: usize) -> VertexId {
        self.net.inputs()[j]
    }

    /// The `j`-th output terminal.
    pub fn output(&self, j: usize) -> VertexId {
        self.net.outputs()[j]
    }

    /// First vertex id of internal stage `s` (`1 ≤ s ≤ 4ν−1`).
    pub fn stage_base(&self, s: usize) -> u32 {
        debug_assert!(s >= 1 && s < self.num_stages() - 1);
        self.net.stage_range(s).start
    }

    /// Vertex `idx` of internal stage `s`.
    pub fn internal(&self, s: usize, idx: usize) -> VertexId {
        debug_assert!(idx < self.width);
        VertexId(self.stage_base(s) + idx as u32)
    }

    /// Classification of stage `s`.
    pub fn stage_kind(&self, s: usize) -> StageKind {
        let nu = self.params.nu as usize;
        match s {
            0 => StageKind::Inputs,
            s if s < nu => StageKind::InputGrid,
            s if s <= 3 * nu => StageKind::Middle,
            s if s < 4 * nu => StageKind::OutputGrid,
            _ => StageKind::Outputs,
        }
    }

    /// Grid vertex `(row r, grid stage g)` of grid `j` on the given
    /// side. Grid stages run `0 ..= ν−1` in grid-local coordinates;
    /// stage `ν−1` of an input grid is the shared middle stage `ν`, and
    /// stage `0` of an output grid is the shared middle stage `3ν`.
    pub fn grid_vertex(&self, side: Side, j: usize, r: usize, g: usize) -> VertexId {
        let nu = self.params.nu as usize;
        debug_assert!(j < self.n() && r < self.rows && g < nu);
        let s = match side {
            Side::Input => 1 + g,
            Side::Output => 3 * nu + g,
        };
        self.internal(s, j * self.rows + r)
    }

    /// Group structure of middle stage `s` (`ν ≤ s ≤ 3ν`): returns
    /// `(group_count, group_size)`. Group `g` occupies contiguous
    /// indices `[g·size, (g+1)·size)` of the stage.
    pub fn middle_groups(&self, s: usize) -> (usize, usize) {
        let nu = self.params.nu as usize;
        debug_assert!((nu..=3 * nu).contains(&s), "stage {s} not in 𝓜");
        let level = if s <= 2 * nu {
            s - nu // k: group size F·4^{γ+k}
        } else {
            3 * nu - s // mirrored
        };
        let size = self.params.group_size(self.params.gamma + level as u32);
        (self.width / size, size)
    }

    /// Vertex-id range of group `g` at middle stage `s`.
    pub fn middle_group_range(&self, s: usize, g: usize) -> std::ops::Range<u32> {
        let (count, size) = self.middle_groups(s);
        debug_assert!(g < count);
        let base = self.stage_base(s) + (g * size) as u32;
        base..base + size as u32
    }

    /// Block size of the expander gap `s → s+1` (`ν ≤ s < 3ν`): the
    /// size of the coarser side's groups; permutations are sampled per
    /// block.
    pub fn gap_block(&self, s: usize) -> usize {
        let nu = self.params.nu as usize;
        debug_assert!((nu..3 * nu).contains(&s), "gap {s} not in 𝓜");
        let level = if s < 2 * nu {
            s - nu + 1 // parent side (s+1) is coarser
        } else {
            3 * nu - s // this side is coarser
        };
        self.params.group_size(self.params.gamma + level as u32)
    }

    /// Predicted census from the parameters (exact for this builder).
    pub fn predicted_census(params: &Params) -> Census {
        let n = params.n();
        let l = params.grid_rows();
        let nu = params.nu as usize;
        Census {
            terminal: 2 * n * l,
            grid: 2 * n * (2 * l - 1) * (nu - 1),
            middle: 2 * nu * params.degree * params.stage_width(),
        }
    }
}

/// Internal builder walking the stages left to right.
struct Builder {
    params: Params,
    b: StagedBuilder,
    /// Stage bases, filled as stages are added.
    bases: Vec<u32>,
    rng: SmallRng,
}

impl Builder {
    fn new(params: Params) -> Builder {
        Builder {
            params,
            b: StagedBuilder::new(),
            bases: Vec::new(),
            rng: SmallRng::seed_from_u64(params.seed),
        }
    }

    fn v(&self, s: usize, idx: usize) -> VertexId {
        VertexId(self.bases[s] + idx as u32)
    }

    fn build(mut self) -> FtNetwork {
        let p = self.params;
        let nu = p.nu as usize;
        let n = p.n();
        let l = p.grid_rows();
        let w = p.stage_width();
        debug_assert_eq!(w, n * l);

        // Stages: 0 = inputs, 1..=4ν−1 internal (width W), 4ν = outputs.
        self.bases.push(self.b.add_stage(n).start);
        for _ in 1..4 * nu {
            let r = self.b.add_stage(w);
            self.bases.push(r.start);
        }
        self.bases.push(self.b.add_stage(n).start);

        let mut census = Census {
            terminal: 0,
            grid: 0,
            middle: 0,
        };

        // 1. Input fan-out: input j → every row of Φⱼ's first stage.
        for j in 0..n {
            for r in 0..l {
                self.b.add_edge(self.v(0, j), self.v(1, j * l + r));
                census.terminal += 1;
            }
        }

        // 2. Input grid gaps (straight + down-diagonal), stages 1..ν.
        for s in 1..nu {
            for j in 0..n {
                for r in 0..l {
                    let from = self.v(s, j * l + r);
                    self.b.add_edge(from, self.v(s + 1, j * l + r));
                    census.grid += 1;
                    if r + 1 < l {
                        self.b.add_edge(from, self.v(s + 1, j * l + r + 1));
                        census.grid += 1;
                    }
                }
            }
        }

        // 3. Middle expander gaps, stages ν..3ν: per coarse block, a
        //    union of `degree` random permutations.
        for s in nu..3 * nu {
            let t = gap_block_size(&p, s);
            let blocks = w / t;
            for blk in 0..blocks {
                let base = blk * t;
                for _ in 0..p.degree {
                    let pi = random_permutation(&mut self.rng, t);
                    for (i, &pi_i) in pi.iter().enumerate() {
                        self.b
                            .add_edge(self.v(s, base + i), self.v(s + 1, base + pi_i as usize));
                        census.middle += 1;
                    }
                }
            }
        }

        // 4. Output grid gaps (straight + up-diagonal), stages 3ν..4ν−1.
        for s in 3 * nu..4 * nu - 1 {
            for j in 0..n {
                for r in 0..l {
                    let from = self.v(s, j * l + r);
                    self.b.add_edge(from, self.v(s + 1, j * l + r));
                    census.grid += 1;
                    if r >= 1 {
                        self.b.add_edge(from, self.v(s + 1, j * l + r - 1));
                        census.grid += 1;
                    }
                }
            }
        }

        // 5. Output fan-in: every row of Ψⱼ's last stage → output j.
        for j in 0..n {
            for r in 0..l {
                self.b
                    .add_edge(self.v(4 * nu - 1, j * l + r), self.v(4 * nu, j));
                census.terminal += 1;
            }
        }

        self.b.set_inputs((0..n).map(|j| self.v(0, j)).collect());
        self.b
            .set_outputs((0..n).map(|j| self.v(4 * nu, j)).collect());

        let net = if self.b.num_edges() < 2_000_000 {
            self.b.finish()
        } else {
            self.b.finish_unvalidated()
        };
        FtNetwork {
            params: p,
            net,
            width: w,
            rows: l,
            census,
        }
    }
}

/// Free-function version of [`FtNetwork::gap_block`], used during
/// construction before the struct exists.
fn gap_block_size(p: &Params, s: usize) -> usize {
    let nu = p.nu as usize;
    let level = if s < 2 * nu { s - nu + 1 } else { 3 * nu - s };
    p.group_size(p.gamma + level as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FtNetwork {
        // ν = 1, F = 8, d = 4, γ = 1: n = 4, l = 32, W = 128.
        FtNetwork::build(Params::reduced(1, 8, 4, 1.0))
    }

    fn small() -> FtNetwork {
        // ν = 2, F = 8, d = 4, γ = 1: n = 16, l = 32, W = 512.
        FtNetwork::build(Params::reduced(2, 8, 4, 1.0))
    }

    #[test]
    fn tiny_shape() {
        let f = tiny();
        assert_eq!(f.n(), 4);
        assert_eq!(f.rows(), 32);
        assert_eq!(f.width(), 128);
        assert_eq!(f.num_stages(), 5);
        assert_eq!(f.net().inputs().len(), 4);
        assert_eq!(f.net().outputs().len(), 4);
        assert_eq!(f.net().depth(), 4);
        assert!(f.net().validate().is_ok());
    }

    #[test]
    fn census_matches_prediction() {
        for f in [tiny(), small()] {
            let pred = FtNetwork::predicted_census(f.params());
            assert_eq!(f.census(), pred);
            assert_eq!(f.net().size(), pred.total());
            assert_eq!(f.net().size(), f.params().predicted_size());
        }
    }

    #[test]
    fn small_depth_is_4nu() {
        let f = small();
        assert_eq!(f.net().depth(), 8);
        assert_eq!(f.num_stages(), 9);
    }

    #[test]
    fn stage_kinds() {
        let f = small(); // ν = 2
        assert_eq!(f.stage_kind(0), StageKind::Inputs);
        assert_eq!(f.stage_kind(1), StageKind::InputGrid);
        assert_eq!(f.stage_kind(2), StageKind::Middle); // = ν
        assert_eq!(f.stage_kind(4), StageKind::Middle); // = 2ν
        assert_eq!(f.stage_kind(6), StageKind::Middle); // = 3ν
        assert_eq!(f.stage_kind(7), StageKind::OutputGrid);
        assert_eq!(f.stage_kind(8), StageKind::Outputs);
    }

    #[test]
    fn input_fanout_degree_is_l() {
        let f = small();
        for j in 0..f.n() {
            assert_eq!(f.net().graph().out_degree(f.input(j)), f.rows());
            assert_eq!(f.net().graph().in_degree(f.output(j)), f.rows());
        }
    }

    #[test]
    fn middle_degrees_are_d() {
        let f = small();
        let nu = 2;
        // every vertex of stage 2ν has in-degree d and out-degree d
        for idx in 0..f.width() {
            let v = f.internal(2 * nu, idx);
            assert_eq!(f.net().graph().out_degree(v), 4);
            assert_eq!(f.net().graph().in_degree(v), 4);
        }
    }

    #[test]
    fn grid_vertices_have_grid_degrees() {
        let f = small(); // ν=2: grid interior stage 1
                         // stage-1 vertex: in-degree 1 (from input), out-degree ≤ 2
        let v = f.grid_vertex(Side::Input, 0, 5, 0);
        assert_eq!(f.net().graph().in_degree(v), 1);
        assert_eq!(f.net().graph().out_degree(v), 2);
        // bottom row has no down-diagonal
        let bottom = f.grid_vertex(Side::Input, 0, f.rows() - 1, 0);
        assert_eq!(f.net().graph().out_degree(bottom), 1);
    }

    #[test]
    fn group_structure() {
        let f = small(); // ν=2, γ=1, F=8
                         // stage ν=2: 4^ν−0 = 16 groups of F·4^γ = 32
        assert_eq!(f.middle_groups(2), (16, 32));
        // stage 3: 4 groups of 128
        assert_eq!(f.middle_groups(3), (4, 128));
        // middle stage 2ν=4: 1 group of 512
        assert_eq!(f.middle_groups(4), (1, 512));
        // mirrored: stage 5 like stage 3
        assert_eq!(f.middle_groups(5), (4, 128));
        assert_eq!(f.middle_groups(6), (16, 32));
    }

    #[test]
    fn gap_blocks() {
        let f = small();
        // left gaps: coarser side is the parent
        assert_eq!(f.gap_block(2), 128);
        assert_eq!(f.gap_block(3), 512);
        // right gaps: coarser side is the source
        assert_eq!(f.gap_block(4), 512);
        assert_eq!(f.gap_block(5), 128);
    }

    #[test]
    fn middle_edges_stay_in_block() {
        let f = small();
        let nu = 2;
        for s in nu..3 * nu {
            let t = f.gap_block(s);
            let base_s = f.stage_base(s);
            let base_n = f.stage_base(s + 1);
            for (_, tail, head) in f.net().graph().edges() {
                if tail.0 >= base_s
                    && tail.0 < base_s + f.width() as u32
                    && head.0 >= base_n
                    && head.0 < base_n + f.width() as u32
                {
                    let bt = (tail.0 - base_s) as usize / t;
                    let bh = (head.0 - base_n) as usize / t;
                    assert_eq!(bt, bh, "edge crosses block at gap {s}");
                }
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = FtNetwork::build(Params::reduced(1, 8, 4, 1.0));
        let b = FtNetwork::build(Params::reduced(1, 8, 4, 1.0));
        assert_eq!(a.net().size(), b.net().size());
        let ea: Vec<_> = a.net().graph().edges().collect();
        let eb: Vec<_> = b.net().graph().edges().collect();
        assert_eq!(ea, eb);
        let c = FtNetwork::build(Params::reduced(1, 8, 4, 1.0).with_seed(9));
        let ec: Vec<_> = c.net().graph().edges().collect();
        assert_ne!(ea, ec, "different seed should change expander wiring");
    }

    #[test]
    fn grid_vertex_coordinates() {
        let f = small();
        // input grid j=1, row 3, grid stage 0 lives at stage 1, idx l+3
        assert_eq!(
            f.grid_vertex(Side::Input, 1, 3, 0),
            f.internal(1, f.rows() + 3)
        );
        // output grid stage 0 is the shared middle stage 3ν
        assert_eq!(f.grid_vertex(Side::Output, 0, 0, 0), f.internal(6, 0));
    }

    #[test]
    fn paper_exact_nu1_census() {
        // ν=1 paper-exact: γ=3, l = 64·64 = 4096, W = 64·4^4 = 16384,
        // middle 2·1·10·16384, grids none (ν−1 = 0), terminals 2·4·4096.
        let p = Params::paper_exact(1);
        let f = FtNetwork::build(p);
        assert_eq!(f.census().middle, 20 * 16384);
        assert_eq!(f.census().grid, 0);
        assert_eq!(f.census().terminal, 8 * 4096);
        assert_eq!(f.net().depth(), 4);
    }
}
