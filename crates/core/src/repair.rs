//! Terminal-aware repair of 𝒩 (§4, observation 2; §6 definitions).
//!
//! §6 defines faultiness only for vertices "*that are not an input or
//! an output*": a vertex is faulty if any incident switch failed.
//! Repair discards faulty internal vertices (and with them every failed
//! switch — a failed switch marks both endpoints). Terminals are never
//! discarded: an input with one failed fan-out switch loses only the
//! grid row behind that switch and keeps its access through the
//! remaining `l − 1` rows. (Had terminals been repairable like internal
//! vertices, the `2εl ≈ 2ε·64·4^γ` chance of *some* fan-out switch
//! failing would sink the whole construction — this is why Lemma 3's
//! cut-set argument explicitly excludes the input from its cut sets.)
//!
//! The result is a [`Survivor`]: the network plus an alive mask, on
//! which every edge between alive vertices (except terminal-incident
//! failed ones, which are masked separately) is in the normal state.

use crate::network::FtNetwork;
use ft_failure::FailureInstance;
use ft_graph::ids::EdgeId;
use ft_graph::{Digraph, VertexId};

/// A repaired view of 𝒩 under one failure instance.
#[derive(Clone, Debug)]
pub struct Survivor<'a> {
    ftn: &'a FtNetwork,
    /// Alive (usable) vertices: internal non-faulty vertices plus all
    /// terminals.
    pub alive: Vec<bool>,
    /// Terminal-incident switches that failed: these edges have both
    /// endpoints alive (the terminal is exempt) but must not be used.
    pub dead_terminal_edges: Vec<EdgeId>,
    /// Number of internal vertices discarded by repair.
    pub discarded: usize,
}

impl<'a> Survivor<'a> {
    /// Applies the repair procedure.
    pub fn new(ftn: &'a FtNetwork, inst: &FailureInstance) -> Survivor<'a> {
        let g = ftn.net();
        assert_eq!(inst.len(), g.num_edges(), "instance/network size mismatch");
        let faulty = inst.faulty_vertices(g);
        let mut alive: Vec<bool> = faulty.into_iter().map(|f| !f).collect();
        let mut discarded = alive.iter().filter(|&&a| !a).count();
        // exempt terminals
        for &t in g.inputs().iter().chain(g.outputs()) {
            if !alive[t.index()] {
                alive[t.index()] = true;
                discarded -= 1;
            }
        }
        // collect terminal-incident failed switches (the only failed
        // switches whose endpoints can both be alive)
        let mut dead_terminal_edges = Vec::new();
        for &t in g.inputs().iter().chain(g.outputs()) {
            for &e in g.out_edge_slice(t).iter().chain(g.in_edge_slice(t)) {
                if !inst.is_normal(e) {
                    dead_terminal_edges.push(e);
                }
            }
        }
        Survivor {
            ftn,
            alive,
            dead_terminal_edges,
            discarded,
        }
    }

    /// The repaired network.
    pub fn network(&self) -> &'a FtNetwork {
        self.ftn
    }

    /// Whether vertex `v` survived repair.
    #[inline]
    pub fn is_alive(&self, v: VertexId) -> bool {
        self.alive[v.index()]
    }

    /// Fraction of internal vertices discarded.
    pub fn discard_fraction(&self) -> f64 {
        let internal = self.ftn.net().num_vertices() - 2 * self.ftn.n();
        if internal == 0 {
            0.0
        } else {
            self.discarded as f64 / internal as f64
        }
    }

    /// An alive mask that additionally kills the *internal* endpoint of
    /// every failed terminal-incident switch, so that plain
    /// vertex-masked traversal (as used by the router and the access
    /// machinery) can never cross a failed switch.
    ///
    /// This is sound: discarding the internal endpoint only shrinks the
    /// survivor, and it is what the Lemma 3 analysis accounts for (a
    /// failed fan-out switch makes the stage-1 grid vertex faulty).
    pub fn routable_alive(&self) -> Vec<bool> {
        let g = self.ftn.net();
        let mut alive = self.alive.clone();
        let inputs = g.inputs();
        let outputs = g.outputs();
        let is_terminal = |v: VertexId| inputs.contains(&v) || outputs.contains(&v);
        for &e in &self.dead_terminal_edges {
            let (t, h) = g.endpoints(e);
            if !is_terminal(t) {
                alive[t.index()] = false;
            }
            if !is_terminal(h) {
                alive[h.index()] = false;
            }
        }
        alive
    }

    /// Incremental form of [`Self::routable_alive`]: a tracker whose
    /// mask starts bit-identical to `routable_alive()` and stays so
    /// under `fail_edge`/`repair_edge` deltas, without restarting the
    /// repair procedure from zero per event.
    ///
    /// This works because the routable discipline is local: a vertex is
    /// routable-alive iff it is a terminal or has **no** incident failed
    /// switch. (`routable_alive` arrives at the same predicate in two
    /// steps — repair discards faulty internal vertices, then the
    /// internal endpoints of failed terminal-incident switches are
    /// additionally masked — but both steps only ever discard internal
    /// vertices with a failed incident switch, and together they
    /// discard all of them.) The equivalence is pinned by
    /// `tracker_matches_routable_alive` below.
    pub fn alive_tracker(ftn: &FtNetwork, inst: &FailureInstance) -> ft_failure::AliveTracker {
        let g = ftn.net();
        let terminals = g.inputs().iter().chain(g.outputs()).copied();
        ft_failure::AliveTracker::new(g, terminals, inst)
    }

    /// Checks the repair invariant: every switch whose endpoints are
    /// both alive under [`Self::routable_alive`] is in the normal state.
    pub fn invariant_holds(&self, inst: &FailureInstance) -> bool {
        let g = self.ftn.net();
        let alive = self.routable_alive();
        (0..g.num_edges()).all(|e| {
            let e = EdgeId::from(e);
            let (t, h) = g.endpoints(e);
            !(alive[t.index()] && alive[h.index()]) || inst.is_normal(e)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Side;
    use crate::params::Params;
    use ft_failure::{FailureModel, SwitchState};
    use ft_graph::gen::rng;

    fn tiny() -> FtNetwork {
        FtNetwork::build(Params::reduced(1, 8, 4, 1.0))
    }

    #[test]
    fn perfect_instance_keeps_everything() {
        let f = tiny();
        let inst = FailureInstance::perfect(f.net().num_edges());
        let s = Survivor::new(&f, &inst);
        assert_eq!(s.discarded, 0);
        assert!(s.dead_terminal_edges.is_empty());
        assert!(s.alive.iter().all(|&a| a));
        assert!(s.invariant_holds(&inst));
        assert_eq!(s.discard_fraction(), 0.0);
    }

    #[test]
    fn terminals_never_die() {
        let f = tiny();
        // fail EVERY switch: terminals must still be alive
        let inst = FailureInstance::from_states(vec![SwitchState::Open; f.net().num_edges()]);
        let s = Survivor::new(&f, &inst);
        for j in 0..f.n() {
            assert!(s.is_alive(f.input(j)));
            assert!(s.is_alive(f.output(j)));
        }
        // every internal vertex is gone
        assert_eq!(s.discarded, f.net().num_vertices() - 2 * f.n());
        assert!(s.invariant_holds(&inst));
    }

    #[test]
    fn failed_fanout_switch_kills_only_grid_vertex() {
        let f = tiny();
        let mut states = vec![SwitchState::Normal; f.net().num_edges()];
        // edge 0 is input 0 → grid 0 row 0 (first edge added)
        states[0] = SwitchState::Open;
        let inst = FailureInstance::from_states(states);
        let s = Survivor::new(&f, &inst);
        assert!(s.is_alive(f.input(0)));
        let grid_v = f.grid_vertex(Side::Input, 0, 0, 0);
        // the internal endpoint is faulty (incident failed switch)
        assert!(!s.is_alive(grid_v));
        assert_eq!(s.dead_terminal_edges.len(), 1);
        assert!(s.invariant_holds(&inst));
    }

    #[test]
    fn routable_alive_blocks_failed_terminal_edges() {
        let f = tiny();
        let mut states = vec![SwitchState::Normal; f.net().num_edges()];
        states[3] = SwitchState::Closed; // input 0 → grid row 3
        let inst = FailureInstance::from_states(states);
        let s = Survivor::new(&f, &inst);
        let alive = s.routable_alive();
        let grid_v = f.grid_vertex(Side::Input, 0, 3, 0);
        assert!(!alive[grid_v.index()]);
        assert!(alive[f.input(0).index()]);
        assert!(s.invariant_holds(&inst));
    }

    #[test]
    fn tracker_matches_routable_alive() {
        use ft_graph::ids::EdgeId;
        let f = tiny();
        let m = f.net().num_edges();
        let model = FailureModel::symmetric(0.02);
        let mut r = rng(9);
        // snapshot equivalence on sampled instances
        for _ in 0..10 {
            let inst = FailureInstance::sample(&model, &mut r, m);
            let s = Survivor::new(&f, &inst);
            let tracker = Survivor::alive_tracker(&f, &inst);
            assert_eq!(tracker.alive(), s.routable_alive());
        }
        // delta equivalence under fail/repair churn from a clean slate
        use rand::Rng;
        let mut inst = FailureInstance::perfect(m);
        let mut tracker = Survivor::alive_tracker(&f, &inst);
        let mut failed: Vec<usize> = Vec::new();
        let mut delta = Vec::new();
        for step in 0..200 {
            delta.clear();
            if !failed.is_empty() && r.random_bool(0.5) {
                let e = failed.swap_remove(r.random_range(0..failed.len()));
                inst.set_state(EdgeId::from(e), SwitchState::Normal);
                let (t, h) = ft_graph::Digraph::endpoints(f.net(), EdgeId::from(e));
                tracker.repair_edge(t, h, &mut delta);
            } else {
                let e = loop {
                    let e = r.random_range(0..m);
                    if inst.is_normal(EdgeId::from(e)) {
                        break e;
                    }
                };
                inst.set_state(EdgeId::from(e), SwitchState::Open);
                failed.push(e);
                let (t, h) = ft_graph::Digraph::endpoints(f.net(), EdgeId::from(e));
                tracker.fail_edge(t, h, &mut delta);
            }
            if step % 20 == 0 {
                let s = Survivor::new(&f, &inst);
                assert_eq!(tracker.alive(), s.routable_alive());
            }
        }
    }

    #[test]
    fn random_instances_keep_invariant() {
        let f = tiny();
        let model = FailureModel::symmetric(0.02);
        let mut r = rng(5);
        for _ in 0..20 {
            let inst = FailureInstance::sample(&model, &mut r, f.net().num_edges());
            let s = Survivor::new(&f, &inst);
            assert!(s.invariant_holds(&inst));
            // discard fraction should be loosely ~ 2ε · max degree
            assert!(s.discard_fraction() < 0.9);
        }
    }
}
