//! Routing workloads on the repaired network (§4, observation 3).
//!
//! Because the certified survivor *contains a strictly nonblocking
//! network*, routing needs no cleverness: a greedy shortest-idle-path
//! search serves any request sequence. This module packages the
//! workloads the experiments throw at the survivor:
//!
//! * [`route_permutation`] — connect a full one-to-one assignment,
//!   request by request (the rearrangeable task, served greedily);
//! * [`churn`] — the telephone-exchange adversary: random
//!   connect/disconnect traffic, counting blocked calls (the
//!   nonblocking task);
//! * [`RoutingStats`] — outcome summary (blocks, path lengths, cost).
//!
//! A *blocked* request against a certificate-passing survivor is a
//! counterexample to Theorem 2 — integration tests assert it never
//! happens; the experiment binaries count blocks on purpose at stress
//! ε where certification fails.

use crate::network::FtNetwork;
use crate::repair::Survivor;
use ft_graph::gen::random_permutation;
use ft_graph::VertexId;
use ft_networks::{CircuitRouter, RouteError, SessionId};
use rand::rngs::SmallRng;
use rand::Rng;

/// Summary of a routing workload run.
#[derive(Clone, Debug, Default)]
pub struct RoutingStats {
    /// Connection attempts made.
    pub attempts: usize,
    /// Connections established.
    pub connected: usize,
    /// Requests refused with [`RouteError::Blocked`].
    pub blocked: usize,
    /// Requests refused because a terminal was dead/busy.
    pub unavailable: usize,
    /// Total switches on established paths.
    pub total_path_len: usize,
    /// Longest established path (switches).
    pub max_path_len: usize,
}

impl RoutingStats {
    /// Mean path length over established circuits.
    pub fn mean_path_len(&self) -> f64 {
        if self.connected == 0 {
            0.0
        } else {
            self.total_path_len as f64 / self.connected as f64
        }
    }

    /// Whether every attempt succeeded.
    pub fn all_connected(&self) -> bool {
        self.connected == self.attempts
    }

    fn record(&mut self, result: &Result<usize, RouteError>) {
        self.attempts += 1;
        match result {
            Ok(len) => {
                self.connected += 1;
                self.total_path_len += len;
                self.max_path_len = self.max_path_len.max(*len);
            }
            Err(RouteError::Blocked(_, _)) => self.blocked += 1,
            Err(_) => self.unavailable += 1,
        }
    }
}

/// A router bound to a survivor's alive mask.
pub fn survivor_router<'a>(survivor: &Survivor<'a>) -> CircuitRouter<'a> {
    CircuitRouter::with_alive_mask(survivor.network().net(), survivor.routable_alive())
}

/// Greedily routes the permutation `perm` (`input j → output perm[j]`),
/// one request at a time in index order. Returns the stats and the
/// established sessions (for callers that keep routing afterwards).
pub fn route_permutation(
    router: &mut CircuitRouter<'_>,
    ftn: &FtNetwork,
    perm: &[u32],
) -> (RoutingStats, Vec<SessionId>) {
    assert_eq!(perm.len(), ftn.n(), "permutation arity mismatch");
    let mut stats = RoutingStats::default();
    let mut sessions = Vec::new();
    for (j, &o) in perm.iter().enumerate() {
        let res = router
            .connect(ftn.input(j), ftn.output(o as usize))
            .map(|id| {
                let len = router.session_path(id).map_or(0, |p| p.len() - 1);
                sessions.push(id);
                len
            });
        stats.record(&res);
    }
    (stats, sessions)
}

/// Runs `steps` of random connect/disconnect churn: each step flips a
/// biased coin (`p_connect`) between placing a call on a uniformly
/// random idle input/output pair and tearing down a uniformly random
/// live call. Returns the stats.
pub fn churn(
    router: &mut CircuitRouter<'_>,
    ftn: &FtNetwork,
    steps: usize,
    p_connect: f64,
    rng: &mut SmallRng,
) -> RoutingStats {
    let n = ftn.n();
    let mut stats = RoutingStats::default();
    let mut live: Vec<SessionId> = Vec::new();
    for _ in 0..steps {
        let connect = live.is_empty() || rng.random_bool(p_connect);
        if connect {
            let idle_in: Vec<usize> = (0..n).filter(|&j| router.is_idle(ftn.input(j))).collect();
            let idle_out: Vec<usize> = (0..n).filter(|&j| router.is_idle(ftn.output(j))).collect();
            if idle_in.is_empty() || idle_out.is_empty() {
                continue;
            }
            let i = idle_in[rng.random_range(0..idle_in.len())];
            let o = idle_out[rng.random_range(0..idle_out.len())];
            let res = router.connect(ftn.input(i), ftn.output(o)).map(|id| {
                let len = router.session_path(id).map_or(0, |p| p.len() - 1);
                live.push(id);
                len
            });
            stats.record(&res);
        } else {
            let k = rng.random_range(0..live.len());
            router.disconnect(live.swap_remove(k));
        }
    }
    stats
}

/// Samples a uniform permutation on `n` points.
pub fn random_perm(rng: &mut SmallRng, n: usize) -> Vec<u32> {
    random_permutation(rng, n)
}

/// Routes a random permutation on the *fault-free* network — the
/// baseline every fault experiment compares against.
pub fn route_random_perm_fault_free(ftn: &FtNetwork, rng: &mut SmallRng) -> RoutingStats {
    let mut router = CircuitRouter::new(ftn.net());
    let perm = random_perm(rng, ftn.n());
    route_permutation(&mut router, ftn, &perm).0
}

/// Verifies that the paths currently held by `sessions` are pairwise
/// vertex-disjoint (sanity check used by tests and experiments).
pub fn sessions_disjoint(router: &CircuitRouter<'_>, sessions: &[SessionId]) -> bool {
    let mut seen: Vec<VertexId> = Vec::new();
    for &id in sessions {
        if let Some(p) = router.session_path(id) {
            for &v in p {
                if seen.contains(&v) {
                    return false;
                }
                seen.push(v);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use ft_failure::{FailureInstance, FailureModel};
    use ft_graph::gen::rng;
    use ft_graph::Digraph;

    fn tiny() -> FtNetwork {
        FtNetwork::build(Params::reduced(1, 8, 4, 1.0))
    }

    #[test]
    fn fault_free_routes_identity_and_reverse() {
        let f = tiny();
        for perm in [vec![0u32, 1, 2, 3], vec![3u32, 2, 1, 0]] {
            let mut router = CircuitRouter::new(f.net());
            let (stats, sessions) = route_permutation(&mut router, &f, &perm);
            assert!(stats.all_connected(), "{stats:?}");
            assert_eq!(stats.connected, 4);
            // every path spans the full depth 4ν
            assert_eq!(stats.max_path_len, 4);
            assert!(sessions_disjoint(&router, &sessions));
        }
    }

    #[test]
    fn fault_free_routes_many_random_perms() {
        let f = tiny();
        let mut r = rng(11);
        for _ in 0..25 {
            let stats = route_random_perm_fault_free(&f, &mut r);
            assert!(stats.all_connected(), "{stats:?}");
        }
    }

    #[test]
    fn churn_on_fault_free_never_blocks() {
        let f = tiny();
        let mut router = CircuitRouter::new(f.net());
        let mut r = rng(12);
        let stats = churn(&mut router, &f, 500, 0.6, &mut r);
        assert_eq!(stats.blocked, 0, "{stats:?}");
        assert!(stats.connected > 0);
    }

    #[test]
    fn survivor_router_respects_faults() {
        let f = tiny();
        let model = FailureModel::symmetric(0.001);
        let mut r = rng(13);
        let mut routed = 0;
        for _ in 0..10 {
            let inst = FailureInstance::sample(&model, &mut r, f.net().num_edges());
            let survivor = Survivor::new(&f, &inst);
            let mut router = survivor_router(&survivor);
            let perm = random_perm(&mut r, f.n());
            let (stats, _) = route_permutation(&mut router, &f, &perm);
            if stats.all_connected() {
                routed += 1;
            }
        }
        // at ε = 1e-3 on a tiny instance most trials should route
        assert!(routed >= 5, "only {routed}/10 random perms routed");
    }

    #[test]
    fn total_wipeout_blocks_everything() {
        let f = tiny();
        let inst =
            FailureInstance::from_states(vec![ft_failure::SwitchState::Open; f.net().num_edges()]);
        let survivor = Survivor::new(&f, &inst);
        let mut router = survivor_router(&survivor);
        let (stats, _) = route_permutation(&mut router, &f, &[0, 1, 2, 3]);
        assert_eq!(stats.connected, 0);
        assert_eq!(stats.blocked, 4);
    }

    #[test]
    fn stats_mean_path_len() {
        let mut s = RoutingStats::default();
        s.record(&Ok(4));
        s.record(&Ok(6));
        s.record(&Err(RouteError::Blocked(VertexId(0), VertexId(1))));
        assert_eq!(s.attempts, 3);
        assert_eq!(s.connected, 2);
        assert_eq!(s.blocked, 1);
        assert!((s.mean_path_len() - 5.0).abs() < 1e-12);
        assert!(!s.all_connected());
    }
}
