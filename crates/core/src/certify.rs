//! Structural certification that a failure instance leaves 𝒩
//! containing a nonblocking network (Lemmas 3–7, Theorem 2).
//!
//! The paper's argument that the repaired network still contains a
//! strictly nonblocking n-network rests on three *structural* events,
//! each checkable in linear time from the failure instance alone (no
//! quantification over request patterns):
//!
//! * **Terminals distinct** (Lemma 7): no two terminals are contracted
//!   into one electrical node by a path of closed-failed switches.
//! * **Grid access** (Lemma 3): every terminal keeps access to strictly
//!   more than half of its grid's boundary stage through non-faulty
//!   grid vertices. Grids are private to their terminal, so no busy
//!   path can interfere — the event depends on faults only.
//! * **Expander fault budget** (Lemmas 4–5): every middle group has at
//!   most a `0.07/64` fraction of faulty vertices, so the Lemma 6
//!   induction (majority access through the expander stages, for
//!   *every* pattern of busy paths) goes through.
//!
//! When all three hold, §4's observations apply: repair is discarding,
//! routing on the survivor is greedy path-finding, and every idle
//! input/output pair shares an idle middle vertex (two strict majorities
//! must intersect). [`certify`] evaluates the three events;
//! [`Certificate::implies_nonblocking`] is their conjunction.

use crate::access::all_grids_majority;
use crate::network::FtNetwork;
use crate::repair::Survivor;
use ft_failure::contraction;
use ft_failure::instance::FailureInstance;

/// The paper's per-group faulty-vertex budget as a fraction of group
/// size: `0.07·4^μ` faulty outlets allowed out of `64·4^μ`.
pub const PAPER_FAULT_BUDGET_FRAC: f64 = 0.07 / 64.0;

/// Outcome of the structural certification.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Lemma 7: no two terminals shorted by closed failures.
    pub terminals_distinct: bool,
    /// Lemma 3: every grid keeps strict-majority access.
    pub grids_majority: bool,
    /// Minimum grid access fraction observed (over all 2n grids).
    pub min_grid_access: f64,
    /// Lemmas 4–5: every middle group within the faulty budget.
    pub expander_budget_ok: bool,
    /// Maximum faulty fraction observed over middle groups.
    pub max_group_faulty: f64,
    /// Fraction of internal vertices discarded by repair.
    pub discard_fraction: f64,
}

impl Certificate {
    /// The §6 guarantee: when all three structural events hold, the
    /// survivor contains a strictly nonblocking n-network and greedy
    /// routing cannot block.
    pub fn implies_nonblocking(&self) -> bool {
        self.terminals_distinct && self.grids_majority && self.expander_budget_ok
    }
}

/// Counts faulty vertices per group of every middle stage and compares
/// against `budget_frac` of the group size. Returns
/// `(all_within_budget, max_faulty_fraction)`.
pub fn expander_fault_audit(ftn: &FtNetwork, alive: &[bool], budget_frac: f64) -> (bool, f64) {
    let nu = ftn.params().nu as usize;
    let mut ok = true;
    let mut max_frac = 0.0_f64;
    for s in nu..=3 * nu {
        let (count, size) = ftn.middle_groups(s);
        let budget = (budget_frac * size as f64).floor() as usize;
        for g in 0..count {
            let range = ftn.middle_group_range(s, g);
            let faulty = range.filter(|&i| !alive[i as usize]).count();
            let frac = faulty as f64 / size as f64;
            max_frac = max_frac.max(frac);
            if faulty > budget {
                ok = false;
            }
        }
    }
    (ok, max_frac)
}

/// Runs the full structural certification of `ftn` under `inst`, using
/// the paper's fault budget.
pub fn certify(ftn: &FtNetwork, inst: &FailureInstance) -> Certificate {
    certify_with_budget(ftn, inst, PAPER_FAULT_BUDGET_FRAC)
}

/// [`certify`] with an explicit per-group fault budget fraction
/// (reduced profiles at stress ε need looser budgets; the γ-ablation
/// sweeps this).
pub fn certify_with_budget(
    ftn: &FtNetwork,
    inst: &FailureInstance,
    budget_frac: f64,
) -> Certificate {
    let survivor = Survivor::new(ftn, inst);
    let alive = survivor.routable_alive();
    let (grids_majority, min_grid_access) = all_grids_majority(ftn, &alive);
    let (expander_budget_ok, max_group_faulty) = expander_fault_audit(ftn, &alive, budget_frac);
    let mut terminals: Vec<_> = ftn.net().inputs().to_vec();
    terminals.extend_from_slice(ftn.net().outputs());
    let terminals_distinct = !contraction::terminals_shorted(ftn.net(), inst, &terminals);
    Certificate {
        terminals_distinct,
        grids_majority,
        min_grid_access,
        expander_budget_ok,
        max_group_faulty,
        discard_fraction: survivor.discard_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use ft_failure::{FailureModel, SwitchState};
    use ft_graph::gen::rng;
    use ft_graph::Digraph;

    fn tiny() -> FtNetwork {
        FtNetwork::build(Params::reduced(1, 8, 4, 1.0))
    }

    #[test]
    fn perfect_instance_certifies() {
        let f = tiny();
        let inst = FailureInstance::perfect(f.net().num_edges());
        let c = certify(&f, &inst);
        assert!(c.terminals_distinct);
        assert!(c.grids_majority);
        assert!(c.expander_budget_ok);
        assert!(c.implies_nonblocking());
        assert_eq!(c.min_grid_access, 1.0);
        assert_eq!(c.max_group_faulty, 0.0);
        assert_eq!(c.discard_fraction, 0.0);
    }

    #[test]
    fn single_internal_fault_fails_paper_budget_at_tiny_scale() {
        // at F = 8, γ = 1: smallest group is 32 vertices; the paper
        // budget floor(0.07/64·32) = 0 — a single faulty vertex in a
        // boundary group must fail the audit, while a looser budget
        // passes.
        let f = tiny();
        let mut states = vec![SwitchState::Normal; f.net().num_edges()];
        // fail one middle switch (the first middle edge follows the
        // n·l terminal edges; ν=1 means no grid gap edges)
        let first_middle = f.census().terminal / 2; // input fanout edges
        states[first_middle] = SwitchState::Open;
        let inst = FailureInstance::from_states(states);
        let c = certify(&f, &inst);
        assert!(!c.expander_budget_ok);
        let loose = certify_with_budget(&f, &inst, 0.25);
        assert!(loose.expander_budget_ok);
        assert!(loose.terminals_distinct);
    }

    #[test]
    fn shorted_terminals_detected() {
        let f = tiny();
        // close every switch: all terminals contract together
        let inst = FailureInstance::from_states(vec![SwitchState::Closed; f.net().num_edges()]);
        let c = certify(&f, &inst);
        assert!(!c.terminals_distinct);
        assert!(!c.implies_nonblocking());
    }

    #[test]
    fn grid_wipeout_fails_majority() {
        let f = tiny();
        let mut states = vec![SwitchState::Normal; f.net().num_edges()];
        // open every fan-out switch of input 0: its whole grid column
        // dies, access drops to zero
        for s in states.iter_mut().take(f.rows()) {
            *s = SwitchState::Open;
        }
        let inst = FailureInstance::from_states(states);
        let c = certify_with_budget(&f, &inst, 1.0);
        assert!(!c.grids_majority);
        assert_eq!(c.min_grid_access, 0.0);
        assert!(!c.implies_nonblocking());
    }

    #[test]
    fn low_eps_usually_certifies_with_loose_budget() {
        let f = tiny();
        let model = FailureModel::symmetric(1e-4);
        let mut r = rng(7);
        let mut passes = 0;
        for _ in 0..30 {
            let inst = FailureInstance::sample(&model, &mut r, f.net().num_edges());
            let c = certify_with_budget(&f, &inst, 0.1);
            if c.implies_nonblocking() {
                passes += 1;
            }
        }
        assert!(passes >= 25, "only {passes}/30 certified at ε = 1e-4");
    }

    #[test]
    fn audit_counts_dead_vertices() {
        let f = tiny();
        let mut alive = vec![true; f.net().num_vertices()];
        // kill 8 of 32 vertices in the first boundary group
        let range = f.middle_group_range(1, 0);
        for i in range.clone().take(8) {
            alive[i as usize] = false;
        }
        let (ok, max_frac) = expander_fault_audit(&f, &alive, 0.3);
        assert!(ok);
        assert!((max_frac - 0.25).abs() < 1e-9);
        let (ok, _) = expander_fault_audit(&f, &alive, 0.2);
        assert!(!ok);
    }
}
