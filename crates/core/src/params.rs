//! Construction parameters for the fault-tolerant network 𝒩 (§6).
//!
//! The paper builds, for `n = 4^ν` terminals, a recursive nonblocking
//! network *scaled up* by a factor `4^γ` with `4^γ ≥ 34ν` (so that
//! `136ν ≥ 4^γ ≥ 34ν`), stage width `64·4^{ν+γ}`, and degree-10
//! expanding graphs; the recursion is truncated after γ levels and
//! `(64·4^γ) × ν` directed grids interface the terminals.
//!
//! Those constants make even ν = 2 cost ~10⁷ switches, so the library
//! parameterises them: [`Params::paper_exact`] reproduces the paper's
//! numbers for the size/depth census, while [`Params::reduced`] scales
//! the width/degree/γ-factor down for Monte Carlo experiments that need
//! thousands of trials. Every experiment records which profile it ran.

/// Parameters of the §6 construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// `ν`: the network serves `n = 4^ν` inputs and outputs.
    pub nu: u32,
    /// `γ`: recursion scale-up; the paper picks the least γ with
    /// `4^γ ≥ gamma_factor·ν` (and requires γ ≥ 1).
    pub gamma: u32,
    /// Stage width factor `F` (the paper's 64): internal stages have
    /// `F·4^{ν+γ}` vertices, groups at recursion level `i` have `F·4^i`.
    pub width: usize,
    /// Expander degree `d` (the paper's 10).
    pub degree: usize,
    /// Seed for sampling the expanding graphs.
    pub seed: u64,
}

impl Params {
    /// The paper's exact constants: `F = 64`, `d = 10`,
    /// `γ = ⌈log₄(34ν)⌉`.
    pub fn paper_exact(nu: u32) -> Params {
        assert!(nu >= 1);
        Params {
            nu,
            gamma: gamma_for(34.0, nu),
            width: 64,
            degree: 10,
            seed: 0x5EED_CAFE,
        }
    }

    /// A reduced profile for laptop-scale Monte Carlo: caller chooses the
    /// width factor and degree; γ comes from `gamma_factor` (min 1).
    pub fn reduced(nu: u32, width: usize, degree: usize, gamma_factor: f64) -> Params {
        assert!(nu >= 1);
        assert!(
            width >= 2 && width.is_multiple_of(2),
            "width must be even ≥ 2"
        );
        assert!(degree >= 1);
        Params {
            nu,
            gamma: gamma_for(gamma_factor, nu),
            width,
            degree,
            seed: 0x5EED_CAFE,
        }
    }

    /// Overrides the expander-sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Params {
        self.seed = seed;
        self
    }

    /// Number of terminals `n = 4^ν`.
    pub fn n(&self) -> usize {
        1usize << (2 * self.nu)
    }

    /// `4^γ`.
    pub fn four_gamma(&self) -> usize {
        1usize << (2 * self.gamma)
    }

    /// Group size at recursion level `i`: `F·4^i`.
    pub fn group_size(&self, i: u32) -> usize {
        self.width << (2 * i)
    }

    /// Internal stage width `F·4^{ν+γ}`.
    pub fn stage_width(&self) -> usize {
        self.group_size(self.nu + self.gamma)
    }

    /// Grid rows `l = F·4^γ` (the paper's `64·4^γ`).
    pub fn grid_rows(&self) -> usize {
        self.group_size(self.gamma)
    }

    /// Number of stages of 𝒩: `4ν + 1` (inputs on stage 0, outputs on
    /// stage 4ν).
    pub fn num_stages(&self) -> usize {
        4 * self.nu as usize + 1
    }

    /// The middle stage index `2ν` — the boundary between the left-hand
    /// network `𝓜_l` and its mirror image `𝓜_r`; Lemma 6's
    /// majority-access is counted against this stage.
    pub fn middle_stage(&self) -> usize {
        2 * self.nu as usize
    }

    /// Depth of 𝒩 (edges on an input→output path): `4ν`.
    pub fn depth(&self) -> u32 {
        4 * self.nu
    }

    /// Predicted number of switches in the truncated middle 𝓜
    /// (the paper's `1280ν·4^{ν+γ}` at `F = 64`, `d = 10`): `2ν` stage
    /// gaps, each `F·4^{ν+γ}·d` edges.
    pub fn middle_edges(&self) -> usize {
        2 * self.nu as usize * self.stage_width() * self.degree
    }

    /// Predicted number of switches in all `2·4^ν` directed grids:
    /// `2·4^ν·(2l−1)(ν−1)` (the paper counts grids at `l` per gap, i.e.
    /// `128(ν−1)4^{ν+γ}` total; our grids carry their diagonals, matching
    /// Fig. 4, so the count is `(2l−1)` per gap per grid).
    pub fn grid_edges(&self) -> usize {
        let l = self.grid_rows();
        2 * self.n() * (2 * l - 1) * (self.nu as usize - 1)
    }

    /// Predicted number of terminal switches: `2·4^ν·l`
    /// (the paper's `128·4^{ν+γ}` at `F = 64`).
    pub fn terminal_edges(&self) -> usize {
        2 * self.n() * self.grid_rows()
    }

    /// Total predicted size of 𝒩.
    pub fn predicted_size(&self) -> usize {
        self.middle_edges() + self.grid_edges() + self.terminal_edges()
    }

    /// The paper's own census `1408·ν·4^{ν+γ}` (valid at `F = 64`,
    /// `d = 10`, counting each grid at `l` edges per gap).
    pub fn paper_census(&self) -> usize {
        1408 * self.nu as usize * (self.n() * self.four_gamma())
    }

    /// Theorem 2's headline bound re-expressed per terminal:
    /// size `≤ C·n·(log₄ n)²` for the constant achieved by this profile.
    pub fn size_constant(&self) -> f64 {
        self.predicted_size() as f64 / (self.n() as f64 * (self.nu as f64).powi(2))
    }
}

/// Least `γ ≥ 1` with `4^γ ≥ factor·ν`.
pub fn gamma_for(factor: f64, nu: u32) -> u32 {
    let target = factor * nu as f64;
    let mut g = 1u32;
    while ((1usize << (2 * g)) as f64) < target {
        g += 1;
        assert!(g <= 16, "γ out of range (factor {factor}, ν {nu})");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_matches_paper_examples() {
        // ⌈log₄(34ν)⌉: ν=1 → 34 ⇒ γ=3 (64 ≥ 34); ν=2 → 68 ⇒ γ=4? 4³=64<68
        assert_eq!(gamma_for(34.0, 1), 3);
        assert_eq!(gamma_for(34.0, 2), 4);
        assert_eq!(gamma_for(34.0, 4), 4); // 136 ≤ 256
                                           // paper sandwich: 136ν ≥ 4^γ ≥ 34ν
        for nu in 1..=6 {
            let g = gamma_for(34.0, nu);
            let fg = 1usize << (2 * g);
            assert!(fg as f64 >= 34.0 * nu as f64);
            assert!(fg as f64 <= 136.0 * nu as f64, "4^γ = {fg} > 136ν");
        }
    }

    #[test]
    fn paper_exact_quantities() {
        let p = Params::paper_exact(2);
        assert_eq!(p.n(), 16);
        assert_eq!(p.gamma, 4);
        assert_eq!(p.stage_width(), 64 * 4usize.pow(6));
        assert_eq!(p.grid_rows(), 64 * 256);
        assert_eq!(p.num_stages(), 9);
        assert_eq!(p.depth(), 8);
        assert_eq!(p.middle_stage(), 4);
        // middle census matches the paper's 1280ν4^{ν+γ}
        assert_eq!(p.middle_edges(), 1280 * 2 * 4usize.pow(6));
        // terminal census matches 128·4^{ν+γ}
        assert_eq!(p.terminal_edges(), 128 * 4usize.pow(6));
    }

    #[test]
    fn reduced_profile_shrinks() {
        let p = Params::reduced(2, 8, 4, 1.0);
        assert_eq!(p.gamma, 1);
        assert!(p.predicted_size() < Params::paper_exact(2).predicted_size() / 100);
        assert_eq!(p.num_stages(), 9, "stage structure independent of width");
    }

    #[test]
    fn size_grows_like_n_log2n() {
        // fixed profile: size/(n ν²) should stay bounded as ν grows
        let c2 = Params::reduced(2, 8, 4, 1.0).size_constant();
        let c5 = Params::reduced(5, 8, 4, 1.0).size_constant();
        // γ grows with log ν, so the ratio drifts slowly; assert sane band
        assert!(c5 < 20.0 * c2, "size not Θ(n log² n): c2={c2}, c5={c5}");
    }

    #[test]
    #[should_panic(expected = "width must be even")]
    fn rejects_odd_width() {
        Params::reduced(2, 7, 3, 1.0);
    }

    #[test]
    fn seed_override() {
        let p = Params::paper_exact(1).with_seed(99);
        assert_eq!(p.seed, 99);
    }
}
