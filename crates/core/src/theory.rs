//! Closed-form bounds from the paper, as executable formulas.
//!
//! Every probabilistic lemma of §5/§6 comes with an explicit numeric
//! bound; the experiment binaries print these columns next to the
//! Monte-Carlo estimates. Functions are parameterized exactly as the
//! paper states them (width factor 64, degree 10) unless noted;
//! generalizations to reduced profiles take the profile explicitly.
//!
//! ### Transcription notes (documented deviations)
//!
//! * Theorem 2's headline constant is printed in the article as
//!   "49 n (log₄ n)²"; the paper's own census `1408ν·4^{ν+γ}` together
//!   with `4^γ ≤ 136ν` gives `1408·136 ≈ 1.9·10⁵` as the constant, so
//!   the "49" cannot be reproduced from the stated census (it appears
//!   to be a typesetting casualty). [`theorem2_size_bound`] uses the
//!   census-derived constant and [`theorem2_size_paper_constant`]
//!   records the printed one.
//! * Lemma 6's failure bound is used per input; the union over the
//!   `4^ν` inputs is absorbed into the exponentially small factor in
//!   the paper. We carry the explicit `n` factor.

use crate::params::Params;

/// Lemma 3: probability that an idle input fails to keep majority
/// access to its grid's boundary, `c₁·ν·(144ε)^{64·4^γ}` with
/// `c₁ = 1/(1 − 72ε)` — generalized to grid rows `l = F·4^γ`.
///
/// Returns 1.0 when the bound is vacuous (ε too large for the
/// geometric series to converge).
pub fn lemma3_grid_failure_bound(params: &Params, eps: f64) -> f64 {
    let l = params.grid_rows() as f64;
    let nu = params.nu as f64;
    if 72.0 * eps >= 1.0 {
        return 1.0;
    }
    let c1 = 1.0 / (1.0 - 72.0 * eps);
    (c1 * nu * (144.0 * eps).powf(l)).min(1.0)
}

/// Lemma 4: Markov/Chernoff tail for the number of faulty outlets of
/// one expanding graph: `P[T > budget] ≤ exp(M·ln(1 + 2ε(e−1)) − budget)`
/// where `M` is the number of switches incident with the outlet set.
pub fn lemma4_outlet_tail(incident_switches: usize, eps: f64, budget: f64) -> f64 {
    let m = incident_switches as f64;
    (m * (1.0 + 2.0 * eps * (std::f64::consts::E - 1.0)).ln() - budget)
        .exp()
        .min(1.0)
}

/// The paper's instantiation of Lemma 4 at scale `μ`: a graph with
/// `64·4^μ` outlets, 20 incident switches each, budget `0.07·4^μ` —
/// yielding `≤ e^{−0.06·4^μ}` at `ε = 10⁻⁶`.
pub fn lemma4_paper_tail(mu: u32, eps: f64) -> f64 {
    let t = 64.0 * 4f64.powi(mu as i32);
    lemma4_outlet_tail((20.0 * t) as usize, eps, 0.07 * 4f64.powi(mu as i32))
}

/// Lemma 5: union bound over every expanding graph of 𝓜ₗ — the sum
/// `Σ_{μ=γ}^{ν+γ−1} 4^{ν+γ−μ}·P_μ` evaluated numerically with the
/// Lemma 4 tail (no closed-form approximation).
pub fn lemma5_family_bound(params: &Params, eps: f64) -> f64 {
    let nu = params.nu;
    let gamma = params.gamma;
    let mut sum = 0.0;
    for mu in gamma..nu + gamma {
        let graphs = 4f64.powi((nu + gamma - mu) as i32);
        sum += graphs * lemma4_paper_tail(mu, eps);
    }
    sum.min(1.0)
}

/// Lemma 6: probability that 𝒩ₗ fails to be a majority-access
/// network — Lemma 3 over all `n` inputs plus Lemma 5.
pub fn lemma6_majority_failure_bound(params: &Params, eps: f64) -> f64 {
    let n = params.n() as f64;
    (n * lemma3_grid_failure_bound(params, eps) + lemma5_family_bound(params, eps)).min(1.0)
}

/// Lemma 7: probability that some input/output pair contracts to one
/// vertex: `c₂·ν²·(160ε)^{2ν}` with `c₂ = 4^{15}/(1 − 40ε)`.
pub fn lemma7_shorting_bound(params: &Params, eps: f64) -> f64 {
    let nu = params.nu as f64;
    if 40.0 * eps >= 1.0 {
        return 1.0;
    }
    let c2 = 4f64.powi(15) / (1.0 - 40.0 * eps);
    (c2 * nu * nu * (160.0 * eps).powf(2.0 * nu)).min(1.0)
}

/// Theorem 2: probability that 𝒩 fails to contain a nonblocking
/// n-network of normal switches:
/// `2·(Lemma 6) + (Lemma 7)` (left half, mirror, shorting).
pub fn theorem2_failure_bound(params: &Params, eps: f64) -> f64 {
    (2.0 * lemma6_majority_failure_bound(params, eps) + lemma7_shorting_bound(params, eps)).min(1.0)
}

/// Theorem 2's size bound derived from the census: `1408·ν·4^{ν+γ}`
/// with `4^γ ≤ 136ν` gives `size ≤ 1408·136·n·(log₄ n)²`.
pub fn theorem2_size_bound(n: usize) -> f64 {
    let nu = (n as f64).log(4.0);
    1408.0 * 136.0 * n as f64 * nu * nu
}

/// The constant printed in the article's Theorem 2 ("49") — kept for
/// the record; see the module docs for why it cannot follow from the
/// paper's own census.
pub fn theorem2_size_paper_constant() -> f64 {
    49.0
}

/// Theorem 2's depth: `4ν` switches on every input→output path
/// (`4ν + 1` stages), bounded by `5·log₄ n`.
pub fn theorem2_depth_bound(n: usize) -> f64 {
    5.0 * (n as f64).log(4.0)
}

/// Theorem 1's size lower bound for a `(¼, ½)`-n-superconcentrator:
/// `n·(log₂ n)²/2688`.
pub fn theorem1_size_lower_bound(n: usize) -> f64 {
    let lg = (n as f64).log2();
    n as f64 * lg * lg / 2688.0
}

/// Theorem 1's depth lower bound: `(log₂ n)/16`.
pub fn theorem1_depth_lower_bound(n: usize) -> f64 {
    (n as f64).log2() / 16.0
}

/// Lemma 2's closeness threshold: pairwise input distance below
/// `(1/8)·log₂ n` (for ≥ n/2 inputs) contradicts being a
/// `(¼, ½)`-superconcentrator.
pub fn lemma2_distance_threshold(n: usize) -> f64 {
    (n as f64).log2() / 8.0
}

/// Lemma 2's shorting estimate: `k` edge-disjoint paths of length
/// ≤ `len` each short with probability ≥ `ε₂^len`; the probability
/// that none shorts is `(1 − ε₂^len)^k`.
pub fn lemma2_no_short_probability(k: usize, len: usize, eps_close: f64) -> f64 {
    (1.0 - eps_close.powi(len as i32)).powi(k as i32)
}

/// Moore–Shannon Proposition 1: size `c_ε·(log₂ 1/ε′)²` and depth
/// `d_ε·log₂ 1/ε′` of an `(ε, ε′)`-1-network. Returns the pair of
/// scale factors measured against a given construction size/depth.
pub fn prop1_constants(size: usize, depth: u32, eps_prime: f64) -> (f64, f64) {
    let lg = (1.0 / eps_prime).log2();
    (size as f64 / (lg * lg), depth as f64 / lg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper2() -> Params {
        Params::paper_exact(2)
    }

    #[test]
    fn lemma3_tiny_at_paper_eps() {
        // ε = 10⁻⁶, ν = 2, γ = 4 ⇒ l = 16384; (144ε)^l is astronomically
        // small
        let b = lemma3_grid_failure_bound(&paper2(), 1e-6);
        assert!(b < 1e-300, "bound {b}");
    }

    #[test]
    fn lemma3_vacuous_at_huge_eps() {
        assert_eq!(lemma3_grid_failure_bound(&paper2(), 0.02), 1.0);
    }

    #[test]
    fn lemma4_matches_paper_arithmetic() {
        // ε = 10⁻⁶, μ = 3: ln(1+2ε(e−1)) ≈ 2ε(e−1) ≈ 3.44·10⁻⁶;
        // M = 20·64·64 = 81920 ⇒ exponent ≈ 0.28 − 0.07·64 = −4.2
        let t = lemma4_paper_tail(3, 1e-6);
        let expected = (20.0 * 64.0 * 64.0 * (1.0 + 2e-6 * (std::f64::consts::E - 1.0)).ln()
            - 0.07 * 64.0)
            .exp();
        assert!((t - expected).abs() < 1e-12);
        assert!(t < 0.02, "tail {t}");
        // and the paper's e^{−0.06·4^μ} envelope holds
        assert!(t <= (-0.06f64 * 64.0).exp() * 1.05);
    }

    #[test]
    fn lemma4_monotone_in_eps() {
        for mu in 1..4 {
            assert!(lemma4_paper_tail(mu, 1e-6) <= lemma4_paper_tail(mu, 1e-4));
        }
    }

    #[test]
    fn lemma5_sums_family() {
        let b = lemma5_family_bound(&paper2(), 1e-6);
        // dominated by the smallest scale μ = γ = 4: 4^2 graphs at
        // e^{−0.06·256} ≈ 2·10⁻⁷… the sum is well under 1
        assert!(b < 1e-4, "bound {b}");
        assert!(b > 0.0);
    }

    #[test]
    fn theorem2_failure_vanishes_at_paper_eps() {
        let b = theorem2_failure_bound(&paper2(), 1e-6);
        assert!(b < 1e-3, "bound {b}");
        // and grows with ε
        assert!(theorem2_failure_bound(&paper2(), 1e-3) >= b);
    }

    #[test]
    fn lemma7_scaling() {
        let p = paper2();
        let b6 = lemma7_shorting_bound(&p, 1e-6);
        let b3 = lemma7_shorting_bound(&p, 1e-3);
        assert!(b6 < b3);
        // (160·10⁻⁶)^4 ≈ 6.6·10⁻¹⁶ times c₂·4 ≈ 4.3·10⁹ ⇒ ~3·10⁻⁶
        assert!(b6 < 1e-4, "bound {b6}");
    }

    #[test]
    fn theorem1_bounds_positive_and_growing() {
        assert!(theorem1_size_lower_bound(1024) > theorem1_size_lower_bound(256));
        assert!(theorem1_depth_lower_bound(1 << 16) == 1.0);
        assert!((lemma2_distance_threshold(256) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lemma2_no_short_prob() {
        // 84 paths of length 3, ε₂ = ¼: (1 − 1/64)^84 ≈ 0.27 < ½
        let p = lemma2_no_short_probability(84, 3, 0.25);
        assert!(p < 0.5, "p = {p}");
        assert!(lemma2_no_short_probability(0, 3, 0.25) == 1.0);
    }

    #[test]
    fn theorem2_size_census_constant() {
        // the census-derived constant, not the printed "49"
        let b = theorem2_size_bound(256);
        assert!((b - 1408.0 * 136.0 * 256.0 * 16.0).abs() < 1.0);
        assert_eq!(theorem2_size_paper_constant(), 49.0);
    }

    #[test]
    fn prop1_constants_shape() {
        let (cs, cd) = prop1_constants(400, 20, 1e-3);
        let lg = 1000f64.log2();
        assert!((cs - 400.0 / (lg * lg)).abs() < 1e-9);
        assert!((cd - 20.0 / lg).abs() < 1e-9);
    }
}
