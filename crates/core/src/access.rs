//! Access and majority-access machinery (§6, Lemmas 3 and 6).
//!
//! Given a set of vertex-disjoint paths from inputs to outputs, a vertex
//! that is neither faulty nor on a path is *idle*; vertex `η₁` *has
//! access to* `η₂` if a directed path of idle vertices leads from `η₁`
//! to `η₂`. The network is a **majority-access network** if every idle
//! input has access to strictly more than half of the middle-stage
//! vertices (the paper phrases this against "the outputs" of the
//! left-hand half 𝒩ₗ, which are the stage-2ν vertices).
//!
//! Majority access of 𝒩ₗ together with majority access of the mirror
//! (idle outputs reaching backwards) is what makes the survivor
//! nonblocking: an idle input and an idle output each access a strict
//! majority of stage 2ν, so they share an idle middle vertex and can be
//! joined by a path of idle vertices — greedily, by any path finder.
//!
//! This module computes access sets exactly by BFS restricted to idle
//! vertices. [`grid_access_count`] is Lemma 3's quantity (grids are
//! private to their terminal, so only faults matter there);
//! [`majority_access_report`] checks Lemma 6's conclusion for a concrete
//! busy pattern; [`access_profile`] exposes the per-stage counts that
//! the Lemma 6 induction tracks.

use crate::network::{FtNetwork, Side};
use ft_graph::traversal::{bfs_into, Direction};
use ft_graph::workspace::TraversalWorkspace;
use ft_graph::{Digraph, VertexId};

/// Direction of an access computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessDir {
    /// Follow edges forward (input side).
    Forward,
    /// Follow edges backward (output side / mirror image).
    Backward,
}

impl AccessDir {
    fn traversal(self) -> Direction {
        match self {
            AccessDir::Forward => Direction::Forward,
            AccessDir::Backward => Direction::Backward,
        }
    }
}

/// BFS from `source` through vertices accepted by `idle`, following
/// `dir`, into a reusable workspace. The source itself is always allowed
/// (terminals are never faulty; a busy terminal would simply not be
/// queried). After the call the workspace holds the access set
/// (`ws.reached`, `ws.order`, `ws.count_reached_in`).
pub fn access_set_into<G: Digraph>(
    g: &G,
    source: VertexId,
    dir: AccessDir,
    idle: impl Fn(VertexId) -> bool,
    ws: &mut TraversalWorkspace,
) {
    bfs_into(
        g,
        &[source],
        dir.traversal(),
        |_| true,
        |v| v == source || idle(v),
        ws,
    );
}

/// [`access_set_into`] materialised as a boolean mask over all vertices.
pub fn access_set<G: Digraph>(
    g: &G,
    source: VertexId,
    dir: AccessDir,
    idle: impl Fn(VertexId) -> bool,
) -> Vec<bool> {
    let mut ws = TraversalWorkspace::new();
    access_set_into(g, source, dir, idle, &mut ws);
    let mut seen = vec![false; g.num_vertices()];
    for &v in ws.order() {
        seen[v.index()] = true;
    }
    seen
}

/// Lemma 3's quantity: how many vertices of grid `j`'s **boundary
/// stage** (stage ν for input grids, stage 3ν for output grids) the
/// terminal has access to, when only faults (no busy paths) block the
/// way. Grids are private to their terminal — no path of another
/// terminal enters Φⱼ/Ψⱼ — so this is exactly the Lemma 3 event.
///
/// `alive[v]` must be false at faulty vertices.
pub fn grid_access_count(ftn: &FtNetwork, alive: &[bool], side: Side, j: usize) -> usize {
    grid_access_count_into(ftn, alive, side, j, &mut TraversalWorkspace::new())
}

/// [`grid_access_count`] with a caller-owned workspace (trial loops run
/// it 2n times per certification).
pub fn grid_access_count_into(
    ftn: &FtNetwork,
    alive: &[bool],
    side: Side,
    j: usize,
    ws: &mut TraversalWorkspace,
) -> usize {
    let nu = ftn.params().nu as usize;
    let (source, dir, boundary_stage) = match side {
        Side::Input => (ftn.input(j), AccessDir::Forward, nu),
        Side::Output => (ftn.output(j), AccessDir::Backward, 3 * nu),
    };
    let l = ftn.rows();
    // Restrict the BFS to the grid's own vertex band so the walk cannot
    // stray into 𝓜 and come back (it cannot anyway — the graph is
    // staged — but the restriction also keeps the scan cheap).
    let lo = j * l;
    let hi = (j + 1) * l;
    let in_grid = |v: VertexId| -> bool {
        // stage bands of the grid, including the shared boundary stage
        for g in 0..nu {
            let s = match side {
                Side::Input => 1 + g,
                Side::Output => 3 * nu + g,
            };
            let base = ftn.stage_base(s);
            if v.0 >= base + lo as u32 && v.0 < base + hi as u32 {
                return true;
            }
        }
        false
    };
    access_set_into(
        ftn.csr(),
        source,
        dir,
        |v| alive[v.index()] && in_grid(v),
        ws,
    );
    let base = ftn.stage_base(boundary_stage);
    ws.count_reached_in(base + lo as u32..base + hi as u32)
}

/// Whether every terminal's grid keeps **majority access** (strictly
/// more than half of its `l` boundary vertices reachable through
/// non-faulty grid vertices). Returns the minimum access fraction seen.
pub fn all_grids_majority(ftn: &FtNetwork, alive: &[bool]) -> (bool, f64) {
    let l = ftn.rows();
    let mut ok = true;
    let mut min_frac = 1.0_f64;
    let mut ws = TraversalWorkspace::new();
    for side in [Side::Input, Side::Output] {
        for j in 0..ftn.n() {
            let c = grid_access_count_into(ftn, alive, side, j, &mut ws);
            let frac = c as f64 / l as f64;
            min_frac = min_frac.min(frac);
            if 2 * c <= l {
                ok = false;
            }
        }
    }
    (ok, min_frac)
}

/// Report of a majority-access check over all idle terminals of one
/// side, for a concrete busy pattern.
#[derive(Clone, Debug)]
pub struct MajorityReport {
    /// Terminals that were idle (queried).
    pub idle_terminals: usize,
    /// How many of them reached a strict majority of stage 2ν.
    pub with_majority: usize,
    /// Minimum accessed fraction of the middle stage over idle
    /// terminals (1.0 when none are idle).
    pub min_fraction: f64,
}

impl MajorityReport {
    /// True when every idle terminal has majority access.
    pub fn all_majority(&self) -> bool {
        self.idle_terminals == self.with_majority
    }
}

/// Checks Lemma 6's conclusion for a concrete instance: every idle
/// terminal of `side` has access (through vertices that are alive and
/// not busy) to strictly more than half of the stage-2ν vertices.
///
/// `busy[v]` marks vertices used by established paths; terminals on
/// established paths are skipped (they are busy, not idle).
pub fn majority_access_report(
    ftn: &FtNetwork,
    alive: &[bool],
    busy: &[bool],
    side: Side,
) -> MajorityReport {
    let nu = ftn.params().nu as usize;
    let mid_base = ftn.stage_base(2 * nu);
    let mid = mid_base..mid_base + ftn.width() as u32;
    let half = ftn.width() / 2;
    let mut idle_terminals = 0;
    let mut with_majority = 0;
    let mut min_fraction = 1.0_f64;
    let mut ws = TraversalWorkspace::new();
    for j in 0..ftn.n() {
        let (t, dir) = match side {
            Side::Input => (ftn.input(j), AccessDir::Forward),
            Side::Output => (ftn.output(j), AccessDir::Backward),
        };
        if busy[t.index()] {
            continue;
        }
        idle_terminals += 1;
        access_set_into(
            ftn.csr(),
            t,
            dir,
            |v| alive[v.index()] && !busy[v.index()],
            &mut ws,
        );
        let c = ws.count_reached_in(mid.clone());
        if c > half {
            with_majority += 1;
        }
        min_fraction = min_fraction.min(c as f64 / ftn.width() as f64);
    }
    MajorityReport {
        idle_terminals,
        with_majority,
        min_fraction,
    }
}

/// Per-stage accessed counts from one terminal — the quantity Lemma 6's
/// induction lower-bounds stage by stage. Entry `s` is the number of
/// stage-`s` vertices the terminal has access to.
pub fn access_profile(
    ftn: &FtNetwork,
    alive: &[bool],
    busy: &[bool],
    side: Side,
    j: usize,
) -> Vec<usize> {
    let (t, dir) = match side {
        Side::Input => (ftn.input(j), AccessDir::Forward),
        Side::Output => (ftn.output(j), AccessDir::Backward),
    };
    let mut ws = TraversalWorkspace::new();
    access_set_into(
        ftn.csr(),
        t,
        dir,
        |v| alive[v.index()] && !busy[v.index()],
        &mut ws,
    );
    let stages = ftn.num_stages();
    let mut profile = Vec::with_capacity(stages);
    for s in 0..stages {
        let r = ftn.net().stage_range(s);
        profile.push(ws.count_reached_in(r));
    }
    profile
}

/// Marks the vertices of a set of paths as busy. Paths must be
/// vertex-disjoint; this is asserted in debug builds.
pub fn busy_mask(num_vertices: usize, paths: &[Vec<VertexId>]) -> Vec<bool> {
    let mut busy = vec![false; num_vertices];
    for p in paths {
        for &v in p {
            debug_assert!(!busy[v.index()], "paths not vertex-disjoint at {v:?}");
            busy[v.index()] = true;
        }
    }
    busy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    fn tiny() -> FtNetwork {
        FtNetwork::build(Params::reduced(1, 8, 4, 1.0))
    }

    fn small() -> FtNetwork {
        // Strict-majority access (Lemma 6) is a with-high-probability
        // property of the sampled expander wiring; the default seed sits
        // right at the 50% boundary for one output, so pin one that
        // clears it with margin in both directions.
        FtNetwork::build(Params::reduced(2, 8, 4, 1.0).with_seed(1))
    }

    #[test]
    fn fault_free_grid_access_is_full() {
        let f = small();
        let alive = vec![true; f.net().num_vertices()];
        for j in 0..f.n() {
            assert_eq!(grid_access_count(&f, &alive, Side::Input, j), f.rows());
            assert_eq!(grid_access_count(&f, &alive, Side::Output, j), f.rows());
        }
        let (ok, frac) = all_grids_majority(&f, &alive);
        assert!(ok);
        assert_eq!(frac, 1.0);
    }

    #[test]
    fn fault_free_majority_access_is_full() {
        let f = tiny();
        let alive = vec![true; f.net().num_vertices()];
        let busy = vec![false; f.net().num_vertices()];
        for side in [Side::Input, Side::Output] {
            let rep = majority_access_report(&f, &alive, &busy, side);
            assert_eq!(rep.idle_terminals, 4);
            // the union of d random permutations reaches a strict
            // majority of the middle stage (≈ 1 − e^{−d/4}), not all
            // of it — Lemma 6 only ever claims a majority
            assert!(rep.all_majority());
            assert!(rep.min_fraction > 0.5, "{}", rep.min_fraction);
        }
    }

    #[test]
    fn profile_monotone_structure() {
        let f = small();
        let alive = vec![true; f.net().num_vertices()];
        let busy = vec![false; f.net().num_vertices()];
        let prof = access_profile(&f, &alive, &busy, Side::Input, 0);
        // stage 0: the input itself
        assert_eq!(prof[0], 1);
        // stage 1: the full fan-out l
        assert_eq!(prof[1], f.rows());
        // a strict majority of the middle stage is accessible
        assert!(prof[4] > f.width() / 2);
        // the backward profile of an output mirrors
        let bprof = access_profile(&f, &alive, &busy, Side::Output, 0);
        assert_eq!(bprof[8], 1);
        assert!(bprof[4] > f.width() / 2);
    }

    #[test]
    fn dead_grid_row_reduces_access() {
        let f = tiny();
        let mut alive = vec![true; f.net().num_vertices()];
        // kill rows 0..=15 (half the grid) of input grid 0 at its only
        // interior stage (stage 1 = boundary for ν=1: boundary stage is
        // stage ν = 1, so killing boundary vertices directly)
        for r in 0..16 {
            alive[f.grid_vertex(Side::Input, 0, r, 0).index()] = false;
        }
        let c = grid_access_count(&f, &alive, Side::Input, 0);
        assert_eq!(c, 16);
        // exactly half is NOT a strict majority
        let (ok, _) = all_grids_majority(&f, &alive);
        assert!(!ok);
    }

    #[test]
    fn busy_paths_block_access() {
        let f = tiny();
        let alive = vec![true; f.net().num_vertices()];
        // mark the whole middle stage busy except one vertex: no
        // majority possible
        let nu = 1;
        let mut busy = vec![false; f.net().num_vertices()];
        let base = f.stage_base(2 * nu);
        for i in 0..f.width() - 1 {
            busy[(base + i as u32) as usize] = true;
        }
        let rep = majority_access_report(&f, &alive, &busy, Side::Input);
        assert_eq!(rep.with_majority, 0);
        assert!(rep.min_fraction <= 1.0 / f.width() as f64);
    }

    #[test]
    fn busy_terminal_not_queried() {
        let f = tiny();
        let alive = vec![true; f.net().num_vertices()];
        let mut busy = vec![false; f.net().num_vertices()];
        busy[f.input(2).index()] = true;
        let rep = majority_access_report(&f, &alive, &busy, Side::Input);
        assert_eq!(rep.idle_terminals, 3);
    }

    #[test]
    fn busy_mask_rejects_overlap() {
        let f = tiny();
        let p1 = vec![f.input(0), f.internal(1, 0)];
        let m = busy_mask(f.net().num_vertices(), std::slice::from_ref(&p1));
        assert!(m[f.input(0).index()]);
        assert!(!m[f.input(1).index()]);
    }

    #[test]
    #[should_panic(expected = "not vertex-disjoint")]
    #[cfg(debug_assertions)]
    fn busy_mask_panics_on_overlap() {
        let f = tiny();
        let p1 = vec![f.input(0), f.internal(1, 0)];
        let p2 = vec![f.internal(1, 0), f.internal(2, 0)];
        busy_mask(f.net().num_vertices(), &[p1, p2]);
    }

    #[test]
    fn backward_access_respects_direction() {
        let f = tiny();
        let alive = vec![true; f.net().num_vertices()];
        // forward from an output reaches nothing (no out-edges)
        let mask = access_set(f.net(), f.output(0), AccessDir::Forward, |v| {
            alive[v.index()]
        });
        assert_eq!(mask.iter().filter(|&&b| b).count(), 1);
    }
}
