//! # ft-core — the Pippenger–Lin fault-tolerant network 𝒩
//!
//! The paper's primary contribution (§4–§6 of *Fault-Tolerant
//! Circuit-Switching Networks*, SPAA 1992 / SIAM J. Disc. Math. 1994):
//! an explicit `(10⁻⁶, δ)`-nonblocking n-network of size
//! `O(n (log n)²)` and depth `O(log n)`, matching the §5 lower bound.
//!
//! The pipeline a user walks through:
//!
//! ```
//! use ft_core::{params::Params, network::FtNetwork, repair::Survivor};
//! use ft_core::{certify, routing};
//! use ft_failure::{FailureModel, FailureInstance};
//! use ft_graph::gen::rng;
//!
//! // 1. build 𝒩 (a reduced laptop-scale profile)
//! let ftn = FtNetwork::build(Params::reduced(1, 8, 4, 1.0));
//! // 2. strike it with random switch failures
//! let model = FailureModel::symmetric(1e-4);
//! let mut r = rng(1);
//! let inst = FailureInstance::sample(&model, &mut r, ftn.net().size());
//! // 3. repair: discard faulty internal vertices
//! let survivor = Survivor::new(&ftn, &inst);
//! // 4. certify the structural events of Lemmas 3–7
//! let cert = certify::certify_with_budget(&ftn, &inst, 0.1);
//! // 5. route greedily on the survivor
//! if cert.implies_nonblocking() {
//!     let mut router = routing::survivor_router(&survivor);
//!     let perm = routing::random_perm(&mut r, ftn.n());
//!     let (stats, _) = routing::route_permutation(&mut router, &ftn, &perm);
//!     assert!(stats.all_connected());
//! }
//! ```
//!
//! Modules:
//!
//! * [`params`] — the construction constants (ν, γ, width, degree) in
//!   `paper_exact` and `reduced` profiles;
//! * [`network`] — building 𝒩 (grids + truncated recursive middle);
//! * [`recursive`] — the un-truncated \[P82\] recursive network;
//! * [`access`] — access sets and majority-access (Lemmas 3, 6);
//! * [`repair`] — terminal-aware repair (§4);
//! * [`mod@certify`] — structural certification (Lemmas 3–7, Theorem 2);
//! * [`routing`] — greedy routing workloads on the survivor (§4);
//! * [`lowerbound`] — the §5 machinery (Lemmas 1–2, Theorem 1 audit);
//! * [`theory`] — every closed-form bound as an executable formula.

#![warn(missing_docs)]

pub mod access;
pub mod certify;
pub mod lowerbound;
pub mod network;
pub mod params;
pub mod recursive;
pub mod repair;
pub mod routing;
pub mod theory;

pub use certify::{certify, Certificate};
pub use network::{Census, FtNetwork, Side, StageKind};
pub use params::Params;
pub use repair::Survivor;
