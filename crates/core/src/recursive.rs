//! The full recursive nonblocking network of Pippenger [P82, §9] —
//! the construction that §6 scales up by `4^γ` and truncates into 𝓜.
//!
//! For `m = 4^h` terminals the network has `2h + 1` stages: `m` inputs
//! on stage 0, `m` outputs on stage `2h`, and `F·m` vertices on every
//! internal stage (the paper's `F = 64`). The subgraph between the
//! inputs and stage 1 consists of `m/4` disjoint complete bipartite
//! graphs, each joining four inputs to a block of `4F` vertices (the
//! paper's "four inputs … and 256 vertices"). Between internal stages
//! `i` and `i+1` every vertex has `d` out-edges into its parent block
//! of size `F·4^{i+1}` (union of `d` random permutations per block) —
//! the `(32·4^i, 33.07·4^i, 64·4^i)`-expanding-graph layer at `F = 64`,
//! `d = 10`. The right half mirrors the left.
//!
//! 𝒩 of §6 (see [`crate::network`]) is exactly this network built for
//! `h = ν + γ`, with the first and last `γ` stages cut off and directed
//! grids glued onto the cut; [`RecursiveNet`] exists as the
//! un-truncated object: the fault-free baseline of the experiments and
//! the reference point for the structural tests that pin the
//! truncation geometry.

use ft_graph::gen::random_permutation;
use ft_graph::{StagedBuilder, StagedNetwork, VertexId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Parameters of the recursive construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecursiveParams {
    /// `h`: the network serves `m = 4^h` terminals.
    pub h: u32,
    /// Width factor `F` (the paper's 64).
    pub width: usize,
    /// Out-degree `d` per internal vertex (the paper's 10).
    pub degree: usize,
    /// Expander sampling seed.
    pub seed: u64,
}

impl RecursiveParams {
    /// The paper's constants at height `h`.
    pub fn paper_exact(h: u32) -> Self {
        RecursiveParams {
            h,
            width: 64,
            degree: 10,
            seed: 0x9EC0_4D5E,
        }
    }

    /// A reduced profile.
    pub fn reduced(h: u32, width: usize, degree: usize) -> Self {
        assert!(h >= 1 && width >= 2 && degree >= 1);
        RecursiveParams {
            h,
            width,
            degree,
            seed: 0x9EC0_4D5E,
        }
    }

    /// Number of terminals `m = 4^h`.
    pub fn m(&self) -> usize {
        1usize << (2 * self.h)
    }

    /// Predicted switch count: `2·m·4F` terminal-bipartite switches
    /// plus `(2h − 2)·d·F·m` expander switches.
    pub fn predicted_size(&self) -> usize {
        let m = self.m();
        8 * self.width * m + (2 * self.h as usize - 2) * self.degree * self.width * m
    }
}

/// The built recursive network.
#[derive(Clone, Debug)]
pub struct RecursiveNet {
    /// Construction parameters.
    pub params: RecursiveParams,
    /// The staged network (inputs stage 0, outputs stage `2h`).
    pub net: StagedNetwork,
}

impl RecursiveNet {
    /// Builds the network.
    pub fn build(params: RecursiveParams) -> RecursiveNet {
        let h = params.h as usize;
        let m = params.m();
        let f = params.width;
        let w = f * m;
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let mut b = StagedBuilder::new();
        let mut bases = Vec::with_capacity(2 * h + 1);
        bases.push(b.add_stage(m).start);
        for _ in 1..2 * h {
            bases.push(b.add_stage(w).start);
        }
        bases.push(b.add_stage(m).start);
        let v = |s: usize, i: usize| VertexId(bases[s] + i as u32);

        // inputs → stage 1: complete bipartite 4 × 4F per block
        for q in 0..m / 4 {
            for i in 0..4 {
                for t in 0..4 * f {
                    b.add_edge(v(0, 4 * q + i), v(1, q * 4 * f + t));
                }
            }
        }
        // left expander gaps: block size F·4^{i+1}
        for s in 1..h {
            let t = f << (2 * (s + 1));
            for blk in 0..w / t {
                for _ in 0..params.degree {
                    let pi = random_permutation(&mut rng, t);
                    for (i, &p) in pi.iter().enumerate() {
                        b.add_edge(v(s, blk * t + i), v(s + 1, blk * t + p as usize));
                    }
                }
            }
        }
        // right expander gaps (mirror): block size F·4^{2h−s}
        for s in h..2 * h - 1 {
            let t = f << (2 * (2 * h - s));
            for blk in 0..w / t {
                for _ in 0..params.degree {
                    let pi = random_permutation(&mut rng, t);
                    for (i, &p) in pi.iter().enumerate() {
                        b.add_edge(v(s, blk * t + i), v(s + 1, blk * t + p as usize));
                    }
                }
            }
        }
        // stage 2h−1 → outputs: complete bipartite 4F × 4 per block
        for q in 0..m / 4 {
            for t in 0..4 * f {
                for i in 0..4 {
                    b.add_edge(v(2 * h - 1, q * 4 * f + t), v(2 * h, 4 * q + i));
                }
            }
        }
        b.set_inputs((0..m).map(|i| v(0, i)).collect());
        b.set_outputs((0..m).map(|i| v(2 * h, i)).collect());
        let net = if b.num_edges() < 2_000_000 {
            b.finish()
        } else {
            b.finish_unvalidated()
        };
        RecursiveNet { params, net }
    }

    /// Group size at internal stage `s` (`1 ≤ s ≤ 2h−1`): `F·4^i` with
    /// `i = min(s, 2h − s)`.
    pub fn group_size(&self, s: usize) -> usize {
        let h = self.params.h as usize;
        debug_assert!(s >= 1 && s < 2 * h);
        let i = s.min(2 * h - s);
        self.params.width << (2 * i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::FtNetwork;
    use crate::params::Params;
    use ft_graph::gen::rng;
    use ft_networks::CircuitRouter;

    fn small() -> RecursiveNet {
        RecursiveNet::build(RecursiveParams::reduced(2, 4, 8))
    }

    #[test]
    fn shape_and_census() {
        let r = small(); // h=2, m=16, F=4, W=64
        assert_eq!(r.net.num_stages(), 5);
        assert_eq!(r.net.inputs().len(), 16);
        assert_eq!(r.net.depth(), 4);
        assert_eq!(r.net.size(), r.params.predicted_size());
        // terminal blocks: every input has out-degree 4F = 16
        for &i in r.net.inputs() {
            assert_eq!(r.net.graph().out_degree(i), 16);
        }
    }

    #[test]
    fn group_sizes_mirror() {
        let r = small();
        assert_eq!(r.group_size(1), 16); // F·4
        assert_eq!(r.group_size(2), 64); // F·16 (middle)
        assert_eq!(r.group_size(3), 16); // mirrored
    }

    #[test]
    fn h1_is_a_clos_like_three_stage() {
        let r = RecursiveNet::build(RecursiveParams::reduced(1, 4, 8));
        // 3 stages: 4 inputs, 16 middle, 4 outputs; complete bipartite
        // both gaps ⇒ trivially strictly nonblocking (m = 16 ≥ 2·4−1)
        assert_eq!(r.net.num_stages(), 3);
        let mut router = CircuitRouter::new(&r.net);
        for (i, o) in [(0, 2), (1, 3), (2, 0), (3, 1)] {
            router
                .connect(r.net.inputs()[i], r.net.outputs()[o])
                .expect("h=1 recursive network must route any permutation");
        }
    }

    #[test]
    fn routes_random_permutations_greedily() {
        let r = small();
        let mut rr = rng(21);
        for _ in 0..10 {
            let perm = ft_graph::gen::random_permutation(&mut rr, 16);
            let mut router = CircuitRouter::new(&r.net);
            for (i, &o) in perm.iter().enumerate() {
                router
                    .connect(r.net.inputs()[i], r.net.outputs()[o as usize])
                    .expect("greedy routing blocked on recursive network");
            }
        }
    }

    #[test]
    fn truncation_geometry_matches_ft_network() {
        // The middle 2ν+1 stages of the recursive network at h = ν+γ
        // must have the same group sizes as 𝓜 inside 𝒩.
        let p = Params::reduced(2, 8, 4, 1.0); // ν=2, γ=1
        let f = FtNetwork::build(p);
        let r = RecursiveNet::build(RecursiveParams::reduced(p.nu + p.gamma, p.width, p.degree));
        let nu = p.nu as usize;
        let gamma = p.gamma as usize;
        for k in 0..=2 * nu {
            // 𝒩 middle stage ν+k ↔ N stage γ+k
            let (_, size) = f.middle_groups(nu + k);
            assert_eq!(size, r.group_size(gamma + k), "stage offset {k}");
        }
        // and the stage widths agree
        assert_eq!(f.width(), r.params.width * r.params.m());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RecursiveNet::build(RecursiveParams::reduced(1, 4, 4));
        let b = RecursiveNet::build(RecursiveParams::reduced(1, 4, 4));
        let ea: Vec<_> = a.net.graph().edges().collect();
        let eb: Vec<_> = b.net.graph().edges().collect();
        assert_eq!(ea, eb);
    }
}
